file(REMOVE_RECURSE
  "CMakeFiles/fig15_load_distribution.dir/fig15_load_distribution.cc.o"
  "CMakeFiles/fig15_load_distribution.dir/fig15_load_distribution.cc.o.d"
  "fig15_load_distribution"
  "fig15_load_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_load_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
