# Empty compiler generated dependencies file for fig11_per_epoch.
# This may be replaced when dependencies are built.
