file(REMOVE_RECURSE
  "CMakeFiles/fig11_per_epoch.dir/fig11_per_epoch.cc.o"
  "CMakeFiles/fig11_per_epoch.dir/fig11_per_epoch.cc.o.d"
  "fig11_per_epoch"
  "fig11_per_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_per_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
