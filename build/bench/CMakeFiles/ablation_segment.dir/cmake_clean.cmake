file(REMOVE_RECURSE
  "CMakeFiles/ablation_segment.dir/ablation_segment.cc.o"
  "CMakeFiles/ablation_segment.dir/ablation_segment.cc.o.d"
  "ablation_segment"
  "ablation_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
