# Empty compiler generated dependencies file for ablation_segment.
# This may be replaced when dependencies are built.
