file(REMOVE_RECURSE
  "CMakeFiles/fig14_accuracy.dir/fig14_accuracy.cc.o"
  "CMakeFiles/fig14_accuracy.dir/fig14_accuracy.cc.o.d"
  "fig14_accuracy"
  "fig14_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
