file(REMOVE_RECURSE
  "CMakeFiles/fig9_overhead.dir/fig9_overhead.cc.o"
  "CMakeFiles/fig9_overhead.dir/fig9_overhead.cc.o.d"
  "fig9_overhead"
  "fig9_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
