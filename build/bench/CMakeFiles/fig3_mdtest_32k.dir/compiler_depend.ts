# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_mdtest_32k.
