# Empty dependencies file for fig3_mdtest_32k.
# This may be replaced when dependencies are built.
