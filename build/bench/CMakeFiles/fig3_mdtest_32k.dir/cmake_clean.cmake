file(REMOVE_RECURSE
  "CMakeFiles/fig3_mdtest_32k.dir/fig3_mdtest_32k.cc.o"
  "CMakeFiles/fig3_mdtest_32k.dir/fig3_mdtest_32k.cc.o.d"
  "fig3_mdtest_32k"
  "fig3_mdtest_32k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mdtest_32k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
