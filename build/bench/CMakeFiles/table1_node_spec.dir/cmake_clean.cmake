file(REMOVE_RECURSE
  "CMakeFiles/table1_node_spec.dir/table1_node_spec.cc.o"
  "CMakeFiles/table1_node_spec.dir/table1_node_spec.cc.o.d"
  "table1_node_spec"
  "table1_node_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_node_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
