# Empty compiler generated dependencies file for table1_node_spec.
# This may be replaced when dependencies are built.
