
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_node_spec.cc" "bench/CMakeFiles/table1_node_spec.dir/table1_node_spec.cc.o" "gcc" "bench/CMakeFiles/table1_node_spec.dir/table1_node_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hvac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hvac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hvac_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hvac_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hvac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
