file(REMOVE_RECURSE
  "CMakeFiles/fig13_cache_split.dir/fig13_cache_split.cc.o"
  "CMakeFiles/fig13_cache_split.dir/fig13_cache_split.cc.o.d"
  "fig13_cache_split"
  "fig13_cache_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cache_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
