# Empty dependencies file for fig13_cache_split.
# This may be replaced when dependencies are built.
