# Empty dependencies file for fig4_mdtest_8m.
# This may be replaced when dependencies are built.
