file(REMOVE_RECURSE
  "CMakeFiles/fig4_mdtest_8m.dir/fig4_mdtest_8m.cc.o"
  "CMakeFiles/fig4_mdtest_8m.dir/fig4_mdtest_8m.cc.o.d"
  "fig4_mdtest_8m"
  "fig4_mdtest_8m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mdtest_8m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
