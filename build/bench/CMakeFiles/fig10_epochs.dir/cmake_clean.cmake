file(REMOVE_RECURSE
  "CMakeFiles/fig10_epochs.dir/fig10_epochs.cc.o"
  "CMakeFiles/fig10_epochs.dir/fig10_epochs.cc.o.d"
  "fig10_epochs"
  "fig10_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
