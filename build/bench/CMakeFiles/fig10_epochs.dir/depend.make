# Empty dependencies file for fig10_epochs.
# This may be replaced when dependencies are built.
