# Empty compiler generated dependencies file for hvac_server.
# This may be replaced when dependencies are built.
