file(REMOVE_RECURSE
  "CMakeFiles/hvac_server.dir/hvac_server.cc.o"
  "CMakeFiles/hvac_server.dir/hvac_server.cc.o.d"
  "CMakeFiles/hvac_server.dir/node_runtime.cc.o"
  "CMakeFiles/hvac_server.dir/node_runtime.cc.o.d"
  "libhvac_server.a"
  "libhvac_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
