file(REMOVE_RECURSE
  "libhvac_server.a"
)
