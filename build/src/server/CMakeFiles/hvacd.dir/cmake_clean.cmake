file(REMOVE_RECURSE
  "CMakeFiles/hvacd.dir/hvacd_main.cc.o"
  "CMakeFiles/hvacd.dir/hvacd_main.cc.o.d"
  "hvacd"
  "hvacd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvacd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
