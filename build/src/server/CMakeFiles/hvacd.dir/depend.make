# Empty dependencies file for hvacd.
# This may be replaced when dependencies are built.
