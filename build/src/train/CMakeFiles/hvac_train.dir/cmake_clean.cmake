file(REMOVE_RECURSE
  "CMakeFiles/hvac_train.dir/synthetic_data.cc.o"
  "CMakeFiles/hvac_train.dir/synthetic_data.cc.o.d"
  "CMakeFiles/hvac_train.dir/trainer.cc.o"
  "CMakeFiles/hvac_train.dir/trainer.cc.o.d"
  "libhvac_train.a"
  "libhvac_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
