# Empty dependencies file for hvac_train.
# This may be replaced when dependencies are built.
