file(REMOVE_RECURSE
  "libhvac_train.a"
)
