# Empty compiler generated dependencies file for hvac_workload.
# This may be replaced when dependencies are built.
