file(REMOVE_RECURSE
  "libhvac_workload.a"
)
