file(REMOVE_RECURSE
  "CMakeFiles/hvac_workload.dir/dataset_spec.cc.o"
  "CMakeFiles/hvac_workload.dir/dataset_spec.cc.o.d"
  "CMakeFiles/hvac_workload.dir/file_tree.cc.o"
  "CMakeFiles/hvac_workload.dir/file_tree.cc.o.d"
  "libhvac_workload.a"
  "libhvac_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
