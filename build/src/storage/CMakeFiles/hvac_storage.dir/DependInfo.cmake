
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/local_store.cc" "src/storage/CMakeFiles/hvac_storage.dir/local_store.cc.o" "gcc" "src/storage/CMakeFiles/hvac_storage.dir/local_store.cc.o.d"
  "/root/repo/src/storage/pfs_backend.cc" "src/storage/CMakeFiles/hvac_storage.dir/pfs_backend.cc.o" "gcc" "src/storage/CMakeFiles/hvac_storage.dir/pfs_backend.cc.o.d"
  "/root/repo/src/storage/posix_file.cc" "src/storage/CMakeFiles/hvac_storage.dir/posix_file.cc.o" "gcc" "src/storage/CMakeFiles/hvac_storage.dir/posix_file.cc.o.d"
  "/root/repo/src/storage/throttle.cc" "src/storage/CMakeFiles/hvac_storage.dir/throttle.cc.o" "gcc" "src/storage/CMakeFiles/hvac_storage.dir/throttle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hvac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
