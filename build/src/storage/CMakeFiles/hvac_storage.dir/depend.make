# Empty dependencies file for hvac_storage.
# This may be replaced when dependencies are built.
