file(REMOVE_RECURSE
  "CMakeFiles/hvac_storage.dir/local_store.cc.o"
  "CMakeFiles/hvac_storage.dir/local_store.cc.o.d"
  "CMakeFiles/hvac_storage.dir/pfs_backend.cc.o"
  "CMakeFiles/hvac_storage.dir/pfs_backend.cc.o.d"
  "CMakeFiles/hvac_storage.dir/posix_file.cc.o"
  "CMakeFiles/hvac_storage.dir/posix_file.cc.o.d"
  "CMakeFiles/hvac_storage.dir/throttle.cc.o"
  "CMakeFiles/hvac_storage.dir/throttle.cc.o.d"
  "libhvac_storage.a"
  "libhvac_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
