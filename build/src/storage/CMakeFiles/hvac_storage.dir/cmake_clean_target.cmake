file(REMOVE_RECURSE
  "libhvac_storage.a"
)
