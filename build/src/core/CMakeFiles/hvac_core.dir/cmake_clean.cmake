file(REMOVE_RECURSE
  "CMakeFiles/hvac_core.dir/cache_manager.cc.o"
  "CMakeFiles/hvac_core.dir/cache_manager.cc.o.d"
  "CMakeFiles/hvac_core.dir/data_mover.cc.o"
  "CMakeFiles/hvac_core.dir/data_mover.cc.o.d"
  "CMakeFiles/hvac_core.dir/eviction.cc.o"
  "CMakeFiles/hvac_core.dir/eviction.cc.o.d"
  "CMakeFiles/hvac_core.dir/fd_table.cc.o"
  "CMakeFiles/hvac_core.dir/fd_table.cc.o.d"
  "CMakeFiles/hvac_core.dir/metrics.cc.o"
  "CMakeFiles/hvac_core.dir/metrics.cc.o.d"
  "CMakeFiles/hvac_core.dir/placement.cc.o"
  "CMakeFiles/hvac_core.dir/placement.cc.o.d"
  "libhvac_core.a"
  "libhvac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
