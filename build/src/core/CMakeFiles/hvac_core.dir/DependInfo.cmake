
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_manager.cc" "src/core/CMakeFiles/hvac_core.dir/cache_manager.cc.o" "gcc" "src/core/CMakeFiles/hvac_core.dir/cache_manager.cc.o.d"
  "/root/repo/src/core/data_mover.cc" "src/core/CMakeFiles/hvac_core.dir/data_mover.cc.o" "gcc" "src/core/CMakeFiles/hvac_core.dir/data_mover.cc.o.d"
  "/root/repo/src/core/eviction.cc" "src/core/CMakeFiles/hvac_core.dir/eviction.cc.o" "gcc" "src/core/CMakeFiles/hvac_core.dir/eviction.cc.o.d"
  "/root/repo/src/core/fd_table.cc" "src/core/CMakeFiles/hvac_core.dir/fd_table.cc.o" "gcc" "src/core/CMakeFiles/hvac_core.dir/fd_table.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/hvac_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/hvac_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/hvac_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/hvac_core.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hvac_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hvac_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
