# Empty compiler generated dependencies file for hvac_core.
# This may be replaced when dependencies are built.
