file(REMOVE_RECURSE
  "libhvac_core.a"
)
