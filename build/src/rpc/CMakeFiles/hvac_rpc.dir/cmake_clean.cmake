file(REMOVE_RECURSE
  "CMakeFiles/hvac_rpc.dir/async_client.cc.o"
  "CMakeFiles/hvac_rpc.dir/async_client.cc.o.d"
  "CMakeFiles/hvac_rpc.dir/rpc_client.cc.o"
  "CMakeFiles/hvac_rpc.dir/rpc_client.cc.o.d"
  "CMakeFiles/hvac_rpc.dir/rpc_server.cc.o"
  "CMakeFiles/hvac_rpc.dir/rpc_server.cc.o.d"
  "CMakeFiles/hvac_rpc.dir/socket.cc.o"
  "CMakeFiles/hvac_rpc.dir/socket.cc.o.d"
  "libhvac_rpc.a"
  "libhvac_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
