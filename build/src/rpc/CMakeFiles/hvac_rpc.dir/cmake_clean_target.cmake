file(REMOVE_RECURSE
  "libhvac_rpc.a"
)
