# Empty compiler generated dependencies file for hvac_rpc.
# This may be replaced when dependencies are built.
