
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/async_client.cc" "src/rpc/CMakeFiles/hvac_rpc.dir/async_client.cc.o" "gcc" "src/rpc/CMakeFiles/hvac_rpc.dir/async_client.cc.o.d"
  "/root/repo/src/rpc/rpc_client.cc" "src/rpc/CMakeFiles/hvac_rpc.dir/rpc_client.cc.o" "gcc" "src/rpc/CMakeFiles/hvac_rpc.dir/rpc_client.cc.o.d"
  "/root/repo/src/rpc/rpc_server.cc" "src/rpc/CMakeFiles/hvac_rpc.dir/rpc_server.cc.o" "gcc" "src/rpc/CMakeFiles/hvac_rpc.dir/rpc_server.cc.o.d"
  "/root/repo/src/rpc/socket.cc" "src/rpc/CMakeFiles/hvac_rpc.dir/socket.cc.o" "gcc" "src/rpc/CMakeFiles/hvac_rpc.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hvac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
