# Empty dependencies file for hvacctl.
# This may be replaced when dependencies are built.
