
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/hvacctl_main.cc" "src/client/CMakeFiles/hvacctl.dir/hvacctl_main.cc.o" "gcc" "src/client/CMakeFiles/hvacctl.dir/hvacctl_main.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/hvac_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hvac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/hvac_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hvac_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hvac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
