file(REMOVE_RECURSE
  "CMakeFiles/hvacctl.dir/hvacctl_main.cc.o"
  "CMakeFiles/hvacctl.dir/hvacctl_main.cc.o.d"
  "hvacctl"
  "hvacctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvacctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
