file(REMOVE_RECURSE
  "CMakeFiles/hvac_client.dir/hvac_client.cc.o"
  "CMakeFiles/hvac_client.dir/hvac_client.cc.o.d"
  "libhvac_client.a"
  "libhvac_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
