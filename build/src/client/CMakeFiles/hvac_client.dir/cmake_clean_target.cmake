file(REMOVE_RECURSE
  "libhvac_client.a"
)
