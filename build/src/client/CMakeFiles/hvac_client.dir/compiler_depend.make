# Empty compiler generated dependencies file for hvac_client.
# This may be replaced when dependencies are built.
