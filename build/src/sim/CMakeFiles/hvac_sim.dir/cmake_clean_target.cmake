file(REMOVE_RECURSE
  "libhvac_sim.a"
)
