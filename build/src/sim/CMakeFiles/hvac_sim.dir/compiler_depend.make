# Empty compiler generated dependencies file for hvac_sim.
# This may be replaced when dependencies are built.
