file(REMOVE_RECURSE
  "CMakeFiles/hvac_sim.dir/backends.cc.o"
  "CMakeFiles/hvac_sim.dir/backends.cc.o.d"
  "CMakeFiles/hvac_sim.dir/dl_job.cc.o"
  "CMakeFiles/hvac_sim.dir/dl_job.cc.o.d"
  "CMakeFiles/hvac_sim.dir/mdtest.cc.o"
  "CMakeFiles/hvac_sim.dir/mdtest.cc.o.d"
  "CMakeFiles/hvac_sim.dir/summit_config.cc.o"
  "CMakeFiles/hvac_sim.dir/summit_config.cc.o.d"
  "libhvac_sim.a"
  "libhvac_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
