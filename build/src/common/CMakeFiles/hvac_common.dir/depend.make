# Empty dependencies file for hvac_common.
# This may be replaced when dependencies are built.
