file(REMOVE_RECURSE
  "libhvac_common.a"
)
