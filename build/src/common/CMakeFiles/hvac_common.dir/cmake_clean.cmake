file(REMOVE_RECURSE
  "CMakeFiles/hvac_common.dir/env.cc.o"
  "CMakeFiles/hvac_common.dir/env.cc.o.d"
  "CMakeFiles/hvac_common.dir/hash.cc.o"
  "CMakeFiles/hvac_common.dir/hash.cc.o.d"
  "CMakeFiles/hvac_common.dir/log.cc.o"
  "CMakeFiles/hvac_common.dir/log.cc.o.d"
  "CMakeFiles/hvac_common.dir/result.cc.o"
  "CMakeFiles/hvac_common.dir/result.cc.o.d"
  "CMakeFiles/hvac_common.dir/stats.cc.o"
  "CMakeFiles/hvac_common.dir/stats.cc.o.d"
  "CMakeFiles/hvac_common.dir/thread_pool.cc.o"
  "CMakeFiles/hvac_common.dir/thread_pool.cc.o.d"
  "libhvac_common.a"
  "libhvac_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
