file(REMOVE_RECURSE
  "CMakeFiles/hvac_intercept.dir/intercept.cc.o"
  "CMakeFiles/hvac_intercept.dir/intercept.cc.o.d"
  "libhvac_intercept.pdb"
  "libhvac_intercept.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_intercept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
