# Empty dependencies file for hvac_intercept.
# This may be replaced when dependencies are built.
