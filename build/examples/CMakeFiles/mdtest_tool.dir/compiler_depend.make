# Empty compiler generated dependencies file for mdtest_tool.
# This may be replaced when dependencies are built.
