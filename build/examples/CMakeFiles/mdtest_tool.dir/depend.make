# Empty dependencies file for mdtest_tool.
# This may be replaced when dependencies are built.
