file(REMOVE_RECURSE
  "CMakeFiles/mdtest_tool.dir/mdtest_tool.cpp.o"
  "CMakeFiles/mdtest_tool.dir/mdtest_tool.cpp.o.d"
  "mdtest_tool"
  "mdtest_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdtest_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
