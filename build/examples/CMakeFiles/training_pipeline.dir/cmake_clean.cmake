file(REMOVE_RECURSE
  "CMakeFiles/training_pipeline.dir/training_pipeline.cpp.o"
  "CMakeFiles/training_pipeline.dir/training_pipeline.cpp.o.d"
  "training_pipeline"
  "training_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
