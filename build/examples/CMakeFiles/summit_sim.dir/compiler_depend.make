# Empty compiler generated dependencies file for summit_sim.
# This may be replaced when dependencies are built.
