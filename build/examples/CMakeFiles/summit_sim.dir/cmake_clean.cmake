file(REMOVE_RECURSE
  "CMakeFiles/summit_sim.dir/summit_sim.cpp.o"
  "CMakeFiles/summit_sim.dir/summit_sim.cpp.o.d"
  "summit_sim"
  "summit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
