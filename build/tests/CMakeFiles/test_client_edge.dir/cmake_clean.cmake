file(REMOVE_RECURSE
  "CMakeFiles/test_client_edge.dir/test_client_edge.cc.o"
  "CMakeFiles/test_client_edge.dir/test_client_edge.cc.o.d"
  "test_client_edge"
  "test_client_edge.pdb"
  "test_client_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
