# Empty compiler generated dependencies file for test_client_edge.
# This may be replaced when dependencies are built.
