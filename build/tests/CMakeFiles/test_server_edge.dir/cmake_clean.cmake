file(REMOVE_RECURSE
  "CMakeFiles/test_server_edge.dir/test_server_edge.cc.o"
  "CMakeFiles/test_server_edge.dir/test_server_edge.cc.o.d"
  "test_server_edge"
  "test_server_edge.pdb"
  "test_server_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
