# Empty dependencies file for test_server_edge.
# This may be replaced when dependencies are built.
