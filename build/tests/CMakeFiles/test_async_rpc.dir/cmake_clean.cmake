file(REMOVE_RECURSE
  "CMakeFiles/test_async_rpc.dir/test_async_rpc.cc.o"
  "CMakeFiles/test_async_rpc.dir/test_async_rpc.cc.o.d"
  "test_async_rpc"
  "test_async_rpc.pdb"
  "test_async_rpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
