# Empty dependencies file for test_workload_train.
# This may be replaced when dependencies are built.
