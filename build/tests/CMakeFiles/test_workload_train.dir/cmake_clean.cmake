file(REMOVE_RECURSE
  "CMakeFiles/test_workload_train.dir/test_workload_train.cc.o"
  "CMakeFiles/test_workload_train.dir/test_workload_train.cc.o.d"
  "test_workload_train"
  "test_workload_train.pdb"
  "test_workload_train[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
