
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/test_property.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/test_property.dir/test_property.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/hvac_server.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/hvac_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hvac_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hvac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/hvac_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hvac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hvac_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hvac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
