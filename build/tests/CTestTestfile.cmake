# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_workload_train[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_segment[1]_include.cmake")
include("/root/repo/build/tests/test_async_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_client_edge[1]_include.cmake")
include("/root/repo/build/tests/test_server_edge[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_daemon[1]_include.cmake")
include("/root/repo/build/tests/test_intercept[1]_include.cmake")
