#!/usr/bin/env python3
"""Render paper-style figures from bench_output.txt.

Usage:
    for b in build/bench/*; do $b; done | tee bench_output.txt
    python3 scripts/plot_figures.py bench_output.txt out/

Parses the fixed-width tables the fig* benches print and emits one PNG
per figure (matplotlib required; the script degrades to CSV dumps when
it is unavailable). This is a convenience for eyeballing shapes against
the paper's plots — the tables themselves are the ground truth.
"""
import os
import re
import sys


def parse_sections(path):
    """Splits bench output into {bench_name: [lines]}."""
    sections = {}
    name = None
    with open(path) as f:
        for line in f:
            m = re.match(r"^===== (\S+) =====", line)
            if m:
                name = m.group(1)
                sections[name] = []
            elif name is not None:
                sections[name].append(line.rstrip("\n"))
    return sections


def parse_table(lines, first_col_numeric=True):
    """Parses a whitespace table: header row then numeric rows."""
    header = None
    rows = []
    for line in lines:
        cells = line.split()
        if not cells:
            continue
        if header is None:
            # Heuristic: the header is the first row whose first cell
            # is not a number.
            try:
                float(cells[0])
            except ValueError:
                if len(cells) >= 2 and not line.startswith("="):
                    header = cells
                continue
            header = None
        row = []
        for c in cells:
            try:
                row.append(float(c.rstrip("%x")))
            except ValueError:
                break  # trailing annotation column ("winner" etc.)
        if len(row) >= 2 and first_col_numeric:
            rows.append(row)
    return header, rows


def emit(fig_name, header, rows, outdir, logx=False, logy=False,
         xlabel="", ylabel="", title=""):
    csv_path = os.path.join(outdir, fig_name + ".csv")
    with open(csv_path, "w") as f:
        if header:
            f.write(",".join(header) + "\n")
        for row in rows:
            f.write(",".join(str(v) for v in row) + "\n")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print(f"  {fig_name}: matplotlib missing, wrote {csv_path} only")
        return
    if not rows or not header:
        return
    xs = [r[0] for r in rows]
    plt.figure(figsize=(6, 4))
    ncols = min(len(header) - 1, min(len(r) for r in rows) - 1)
    for col in range(1, 1 + ncols):
        ys = [r[col] for r in rows]
        plt.plot(xs, ys, marker="o", label=header[col])
    if logx:
        plt.xscale("log", base=2)
    if logy:
        plt.yscale("log")
    plt.xlabel(xlabel)
    plt.ylabel(ylabel)
    plt.title(title or fig_name)
    plt.legend(fontsize=8)
    plt.grid(True, alpha=0.3)
    plt.tight_layout()
    png = os.path.join(outdir, fig_name + ".png")
    plt.savefig(png, dpi=130)
    plt.close()
    print(f"  wrote {png}")


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    outdir = sys.argv[2] if len(sys.argv) > 2 else "figures"
    os.makedirs(outdir, exist_ok=True)
    sections = parse_sections(src)

    plots = {
        "fig3_mdtest_32k": dict(logx=True, logy=True, xlabel="nodes",
                                ylabel="transactions/s"),
        "fig4_mdtest_8m": dict(logx=True, logy=True, xlabel="nodes",
                               ylabel="transactions/s"),
        "fig9_overhead": dict(xlabel="nodes", ylabel="%"),
        "fig10_epochs": dict(xlabel="epochs", ylabel="training (min)"),
        "fig12_batch_size": dict(xlabel="batch size",
                                 ylabel="training (min)"),
        "fig15_load_distribution": dict(xlabel="nodes",
                                        ylabel="ratio to ideal"),
    }
    for name, lines in sections.items():
        if name not in plots:
            continue
        header, rows = parse_table(lines)
        if rows:
            emit(name, header, rows, outdir, **plots[name])

    # fig8 has one table per application.
    if "fig8_scaling" in sections:
        app = None
        block = []
        for line in sections["fig8_scaling"] + ["(end)"]:
            m = re.match(r"^\((\w+)\)", line)
            if m:
                if app and block:
                    header, rows = parse_table(block)
                    emit(f"fig8_{app}", header, rows, outdir, logx=True,
                         logy=True, xlabel="nodes",
                         ylabel="training (min)",
                         title=f"Fig 8 — {app}")
                app = m.group(1)
                block = []
            else:
                block.append(line)
    print("done")


if __name__ == "__main__":
    main()
