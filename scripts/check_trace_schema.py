#!/usr/bin/env python3
"""Validate an exported trace.json against the Chrome trace-event schema.

    scripts/check_trace_schema.py trace.json [--min-events N]

Checks the subset of the format that `hvacctl trace --chrome` emits
(and chrome://tracing / ui.perfetto.dev require to load the file):

  - top level: object with a "traceEvents" array
  - every event: dict with string "name", "ph" in {"X", "M"},
    integer "pid"/"tid", and an "args" object
  - "X" (complete) events: numeric "ts" and "dur" >= 0, plus the hvac
    ids (16-hex-digit "trace_id", integer "span_id"/"parent_id")
  - "M" (metadata) events: process_name with an args.name string
  - at least --min-events "X" events overall (default 1) — an empty
    export from a traced run means the dump pipeline is broken

stdlib only; exits nonzero with one line per violation.
"""

import argparse
import json
import re
import sys

TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")


def check(doc, min_events):
    errors = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ['missing or non-array "traceEvents"']
    x_events = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing string name")
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: missing integer {key}")
        args = ev.get("args")
        if not isinstance(args, dict):
            errors.append(f"{where}: missing args object")
            continue
        if ph == "M":
            if ev.get("name") == "process_name" and not isinstance(
                    args.get("name"), str):
                errors.append(f"{where}: process_name without args.name")
            continue
        x_events += 1
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                errors.append(f"{where}: bad {key} {v!r}")
        tid = args.get("trace_id")
        if not isinstance(tid, str) or not TRACE_ID_RE.match(tid):
            errors.append(f"{where}: bad args.trace_id {tid!r}")
        for key in ("span_id", "parent_id"):
            if not isinstance(args.get(key), int):
                errors.append(f"{where}: missing integer args.{key}")
    if x_events < min_events:
        errors.append(
            f"only {x_events} X event(s), expected >= {min_events}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace_json")
    parser.add_argument("--min-events", type=int, default=1)
    args = parser.parse_args()
    try:
        with open(args.trace_json) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.trace_json}: {e}", file=sys.stderr)
        return 1
    errors = check(doc, args.min_events)
    for e in errors:
        print(f"{args.trace_json}: {e}", file=sys.stderr)
    if not errors:
        events = sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X")
        print(f"{args.trace_json}: OK ({events} spans)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
