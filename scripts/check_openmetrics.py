#!/usr/bin/env python3
"""Validate an HVAC OpenMetrics scrape (and optionally the client stall dump).

Usage:
    check_openmetrics.py <url-or-file> [--out FILE] [--stats STATS_JSON]
                         [--tolerance 0.10]

Grammar checks (the subset of the OpenMetrics text format the exporter
promises):
  * every `# TYPE` line is immediately preceded by `# HELP` for the same
    family name;
  * every sample line belongs to the family declared above it (counter
    samples use the `_total` suffix, histograms `_bucket`/`_sum`/`_count`);
  * histogram `_bucket` series are cumulative (non-decreasing in le order)
    and end at le="+Inf" with a value equal to `_count`;
  * the exposition ends with `# EOF`.

Required families prove every metrics-frame section renders, the stall
section included. With --stats, the client's HVAC_STATS_FILE dump is
cross-checked: the per-epoch stall buckets must sum to the shim's
wall-clock read time within --tolerance (the buckets are a partition of
each intercepted read, so anything bigger means attribution lost time).
"""
import argparse
import json
import re
import sys
import urllib.request

REQUIRED_FAMILIES = [
    "hvac_cache_hits",
    "hvac_cache_bytes_from_cache",
    "hvac_open_fds",
    "hvac_handle_cache_hits",
    "hvac_buffer_pool_leases",
    "hvac_readahead_issued",
    "hvac_resilience_retries",
    "hvac_zerocopy_sendfile_bytes",
    "hvac_meta_cache_hits",
    "hvac_trace_emitted",
    "hvac_reactor_requests",
    "hvac_write_back_writes",
    "hvac_prefetch_planned",
    "hvac_stall_reads",
    "hvac_stall_seconds",
    "hvac_op_latency_seconds",
]

STALL_BUCKETS = ["local_hit", "remote_rpc", "pfs_wait", "backpressure",
                 "retry"]


def fetch(source):
    if source.startswith("http://") or source.startswith("https://"):
        with urllib.request.urlopen(source, timeout=10) as resp:
            ctype = resp.headers.get("Content-Type", "")
            if "application/openmetrics-text" not in ctype:
                fail(f"unexpected content type: {ctype!r}")
            return resp.read().decode("utf-8")
    with open(source, "r", encoding="utf-8") as f:
        return f.read()


def fail(msg):
    print(f"check_openmetrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def metric_name(line):
    """Family-qualified sample name: text before the first '{' or ' '."""
    m = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
    return m.group(1) if m else ""


def check_grammar(text):
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        fail("exposition does not end with '# EOF'")

    families = {}  # name -> type
    current = None  # (name, type)
    samples = {}  # name -> [line]
    for i, line in enumerate(lines[:-1]):
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                fail(f"malformed TYPE line: {line!r}")
            name, ftype = parts[2], parts[3]
            prev = lines[i - 1] if i > 0 else ""
            if not prev.startswith(f"# HELP {name} "):
                fail(f"TYPE for {name} not preceded by its HELP line")
            if name in families:
                fail(f"family {name} declared twice")
            families[name] = ftype
            current = (name, ftype)
            continue
        if line.startswith("#"):
            fail(f"unexpected comment line: {line!r}")
        if current is None:
            fail(f"sample before any family declaration: {line!r}")
        name, ftype = current
        sample = metric_name(line)
        expected = {
            "counter": (name + "_total",),
            "gauge": (name,),
            "histogram": (name + "_bucket", name + "_sum", name + "_count"),
        }.get(ftype)
        if expected is None:
            fail(f"unknown family type {ftype!r} for {name}")
        if sample not in expected:
            fail(f"sample {sample!r} does not belong to {ftype} family "
                 f"{name}")
        samples.setdefault(name, []).append(line)

    for name in REQUIRED_FAMILIES:
        if name not in families:
            fail(f"required family missing: {name}")

    # Histogram series: cumulative per label set, +Inf == _count.
    for name, ftype in families.items():
        if ftype != "histogram":
            continue
        series = {}  # label-key -> [(le, value)]
        counts = {}
        for line in samples.get(name, []):
            sample = metric_name(line)
            value = float(line.rsplit(" ", 1)[1])
            labels = line[len(sample):].rsplit(" ", 1)[0]
            if sample.endswith("_bucket"):
                m = re.search(r'le="([^"]*)"', labels)
                if not m:
                    fail(f"bucket sample without le label: {line!r}")
                key = re.sub(r',?le="[^"]*"', "", labels)
                series.setdefault(key, []).append((m.group(1), value))
            elif sample.endswith("_count"):
                counts[labels] = value
        for key, buckets in series.items():
            values = [v for _, v in buckets]
            if values != sorted(values):
                fail(f"{name}{key}: bucket series not cumulative")
            if buckets[-1][0] != "+Inf":
                fail(f"{name}{key}: last bucket is not le=\"+Inf\"")
            if key in counts and buckets[-1][1] != counts[key]:
                fail(f"{name}{key}: +Inf bucket {buckets[-1][1]} != "
                     f"_count {counts[key]}")

    # Stall wall time renders one sample per bucket label.
    stall = "\n".join(samples.get("hvac_stall_seconds", []))
    for bucket in STALL_BUCKETS:
        if f'bucket="{bucket}"' not in stall:
            fail(f"hvac_stall_seconds missing bucket={bucket!r}")
    return families


def check_stats(path, tolerance):
    with open(path, "r", encoding="utf-8") as f:
        stats = json.load(f)
    stall = stats.get("stall")
    if stall is None:
        fail(f"{path}: no 'stall' object in the client stats dump")
    wall = stall.get("shim_read_wall_ns", 0)
    reads = stall.get("shim_reads", 0)
    if reads == 0 or wall == 0:
        fail(f"{path}: shim saw no reads (reads={reads}, wall={wall})")
    bucket_sum = 0
    attributed_reads = 0
    for epoch in stall.get("epochs", []):
        attributed_reads += epoch.get("reads", 0)
        for key in ("local_hit_ns", "remote_rpc_ns", "pfs_wait_ns",
                    "backpressure_ns", "retry_ns"):
            bucket_sum += epoch.get(key, 0)
    if attributed_reads == 0:
        fail(f"{path}: stall epochs attribute zero reads")
    # A small absolute floor keeps sub-millisecond runs from flapping on
    # fixed per-read bookkeeping outside the attribution scope.
    slack = max(tolerance * wall, 2e6)
    if abs(wall - bucket_sum) > slack:
        fail(f"{path}: stall buckets sum to {bucket_sum} ns but the shim "
             f"measured {wall} ns wall ({abs(wall - bucket_sum)} ns apart, "
             f"allowed {slack:.0f})")
    print(f"check_openmetrics: stall attribution OK "
          f"({attributed_reads}/{reads} reads, buckets {bucket_sum} ns vs "
          f"wall {wall} ns)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("source", help="scrape URL or file")
    ap.add_argument("--out", help="also write the scrape body here")
    ap.add_argument("--stats", help="client HVAC_STATS_FILE dump to "
                                    "cross-check stall attribution")
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args()

    text = fetch(args.source)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    families = check_grammar(text)
    print(f"check_openmetrics: grammar OK ({len(families)} families)")
    if args.stats:
        check_stats(args.stats, args.tolerance)


if __name__ == "__main__":
    main()
