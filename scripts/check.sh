#!/usr/bin/env bash
# Tier-1 verification for the HVAC repo.
#
#   scripts/check.sh            build + ctest (the gate every PR must pass)
#   scripts/check.sh asan       the same under -DHVAC_SANITIZE=address
#   scripts/check.sh tsan       the same under -DHVAC_SANITIZE=thread
#                               (concurrency suites only — full TSan runs
#                               are slow; widen TSAN_FILTER to taste)
#   scripts/check.sh bench      run bench/micro_rpc, emit BENCH_rpc.json
#                               (BENCH_OUT overrides the output path,
#                               BENCH_REPS the repetition count)
#   scripts/check.sh chaos      the resilience suites (fault injection,
#                               circuit breaker, deadlines, backpressure,
#                               drain, daemon-kill chaos) under ASan
#   scripts/check.sh trace      end-to-end tracing smoke: hvacd under
#                               HVAC_TRACE=1, traffic via hvacctl, dump
#                               with `hvacctl trace --chrome` and validate
#                               the JSON against the Chrome trace-event
#                               schema (TRACE_OUT overrides the path)
#
# Sanitizer builds live in their own build dirs (build-asan/, build-tsan/)
# so they never contaminate the primary build/.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-tier1}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# The concurrency-sensitive suites worth a TSan pass: the pinned-handle
# cache, the buffer pool, the RPC stack (reactors + work stealing) and
# the client read path.
TSAN_SUITES="test_storage test_common test_rpc test_async_rpc \
test_client_edge test_stress test_trace test_reactor"

case "$MODE" in
  tier1)
    cmake -B build -S .
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
    ;;
  asan)
    cmake -B build-asan -S . -DHVAC_SANITIZE=address
    cmake --build build-asan -j "$JOBS"
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
    ;;
  tsan)
    cmake -B build-tsan -S . -DHVAC_SANITIZE=thread
    # shellcheck disable=SC2086
    cmake --build build-tsan -j "$JOBS" --target $TSAN_SUITES
    for t in $TSAN_SUITES; do
      echo "== tsan: $t"
      "./build-tsan/tests/$t"
    done
    ;;
  chaos)
    # The resilience surface under ASan: the fault-injection harness,
    # breaker transitions, call deadlines, shedding/drain, and the
    # daemon-kill chaos scenarios, plus the channel-recovery edge
    # cases in the async-RPC and client-edge suites.
    cmake -B build-asan -S . -DHVAC_SANITIZE=address
    cmake --build build-asan -j "$JOBS" \
      --target test_chaos test_async_rpc test_client_edge test_reactor
    # HVAC_REACTORS=4 forces the sharded core under every suite here,
    # so shedding/drain/breaker interop is exercised multi-reactor.
    HVAC_REACTORS=4 ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R "Fault|Breaker|CallDeadline|Backpressure|Drain|Chaos|HostileServer|AsyncRpcFixture"
    ;;
  trace)
    cmake -B build -S .
    cmake --build build -j "$JOBS" --target hvacd hvacctl
    TRACE_OUT="${TRACE_OUT:-trace.json}"
    TMP="$(mktemp -d)"
    HVACD_PID=""
    cleanup() {
      if [ -n "$HVACD_PID" ]; then
        kill "$HVACD_PID" 2>/dev/null || true
        wait "$HVACD_PID" 2>/dev/null || true
      fi
      rm -rf "$TMP"
    }
    trap cleanup EXIT
    mkdir -p "$TMP/pfs"
    for i in 0 1 2 3; do
      head -c 65536 /dev/urandom > "$TMP/pfs/f$i.bin"
    done
    HVAC_TRACE=1 HVAC_TRACE_RING=8192 ./build/src/server/hvacd \
      --pfs-root "$TMP/pfs" --cache-dir "$TMP/cache" \
      --port-file "$TMP/ports" &
    HVACD_PID=$!
    for _ in $(seq 50); do
      [ -s "$TMP/ports" ] && break
      sleep 0.2
    done
    [ -s "$TMP/ports" ] || { echo "hvacd never published ports" >&2; exit 1; }
    EP="$(cat "$TMP/ports")"
    # Drive the miss path (warm), the metadata path (stat) and a second
    # warm (hit) so the dump carries dispatch, mover and send spans.
    for i in 0 1 2 3; do
      ./build/src/client/hvacctl warm "$EP" "f$i.bin" > /dev/null
      ./build/src/client/hvacctl stat "$EP" "f$i.bin" > /dev/null
      ./build/src/client/hvacctl warm "$EP" "f$i.bin" > /dev/null
    done
    ./build/src/client/hvacctl trace "$EP" --chrome > "$TRACE_OUT"
    python3 scripts/check_trace_schema.py "$TRACE_OUT" --min-events 8
    ;;
  bench)
    cmake -B build -S .
    cmake --build build -j "$JOBS" --target micro_rpc
    # Stamp the JSON with the commit it measured so scripts/bench_compare.py
    # (and anyone reading an uploaded artifact) can tell results apart.
    GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    GIT_DATE="$(git show -s --format=%cI HEAD 2>/dev/null || echo unknown)"
    ./build/bench/micro_rpc \
      --benchmark_out="${BENCH_OUT:-BENCH_rpc.json}" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-3}" \
      --benchmark_report_aggregates_only=true \
      --benchmark_context=git_sha="$GIT_SHA" \
      --benchmark_context=git_date="$GIT_DATE"
    ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|bench|chaos|trace]" >&2
    exit 2
    ;;
esac
