#!/usr/bin/env bash
# Tier-1 verification for the HVAC repo.
#
#   scripts/check.sh            build + ctest (the gate every PR must pass)
#                               (CTEST_SHARD=K CTEST_TOTAL_SHARDS=N runs
#                               every N-th test starting at K — CI splits
#                               tier1 across shards with this)
#   scripts/check.sh asan       the same under -DHVAC_SANITIZE=address
#   scripts/check.sh tsan       the same under -DHVAC_SANITIZE=thread
#                               (concurrency suites only — full TSan runs
#                               are slow; widen TSAN_FILTER to taste)
#   scripts/check.sh bench      run bench/micro_rpc, emit BENCH_rpc.json
#                               (BENCH_OUT overrides the output path,
#                               BENCH_REPS the repetition count)
#   scripts/check.sh chaos      the resilience suites (fault injection,
#                               circuit breaker, deadlines, backpressure,
#                               drain, daemon-kill chaos) under ASan
#   scripts/check.sh packed     packed-container smoke under ASan: gen a
#                               synthetic small-file tree, hvacctl pack,
#                               DELETE the originals, read every sample
#                               back through the LD_PRELOAD shim and
#                               byte-compare against the manifest, then
#                               assert the zero-per-file-open invariants
#                               from server metrics (PACKED_FILES
#                               overrides the tree size, default 10000)
#   scripts/check.sh prefetch   clairvoyant-prefetch smoke: gen a tree,
#                               write the access plan (file order), read
#                               the whole stream through the shim with
#                               HVAC_PREFETCH_PLAN/DEPTH set, then
#                               assert >90% of accesses were warmed
#                               ahead of the reader from the client's
#                               HVAC_STATS_FILE dump (PREFETCH_FILES
#                               overrides the tree size, default 512)
#   scripts/check.sh trace      end-to-end tracing smoke: hvacd under
#                               HVAC_TRACE=1, traffic via hvacctl, dump
#                               with `hvacctl trace --chrome` and validate
#                               the JSON against the Chrome trace-event
#                               schema (TRACE_OUT overrides the path)
#   scripts/check.sh telemetry  telemetry-plane smoke: hvacd with the
#                               time-series collector and the OpenMetrics
#                               exporter on (HVAC_TS_INTERVAL_MS /
#                               HVAC_PROM_PORT=0), shim traffic with a
#                               client stats dump, then validate the
#                               scrape grammar + required families and
#                               cross-check the per-epoch stall buckets
#                               against the shim's wall-clock read time
#                               (TELEMETRY_FILES overrides the tree
#                               size, default 256), and smoke
#                               `hvacctl top`
#   scripts/check.sh write-chaos  the checkpoint write path under ASan:
#                               journal framing + ENOSPC-shed suites,
#                               fault injection over the four write
#                               sites (journal_append, journal_fsync,
#                               store_write, pfs_write), and the
#                               kill -9 / journal-replay crash leg
#
# Sanitizer builds live in their own build dirs (build-asan/, build-tsan/)
# so they never contaminate the primary build/.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-tier1}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# The concurrency-sensitive suites worth a TSan pass: the pinned-handle
# cache, the buffer pool, the RPC stack (reactors + work stealing) and
# the client read path.
TSAN_SUITES="test_storage test_common test_rpc test_async_rpc \
test_client_edge test_stress test_trace test_reactor test_write_journal \
test_prefetch"

case "$MODE" in
  tier1)
    cmake -B build -S .
    cmake --build build -j "$JOBS"
    if [ -n "${CTEST_SHARD:-}" ]; then
      # ctest -I Start,End,Stride: shard K of N runs tests K, K+N, ...
      # Every shard still builds everything; only execution is split.
      ctest --test-dir build --output-on-failure -j "$JOBS" \
        -I "${CTEST_SHARD},,${CTEST_TOTAL_SHARDS:-2}"
    else
      ctest --test-dir build --output-on-failure -j "$JOBS"
    fi
    ;;
  asan)
    cmake -B build-asan -S . -DHVAC_SANITIZE=address
    cmake --build build-asan -j "$JOBS"
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
    ;;
  tsan)
    cmake -B build-tsan -S . -DHVAC_SANITIZE=thread
    # shellcheck disable=SC2086
    cmake --build build-tsan -j "$JOBS" --target $TSAN_SUITES
    for t in $TSAN_SUITES; do
      echo "== tsan: $t"
      "./build-tsan/tests/$t"
    done
    ;;
  chaos)
    # The resilience surface under ASan: the fault-injection harness,
    # breaker transitions, call deadlines, shedding/drain, and the
    # daemon-kill chaos scenarios, plus the channel-recovery edge
    # cases in the async-RPC and client-edge suites.
    cmake -B build-asan -S . -DHVAC_SANITIZE=address
    cmake --build build-asan -j "$JOBS" \
      --target test_chaos test_async_rpc test_client_edge test_reactor
    # HVAC_REACTORS=4 forces the sharded core under every suite here,
    # so shedding/drain/breaker interop is exercised multi-reactor.
    HVAC_REACTORS=4 ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R "Fault|Breaker|CallDeadline|Backpressure|Drain|Chaos|HostileServer|AsyncRpcFixture"
    ;;
  packed)
    # Packed-container smoke: the whole FanStore-style flow — generate,
    # pack, delete the per-file originals, then read every sample back
    # through the shim. Byte-identical output against the manifest
    # proves the data path; the metrics check proves it never fell back
    # to per-file opens. ASan build: this leg doubles as a lifetime
    # check on the scatter/sendfile container path.
    cmake -B build-asan -S . -DHVAC_SANITIZE=address
    cmake --build build-asan -j "$JOBS" \
      --target hvacd hvacctl hvac_intercept intercept_target
    NUM_FILES="${PACKED_FILES:-10000}"
    TMP="$(mktemp -d)"
    HVACD_PID=""
    cleanup() {
      if [ -n "$HVACD_PID" ]; then
        kill "$HVACD_PID" 2>/dev/null || true
        wait "$HVACD_PID" 2>/dev/null || true
      fi
      rm -rf "$TMP"
    }
    trap cleanup EXIT
    ./build-asan/src/client/hvacctl gentree "$TMP/pfs" "$NUM_FILES" 2048 \
      --manifest "$TMP/manifest.txt"
    ./build-asan/src/client/hvacctl pack "$TMP/pfs" \
      --container-bytes $((4 << 20))
    CONTAINERS="$(find "$TMP/pfs/.hvacpack" -name 'container_*.blob' | wc -l)"
    echo "packed $NUM_FILES files into $CONTAINERS container(s)"
    # The point of the exercise: the per-file originals are GONE. Every
    # byte the shim returns from here on came out of a container blob.
    find "$TMP/pfs" -name '*.bin' -delete
    ./build-asan/src/server/hvacd \
      --pfs-root "$TMP/pfs" --cache-dir "$TMP/cache" \
      --port-file "$TMP/ports" &
    HVACD_PID=$!
    for _ in $(seq 50); do
      [ -s "$TMP/ports" ] && break
      sleep 0.2
    done
    [ -s "$TMP/ports" ] || { echo "hvacd never published ports" >&2; exit 1; }
    EP="$(cat "$TMP/ports")"
    # Read every sample through the shim; intercept_target prints
    # "<path> <size> <fnv64>" — exactly the manifest format.
    cut -d' ' -f1 "$TMP/manifest.txt" \
      | xargs -n 256 env \
          LD_PRELOAD="$PWD/build-asan/src/intercept/libhvac_intercept.so" \
          ASAN_OPTIONS=verify_asan_link_order=0 \
          HVAC_DATASET_DIR="$TMP/pfs" \
          HVAC_SERVERS="$EP" \
          ./build-asan/tests/intercept_target > "$TMP/readback.txt"
    sort "$TMP/manifest.txt" > "$TMP/manifest.sorted"
    sort "$TMP/readback.txt" > "$TMP/readback.sorted"
    if ! diff -u "$TMP/manifest.sorted" "$TMP/readback.sorted"; then
      echo "packed readback does not match the generated tree" >&2
      exit 1
    fi
    echo "all $NUM_FILES samples read back byte-identical"
    ./build-asan/src/client/hvacctl metrics "$EP" --json \
      > "$TMP/metrics.json"
    python3 scripts/check_packed_metrics.py "$TMP/metrics.json" \
      --containers "$CONTAINERS"
    ;;
  prefetch)
    # Clairvoyant smoke: the exact flow a training job uses — a plan
    # file naming every sample in access order, the unmodified reader
    # under the shim, and the scheduler warming the node-local cache
    # AHEAD of the stream. The stats gate proves the pipeline stayed
    # in front (>90% hit-after-prefetch); the byte-compare proves it
    # never corrupted the data path; `hvacctl prefetch` smokes the
    # operator view. Regular build: this leg gates a timing property,
    # so sanitizer slowdown would only add noise.
    cmake -B build -S .
    cmake --build build -j "$JOBS" \
      --target hvacd hvacctl hvac_intercept intercept_target
    NUM_FILES="${PREFETCH_FILES:-512}"
    TMP="$(mktemp -d)"
    HVACD_PID=""
    cleanup() {
      if [ -n "$HVACD_PID" ]; then
        kill "$HVACD_PID" 2>/dev/null || true
        wait "$HVACD_PID" 2>/dev/null || true
      fi
      rm -rf "$TMP"
    }
    trap cleanup EXIT
    ./build/src/client/hvacctl gentree "$TMP/pfs" "$NUM_FILES" 4096 \
      --manifest "$TMP/manifest.txt"
    ./build/src/server/hvacd \
      --pfs-root "$TMP/pfs" --cache-dir "$TMP/cache" \
      --port-file "$TMP/ports" &
    HVACD_PID=$!
    for _ in $(seq 50); do
      [ -s "$TMP/ports" ] && break
      sleep 0.2
    done
    [ -s "$TMP/ports" ] || { echo "hvacd never published ports" >&2; exit 1; }
    EP="$(cat "$TMP/ports")"
    # The plan IS the manifest order: one path per line, the sequence
    # the reader will open. One process reads the whole stream so a
    # single scheduler owns the plan end to end.
    cut -d' ' -f1 "$TMP/manifest.txt" > "$TMP/plan.txt"
    tr '\n' '\0' < "$TMP/plan.txt" \
      | xargs -0 env \
          LD_PRELOAD="$PWD/build/src/intercept/libhvac_intercept.so" \
          HVAC_DATASET_DIR="$TMP/pfs" \
          HVAC_SERVERS="$EP" \
          HVAC_PREFETCH_PLAN="$TMP/plan.txt" \
          HVAC_PREFETCH_DEPTH=256 \
          HVAC_STATS_FILE="$TMP/stats.json" \
          ./build/tests/intercept_target > "$TMP/readback.txt"
    if ! diff -u "$TMP/manifest.txt" "$TMP/readback.txt"; then
      echo "planned readback does not match the generated tree" >&2
      exit 1
    fi
    echo "all $NUM_FILES samples read back byte-identical"
    python3 scripts/check_prefetch_stats.py "$TMP/stats.json" \
      --min-hit-ratio 0.9
    ./build/src/client/hvacctl prefetch "$EP"
    ;;
  trace)
    cmake -B build -S .
    cmake --build build -j "$JOBS" --target hvacd hvacctl
    TRACE_OUT="${TRACE_OUT:-trace.json}"
    TMP="$(mktemp -d)"
    HVACD_PID=""
    cleanup() {
      if [ -n "$HVACD_PID" ]; then
        kill "$HVACD_PID" 2>/dev/null || true
        wait "$HVACD_PID" 2>/dev/null || true
      fi
      rm -rf "$TMP"
    }
    trap cleanup EXIT
    mkdir -p "$TMP/pfs"
    for i in 0 1 2 3; do
      head -c 65536 /dev/urandom > "$TMP/pfs/f$i.bin"
    done
    HVAC_TRACE=1 HVAC_TRACE_RING=8192 ./build/src/server/hvacd \
      --pfs-root "$TMP/pfs" --cache-dir "$TMP/cache" \
      --port-file "$TMP/ports" &
    HVACD_PID=$!
    for _ in $(seq 50); do
      [ -s "$TMP/ports" ] && break
      sleep 0.2
    done
    [ -s "$TMP/ports" ] || { echo "hvacd never published ports" >&2; exit 1; }
    EP="$(cat "$TMP/ports")"
    # Drive the miss path (warm), the metadata path (stat) and a second
    # warm (hit) so the dump carries dispatch, mover and send spans.
    for i in 0 1 2 3; do
      ./build/src/client/hvacctl warm "$EP" "f$i.bin" > /dev/null
      ./build/src/client/hvacctl stat "$EP" "f$i.bin" > /dev/null
      ./build/src/client/hvacctl warm "$EP" "f$i.bin" > /dev/null
    done
    ./build/src/client/hvacctl trace "$EP" --chrome > "$TRACE_OUT"
    python3 scripts/check_trace_schema.py "$TRACE_OUT" --min-events 8
    ;;
  telemetry)
    # Telemetry smoke: the collector ring, the exporter and the stall
    # attribution together, end to end. Regular build — the stall gate
    # compares wall clocks, so sanitizer slowdown would only add noise.
    cmake -B build -S .
    cmake --build build -j "$JOBS" \
      --target hvacd hvacctl hvac_intercept intercept_target
    NUM_FILES="${TELEMETRY_FILES:-256}"
    TMP="$(mktemp -d)"
    HVACD_PID=""
    cleanup() {
      if [ -n "$HVACD_PID" ]; then
        kill "$HVACD_PID" 2>/dev/null || true
        wait "$HVACD_PID" 2>/dev/null || true
      fi
      rm -rf "$TMP"
    }
    trap cleanup EXIT
    ./build/src/client/hvacctl gentree "$TMP/pfs" "$NUM_FILES" 4096 \
      --manifest "$TMP/manifest.txt"
    HVAC_TS_INTERVAL_MS=200 HVAC_PROM_PORT=0 \
      HVAC_PROM_PORT_FILE="$TMP/prom_port" \
      ./build/src/server/hvacd \
      --pfs-root "$TMP/pfs" --cache-dir "$TMP/cache" \
      --port-file "$TMP/ports" &
    HVACD_PID=$!
    for _ in $(seq 50); do
      [ -s "$TMP/ports" ] && [ -s "$TMP/prom_port" ] && break
      sleep 0.2
    done
    [ -s "$TMP/ports" ] || { echo "hvacd never published ports" >&2; exit 1; }
    [ -s "$TMP/prom_port" ] || {
      echo "hvacd never published the exporter port" >&2; exit 1; }
    EP="$(cat "$TMP/ports")"
    PROM="$(cat "$TMP/prom_port")"
    # Shim traffic with a stats dump: the stall cross-check needs the
    # client's per-epoch buckets next to its shim wall-clock total.
    cut -d' ' -f1 "$TMP/manifest.txt" | tr '\n' '\0' \
      | xargs -0 env \
          LD_PRELOAD="$PWD/build/src/intercept/libhvac_intercept.so" \
          HVAC_DATASET_DIR="$TMP/pfs" \
          HVAC_SERVERS="$EP" \
          HVAC_STATS_FILE="$TMP/stats.json" \
          ./build/tests/intercept_target > "$TMP/readback.txt"
    sort "$TMP/manifest.txt" > "$TMP/manifest.sorted"
    sort "$TMP/readback.txt" > "$TMP/readback.sorted"
    if ! diff -u "$TMP/manifest.sorted" "$TMP/readback.sorted"; then
      echo "telemetry readback does not match the generated tree" >&2
      exit 1
    fi
    sleep 0.5  # at least two collector ticks land in the ring
    python3 scripts/check_openmetrics.py \
      "http://127.0.0.1:$PROM/metrics" \
      --out "${SCRAPE_OUT:-$TMP/scrape.txt}" \
      --stats "$TMP/stats.json"
    # Operator views over the same ring: one top iteration must render
    # a live-rate row, and the plain-text path must not regress.
    ./build/src/client/hvacctl top "$EP" --count 1 --json \
      | tee "$TMP/top.json"
    grep -q '"rates"' "$TMP/top.json" || {
      echo "hvacctl top rendered no rates row" >&2; exit 1; }
    ./build/src/client/hvacctl top "$EP" --count 1
    ;;
  write-chaos)
    # Crash consistency under ASan: the journal framing and ENOSPC-shed
    # suites (fault injection over journal_append / journal_fsync /
    # store_write), then the kill -9 leg — test_daemon spawns hvacd
    # with HVAC_FAULT=pfs_write:error so nothing can flush before the
    # SIGKILL, restarts it, and requires every fsync-acked byte back.
    cmake -B build-asan -S . -DHVAC_SANITIZE=address
    cmake --build build-asan -j "$JOBS" \
      --target test_write_journal test_daemon hvacd hvacctl
    ./build-asan/tests/test_write_journal
    ./build-asan/tests/test_daemon --gtest_filter='WriteCrash.*'
    # Shim-level smoke on the regular build: intercept_target --copy
    # writes a checkpoint with plain POSIX calls through LD_PRELOAD
    # (open O_WRONLY|O_TRUNC -> virtual fd -> write RPCs -> journal +
    # write-back store), `hvacctl journal` reports the write-back
    # tier, and after a graceful stop the flushed PFS copy must be
    # byte-identical.
    cmake -B build -S .
    cmake --build build -j "$JOBS" \
      --target hvacd hvacctl hvac_intercept intercept_target
    TMP="$(mktemp -d)"
    HVACD_PID=""
    cleanup() {
      if [ -n "$HVACD_PID" ]; then
        kill "$HVACD_PID" 2>/dev/null || true
        wait "$HVACD_PID" 2>/dev/null || true
      fi
      rm -rf "$TMP"
    }
    trap cleanup EXIT
    mkdir -p "$TMP/pfs"
    head -c $((1 << 20)) /dev/urandom > "$TMP/src.bin"
    ./build/src/server/hvacd \
      --pfs-root "$TMP/pfs" --cache-dir "$TMP/cache" \
      --port-file "$TMP/ports" &
    HVACD_PID=$!
    for _ in $(seq 50); do
      [ -s "$TMP/ports" ] && break
      sleep 0.2
    done
    [ -s "$TMP/ports" ] || { echo "hvacd never published ports" >&2; exit 1; }
    EP="$(cat "$TMP/ports")"
    env LD_PRELOAD="$PWD/build/src/intercept/libhvac_intercept.so" \
      HVAC_DATASET_DIR="$TMP/pfs" HVAC_SERVERS="$EP" \
      ./build/tests/intercept_target --copy "$TMP/src.bin" \
      "$TMP/pfs/ckpt/model.bin"
    ./build/src/client/hvacctl journal "$EP"
    kill -TERM "$HVACD_PID"
    wait "$HVACD_PID" || true
    HVACD_PID=""
    if ! cmp "$TMP/src.bin" "$TMP/pfs/ckpt/model.bin"; then
      echo "shim-written checkpoint does not match the source" >&2
      exit 1
    fi
    echo "shim write smoke: 1 MiB checkpoint round-tripped byte-identical"
    ;;
  bench)
    cmake -B build -S .
    cmake --build build -j "$JOBS" --target micro_rpc
    # Stamp the JSON with the commit it measured so scripts/bench_compare.py
    # (and anyone reading an uploaded artifact) can tell results apart.
    GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    GIT_DATE="$(git show -s --format=%cI HEAD 2>/dev/null || echo unknown)"
    ./build/bench/micro_rpc \
      --benchmark_out="${BENCH_OUT:-BENCH_rpc.json}" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-3}" \
      --benchmark_report_aggregates_only=true \
      --benchmark_context=git_sha="$GIT_SHA" \
      --benchmark_context=git_date="$GIT_DATE"
    ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|bench|chaos|packed|prefetch|trace|telemetry|write-chaos]" >&2
    exit 2
    ;;
esac
