#!/usr/bin/env python3
"""Assert the clairvoyant-prefetch invariants from an HVAC_STATS_FILE dump.

    scripts/check_prefetch_stats.py STATS.json [--min-hit-ratio 0.9]

Run after the prefetch smoke leg in scripts/check.sh: a planned stream
(HVAC_PREFETCH_PLAN names every file in access order) read through the
shim must be warmed AHEAD of the reader — almost every access lands on
a sample whose prefetch already completed.

Checks, against the client's `prefetch` counter block:
  * planned > 0                        (the plan file was loaded)
  * issued + late >= planned           (every sample was issued, or was
                                        consumed before issue — the
                                        scheduler skips those, so they
                                        surface as late, never as lost)
  * hit_after_prefetch / planned >= --min-hit-ratio
  * late + hit_after_prefetch == accesses accounted (sanity)

Exit 0 when every invariant holds, 1 otherwise. The hit ratio is a
scheduling property on a live machine, so the default gate leaves 10%
slack for the cold head of the pipeline.
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="HVAC_STATS_FILE dump (client JSON)")
    parser.add_argument("--min-hit-ratio", type=float, default=0.9,
                        help="required hit_after_prefetch / planned")
    args = parser.parse_args()

    with open(args.stats) as f:
        doc = json.load(f)
    pf = doc.get("prefetch", {})

    planned = int(pf.get("planned", 0))
    issued = int(pf.get("issued", 0))
    completed = int(pf.get("completed", 0))
    shed = int(pf.get("shed", 0))
    late = int(pf.get("late", 0))
    hit_after = int(pf.get("hit_after_prefetch", 0))
    ratio = hit_after / planned if planned else 0.0

    failures = []
    if planned <= 0:
        failures.append("planned == 0 — the HVAC_PREFETCH_PLAN file was "
                        "not loaded (or held no eligible paths)")
    if issued + late < planned:
        failures.append(
            f"issued({issued}) + late({late}) < planned({planned}); "
            "the lookahead window never covered the stream")
    if late + hit_after != planned:
        failures.append(
            f"late({late}) + hit_after({hit_after}) != planned({planned}) "
            "— some planned samples were never accessed by the reader")
    if ratio < args.min_hit_ratio:
        failures.append(
            f"hit-after-prefetch ratio {ratio:.3f} < {args.min_hit_ratio} "
            f"({hit_after}/{planned} warm, {late} late) — the pipeline "
            "is not staying ahead of the reader")

    print(f"prefetch stats: planned={planned} issued={issued} "
          f"completed={completed} shed={shed} late={late} "
          f"hit_after={hit_after} ratio={ratio:.3f}")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print(f"prefetch invariants hold (ratio >= {args.min_hit_ratio})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
