#!/usr/bin/env python3
"""Assert the packed-read invariants from `hvacctl metrics --json`.

    scripts/check_packed_metrics.py METRICS.json --containers N

Run after the packed smoke leg in scripts/check.sh: a packed dataset
read end-to-end through the shim must never touch the per-file open
RPC (the client resolves samples from the one-shot kPackedIndex
fetch), and the server must open each container blob at most once
(every later read is an OpenHandleCache hit).

Checks, against the `aggregate` frame:
  * latency_us.open.count == 0        (missing key counts as 0)
  * latency_us.packed_index.count >= 1
  * handle_cache.misses <= --containers
  * handle_cache.hits > 0

Exit 0 when every invariant holds, 1 otherwise (this one IS a hard
gate — these are correctness properties of the protocol, not timing).
"""

import argparse
import json
import sys


def op_count(frame, op):
    return int(frame.get("latency_us", {}).get(op, {}).get("count", 0))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="output of hvacctl metrics --json")
    parser.add_argument("--containers", type=int, required=True,
                        help="number of container blobs in the packed set")
    args = parser.parse_args()

    with open(args.metrics) as f:
        doc = json.load(f)
    frame = doc.get("aggregate", doc)
    hc = frame.get("handle_cache", {})

    opens = op_count(frame, "open")
    index_fetches = op_count(frame, "packed_index")
    misses = int(hc.get("misses", 0))
    hits = int(hc.get("hits", 0))

    failures = []
    if opens != 0:
        failures.append(
            f"saw {opens} per-file open RPC(s); the packed path must "
            "resolve every sample client-side")
    if index_fetches < 1:
        failures.append("no kPackedIndex fetch recorded — the client "
                        "never loaded the packed index")
    if misses > args.containers:
        failures.append(
            f"{misses} handle-cache miss(es) for {args.containers} "
            "container(s); each container should be opened at most once")
    if hits <= 0:
        failures.append("no handle-cache hits — container fds are not "
                        "being reused across sample reads")

    print(f"packed metrics: open={opens} packed_index={index_fetches} "
          f"handle_cache={hits}h/{misses}m "
          f"(containers={args.containers})")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("packed invariants hold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
