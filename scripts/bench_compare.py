#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag regressions.

    scripts/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.15] [--report diff.md] [--strict]

Used by the bench-smoke CI job: the committed BENCH_rpc.json is the
baseline, a fresh `scripts/check.sh bench` run is the candidate. Only
`median` aggregates are compared (means are noisy under repetitions on
shared runners). A benchmark is a regression when its median real_time
grew by more than --threshold (fraction, default 0.15).

Exit status is 0 even when regressions are found — CI runners are too
noisy for a hard gate — unless --strict is given. The human-readable
diff goes to stdout and, with --report, to a markdown file uploaded as
a CI artifact.
"""

import argparse
import json
import re
import sys


def load_medians(path):
    """Return {benchmark name: (real_time, time_unit)} per benchmark.

    Prefers `median` aggregate rows; a single-repetition run emits no
    aggregates, so fall back to the plain iteration rows.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") != "aggregate":
            continue
        if row.get("aggregate_name") != "median":
            continue
        base = row["name"]
        suffix = "_median"
        if base.endswith(suffix):
            base = base[: -len(suffix)]
        out[base] = (float(row["real_time"]), row.get("time_unit", "ns"))
    if not out:
        for row in doc.get("benchmarks", []):
            if row.get("run_type", "iteration") != "iteration":
                continue
            out[row["name"]] = (float(row["real_time"]),
                                row.get("time_unit", "ns"))
    return out, doc.get("context", {})


def fmt_time(value, unit):
    return f"{value:,.0f} {unit}"


def zerocopy_ratios(rows):
    """Pair BM_BulkReadPooled with BM_BulkReadZeroCopy by payload size.

    Returns [(size_bytes, pooled_time / zerocopy_time), ...] — a ratio
    above 1.0 means the zero-copy rung beats the pooled fallback.
    """
    pooled, zerocopy = {}, {}
    for name, (t, _unit) in rows.items():
        m = re.match(r"BM_BulkRead(Pooled|ZeroCopy)/(\d+)", name)
        if not m:
            continue
        (pooled if m.group(1) == "Pooled" else zerocopy)[int(m.group(2))] = t
    return [(size, pooled[size] / zerocopy[size])
            for size in sorted(set(pooled) & set(zerocopy))
            if zerocopy[size] > 0]


def trace_overhead(rows):
    """Pair BM_BulkReadZeroCopy with BM_BulkReadZeroCopyTraced by size.

    Returns [(size_bytes, traced_time / untraced_time), ...] — the
    multiplicative cost of running with HVAC_TRACE=1. The *untraced*
    series is separately held to the baseline by the regular regression
    table above (a disabled tracer must stay within noise of the
    pre-tracing baseline).
    """
    plain, traced = {}, {}
    for name, (t, _unit) in rows.items():
        m = re.match(r"BM_BulkReadZeroCopy(Traced)?/(\d+)", name)
        if not m:
            continue
        (traced if m.group(1) else plain)[int(m.group(2))] = t
    return [(size, traced[size] / plain[size])
            for size in sorted(set(plain) & set(traced))
            if plain[size] > 0]


def telemetry_overhead(rows):
    """Pair BM_BulkReadZeroCopy with BM_BulkReadZeroCopyTelemetry by size.

    Returns [(size_bytes, telemetry_time / plain_time), ...] — the
    multiplicative cost of running with the telemetry plane on (the
    collector ticking at 100 ms, the OpenMetrics endpoint scraped every
    200 ms plus a kTimeSeries ring encode per scrape). The tax bar is
    tighter than tracing's because the plane does nothing per-request:
    5% instead of 10%.
    """
    plain, telemetry = {}, {}
    for name, (t, _unit) in rows.items():
        m = re.match(r"BM_BulkReadZeroCopy(Telemetry)?/(\d+)", name)
        if not m:
            continue
        (telemetry if m.group(1) else plain)[int(m.group(2))] = t
    return [(size, telemetry[size] / plain[size])
            for size in sorted(set(plain) & set(telemetry))
            if plain[size] > 0]


def packed_ratios(rows):
    """Pair BM_SmallFileReads with BM_PackedSmallReads by sample size.

    Returns [(size_bytes, perfile_time / packed_time), ...] — a ratio
    above 1.0 means the packed-container read path beats the per-file
    open/read/close ladder. ISSUE: the packed path exists to amortise
    per-file opens, so it should be at least 2x at small sizes.
    """
    perfile, packed = {}, {}
    for name, (t, _unit) in rows.items():
        m = re.match(r"BM_SmallFileReads/bytes:(\d+)", name)
        if m:
            perfile[int(m.group(1))] = t
            continue
        m = re.match(r"BM_PackedSmallReads/bytes:(\d+)", name)
        if m:
            packed[int(m.group(1))] = t
    return [(size, perfile[size] / packed[size])
            for size in sorted(set(perfile) & set(packed))
            if packed[size] > 0]


def epoch_prefetch_ratios(rows):
    """Pair the BM_EpochRead* cold-epoch medians.

    Returns {"readahead": t, "demand": t, "clairvoyant": t} for the
    variants present. The clairvoyant scheduler overlaps planned PFS
    fetches with foreground reads, so it should finish a cold epoch at
    least 1.5x faster than sequential read-ahead (which cannot cross
    file boundaries).
    """
    times = {}
    for name, (t, _unit) in rows.items():
        m = re.match(r"BM_EpochRead(Demand|ReadAhead|Clairvoyant)"
                     r"(?:/real_time)?$", name)
        if m:
            times[m.group(1).lower()] = t
    return times


def reactor_scaling(rows):
    """Pair BM_SaturatedSmallReads medians by reactor count.

    Returns (single_time, [(reactors, single_time / time), ...]) — the
    per-config speedup over the single-reactor run. Higher is better;
    N reactors below 2x single on a multi-core runner means the sharded
    core is not scaling (lock on the hot path, accept imbalance, ...).
    """
    times = {}
    for name, (t, _unit) in rows.items():
        m = re.match(
            r"BM_SaturatedSmallReads/reactors:(\d+)(?:/real_time)?"
            r"/threads:\d+", name)
        if not m:
            continue
        times[int(m.group(1))] = t
    if 1 not in times or times[1] <= 0:
        return None, []
    single = times[1]
    return single, [(n, single / t)
                    for n, t in sorted(times.items())
                    if n > 1 and t > 0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="regression threshold as a fraction (0.15 = 15%%)")
    parser.add_argument("--report", help="also write a markdown diff here")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when regressions exceed the threshold")
    args = parser.parse_args()

    base, base_ctx = load_medians(args.baseline)
    curr, curr_ctx = load_medians(args.current)

    lines = []
    lines.append("| benchmark | baseline | current | delta |")
    lines.append("|---|---:|---:|---:|")
    regressions = []
    improvements = []
    for name in sorted(base):
        if name not in curr:
            lines.append(f"| {name} | {fmt_time(*base[name])} | (missing) | |")
            continue
        b, unit = base[name]
        c, _ = curr[name]
        delta = (c - b) / b if b else 0.0
        marker = ""
        if delta > args.threshold:
            marker = " ⚠"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            improvements.append((name, delta))
        lines.append(f"| {name} | {fmt_time(b, unit)} | {fmt_time(c, unit)} "
                     f"| {delta:+.1%}{marker} |")
    for name in sorted(set(curr) - set(base)):
        lines.append(f"| {name} | (new) | {fmt_time(*curr[name])} | |")

    header = [
        "## micro_rpc bench comparison",
        "",
        f"baseline: `{base_ctx.get('git_sha', '?')}` ({base_ctx.get('date', '?')})"
        f" vs current: `{curr_ctx.get('git_sha', '?')}`"
        f" ({curr_ctx.get('date', '?')})",
        f"threshold: {args.threshold:.0%} on median real_time",
        "",
    ]
    footer = [""]
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        footer.append(
            f"**{len(regressions)} possible regression(s)** "
            f"(worst: {worst[0]} {worst[1]:+.1%}). Runner noise is common; "
            "rerun locally before reading much into this.")
    else:
        footer.append("No regressions beyond the threshold.")
    if improvements:
        footer.append(f"{len(improvements)} benchmark(s) improved beyond "
                      "the threshold.")

    # Advisory pooled-vs-zerocopy gate: the zero-copy rung must not be
    # slower than the pooled fallback it exists to beat.
    zc_regressions = []
    ratios = zerocopy_ratios(curr)
    if ratios:
        footer.append("")
        footer.append("### pooled vs zero-copy (current run)")
        for size, ratio in ratios:
            marker = ""
            if ratio < 1.0:
                marker = " ⚠ zero-copy slower than pooled"
                zc_regressions.append((size, ratio))
            footer.append(f"- {size:,} B: zero-copy is {ratio:.2f}x the "
                          f"pooled median{marker}")
        if zc_regressions:
            footer.append(f"**zero-copy regresses below the pooled "
                          f"baseline at {len(zc_regressions)} size(s)**")

    # Advisory tracing-tax gate: HVAC_TRACE=1 buys span trees with the
    # per-span push cost; flag it when the traced series costs more
    # than 10% over the untraced one at any payload size.
    tr = trace_overhead(curr)
    if tr:
        footer.append("")
        footer.append("### tracing overhead (current run, traced/untraced)")
        slow = []
        for size, ratio in tr:
            marker = ""
            if ratio > 1.10:
                marker = " ⚠ traced run >10% over untraced"
                slow.append((size, ratio))
            footer.append(f"- {size:,} B: HVAC_TRACE=1 costs {ratio:.3f}x "
                          f"the untraced median{marker}")
        if slow:
            footer.append(f"**tracing overhead exceeds 10% at "
                          f"{len(slow)} size(s)** — check for span sites "
                          "inside per-byte loops.")

    # Advisory telemetry-tax gate: the collector + exporter run off the
    # request path entirely, so an enabled plane must stay within 5% of
    # the plain series at every payload size.
    tm = telemetry_overhead(curr)
    if tm:
        footer.append("")
        footer.append("### telemetry overhead (current run, "
                      "enabled/disabled)")
        slow = []
        for size, ratio in tm:
            marker = ""
            if ratio > 1.05:
                marker = " ⚠ telemetry plane >5% over disabled"
                slow.append((size, ratio))
            footer.append(f"- {size:,} B: collector+exporter cost "
                          f"{ratio:.3f}x the disabled median{marker}")
        if slow:
            footer.append(f"**telemetry overhead exceeds 5% at "
                          f"{len(slow)} size(s)** — the plane must stay "
                          "off the request path; check for snapshot work "
                          "under a hot lock or scrape-driven allocation "
                          "storms.")

    # Advisory packed-format gate: reading a sample out of a packed
    # container skips the per-file open RPC, so it should beat the
    # per-file ladder by at least 2x at dataloader-sized reads.
    pk = packed_ratios(curr)
    if pk:
        footer.append("")
        footer.append("### per-file vs packed small reads (current run)")
        slow = []
        for size, ratio in pk:
            marker = ""
            if ratio < 2.0:
                marker = " ⚠ packed below 2x the per-file path"
                slow.append((size, ratio))
            footer.append(f"- {size:,} B: packed read is {ratio:.2f}x "
                          f"faster than per-file{marker}")
        if slow:
            footer.append(f"**packed speedup below the 2x advisory bar "
                          f"at {len(slow)} size(s)** — the packed path "
                          "exists to amortise per-file opens; check the "
                          "kPackedIndex/handle-cache hit path.")

    # Advisory clairvoyant-prefetch gate: a planned cold epoch should
    # beat sequential read-ahead by >= 1.5x (read-ahead cannot cross
    # file boundaries, so every sample still pays the PFS fetch in
    # line; the scheduler fetches ahead of the cursor instead).
    ep = epoch_prefetch_ratios(curr)
    if "clairvoyant" in ep and ep["clairvoyant"] > 0:
        footer.append("")
        footer.append("### cold-epoch prefetch (current run)")
        flagged = False
        for variant in ("demand", "readahead"):
            if variant not in ep:
                continue
            ratio = ep[variant] / ep["clairvoyant"]
            marker = ""
            if variant == "readahead" and ratio < 1.5:
                marker = " ⚠ below the 1.5x advisory bar"
                flagged = True
            footer.append(f"- clairvoyant is {ratio:.2f}x faster than "
                          f"{variant}{marker}")
        if flagged:
            footer.append("**clairvoyant speedup below the 1.5x advisory "
                          "bar** — check the scheduler's issue window, "
                          "mover-thread count and shed re-pacing.")

    # Advisory reactor-scaling gate: N reactors should finish the
    # saturated small-read workload at least 2x as fast as one reactor.
    # Advisory only — a single-core (or noisy shared) runner cannot
    # show reactor parallelism at all, so this never fails the job.
    _single, scaling = reactor_scaling(curr)
    if scaling:
        footer.append("")
        footer.append("### reactor scaling (current run, saturated "
                      "small reads)")
        flagged = []
        for n, speedup in scaling:
            marker = ""
            if speedup < 2.0:
                marker = " ⚠ below 2x single-reactor throughput"
                flagged.append((n, speedup))
            footer.append(f"- {n} reactors: {speedup:.2f}x the "
                          f"single-reactor median{marker}")
        if flagged:
            footer.append("**reactor scaling below the 2x advisory bar "
                          f"at {len(flagged)} config(s)** — meaningful "
                          "only on a multi-core runner; single-core "
                          "runners report ~1x by construction.")

    report = "\n".join(header + lines + footer) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)

    if (regressions or zc_regressions) and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
