#include "core/eviction.h"

namespace hvac::core {

RandomEviction::RandomEviction(uint64_t seed) : rng_(seed) {}

void RandomEviction::on_insert(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.count(logical_path) > 0) return;
  index_[logical_path] = entries_.size();
  entries_.push_back(logical_path);
}

void RandomEviction::on_evict(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(logical_path);
  if (it == index_.end()) return;
  const size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != entries_.size()) {
    entries_[pos] = std::move(entries_.back());
    index_[entries_[pos]] = pos;
  }
  entries_.pop_back();
}

std::optional<std::string> RandomEviction::select_victim() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.empty()) return std::nullopt;
  return entries_[static_cast<size_t>(rng_.next_below(entries_.size()))];
}

void FifoEviction::on_insert(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.count(logical_path) > 0) return;
  order_.push_back(logical_path);
  index_[logical_path] = std::prev(order_.end());
}

void FifoEviction::on_evict(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(logical_path);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<std::string> FifoEviction::select_victim() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (order_.empty()) return std::nullopt;
  return order_.front();
}

void LruEviction::on_insert(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  touch_locked(logical_path);
}

void LruEviction::on_access(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  touch_locked(logical_path);
}

void LruEviction::touch_locked(const std::string& logical_path) {
  auto it = index_.find(logical_path);
  if (it != index_.end()) order_.erase(it->second);
  order_.push_front(logical_path);
  index_[logical_path] = order_.begin();
}

void LruEviction::on_evict(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(logical_path);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<std::string> LruEviction::select_victim() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(const std::string& name,
                                                     uint64_t seed) {
  if (name == "fifo") return std::make_unique<FifoEviction>();
  if (name == "lru") return std::make_unique<LruEviction>();
  return std::make_unique<RandomEviction>(seed == 0 ? 0x48564143 : seed);
}

}  // namespace hvac::core
