// CacheManager — the server-side cache brain.
//
// Guarantees (paper §III-D):
//   * Single-copy: when N clients request the same uncached file
//     concurrently, exactly one PFS->NVMe copy runs; the other N-1
//     callers block until it completes ("we use mutex lock on shared
//     queue to guarantee consistency and to avoid repeated copying").
//   * Capacity: when the local store exceeds its budget, the eviction
//     policy picks victims until the new file fits (paper §III-G). A
//     file that is larger than the whole store is served from PFS
//     directly (counted as a pfs_fallback) rather than thrashing.
//   * Read-only: the cache never mutates the source file; a cached
//     copy is immutable until evicted or purged.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <string>  // (segment keys)
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/result.h"
#include "core/eviction.h"
#include "core/metrics.h"
#include "storage/local_store.h"
#include "storage/pfs_backend.h"

namespace hvac::core {

class CacheManager {
 public:
  // Does not take ownership of `pfs`; it must outlive the manager.
  CacheManager(storage::PfsBackend* pfs,
               std::unique_ptr<storage::LocalStore> store,
               std::unique_ptr<EvictionPolicy> eviction);

  // Ensures `logical_path` (relative to the PFS root) is cached,
  // copying it from the PFS if needed. Returns:
  //   true  — served from (or now present in) the local cache
  //   false — cacheable capacity exceeded; caller should read through
  //           to the PFS (fallback), file is NOT cached
  // or an error if the PFS itself failed.
  Result<bool> ensure_cached(const std::string& logical_path);

  // Opens the cached copy (ensure_cached must have returned true).
  Result<storage::PosixFile> open_cached(const std::string& logical_path);

  // Reads file bytes through the cache: hit -> local store, miss ->
  // copy then local store, capacity overflow -> PFS passthrough.
  Result<std::vector<uint8_t>> read_through(const std::string& logical_path);

  // Positional read through the cache with the same semantics.
  Result<size_t> pread_through(const std::string& logical_path, void* buf,
                               size_t count, uint64_t offset);

  // ---- segment-level caching (paper §III-E extension) ------------------
  // Ensures segment `seg_index` (of `segment_bytes`-sized segments) of
  // the file is cached; same return convention as ensure_cached. The
  // cache key is segment_key(path, idx), so different segments can be
  // owned by different servers.
  Result<bool> ensure_segment_cached(const std::string& logical_path,
                                     uint64_t seg_index,
                                     uint64_t segment_bytes);

  // Positional read within one segment (offset relative to the
  // segment start). Falls back to a PFS range read on capacity
  // overflow.
  Result<size_t> pread_segment(const std::string& logical_path,
                               uint64_t seg_index, uint64_t segment_bytes,
                               void* buf, size_t count,
                               uint64_t offset_in_segment);

  bool is_cached(const std::string& logical_path) const {
    return store_->contains(logical_path);
  }

  // Drops one file (tests / manual control).
  Status evict(const std::string& logical_path);

  // Job teardown.
  void purge() { store_->purge(); }

  const MetricsSnapshot metrics() const { return metrics_.snapshot(); }

  // Byte accounting for callers that read via their own handles (the
  // HVAC server serves pread RPCs off a cached fd, outside
  // read_through).
  void record_served_bytes(uint64_t bytes, bool from_cache) {
    if (from_cache) {
      metrics_.add_cache_bytes(bytes);
    } else {
      metrics_.add_pfs_bytes(bytes);
    }
  }
  storage::LocalStore& store() { return *store_; }
  storage::PfsBackend& pfs() { return *pfs_; }

 private:
  // Makes room for `needed` bytes; returns false when impossible.
  bool make_room(uint64_t needed);

  // Shared miss path: serializes concurrent first-reads of `key`,
  // sizes the payload with `sized`, copies it in with `fetch`.
  Result<bool> ensure_key_cached(
      const std::string& key,
      const std::function<Result<uint64_t>()>& sized,
      const std::function<Result<uint64_t>(const std::string& dst)>& fetch);

  storage::PfsBackend* pfs_;
  std::unique_ptr<storage::LocalStore> store_;
  std::unique_ptr<EvictionPolicy> eviction_;
  Metrics metrics_;

  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::unordered_set<std::string> inflight_;
};

}  // namespace hvac::core
