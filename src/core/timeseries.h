// Time-series metrics history — the ring behind proto::kTimeSeries.
//
// A collector thread in each HvacServer snapshots the live metrics
// frame every HVAC_TS_INTERVAL_MS and pushes the *per-interval delta*
// (counters subtracted, gauges carried as point values, histograms
// differenced bucket-wise) into a fixed-capacity ring of
// HVAC_TS_WINDOW samples. `hvacctl top` and anything else that wants
// rates reads the ring over kTimeSeries instead of diffing frames
// caller-side.
//
// Wire format (versioned, skip-unknown like the metrics frame):
//
//   u32 magic    'HVTS'
//   u16 version  kTimeSeriesVersion
//   u32 interval_ms   configured collector cadence (0 = collector off)
//   u32 window        ring capacity in samples
//   u64 total         samples pushed since start (wrap detector)
//   u16 count         samples that follow, oldest first
//   samples      [u32 byte_len][byte_len bytes] ...
//
// Each sample body is [u64 t_ms][u32 interval_ms][blob frame] where
// `frame` is a full MetricsFrame::encode() of the delta — so every
// compatibility property of the metrics frame (unknown sections
// skipped, short bodies tolerated) carries over to history samples,
// and the outer length prefix lets a decoder skip sample-body fields
// it does not know.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "core/metrics_frame.h"
#include "rpc/wire.h"

namespace hvac::core {

constexpr uint32_t kTimeSeriesMagic = 0x53545648;  // "HVTS"
constexpr uint16_t kTimeSeriesVersion = 1;

// One collector tick: the delta frame plus when and over how long it
// was measured. t_ms is CLOCK_MONOTONIC-domain milliseconds (same
// clock for every sample of one server; not comparable across hosts).
struct TimeSeriesSample {
  uint64_t t_ms = 0;
  uint32_t interval_ms = 0;  // measured, not configured
  MetricsFrame delta;
};

// Decoded kTimeSeries payload.
struct TimeSeriesFrame {
  uint16_t version = kTimeSeriesVersion;
  uint32_t interval_ms = 0;  // configured cadence, 0 = collector off
  uint32_t window = 0;
  uint64_t total = 0;  // pushes since server start
  std::vector<TimeSeriesSample> samples;  // oldest first

  static Result<TimeSeriesFrame> decode(const rpc::Bytes& bytes);
};

// `cur - prev`, field-wise: counters and histogram buckets subtract
// (clamped at zero so a restarted peer never yields negative rates),
// gauges (occupancy-style fields) carry cur's point value. The stall
// section is per-epoch cumulative and carries over as-is.
MetricsFrame frame_delta(const MetricsFrame& cur, const MetricsFrame& prev);

// Fixed-capacity sample history. push() overwrites the oldest sample
// once `capacity` is reached; readers always see the most recent
// min(total_pushed, capacity) samples in push order.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(size_t capacity);

  void push(TimeSeriesSample sample);
  std::vector<TimeSeriesSample> samples() const;  // oldest first
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_pushed() const;

  // Full kTimeSeries payload; `interval_ms` is the configured cadence
  // advertised in the header.
  rpc::Bytes encode(uint32_t interval_ms) const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<TimeSeriesSample> ring_;
  uint64_t total_ = 0;
};

}  // namespace hvac::core
