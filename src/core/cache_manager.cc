#include "core/cache_manager.h"

#include <algorithm>

#include "common/log.h"
#include "core/segment.h"

namespace hvac::core {

CacheManager::CacheManager(storage::PfsBackend* pfs,
                           std::unique_ptr<storage::LocalStore> store,
                           std::unique_ptr<EvictionPolicy> eviction)
    : pfs_(pfs), store_(std::move(store)), eviction_(std::move(eviction)) {}

bool CacheManager::make_room(uint64_t needed) {
  const uint64_t capacity = store_->capacity_bytes();
  if (capacity == 0) return true;  // unlimited
  if (needed > capacity) return false;
  while (store_->bytes_used() + needed > capacity) {
    auto victim = eviction_->select_victim();
    if (!victim.has_value()) return false;
    eviction_->on_evict(*victim);
    if (store_->evict(*victim).ok()) {
      metrics_.on_eviction();
    }
  }
  return true;
}

Result<bool> CacheManager::ensure_key_cached(
    const std::string& key,
    const std::function<Result<uint64_t>()>& sized,
    const std::function<Result<uint64_t>(const std::string& dst)>& fetch) {
  // Fast path: already cached.
  if (store_->contains(key)) {
    eviction_->on_access(key);
    metrics_.on_hit();
    return true;
  }

  // Serialize concurrent first-reads of the same key.
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    if (inflight_.count(key) > 0) {
      metrics_.on_dedup_wait();
      inflight_cv_.wait(lock, [&] { return inflight_.count(key) == 0; });
      // The winner finished; it either cached the key or decided on
      // fallback. Re-check the store.
      if (store_->contains(key)) {
        eviction_->on_access(key);
        metrics_.on_hit();
        return true;
      }
      return false;  // winner fell back to PFS (capacity)
    }
    if (store_->contains(key)) {
      eviction_->on_access(key);
      metrics_.on_hit();
      return true;
    }
    inflight_.insert(key);
  }

  // We are the designated copier. Always clear the in-flight mark.
  auto finish = [&](Result<bool> result) -> Result<bool> {
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    inflight_cv_.notify_all();
    return result;
  };

  auto size = sized();
  if (!size.ok()) return finish(size.error());

  if (!make_room(*size)) {
    HVAC_LOG_DEBUG("capacity fallback for " << key << " (" << *size
                                            << " bytes)");
    return finish(false);
  }

  const std::string dst = store_->physical_path(key);
  auto copied = fetch(dst);
  if (!copied.ok()) {
    (void)storage::remove_file(dst);
    return finish(copied.error());
  }
  Status inserted = store_->insert(key, *copied);
  if (!inserted.ok()) {
    (void)storage::remove_file(dst);
    return finish(false);
  }
  eviction_->on_insert(key);
  metrics_.on_miss(*copied);
  return finish(true);
}

Result<bool> CacheManager::ensure_cached(const std::string& logical_path) {
  return ensure_key_cached(
      logical_path, [&] { return pfs_->size_of(logical_path); },
      [&](const std::string& dst) {
        return pfs_->copy_out(logical_path, dst);
      });
}

Result<bool> CacheManager::ensure_segment_cached(
    const std::string& logical_path, uint64_t seg_index,
    uint64_t segment_bytes) {
  if (segment_bytes == 0) {
    return Error(ErrorCode::kInvalidArgument, "segment_bytes == 0");
  }
  const std::string key = segment_key(logical_path, seg_index);
  const uint64_t offset = seg_index * segment_bytes;
  return ensure_key_cached(
      key,
      [&]() -> Result<uint64_t> {
        HVAC_ASSIGN_OR_RETURN(uint64_t file_size,
                              pfs_->size_of(logical_path));
        if (offset >= file_size) {
          return Error(ErrorCode::kInvalidArgument,
                       "segment past EOF: " + key);
        }
        return std::min<uint64_t>(segment_bytes, file_size - offset);
      },
      [&](const std::string& dst) {
        return pfs_->copy_range_out(logical_path, dst, offset,
                                    segment_bytes);
      });
}

Result<size_t> CacheManager::pread_segment(const std::string& logical_path,
                                           uint64_t seg_index,
                                           uint64_t segment_bytes,
                                           void* buf, size_t count,
                                           uint64_t offset_in_segment) {
  const uint64_t file_offset =
      seg_index * segment_bytes + offset_in_segment;
  // Under eviction pressure the segment can be evicted between
  // ensure_segment_cached and the store open (another thread made
  // room for its own fetch) — retry, then read through the PFS.
  for (int attempt = 0; attempt < 3; ++attempt) {
    HVAC_ASSIGN_OR_RETURN(
        bool cached,
        ensure_segment_cached(logical_path, seg_index, segment_bytes));
    if (!cached) break;  // capacity fallback
    // Pinned handle: steady-state hits skip the open/close pair, and
    // the pin defers a concurrent eviction's close past this pread.
    auto pin = store_->open_pinned(segment_key(logical_path, seg_index));
    if (!pin.ok()) {
      if (pin.error().code == ErrorCode::kNotFound) continue;  // evicted
      return pin.error();
    }
    HVAC_ASSIGN_OR_RETURN(size_t n,
                          pin->pread(buf, count, offset_in_segment));
    metrics_.add_cache_bytes(n);
    return n;
  }
  HVAC_ASSIGN_OR_RETURN(storage::PosixFile f, pfs_->open(logical_path));
  HVAC_ASSIGN_OR_RETURN(size_t n, pfs_->pread(f, buf, count, file_offset));
  metrics_.on_pfs_fallback(n);
  return n;
}

Result<storage::PosixFile> CacheManager::open_cached(
    const std::string& logical_path) {
  return store_->open(logical_path);
}

Result<std::vector<uint8_t>> CacheManager::read_through(
    const std::string& logical_path) {
  // Retry if the file is evicted between the ensure and the open
  // (concurrent fetches under capacity pressure evict each other).
  for (int attempt = 0; attempt < 3; ++attempt) {
    HVAC_ASSIGN_OR_RETURN(bool cached, ensure_cached(logical_path));
    if (!cached) break;  // capacity fallback
    auto pin = store_->open_pinned(logical_path);
    if (!pin.ok()) {
      if (pin.error().code == ErrorCode::kNotFound) continue;  // evicted
      return pin.error();
    }
    HVAC_ASSIGN_OR_RETURN(uint64_t sz, pin->size());
    std::vector<uint8_t> data(sz);
    size_t got = 0;
    while (got < data.size()) {
      // pread (not read): the shared pinned handle must not carry a
      // file offset that concurrent readers would race on.
      HVAC_ASSIGN_OR_RETURN(
          size_t n, pin->pread(data.data() + got, data.size() - got, got));
      if (n == 0) break;
      got += n;
    }
    data.resize(got);
    metrics_.add_cache_bytes(data.size());
    return data;
  }
  auto data = pfs_->read_all(logical_path);
  if (data.ok()) metrics_.on_pfs_fallback(data->size());
  return data;
}

Result<size_t> CacheManager::pread_through(const std::string& logical_path,
                                           void* buf, size_t count,
                                           uint64_t offset) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    HVAC_ASSIGN_OR_RETURN(bool cached, ensure_cached(logical_path));
    if (!cached) break;  // capacity fallback
    auto pin = store_->open_pinned(logical_path);
    if (!pin.ok()) {
      if (pin.error().code == ErrorCode::kNotFound) continue;  // evicted
      // A sick local store (NVMe I/O error, injected fault) must not
      // fail the read — degrade to the PFS below (§III-H fail-open).
      HVAC_LOG_WARN("local store open failed for " << logical_path
                    << ", serving from PFS: "
                    << pin.error().to_string());
      break;
    }
    auto n = pin->pread(buf, count, offset);
    if (!n.ok()) {
      HVAC_LOG_WARN("local store read failed for " << logical_path
                    << ", serving from PFS: " << n.error().to_string());
      break;
    }
    metrics_.add_cache_bytes(*n);
    return *n;
  }
  HVAC_ASSIGN_OR_RETURN(storage::PosixFile f, pfs_->open(logical_path));
  HVAC_ASSIGN_OR_RETURN(size_t n, pfs_->pread(f, buf, count, offset));
  metrics_.on_pfs_fallback(n);
  return n;
}

Status CacheManager::evict(const std::string& logical_path) {
  eviction_->on_evict(logical_path);
  HVAC_ASSIGN_OR_RETURN(uint64_t size, store_->evict(logical_path));
  (void)size;
  metrics_.on_eviction();
  return Status::Ok();
}

}  // namespace hvac::core
