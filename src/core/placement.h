// Hash-based I/O redirection (paper §III-E) — the heart of HVAC.
//
// The home server of a file is a pure function of (file path, job
// allocation): every client computes it locally, so there is no
// metadata service to query, no location table to maintain, and no
// broadcast to find a file. The paper uses a simple hash-modulo over
// the allocation; we implement that as the default and two
// alternatives for the ablation benches:
//
//   * kHashModulo   — mix64(fnv1a(path)) % num_servers (paper's scheme)
//   * kRendezvous   — highest-random-weight; minimal disruption when a
//                     server leaves, and a natural way to derive an
//                     ordered replica/fail-over list (paper §III-H)
//   * kJump         — Lamping-Veach jump consistent hash
//
// `replicas > 1` implements the paper's proposed future-work data
// replication within the allocation: homes(path) returns an ordered
// list of distinct servers, the first being the primary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hvac::core {

enum class PlacementPolicy {
  kHashModulo,
  kRendezvous,
  kJump,
};

const char* placement_policy_name(PlacementPolicy policy);

class Placement {
 public:
  // `num_servers` is the total HVAC server instance count in the
  // allocation (nodes × instances-per-node). `replicas` is clamped to
  // [1, num_servers].
  Placement(uint32_t num_servers,
            PlacementPolicy policy = PlacementPolicy::kHashModulo,
            uint32_t replicas = 1);

  // Primary home of a file path.
  uint32_t home(std::string_view path) const;

  // Ordered replica set (primary first, all distinct).
  std::vector<uint32_t> homes(std::string_view path) const;

  uint32_t num_servers() const { return num_servers_; }
  uint32_t replicas() const { return replicas_; }
  PlacementPolicy policy() const { return policy_; }

 private:
  uint32_t rendezvous_home(uint64_t key, uint32_t rank) const;

  uint32_t num_servers_;
  PlacementPolicy policy_;
  uint32_t replicas_;
};

// Breaker-aware replica ordering (paper §III-H meets rpc/health.h):
// reorders an ordered replica list so servers whose circuit is
// currently OPEN sink to the back, preserving the placement order
// within each group. The open ones are kept (not dropped) — when every
// replica is down they are still the last resort before the PFS, and
// a half-open probe needs traffic to close the circuit again.
// `endpoints` maps server index -> address (the client's server map);
// indices out of range are left in place.
std::vector<uint32_t> order_by_health(
    std::vector<uint32_t> homes, const std::vector<std::string>& endpoints);

}  // namespace hvac::core
