#include "core/trace_wire.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace hvac::core {

using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {
constexpr uint32_t kSpanDumpVersion = 1;
}  // namespace

Bytes encode_spans(const std::vector<trace::SpanRecord>& spans) {
  WireWriter w;
  w.put_u32(kSpanDumpVersion);
  w.put_u32(static_cast<uint32_t>(spans.size()));
  for (const auto& s : spans) {
    w.put_u64(s.trace_id);
    w.put_u64(s.start_ns);
    w.put_u64(s.dur_ns);
    w.put_u64(s.arg);
    w.put_u32(s.span_id);
    w.put_u32(s.parent_id);
    w.put_u32(s.tid);
    w.put_u32(s.flags);
    w.put_string(s.name != nullptr ? s.name : "?");
  }
  return std::move(w).take();
}

Result<std::vector<SpanDump>> decode_spans(const Bytes& payload) {
  WireReader r(payload);
  HVAC_ASSIGN_OR_RETURN(uint32_t version, r.get_u32());
  if (version != kSpanDumpVersion) {
    return Error(ErrorCode::kProtocol, "unknown span dump version");
  }
  HVAC_ASSIGN_OR_RETURN(uint32_t count, r.get_u32());
  std::vector<SpanDump> out;
  out.reserve(std::min<uint32_t>(count, 1u << 20));
  for (uint32_t i = 0; i < count; ++i) {
    SpanDump d;
    HVAC_ASSIGN_OR_RETURN(d.trace_id, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.start_ns, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.dur_ns, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.arg, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.span_id, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.parent_id, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.tid, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.flags, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.name, r.get_string());
    out.push_back(std::move(d));
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string spans_to_chrome_json(
    const std::vector<std::pair<std::string, std::vector<SpanDump>>>&
        endpoints) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (size_t pid = 0; pid < endpoints.size(); ++pid) {
    const auto& [endpoint, spans] = endpoints[pid];
    // Process-name metadata row so chrome://tracing labels each
    // endpoint by its address rather than a bare pid number.
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
                  "\"tid\":0,\"args\":{\"name\":\"",
                  pid);
    out += buf;
    append_json_escaped(out, endpoint);
    out += "\"}}";
    if (spans.empty()) continue;
    uint64_t min_start = UINT64_MAX;
    for (const auto& s : spans) min_start = std::min(min_start, s.start_ns);
    for (const auto& s : spans) {
      out += ",{\"name\":\"";
      append_json_escaped(out, s.name);
      // Chrome wants microsecond floats; keep ns precision in the
      // fraction. Ids go in args so spans stay joinable after export.
      std::snprintf(
          buf, sizeof(buf),
          "\",\"cat\":\"hvac\",\"ph\":\"X\",\"pid\":%zu,\"tid\":%u,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":\"%016" PRIx64
          "\",\"span_id\":%u,\"parent_id\":%u,\"arg\":%" PRIu64 "}}",
          pid, s.tid, double(s.start_ns - min_start) / 1e3,
          double(s.dur_ns) / 1e3, s.trace_id, s.span_id, s.parent_id, s.arg);
      out += buf;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace hvac::core
