#include "core/trace_wire.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace hvac::core {

using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {
constexpr uint32_t kSpanDumpVersion = 2;

uint64_t clock_ns(clockid_t clk) {
  timespec ts{};
  ::clock_gettime(clk, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

Bytes encode_spans(const std::vector<trace::SpanRecord>& spans) {
  WireWriter w;
  w.put_u32(kSpanDumpVersion);
  // Clock pair sampled now: both reads back to back, so the skew
  // between them is bounded by one clock_gettime (tens of ns).
  w.put_u64(clock_ns(CLOCK_REALTIME));
  w.put_u64(clock_ns(CLOCK_MONOTONIC));
  w.put_u32(static_cast<uint32_t>(spans.size()));
  for (const auto& s : spans) {
    w.put_u64(s.trace_id);
    w.put_u64(s.start_ns);
    w.put_u64(s.dur_ns);
    w.put_u64(s.arg);
    w.put_u32(s.span_id);
    w.put_u32(s.parent_id);
    w.put_u32(s.tid);
    w.put_u32(s.flags);
    w.put_string(s.name != nullptr ? s.name : "?");
  }
  return std::move(w).take();
}

Result<std::vector<SpanDump>> decode_spans(const Bytes& payload) {
  return decode_spans(payload, nullptr);
}

Result<std::vector<SpanDump>> decode_spans(const Bytes& payload,
                                           SpanDumpClock* clock) {
  WireReader r(payload);
  if (clock != nullptr) *clock = SpanDumpClock{};
  HVAC_ASSIGN_OR_RETURN(uint32_t version, r.get_u32());
  if (version != 1 && version != kSpanDumpVersion) {
    return Error(ErrorCode::kProtocol, "unknown span dump version");
  }
  if (version >= 2) {
    HVAC_ASSIGN_OR_RETURN(uint64_t realtime_ns, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(uint64_t mono_ns, r.get_u64());
    if (clock != nullptr) *clock = SpanDumpClock{realtime_ns, mono_ns};
  }
  HVAC_ASSIGN_OR_RETURN(uint32_t count, r.get_u32());
  std::vector<SpanDump> out;
  out.reserve(std::min<uint32_t>(count, 1u << 20));
  for (uint32_t i = 0; i < count; ++i) {
    SpanDump d;
    HVAC_ASSIGN_OR_RETURN(d.trace_id, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.start_ns, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.dur_ns, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.arg, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(d.span_id, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.parent_id, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.tid, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.flags, r.get_u32());
    HVAC_ASSIGN_OR_RETURN(d.name, r.get_string());
    out.push_back(std::move(d));
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string spans_to_chrome_json(
    const std::vector<EndpointSpans>& endpoints) {
  // Common zero for clock-bearing endpoints: the earliest span across
  // all of them, rebased onto wall time via each endpoint's
  // (REALTIME, MONOTONIC) sample pair. v1 endpoints (no sample) keep
  // a private zero — their spans stay internally consistent but are
  // not positioned against the others.
  uint64_t common_zero = UINT64_MAX;
  for (const auto& ep : endpoints) {
    if (!ep.clock.valid()) continue;
    for (const auto& s : ep.spans) {
      common_zero = std::min(common_zero, s.start_ns + ep.clock.offset_ns());
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (size_t pid = 0; pid < endpoints.size(); ++pid) {
    const auto& ep = endpoints[pid];
    // Process-name metadata row so chrome://tracing labels each
    // endpoint by its address rather than a bare pid number.
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
                  "\"tid\":0,\"args\":{\"name\":\"",
                  pid);
    out += buf;
    append_json_escaped(out, ep.name);
    out += "\"}}";
    if (ep.spans.empty()) continue;
    const bool aligned = ep.clock.valid() && common_zero != UINT64_MAX;
    uint64_t min_start = UINT64_MAX;
    for (const auto& s : ep.spans) {
      min_start = std::min(min_start, s.start_ns);
    }
    for (const auto& s : ep.spans) {
      out += ",{\"name\":\"";
      append_json_escaped(out, s.name);
      // ts = (wall - common_zero) when aligned, else (mono -
      // min_start). Signed 128-bit keeps the subtraction exact even if
      // a skewed realtime clock puts an endpoint before common zero.
      const __int128 ts_ns =
          aligned ? static_cast<__int128>(s.start_ns) +
                        ep.clock.offset_ns() - common_zero
                  : static_cast<__int128>(s.start_ns) - min_start;
      // Chrome wants microsecond floats; keep ns precision in the
      // fraction. Ids go in args so spans stay joinable after export.
      std::snprintf(
          buf, sizeof(buf),
          "\",\"cat\":\"hvac\",\"ph\":\"X\",\"pid\":%zu,\"tid\":%u,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":\"%016" PRIx64
          "\",\"span_id\":%u,\"parent_id\":%u,\"arg\":%" PRIu64 "}}",
          pid, s.tid, double(static_cast<int64_t>(ts_ns)) / 1e3,
          double(s.dur_ns) / 1e3, s.trace_id, s.span_id, s.parent_id, s.arg);
      out += buf;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace hvac::core
