#include "core/fd_table.h"

namespace hvac::core {

int FdTable::insert(FdEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int vfd = next_fd_++;
  entries_.emplace(vfd, std::move(entry));
  return vfd;
}

Result<FdEntry> FdTable::get(int vfd) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(vfd);
  if (it == entries_.end()) {
    return Error(ErrorCode::kBadFd, "unknown virtual fd " +
                                        std::to_string(vfd));
  }
  return it->second;
}

Status FdTable::set_offset(int vfd, uint64_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(vfd);
  if (it == entries_.end()) {
    return Error(ErrorCode::kBadFd, "unknown virtual fd " +
                                        std::to_string(vfd));
  }
  it->second.offset = offset;
  return Status::Ok();
}

Result<uint64_t> FdTable::reserve_offset(int vfd, uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(vfd);
  if (it == entries_.end()) {
    return Error(ErrorCode::kBadFd, "unknown virtual fd " +
                                        std::to_string(vfd));
  }
  const uint64_t offset = it->second.offset;
  it->second.offset = offset + count;
  return offset;
}

Status FdTable::rewind_offset(int vfd, uint64_t reserved_end,
                              uint64_t actual_end) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(vfd);
  if (it == entries_.end()) {
    return Error(ErrorCode::kBadFd, "unknown virtual fd " +
                                        std::to_string(vfd));
  }
  if (it->second.offset == reserved_end) {
    it->second.offset = actual_end;
  }
  return Status::Ok();
}

Status FdTable::replace(int vfd, FdEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(vfd);
  if (it == entries_.end()) {
    return Error(ErrorCode::kBadFd, "unknown virtual fd " +
                                        std::to_string(vfd));
  }
  it->second = std::move(entry);
  return Status::Ok();
}

Result<FdEntry> FdTable::erase(int vfd) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(vfd);
  if (it == entries_.end()) {
    return Error(ErrorCode::kBadFd, "unknown virtual fd " +
                                        std::to_string(vfd));
  }
  FdEntry entry = std::move(it->second);
  entries_.erase(it);
  return entry;
}

size_t FdTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace hvac::core
