#include "core/flush_manager.h"

#include <algorithm>
#include <chrono>

#include "common/env.h"
#include "common/log.h"
#include "common/trace.h"

namespace hvac::core {

namespace {
constexpr int64_t kBreakerPollMs = 20;
}  // namespace

FlushManager::Options FlushManager::Options::from_env() {
  Options o;
  o.queue_capacity = static_cast<size_t>(std::max<int64_t>(
      1, env_int_or("HVAC_FLUSH_QUEUE", static_cast<int64_t>(o.queue_capacity))));
  o.threads = static_cast<size_t>(std::max<int64_t>(
      1, env_int_or("HVAC_FLUSH_THREADS", static_cast<int64_t>(o.threads))));
  o.max_attempts = static_cast<int>(
      env_int_or("HVAC_FLUSH_RETRIES", o.max_attempts));
  o.retry_backoff_ms = static_cast<int>(
      env_int_or("HVAC_FLUSH_BACKOFF_MS", o.retry_backoff_ms));
  o.breaker = rpc::BreakerOptions::from_env();
  return o;
}

FlushManager::FlushManager(Options options, FlushFn flush, DoneFn done)
    : options_(options),
      flush_(std::move(flush)),
      done_(std::move(done)),
      pfs_health_("pfs", options.breaker) {
  workers_.reserve(options_.threads);
  for (size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

FlushManager::~FlushManager() { shutdown(); }

Status FlushManager::submit(const std::string& logical_path) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_) {
      return Error(ErrorCode::kCancelled, "flush manager stopped");
    }
    auto it = state_.find(logical_path);
    if (it != state_.end()) {
      if (it->second.queued) return Status::Ok();  // already pending
      if (it->second.inflight) {
        // The in-flight copy may predate the bytes just written;
        // flush again once it lands.
        it->second.dirtied_again = true;
        return Status::Ok();
      }
    }
    if (queue_.size() < options_.queue_capacity) break;
    space_cv_.wait(lock);  // backpressure: never shed a dirty path
  }
  enqueue_locked(logical_path);
  return Status::Ok();
}

Status FlushManager::resubmit(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stop_) {
    return Error(ErrorCode::kCancelled, "flush manager stopped");
  }
  auto it = state_.find(logical_path);
  if (it != state_.end()) {
    if (it->second.queued) return Status::Ok();
    if (it->second.inflight) {
      it->second.dirtied_again = true;
      return Status::Ok();
    }
  }
  enqueue_locked(logical_path);
  return Status::Ok();
}

void FlushManager::enqueue_locked(const std::string& logical_path) {
  PathState& st = state_[logical_path];
  st.queued = true;
  if (st.first_submit_ms == 0) st.first_submit_ms = rpc::steady_now_ms();
  queue_.push_back(logical_path);
  work_cv_.notify_one();
}

Status FlushManager::wait(const std::string& logical_path) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return stop_ || state_.find(logical_path) == state_.end();
  });
  if (state_.find(logical_path) == state_.end()) return Status::Ok();
  return Error(ErrorCode::kCancelled, "flush manager stopped");
}

Status FlushManager::drain(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto clean = [&] { return stop_ || state_.empty(); };
  if (timeout_ms <= 0) {
    done_cv_.wait(lock, clean);
  } else if (!done_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                clean)) {
    return Error(ErrorCode::kTimeout,
                 "flush drain: " + std::to_string(state_.size()) +
                     " dirty path(s) remain");
  }
  if (state_.empty()) return Status::Ok();
  return Error(ErrorCode::kCancelled, "flush manager stopped");
}

void FlushManager::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      // Already stopped; workers may still be joining below.
    }
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  done_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void FlushManager::worker_loop() {
  for (;;) {
    std::string path;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      path = std::move(queue_.front());
      queue_.pop_front();
      auto& st = state_[path];
      st.queued = false;
      st.inflight = true;
      space_cv_.notify_one();
    }
    if (!flush_one(path)) return;  // shutdown mid-flush
  }
}

bool FlushManager::flush_one(const std::string& path) {
  int attempts = 0;
  bool flushed = false;
  bool gone = false;  // source vanished: nothing left to flush
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) break;
    }
    if (!pfs_health_.allow_request()) {
      // Circuit open: the PFS is down — sleep a beat instead of
      // spinning; the breaker decides when the next probe goes out.
      std::this_thread::sleep_for(std::chrono::milliseconds(kBreakerPollMs));
      continue;
    }
    trace::Span span("flush.pfs", static_cast<uint64_t>(attempts));
    const Status s = flush_(path);
    if (s.ok()) {
      pfs_health_.record_success();
      flushed = true;
      break;
    }
    if (s.error().code == ErrorCode::kNotFound) {
      // The local copy was evicted/purged under us. Whatever dirty
      // bytes existed are unrecoverable from here; count a failure
      // and drop the path rather than spinning forever.
      failures_.fetch_add(1, std::memory_order_relaxed);
      HVAC_LOG_WARN("flush: local copy of " << path
                                            << " vanished: "
                                            << s.error().to_string());
      gone = true;
      break;
    }
    pfs_health_.record_failure();
    retries_.fetch_add(1, std::memory_order_relaxed);
    ++attempts;
    if (options_.max_attempts > 0 && attempts >= options_.max_attempts) {
      // Budget exhausted: go to the back of the line (never drop
      // dirty data) and let other paths make progress.
      failures_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex_);
      auto& st = state_[path];
      st.inflight = false;
      st.dirtied_again = false;
      st.queued = true;
      queue_.push_back(path);
      work_cv_.notify_one();
      return !stop_;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        options_.retry_backoff_ms * std::min(attempts, 8)));
  }

  std::unique_lock<std::mutex> lock(mutex_);
  auto it = state_.find(path);
  if (it == state_.end()) return !stop_;  // defensive
  it->second.inflight = false;
  if (flushed && it->second.dirtied_again) {
    // New bytes landed while we copied: the flush we just did may be
    // stale. Keep the path dirty and go again.
    it->second.dirtied_again = false;
    it->second.queued = true;
    it->second.first_submit_ms = rpc::steady_now_ms();
    queue_.push_back(path);
    work_cv_.notify_one();
    return !stop_;
  }
  state_.erase(it);
  done_cv_.notify_all();
  const bool keep_running = !stop_;
  lock.unlock();
  if (flushed) {
    flushed_files_.fetch_add(1, std::memory_order_relaxed);
    if (done_) done_(path);
  }
  (void)gone;
  return keep_running;
}

FlushManager::Stats FlushManager::stats() const {
  Stats s;
  s.flushed_files = flushed_files_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  const int64_t now = rpc::steady_now_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  s.queue_depth = queue_.size();
  int64_t oldest = 0;
  for (const auto& [path, st] : state_) {
    if (st.inflight) ++s.inflight;
    if (st.first_submit_ms != 0 &&
        (oldest == 0 || st.first_submit_ms < oldest)) {
      oldest = st.first_submit_ms;
    }
  }
  if (oldest != 0 && now > oldest) {
    s.oldest_dirty_ms = static_cast<uint64_t>(now - oldest);
  }
  s.breaker_state = static_cast<uint8_t>(pfs_health_.state());
  return s;
}

bool FlushManager::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.empty();
}

}  // namespace hvac::core
