#include "core/metrics_frame.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace hvac::core {

using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

void HandleCacheStats::merge(const HandleCacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  open += other.open;
  pinned += other.pinned;
  deferred_closes += other.deferred_closes;
  capacity += other.capacity;
}

void BufferPoolStats::merge(const BufferPoolStats& other) {
  leases += other.leases;
  pool_hits += other.pool_hits;
  fallback_allocs += other.fallback_allocs;
  recycled += other.recycled;
  dropped += other.dropped;
}

void ReadAheadStats::merge(const ReadAheadStats& other) {
  issued += other.issued;
  consumed += other.consumed;
  wasted += other.wasted;
}

void ResilienceStats::merge(const ResilienceStats& other) {
  breaker_opens += other.breaker_opens;
  breaker_closes += other.breaker_closes;
  breaker_probes += other.breaker_probes;
  breaker_shed += other.breaker_shed;
  retries += other.retries;
  deadline_misses += other.deadline_misses;
  server_shed += other.server_shed;
  mover_rejects += other.mover_rejects;
  drains += other.drains;
  drained_requests += other.drained_requests;
  faults_injected += other.faults_injected;
}

void ZeroCopyStats::merge(const ZeroCopyStats& other) {
  sendfile_sends += other.sendfile_sends;
  splice_sends += other.splice_sends;
  fallback_sends += other.fallback_sends;
  sendfile_bytes += other.sendfile_bytes;
  splice_bytes += other.splice_bytes;
  short_resumes += other.short_resumes;
}

void MetaCacheStats::merge(const MetaCacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  expired += other.expired;
  invalidated += other.invalidated;
}

void TraceStats::merge(const TraceStats& other) {
  emitted += other.emitted;
  dropped += other.dropped;
  rings += other.rings;
  ring_capacity += other.ring_capacity;
  occupancy += other.occupancy;
}

void ReactorStats::merge(const ReactorStats& other) {
  if (other.reactors.size() > reactors.size()) {
    reactors.resize(other.reactors.size());
  }
  for (size_t i = 0; i < other.reactors.size(); ++i) {
    reactors[i].conns += other.reactors[i].conns;
    reactors[i].requests += other.reactors[i].requests;
    reactors[i].steals += other.reactors[i].steals;
    reactors[i].shed += other.reactors[i].shed;
    reactors[i].steal_backoffs += other.reactors[i].steal_backoffs;
  }
}

void WriteBackStats::merge(const WriteBackStats& other) {
  writes += other.writes;
  bytes_written += other.bytes_written;
  fsyncs += other.fsyncs;
  dirty_bytes += other.dirty_bytes;
  dirty_files += other.dirty_files;
  journal_records += other.journal_records;
  journal_bytes += other.journal_bytes;
  flushed_files += other.flushed_files;
  flush_retries += other.flush_retries;
  flush_failures += other.flush_failures;
  flush_queue_depth += other.flush_queue_depth;
  flush_inflight += other.flush_inflight;
  flush_lag_ms = flush_lag_ms > other.flush_lag_ms ? flush_lag_ms
                                                   : other.flush_lag_ms;
  write_through_sheds += other.write_through_sheds;
  write_through_bytes += other.write_through_bytes;
  replay_writes += other.replay_writes;
  replay_bytes += other.replay_bytes;
  replay_truncated_bytes += other.replay_truncated_bytes;
  replay_dirty_files += other.replay_dirty_files;
}

void StallStats::merge(const StallStats& other) {
  for (const StallEpochRow& oe : other.epochs) {
    StallEpochRow* row = nullptr;
    for (StallEpochRow& e : epochs) {
      if (e.epoch == oe.epoch) {
        row = &e;
        break;
      }
    }
    if (row == nullptr) {
      epochs.push_back(oe);
      continue;
    }
    row->reads += oe.reads;
    row->total_ns += oe.total_ns;
    row->local_hit_ns += oe.local_hit_ns;
    row->remote_rpc_ns += oe.remote_rpc_ns;
    row->pfs_wait_ns += oe.pfs_wait_ns;
    row->backpressure_ns += oe.backpressure_ns;
    row->retry_ns += oe.retry_ns;
  }
  std::sort(epochs.begin(), epochs.end(),
            [](const StallEpochRow& a, const StallEpochRow& b) {
              return a.epoch < b.epoch;
            });
}

void PrefetchStats::merge(const PrefetchStats& other) {
  planned += other.planned;
  issued += other.issued;
  completed += other.completed;
  shed += other.shed;
  late += other.late;
  hit_after_prefetch += other.hit_after_prefetch;
  deduped += other.deduped;
  dedup_inflight += other.dedup_inflight;
  paced_delay.merge(other.paced_delay);
}

void MetricsFrame::merge(const MetricsFrame& other) {
  version = version > other.version ? version : other.version;
  cache.hits += other.cache.hits;
  cache.misses += other.cache.misses;
  cache.dedup_waits += other.cache.dedup_waits;
  cache.evictions += other.cache.evictions;
  cache.bytes_from_cache += other.cache.bytes_from_cache;
  cache.bytes_from_pfs += other.cache.bytes_from_pfs;
  cache.pfs_fallbacks += other.cache.pfs_fallbacks;
  open_fds += other.open_fds;
  handle_cache.merge(other.handle_cache);
  buffer_pool.merge(other.buffer_pool);
  readahead.merge(other.readahead);
  resilience.merge(other.resilience);
  zerocopy.merge(other.zerocopy);
  meta_cache.merge(other.meta_cache);
  trace.merge(other.trace);
  reactor.merge(other.reactor);
  write_back.merge(other.write_back);
  prefetch.merge(other.prefetch);
  stall.merge(other.stall);
  for (const auto& [op, snap] : other.op_latency) {
    op_latency[op].merge(snap);
  }
}

Bytes MetricsFrame::encode() const {
  WireWriter w;
  // v1 prefix: byte-identical to the legacy payload.
  w.put_u64(cache.hits);
  w.put_u64(cache.misses);
  w.put_u64(cache.dedup_waits);
  w.put_u64(cache.evictions);
  w.put_u64(cache.bytes_from_cache);
  w.put_u64(cache.bytes_from_pfs);
  w.put_u64(cache.pfs_fallbacks);
  w.put_u64(open_fds);

  w.put_u32(kMetricsFrameMagic);
  w.put_u16(kFrameVersion);
  w.put_u16(12);  // section count

  {
    WireWriter s;
    s.put_u64(handle_cache.hits);
    s.put_u64(handle_cache.misses);
    s.put_u64(handle_cache.open);
    s.put_u64(handle_cache.pinned);
    s.put_u64(handle_cache.deferred_closes);
    s.put_u64(handle_cache.capacity);
    w.put_u16(kSectionHandleCache);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(buffer_pool.leases);
    s.put_u64(buffer_pool.pool_hits);
    s.put_u64(buffer_pool.fallback_allocs);
    s.put_u64(buffer_pool.recycled);
    s.put_u64(buffer_pool.dropped);
    w.put_u16(kSectionBufferPool);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(readahead.issued);
    s.put_u64(readahead.consumed);
    s.put_u64(readahead.wasted);
    w.put_u16(kSectionReadAhead);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u16(static_cast<uint16_t>(op_latency.size()));
    for (const auto& [op, snap] : op_latency) {
      s.put_u16(op);
      s.put_u64(snap.count);
      s.put_u64(snap.total_ns);
      s.put_u16(static_cast<uint16_t>(kLatencyBuckets));
      for (uint64_t b : snap.buckets) s.put_u64(b);
    }
    w.put_u16(kSectionLatency);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(resilience.breaker_opens);
    s.put_u64(resilience.breaker_closes);
    s.put_u64(resilience.breaker_probes);
    s.put_u64(resilience.breaker_shed);
    s.put_u64(resilience.retries);
    s.put_u64(resilience.deadline_misses);
    s.put_u64(resilience.server_shed);
    s.put_u64(resilience.mover_rejects);
    s.put_u64(resilience.drains);
    s.put_u64(resilience.drained_requests);
    s.put_u64(resilience.faults_injected);
    w.put_u16(kSectionResilience);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(zerocopy.sendfile_sends);
    s.put_u64(zerocopy.splice_sends);
    s.put_u64(zerocopy.fallback_sends);
    s.put_u64(zerocopy.sendfile_bytes);
    s.put_u64(zerocopy.splice_bytes);
    s.put_u64(zerocopy.short_resumes);
    w.put_u16(kSectionZeroCopy);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(meta_cache.hits);
    s.put_u64(meta_cache.misses);
    s.put_u64(meta_cache.expired);
    s.put_u64(meta_cache.invalidated);
    w.put_u16(kSectionMetaCache);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(trace.emitted);
    s.put_u64(trace.dropped);
    s.put_u64(trace.rings);
    s.put_u64(trace.ring_capacity);
    s.put_u64(trace.occupancy);
    w.put_u16(kSectionTrace);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u16(static_cast<uint16_t>(reactor.reactors.size()));
    s.put_u16(5);  // u64 words per reactor row
    for (const auto& pr : reactor.reactors) {
      s.put_u64(pr.conns);
      s.put_u64(pr.requests);
      s.put_u64(pr.steals);
      s.put_u64(pr.shed);
      s.put_u64(pr.steal_backoffs);
    }
    w.put_u16(kSectionReactors);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(write_back.writes);
    s.put_u64(write_back.bytes_written);
    s.put_u64(write_back.fsyncs);
    s.put_u64(write_back.dirty_bytes);
    s.put_u64(write_back.dirty_files);
    s.put_u64(write_back.journal_records);
    s.put_u64(write_back.journal_bytes);
    s.put_u64(write_back.flushed_files);
    s.put_u64(write_back.flush_retries);
    s.put_u64(write_back.flush_failures);
    s.put_u64(write_back.flush_queue_depth);
    s.put_u64(write_back.flush_inflight);
    s.put_u64(write_back.flush_lag_ms);
    s.put_u64(write_back.write_through_sheds);
    s.put_u64(write_back.write_through_bytes);
    s.put_u64(write_back.replay_writes);
    s.put_u64(write_back.replay_bytes);
    s.put_u64(write_back.replay_truncated_bytes);
    s.put_u64(write_back.replay_dirty_files);
    w.put_u16(kSectionWriteBack);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u64(prefetch.planned);
    s.put_u64(prefetch.issued);
    s.put_u64(prefetch.completed);
    s.put_u64(prefetch.shed);
    s.put_u64(prefetch.late);
    s.put_u64(prefetch.hit_after_prefetch);
    s.put_u64(prefetch.deduped);
    s.put_u64(prefetch.dedup_inflight);
    s.put_u64(prefetch.reserved);
    s.put_u64(prefetch.paced_delay.count);
    s.put_u64(prefetch.paced_delay.total_ns);
    s.put_u16(static_cast<uint16_t>(kLatencyBuckets));
    for (uint64_t b : prefetch.paced_delay.buckets) s.put_u64(b);
    w.put_u16(kSectionPrefetch);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  {
    WireWriter s;
    s.put_u16(static_cast<uint16_t>(stall.epochs.size()));
    s.put_u16(8);  // u64 words per epoch row
    for (const StallEpochRow& e : stall.epochs) {
      s.put_u64(e.epoch);
      s.put_u64(e.reads);
      s.put_u64(e.total_ns);
      s.put_u64(e.local_hit_ns);
      s.put_u64(e.remote_rpc_ns);
      s.put_u64(e.pfs_wait_ns);
      s.put_u64(e.backpressure_ns);
      s.put_u64(e.retry_ns);
    }
    w.put_u16(kSectionStall);
    w.put_blob(s.bytes().data(), s.bytes().size());
  }
  return std::move(w).take();
}

namespace {

// Section bodies are decoded tolerantly: read the fields this build
// knows, stop at the section end, ignore any newer tail. A short body
// (older peer) leaves the remaining fields at zero.
void read_u64s(WireReader& r, std::initializer_list<uint64_t*> fields) {
  for (uint64_t* f : fields) {
    auto v = r.get_u64();
    if (!v.ok()) return;
    *f = *v;
  }
}

void decode_latency(WireReader& r,
                    std::map<uint16_t, LatencySnapshot>* out) {
  auto op_count = r.get_u16();
  if (!op_count.ok()) return;
  for (uint16_t i = 0; i < *op_count; ++i) {
    auto op = r.get_u16();
    auto count = r.get_u64();
    auto total = r.get_u64();
    auto n_buckets = r.get_u16();
    if (!op.ok() || !count.ok() || !total.ok() || !n_buckets.ok()) return;
    LatencySnapshot snap;
    snap.count = *count;
    snap.total_ns = *total;
    for (uint16_t b = 0; b < *n_buckets; ++b) {
      auto v = r.get_u64();
      if (!v.ok()) return;
      // A peer with more buckets than us folds its tail into our last
      // bucket so count stays consistent with the bucket sum.
      const size_t slot = b < kLatencyBuckets ? b : kLatencyBuckets - 1;
      snap.buckets[slot] += *v;
    }
    (*out)[*op].merge(snap);
  }
}

void decode_reactors(WireReader& r, ReactorStats* out) {
  auto count = r.get_u16();
  auto words = r.get_u16();
  if (!count.ok() || !words.ok()) return;
  for (uint16_t i = 0; i < *count; ++i) {
    ReactorStats::PerReactor pr;
    uint64_t* fields[] = {&pr.conns, &pr.requests, &pr.steals, &pr.shed,
                          &pr.steal_backoffs};
    for (uint16_t w = 0; w < *words; ++w) {
      auto v = r.get_u64();
      if (!v.ok()) return;
      if (w < 5) *fields[w] = *v;  // newer rows: extra words ignored
    }
    out->reactors.push_back(pr);
  }
}

void decode_prefetch(WireReader& r, PrefetchStats* out) {
  read_u64s(r, {&out->planned, &out->issued, &out->completed, &out->shed,
                &out->late, &out->hit_after_prefetch, &out->deduped,
                &out->dedup_inflight, &out->reserved,
                &out->paced_delay.count, &out->paced_delay.total_ns});
  auto n_buckets = r.get_u16();
  if (!n_buckets.ok()) return;
  for (uint16_t b = 0; b < *n_buckets; ++b) {
    auto v = r.get_u64();
    if (!v.ok()) return;
    // A peer with more buckets folds its tail into our last bucket so
    // count stays consistent with the bucket sum.
    const size_t slot = b < kLatencyBuckets ? b : kLatencyBuckets - 1;
    out->paced_delay.buckets[slot] += *v;
  }
}

void decode_stall(WireReader& r, StallStats* out) {
  auto count = r.get_u16();
  auto words = r.get_u16();
  if (!count.ok() || !words.ok()) return;
  for (uint16_t i = 0; i < *count; ++i) {
    StallEpochRow e;
    uint64_t* fields[] = {&e.epoch,        &e.reads,
                          &e.total_ns,     &e.local_hit_ns,
                          &e.remote_rpc_ns, &e.pfs_wait_ns,
                          &e.backpressure_ns, &e.retry_ns};
    for (uint16_t w = 0; w < *words; ++w) {
      auto v = r.get_u64();
      if (!v.ok()) return;
      if (w < 8) *fields[w] = *v;  // newer rows: extra words ignored
    }
    out->epochs.push_back(e);
  }
}

}  // namespace

Result<MetricsFrame> MetricsFrame::decode(const Bytes& bytes) {
  WireReader r(bytes);
  MetricsFrame f;
  HVAC_ASSIGN_OR_RETURN(f.cache.hits, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(f.cache.misses, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(f.cache.dedup_waits, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(f.cache.evictions, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(f.cache.bytes_from_cache, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(f.cache.bytes_from_pfs, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(f.cache.pfs_fallbacks, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(f.open_fds, r.get_u64());

  // Anything past the prefix must announce itself; a missing or
  // foreign magic means a v1 peer (or one newer than the magic itself,
  // which a versioned magic would signal — cross that bridge then).
  f.version = 1;
  auto magic = r.get_u32();
  if (!magic.ok() || *magic != kMetricsFrameMagic) return f;
  auto version = r.get_u16();
  auto section_count = r.get_u16();
  if (!version.ok() || !section_count.ok()) return f;
  f.version = *version;

  for (uint16_t i = 0; i < *section_count; ++i) {
    auto id = r.get_u16();
    if (!id.ok()) break;
    auto body = r.get_blob_view();
    if (!body.ok()) break;
    WireReader s(body->data, body->size);
    switch (*id) {
      case kSectionHandleCache:
        read_u64s(s, {&f.handle_cache.hits, &f.handle_cache.misses,
                      &f.handle_cache.open, &f.handle_cache.pinned,
                      &f.handle_cache.deferred_closes,
                      &f.handle_cache.capacity});
        break;
      case kSectionBufferPool:
        read_u64s(s, {&f.buffer_pool.leases, &f.buffer_pool.pool_hits,
                      &f.buffer_pool.fallback_allocs,
                      &f.buffer_pool.recycled, &f.buffer_pool.dropped});
        break;
      case kSectionReadAhead:
        read_u64s(s, {&f.readahead.issued, &f.readahead.consumed,
                      &f.readahead.wasted});
        break;
      case kSectionLatency:
        decode_latency(s, &f.op_latency);
        break;
      case kSectionResilience:
        read_u64s(s, {&f.resilience.breaker_opens,
                      &f.resilience.breaker_closes,
                      &f.resilience.breaker_probes,
                      &f.resilience.breaker_shed, &f.resilience.retries,
                      &f.resilience.deadline_misses,
                      &f.resilience.server_shed,
                      &f.resilience.mover_rejects, &f.resilience.drains,
                      &f.resilience.drained_requests,
                      &f.resilience.faults_injected});
        break;
      case kSectionZeroCopy:
        read_u64s(s, {&f.zerocopy.sendfile_sends, &f.zerocopy.splice_sends,
                      &f.zerocopy.fallback_sends,
                      &f.zerocopy.sendfile_bytes, &f.zerocopy.splice_bytes,
                      &f.zerocopy.short_resumes});
        break;
      case kSectionMetaCache:
        read_u64s(s, {&f.meta_cache.hits, &f.meta_cache.misses,
                      &f.meta_cache.expired, &f.meta_cache.invalidated});
        break;
      case kSectionTrace:
        read_u64s(s, {&f.trace.emitted, &f.trace.dropped, &f.trace.rings,
                      &f.trace.ring_capacity, &f.trace.occupancy});
        break;
      case kSectionReactors:
        decode_reactors(s, &f.reactor);
        break;
      case kSectionWriteBack:
        read_u64s(s, {&f.write_back.writes, &f.write_back.bytes_written,
                      &f.write_back.fsyncs, &f.write_back.dirty_bytes,
                      &f.write_back.dirty_files,
                      &f.write_back.journal_records,
                      &f.write_back.journal_bytes,
                      &f.write_back.flushed_files,
                      &f.write_back.flush_retries,
                      &f.write_back.flush_failures,
                      &f.write_back.flush_queue_depth,
                      &f.write_back.flush_inflight,
                      &f.write_back.flush_lag_ms,
                      &f.write_back.write_through_sheds,
                      &f.write_back.write_through_bytes,
                      &f.write_back.replay_writes,
                      &f.write_back.replay_bytes,
                      &f.write_back.replay_truncated_bytes,
                      &f.write_back.replay_dirty_files});
        break;
      case kSectionPrefetch:
        decode_prefetch(s, &f.prefetch);
        break;
      case kSectionStall:
        decode_stall(s, &f.stall);
        break;
      default:
        break;  // unknown section: skipped by its length prefix
    }
  }
  return f;
}

std::string op_name(uint16_t opcode) {
  // Mirrors hvac::proto::Opcode; the frame is part of the protocol, so
  // these names are as stable as the opcode values themselves.
  switch (opcode) {
    case 1: return "ping";
    case 2: return "open";
    case 3: return "read";
    case 4: return "close";
    case 5: return "stat";
    case 6: return "prefetch";
    case 7: return "metrics";
    case 8: return "read_segment";
    case 9: return "read_scatter";
    case 10: return "prefetch_batch";
    case 11: return "trace";
    case 12: return "packed_index";
    case 13: return "write_open";
    case 14: return "write";
    case 15: return "fsync";
    case 16: return "write_close";
    case 17: return "time_series";
    default: return "op" + std::to_string(opcode);
  }
}

std::string MetricsFrame::to_json() const {
  std::ostringstream o;
  o << "{\"version\":" << version << ",\"cache\":{"
    << "\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
    << ",\"hit_rate\":" << cache.hit_rate()
    << ",\"dedup_waits\":" << cache.dedup_waits
    << ",\"evictions\":" << cache.evictions
    << ",\"bytes_from_cache\":" << cache.bytes_from_cache
    << ",\"bytes_from_pfs\":" << cache.bytes_from_pfs
    << ",\"pfs_fallbacks\":" << cache.pfs_fallbacks << "}"
    << ",\"open_fds\":" << open_fds << ",\"handle_cache\":{"
    << "\"hits\":" << handle_cache.hits
    << ",\"misses\":" << handle_cache.misses
    << ",\"open\":" << handle_cache.open
    << ",\"pinned\":" << handle_cache.pinned
    << ",\"deferred_closes\":" << handle_cache.deferred_closes
    << ",\"capacity\":" << handle_cache.capacity << "}"
    << ",\"buffer_pool\":{\"leases\":" << buffer_pool.leases
    << ",\"pool_hits\":" << buffer_pool.pool_hits
    << ",\"fallback_allocs\":" << buffer_pool.fallback_allocs
    << ",\"recycled\":" << buffer_pool.recycled
    << ",\"dropped\":" << buffer_pool.dropped << "}"
    << ",\"read_ahead\":{\"issued\":" << readahead.issued
    << ",\"consumed\":" << readahead.consumed
    << ",\"wasted\":" << readahead.wasted << "}"
    << ",\"resilience\":{\"breaker_opens\":" << resilience.breaker_opens
    << ",\"breaker_closes\":" << resilience.breaker_closes
    << ",\"breaker_probes\":" << resilience.breaker_probes
    << ",\"breaker_shed\":" << resilience.breaker_shed
    << ",\"retries\":" << resilience.retries
    << ",\"deadline_misses\":" << resilience.deadline_misses
    << ",\"server_shed\":" << resilience.server_shed
    << ",\"mover_rejects\":" << resilience.mover_rejects
    << ",\"drains\":" << resilience.drains
    << ",\"drained_requests\":" << resilience.drained_requests
    << ",\"faults_injected\":" << resilience.faults_injected << "}"
    << ",\"zero_copy\":{\"sendfile_sends\":" << zerocopy.sendfile_sends
    << ",\"splice_sends\":" << zerocopy.splice_sends
    << ",\"fallback_sends\":" << zerocopy.fallback_sends
    << ",\"sendfile_bytes\":" << zerocopy.sendfile_bytes
    << ",\"splice_bytes\":" << zerocopy.splice_bytes
    << ",\"short_resumes\":" << zerocopy.short_resumes << "}"
    << ",\"meta_cache\":{\"hits\":" << meta_cache.hits
    << ",\"misses\":" << meta_cache.misses
    << ",\"expired\":" << meta_cache.expired
    << ",\"invalidated\":" << meta_cache.invalidated << "}"
    << ",\"trace\":{\"emitted\":" << trace.emitted
    << ",\"dropped\":" << trace.dropped << ",\"rings\":" << trace.rings
    << ",\"ring_capacity\":" << trace.ring_capacity
    << ",\"occupancy\":" << trace.occupancy << "}"
    << ",\"reactors\":[";
  for (size_t i = 0; i < reactor.reactors.size(); ++i) {
    const auto& pr = reactor.reactors[i];
    if (i != 0) o << ",";
    o << "{\"conns\":" << pr.conns << ",\"requests\":" << pr.requests
      << ",\"steals\":" << pr.steals << ",\"shed\":" << pr.shed
      << ",\"steal_backoffs\":" << pr.steal_backoffs << "}";
  }
  o << "]"
    << ",\"write_back\":{\"writes\":" << write_back.writes
    << ",\"bytes_written\":" << write_back.bytes_written
    << ",\"fsyncs\":" << write_back.fsyncs
    << ",\"dirty_bytes\":" << write_back.dirty_bytes
    << ",\"dirty_files\":" << write_back.dirty_files
    << ",\"journal_records\":" << write_back.journal_records
    << ",\"journal_bytes\":" << write_back.journal_bytes
    << ",\"flushed_files\":" << write_back.flushed_files
    << ",\"flush_retries\":" << write_back.flush_retries
    << ",\"flush_failures\":" << write_back.flush_failures
    << ",\"flush_queue_depth\":" << write_back.flush_queue_depth
    << ",\"flush_inflight\":" << write_back.flush_inflight
    << ",\"flush_lag_ms\":" << write_back.flush_lag_ms
    << ",\"write_through_sheds\":" << write_back.write_through_sheds
    << ",\"write_through_bytes\":" << write_back.write_through_bytes
    << ",\"replay_writes\":" << write_back.replay_writes
    << ",\"replay_bytes\":" << write_back.replay_bytes
    << ",\"replay_truncated_bytes\":" << write_back.replay_truncated_bytes
    << ",\"replay_dirty_files\":" << write_back.replay_dirty_files << "}";
  {
    char paced[128];
    std::snprintf(paced, sizeof(paced),
                  "{\"count\":%" PRIu64
                  ",\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f}",
                  prefetch.paced_delay.count,
                  prefetch.paced_delay.mean_ns() / 1e3,
                  prefetch.paced_delay.percentile_ns(50) / 1e3,
                  prefetch.paced_delay.percentile_ns(99) / 1e3);
    o << ",\"prefetch\":{\"planned\":" << prefetch.planned
      << ",\"issued\":" << prefetch.issued
      << ",\"completed\":" << prefetch.completed
      << ",\"shed\":" << prefetch.shed << ",\"late\":" << prefetch.late
      << ",\"hit_after_prefetch\":" << prefetch.hit_after_prefetch
      << ",\"deduped\":" << prefetch.deduped
      << ",\"dedup_inflight\":" << prefetch.dedup_inflight
      << ",\"paced_delay_us\":" << paced << "}";
  }
  o << ",\"stall\":[";
  for (size_t i = 0; i < stall.epochs.size(); ++i) {
    const StallEpochRow& e = stall.epochs[i];
    if (i != 0) o << ",";
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"epoch\":%" PRIu64 ",\"reads\":%" PRIu64
                  ",\"stall_s\":%.6f,\"local_hit_s\":%.6f"
                  ",\"remote_rpc_s\":%.6f,\"pfs_wait_s\":%.6f"
                  ",\"backpressure_s\":%.6f,\"retry_s\":%.6f}",
                  e.epoch, e.reads, double(e.total_ns) / 1e9,
                  double(e.local_hit_ns) / 1e9,
                  double(e.remote_rpc_ns) / 1e9,
                  double(e.pfs_wait_ns) / 1e9,
                  double(e.backpressure_ns) / 1e9,
                  double(e.retry_ns) / 1e9);
    o << buf;
  }
  o << "]";
  o << ",\"latency_us\":{";
  bool first = true;
  for (const auto& [op, snap] : op_latency) {
    if (!first) o << ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64
                  ",\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f}",
                  op_name(op).c_str(), snap.count, snap.mean_ns() / 1e3,
                  snap.percentile_ns(50) / 1e3, snap.percentile_ns(99) / 1e3);
    o << buf;
  }
  o << "}}";
  return o.str();
}

}  // namespace hvac::core
