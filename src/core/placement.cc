#include "core/placement.h"

#include <algorithm>

#include "common/hash.h"
#include "rpc/health.h"

namespace hvac::core {

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kHashModulo: return "hash-modulo";
    case PlacementPolicy::kRendezvous: return "rendezvous";
    case PlacementPolicy::kJump: return "jump";
  }
  return "?";
}

Placement::Placement(uint32_t num_servers, PlacementPolicy policy,
                     uint32_t replicas)
    : num_servers_(num_servers == 0 ? 1 : num_servers),
      policy_(policy),
      replicas_(std::clamp<uint32_t>(replicas, 1, num_servers_)) {}

uint32_t Placement::home(std::string_view path) const {
  const uint64_t key = stable_hash(path);
  switch (policy_) {
    case PlacementPolicy::kHashModulo:
      return static_cast<uint32_t>(key % num_servers_);
    case PlacementPolicy::kJump:
      return static_cast<uint32_t>(
          jump_consistent_hash(key, static_cast<int32_t>(num_servers_)));
    case PlacementPolicy::kRendezvous:
      return rendezvous_home(key, 0);
  }
  return 0;
}

uint32_t Placement::rendezvous_home(uint64_t key, uint32_t rank) const {
  // Highest-random-weight: score every server; pick the (rank+1)-th
  // best. O(n) per lookup — fine for allocations of a few thousand.
  std::vector<std::pair<uint64_t, uint32_t>> top;
  top.reserve(static_cast<size_t>(rank) + 1);
  for (uint32_t s = 0; s < num_servers_; ++s) {
    const uint64_t score = hash_combine(key, mix64(s + 0x9e3779b9u));
    top.emplace_back(score, s);
  }
  std::nth_element(top.begin(), top.begin() + rank, top.end(),
                   [](const auto& a, const auto& b) { return a > b; });
  return top[rank].second;
}

std::vector<uint32_t> Placement::homes(std::string_view path) const {
  std::vector<uint32_t> out;
  out.reserve(replicas_);
  if (policy_ == PlacementPolicy::kRendezvous) {
    const uint64_t key = stable_hash(path);
    std::vector<std::pair<uint64_t, uint32_t>> scored;
    scored.reserve(num_servers_);
    for (uint32_t s = 0; s < num_servers_; ++s) {
      scored.emplace_back(hash_combine(key, mix64(s + 0x9e3779b9u)), s);
    }
    std::partial_sort(scored.begin(), scored.begin() + replicas_,
                      scored.end(),
                      [](const auto& a, const auto& b) { return a > b; });
    for (uint32_t r = 0; r < replicas_; ++r) out.push_back(scored[r].second);
    return out;
  }
  // Modulo/jump: primary plus linear successors (distinct by
  // construction since replicas_ <= num_servers_).
  const uint32_t primary = home(path);
  for (uint32_t r = 0; r < replicas_; ++r) {
    out.push_back((primary + r) % num_servers_);
  }
  return out;
}

std::vector<uint32_t> order_by_health(
    std::vector<uint32_t> homes, const std::vector<std::string>& endpoints) {
  auto& registry = rpc::HealthRegistry::global();
  std::stable_partition(
      homes.begin(), homes.end(), [&](uint32_t server) {
        if (server >= endpoints.size()) return true;
        return registry.get(endpoints[server])->state() !=
               rpc::EndpointHealth::State::kOpen;
      });
  return homes;
}

}  // namespace hvac::core
