#include "core/timeseries.h"

namespace hvac::core {

using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {

// Counter difference: clamped at zero so a peer that restarted (or a
// section that was zeroed) shows a flat interval instead of a huge
// negative spike.
uint64_t monus(uint64_t cur, uint64_t prev) {
  return cur >= prev ? cur - prev : 0;
}

LatencySnapshot snap_delta(const LatencySnapshot& cur,
                           const LatencySnapshot& prev) {
  LatencySnapshot d;
  d.count = monus(cur.count, prev.count);
  d.total_ns = monus(cur.total_ns, prev.total_ns);
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    d.buckets[i] = monus(cur.buckets[i], prev.buckets[i]);
  }
  return d;
}

}  // namespace

MetricsFrame frame_delta(const MetricsFrame& cur, const MetricsFrame& prev) {
  MetricsFrame d;
  d.version = cur.version;

  d.cache.hits = monus(cur.cache.hits, prev.cache.hits);
  d.cache.misses = monus(cur.cache.misses, prev.cache.misses);
  d.cache.dedup_waits = monus(cur.cache.dedup_waits, prev.cache.dedup_waits);
  d.cache.evictions = monus(cur.cache.evictions, prev.cache.evictions);
  d.cache.bytes_from_cache =
      monus(cur.cache.bytes_from_cache, prev.cache.bytes_from_cache);
  d.cache.bytes_from_pfs =
      monus(cur.cache.bytes_from_pfs, prev.cache.bytes_from_pfs);
  d.cache.pfs_fallbacks =
      monus(cur.cache.pfs_fallbacks, prev.cache.pfs_fallbacks);
  d.open_fds = cur.open_fds;  // gauge

  d.handle_cache.hits = monus(cur.handle_cache.hits, prev.handle_cache.hits);
  d.handle_cache.misses =
      monus(cur.handle_cache.misses, prev.handle_cache.misses);
  d.handle_cache.open = cur.handle_cache.open;      // gauge
  d.handle_cache.pinned = cur.handle_cache.pinned;  // gauge
  d.handle_cache.deferred_closes = monus(cur.handle_cache.deferred_closes,
                                         prev.handle_cache.deferred_closes);
  d.handle_cache.capacity = cur.handle_cache.capacity;  // static

  d.buffer_pool.leases = monus(cur.buffer_pool.leases, prev.buffer_pool.leases);
  d.buffer_pool.pool_hits =
      monus(cur.buffer_pool.pool_hits, prev.buffer_pool.pool_hits);
  d.buffer_pool.fallback_allocs =
      monus(cur.buffer_pool.fallback_allocs, prev.buffer_pool.fallback_allocs);
  d.buffer_pool.recycled =
      monus(cur.buffer_pool.recycled, prev.buffer_pool.recycled);
  d.buffer_pool.dropped =
      monus(cur.buffer_pool.dropped, prev.buffer_pool.dropped);

  d.readahead.issued = monus(cur.readahead.issued, prev.readahead.issued);
  d.readahead.consumed =
      monus(cur.readahead.consumed, prev.readahead.consumed);
  d.readahead.wasted = monus(cur.readahead.wasted, prev.readahead.wasted);

  d.resilience.breaker_opens =
      monus(cur.resilience.breaker_opens, prev.resilience.breaker_opens);
  d.resilience.breaker_closes =
      monus(cur.resilience.breaker_closes, prev.resilience.breaker_closes);
  d.resilience.breaker_probes =
      monus(cur.resilience.breaker_probes, prev.resilience.breaker_probes);
  d.resilience.breaker_shed =
      monus(cur.resilience.breaker_shed, prev.resilience.breaker_shed);
  d.resilience.retries = monus(cur.resilience.retries, prev.resilience.retries);
  d.resilience.deadline_misses =
      monus(cur.resilience.deadline_misses, prev.resilience.deadline_misses);
  d.resilience.server_shed =
      monus(cur.resilience.server_shed, prev.resilience.server_shed);
  d.resilience.mover_rejects =
      monus(cur.resilience.mover_rejects, prev.resilience.mover_rejects);
  d.resilience.drains = monus(cur.resilience.drains, prev.resilience.drains);
  d.resilience.drained_requests =
      monus(cur.resilience.drained_requests, prev.resilience.drained_requests);
  d.resilience.faults_injected =
      monus(cur.resilience.faults_injected, prev.resilience.faults_injected);

  d.zerocopy.sendfile_sends =
      monus(cur.zerocopy.sendfile_sends, prev.zerocopy.sendfile_sends);
  d.zerocopy.splice_sends =
      monus(cur.zerocopy.splice_sends, prev.zerocopy.splice_sends);
  d.zerocopy.fallback_sends =
      monus(cur.zerocopy.fallback_sends, prev.zerocopy.fallback_sends);
  d.zerocopy.sendfile_bytes =
      monus(cur.zerocopy.sendfile_bytes, prev.zerocopy.sendfile_bytes);
  d.zerocopy.splice_bytes =
      monus(cur.zerocopy.splice_bytes, prev.zerocopy.splice_bytes);
  d.zerocopy.short_resumes =
      monus(cur.zerocopy.short_resumes, prev.zerocopy.short_resumes);

  d.meta_cache.hits = monus(cur.meta_cache.hits, prev.meta_cache.hits);
  d.meta_cache.misses = monus(cur.meta_cache.misses, prev.meta_cache.misses);
  d.meta_cache.expired = monus(cur.meta_cache.expired, prev.meta_cache.expired);
  d.meta_cache.invalidated =
      monus(cur.meta_cache.invalidated, prev.meta_cache.invalidated);

  d.trace.emitted = monus(cur.trace.emitted, prev.trace.emitted);
  d.trace.dropped = monus(cur.trace.dropped, prev.trace.dropped);
  d.trace.rings = cur.trace.rings;                  // gauge
  d.trace.ring_capacity = cur.trace.ring_capacity;  // gauge
  d.trace.occupancy = cur.trace.occupancy;          // gauge

  d.reactor.reactors.resize(cur.reactor.reactors.size());
  for (size_t i = 0; i < cur.reactor.reactors.size(); ++i) {
    const auto& c = cur.reactor.reactors[i];
    ReactorStats::PerReactor p;  // zero row when prev had fewer reactors
    if (i < prev.reactor.reactors.size()) p = prev.reactor.reactors[i];
    d.reactor.reactors[i].conns = monus(c.conns, p.conns);
    d.reactor.reactors[i].requests = monus(c.requests, p.requests);
    d.reactor.reactors[i].steals = monus(c.steals, p.steals);
    d.reactor.reactors[i].shed = monus(c.shed, p.shed);
    d.reactor.reactors[i].steal_backoffs =
        monus(c.steal_backoffs, p.steal_backoffs);
  }

  d.write_back.writes = monus(cur.write_back.writes, prev.write_back.writes);
  d.write_back.bytes_written =
      monus(cur.write_back.bytes_written, prev.write_back.bytes_written);
  d.write_back.fsyncs = monus(cur.write_back.fsyncs, prev.write_back.fsyncs);
  d.write_back.dirty_bytes = cur.write_back.dirty_bytes;  // gauge
  d.write_back.dirty_files = cur.write_back.dirty_files;  // gauge
  d.write_back.journal_records = cur.write_back.journal_records;  // gauge
  d.write_back.journal_bytes = cur.write_back.journal_bytes;      // gauge
  d.write_back.flushed_files =
      monus(cur.write_back.flushed_files, prev.write_back.flushed_files);
  d.write_back.flush_retries =
      monus(cur.write_back.flush_retries, prev.write_back.flush_retries);
  d.write_back.flush_failures =
      monus(cur.write_back.flush_failures, prev.write_back.flush_failures);
  d.write_back.flush_queue_depth = cur.write_back.flush_queue_depth;  // gauge
  d.write_back.flush_inflight = cur.write_back.flush_inflight;        // gauge
  d.write_back.flush_lag_ms = cur.write_back.flush_lag_ms;            // gauge
  d.write_back.write_through_sheds = monus(cur.write_back.write_through_sheds,
                                           prev.write_back.write_through_sheds);
  d.write_back.write_through_bytes = monus(cur.write_back.write_through_bytes,
                                           prev.write_back.write_through_bytes);
  // Replay words describe the last restart, not a flow; carry them.
  d.write_back.replay_writes = cur.write_back.replay_writes;
  d.write_back.replay_bytes = cur.write_back.replay_bytes;
  d.write_back.replay_truncated_bytes = cur.write_back.replay_truncated_bytes;
  d.write_back.replay_dirty_files = cur.write_back.replay_dirty_files;

  d.prefetch.planned = monus(cur.prefetch.planned, prev.prefetch.planned);
  d.prefetch.issued = monus(cur.prefetch.issued, prev.prefetch.issued);
  d.prefetch.completed =
      monus(cur.prefetch.completed, prev.prefetch.completed);
  d.prefetch.shed = monus(cur.prefetch.shed, prev.prefetch.shed);
  d.prefetch.late = monus(cur.prefetch.late, prev.prefetch.late);
  d.prefetch.hit_after_prefetch = monus(cur.prefetch.hit_after_prefetch,
                                        prev.prefetch.hit_after_prefetch);
  d.prefetch.deduped = monus(cur.prefetch.deduped, prev.prefetch.deduped);
  d.prefetch.dedup_inflight = cur.prefetch.dedup_inflight;  // gauge
  d.prefetch.reserved = cur.prefetch.reserved;
  d.prefetch.paced_delay =
      snap_delta(cur.prefetch.paced_delay, prev.prefetch.paced_delay);

  // Per-epoch cumulative rows; a history reader diffs same-epoch rows
  // itself if it wants within-epoch rates.
  d.stall = cur.stall;

  for (const auto& [op, snap] : cur.op_latency) {
    auto it = prev.op_latency.find(op);
    d.op_latency[op] = it == prev.op_latency.end()
                           ? snap
                           : snap_delta(snap, it->second);
  }
  return d;
}

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesRing::push(TimeSeriesSample sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(sample));
  ++total_;
}

std::vector<TimeSeriesSample> TimeSeriesRing::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

size_t TimeSeriesRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t TimeSeriesRing::total_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

rpc::Bytes TimeSeriesRing::encode(uint32_t interval_ms) const {
  std::vector<TimeSeriesSample> snap;
  uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.assign(ring_.begin(), ring_.end());
    total = total_;
  }
  WireWriter w;
  w.put_u32(kTimeSeriesMagic);
  w.put_u16(kTimeSeriesVersion);
  w.put_u32(interval_ms);
  w.put_u32(static_cast<uint32_t>(capacity_));
  w.put_u64(total);
  w.put_u16(static_cast<uint16_t>(snap.size()));
  for (const TimeSeriesSample& s : snap) {
    WireWriter body;
    body.put_u64(s.t_ms);
    body.put_u32(s.interval_ms);
    const Bytes frame = s.delta.encode();
    body.put_blob(frame.data(), frame.size());
    w.put_blob(body.bytes().data(), body.bytes().size());
  }
  return std::move(w).take();
}

Result<TimeSeriesFrame> TimeSeriesFrame::decode(const rpc::Bytes& bytes) {
  WireReader r(bytes);
  TimeSeriesFrame f;
  HVAC_ASSIGN_OR_RETURN(const uint32_t magic, r.get_u32());
  if (magic != kTimeSeriesMagic) {
    return Error(ErrorCode::kProtocol, "not a time-series frame");
  }
  HVAC_ASSIGN_OR_RETURN(f.version, r.get_u16());
  HVAC_ASSIGN_OR_RETURN(f.interval_ms, r.get_u32());
  HVAC_ASSIGN_OR_RETURN(f.window, r.get_u32());
  HVAC_ASSIGN_OR_RETURN(f.total, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(const uint16_t count, r.get_u16());
  for (uint16_t i = 0; i < count; ++i) {
    auto body = r.get_blob_view();
    if (!body.ok()) break;  // truncated tail: keep what decoded
    WireReader b(body->data, body->size);
    TimeSeriesSample s;
    auto t_ms = b.get_u64();
    auto interval = b.get_u32();
    auto frame = b.get_blob_view();
    if (!t_ms.ok() || !interval.ok() || !frame.ok()) continue;
    s.t_ms = *t_ms;
    s.interval_ms = *interval;
    rpc::Bytes frame_bytes(frame->data, frame->data + frame->size);
    auto decoded = MetricsFrame::decode(frame_bytes);
    if (!decoded.ok()) continue;
    s.delta = std::move(*decoded);
    // Any sample-body tail past the frame blob belongs to a newer
    // writer; the outer length prefix already skipped it.
    f.samples.push_back(std::move(s));
  }
  return f;
}

}  // namespace hvac::core
