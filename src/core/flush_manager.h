// Async write-back flusher: drains dirty checkpoint files from the
// node-local store to the PFS.
//
// The write path acks at NVMe speed (journal + local store); this is
// the background half that makes the PFS eventually hold the bytes.
// Shapewise it is the data-mover's mirror image — a bounded FIFO of
// logical paths worked by a small thread pool — with the resilience
// posture of the RPC layer: flush attempts are gated by a circuit
// breaker (a flapping PFS is probed, not hammered) and retried with
// backoff. `submit` applies backpressure by blocking when the queue
// is full (shedding a flush would silently drop durability, which the
// mover's kCapacity shed can afford but this path cannot).
//
// Per-path bookkeeping guarantees: a path is never flushed by two
// workers at once; a write that lands while its path is mid-flush
// re-queues it (the flush may have copied a stale prefix); `wait`
// returns only when the path has no queued or in-flight flush — the
// `HVAC_WRITE_DURABILITY=pfs` fsync barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rpc/health.h"

namespace hvac::core {

class FlushManager {
 public:
  struct Options {
    size_t queue_capacity = 256;  // HVAC_FLUSH_QUEUE
    size_t threads = 2;           // HVAC_FLUSH_THREADS
    // Retry schedule per path: attempts beyond max_attempts re-queue
    // the path at the back (durability is never dropped) and count a
    // failure. 0 = retry in place forever.
    int max_attempts = 8;         // HVAC_FLUSH_RETRIES
    int retry_backoff_ms = 20;    // HVAC_FLUSH_BACKOFF_MS
    rpc::BreakerOptions breaker = {};

    static Options from_env();
  };

  // Copies one dirty path out to the PFS (the server wires this to
  // PfsBackend::copy_in of the store's physical file). Must be safe
  // to call concurrently for different paths.
  using FlushFn = std::function<Status(const std::string& logical_path)>;
  // Called after a path is durably flushed and is no longer dirty
  // (journal kFlushed record, dirty-byte accounting).
  using DoneFn = std::function<void(const std::string& logical_path)>;

  FlushManager(Options options, FlushFn flush, DoneFn done);
  ~FlushManager();

  FlushManager(const FlushManager&) = delete;
  FlushManager& operator=(const FlushManager&) = delete;

  // Marks a path dirty. Idempotent while already queued; re-queues a
  // path that is mid-flight. Blocks while the queue is full
  // (backpressure); kCancelled after shutdown.
  Status submit(const std::string& logical_path);

  // Same, but never blocks on queue capacity. For DoneFn-context
  // resubmits (the callback runs on a flusher worker — blocking there
  // on space_cv_ with every worker doing the same would deadlock the
  // queue). May overshoot the capacity by at most one path per worker,
  // since a resubmit replaces the entry the worker just retired.
  Status resubmit(const std::string& logical_path);

  // Blocks until `logical_path` has no pending or in-flight flush
  // (kCancelled on shutdown). The pfs-durability fsync barrier.
  Status wait(const std::string& logical_path);

  // Blocks until every submitted path is flushed, or `timeout_ms`
  // elapses (0 = wait forever). kTimeout when dirty work remains —
  // the graceful-stop path logs and proceeds; the journal still
  // covers whatever did not drain.
  Status drain(int64_t timeout_ms = 0);

  // Stops workers. In-flight attempts finish; queued paths stay
  // dirty (the journal has them — a restart re-submits via replay).
  void shutdown();

  struct Stats {
    uint64_t flushed_files = 0;
    uint64_t retries = 0;
    uint64_t failures = 0;     // attempt budgets exhausted (re-queued)
    uint64_t queue_depth = 0;  // queued, not yet picked up
    uint64_t inflight = 0;
    // Age of the oldest dirty path (ms since first submit) — the
    // "flush lag" the metrics frame reports. 0 when clean.
    uint64_t oldest_dirty_ms = 0;
    uint8_t breaker_state = 0;  // rpc::EndpointHealth::State
  };
  Stats stats() const;

  bool idle() const;

 private:
  struct PathState {
    bool queued = false;
    bool inflight = false;
    bool dirtied_again = false;  // submit() landed mid-flight
    int64_t first_submit_ms = 0;
  };

  void worker_loop();
  // One path, retried until flushed or re-queued. Returns false when
  // shutting down.
  bool flush_one(const std::string& path);
  // Queues a path unconditionally; mutex_ must be held.
  void enqueue_locked(const std::string& logical_path);

  const Options options_;
  const FlushFn flush_;
  const DoneFn done_;
  rpc::EndpointHealth pfs_health_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: queue non-empty / stop
  std::condition_variable space_cv_;  // submitters: queue has room
  std::condition_variable done_cv_;   // wait()/drain(): state changed
  std::deque<std::string> queue_;
  std::unordered_map<std::string, PathState> state_;
  bool stop_ = false;

  std::atomic<uint64_t> flushed_files_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failures_{0};

  std::vector<std::thread> workers_;
};

}  // namespace hvac::core
