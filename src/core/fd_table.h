// Client-side file-descriptor table.
//
// The interception shim must hand the application integers that look
// like POSIX fds but are serviced by HVAC. Virtual fds start at a
// high base (1<<20) so they can never collide with real descriptors
// the process obtained elsewhere — the shim routes by range. Each
// entry tracks the logical path, the owning server, the server-side
// fd (cookie), the current offset (for plain read()), and the file
// size (paper §III-D step 7: "the returned file descriptor or stream
// is used to track the read offset and length").
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/result.h"

namespace hvac::core {

struct FdEntry {
  std::string logical_path;
  uint32_t server_index = 0;
  uint64_t remote_fd = 0;     // server-side cookie
  uint64_t offset = 0;        // sequential read position
  uint64_t size = 0;          // file size (from open response)
  bool fallback_pfs = false;  // true: served by direct PFS fd
  int pfs_fd = -1;            // real fd when fallback_pfs
  bool segmented = false;     // true: stateless segment-granular reads
                              // (no remote fd; see core/segment.h)
  bool path_mode = false;     // true: opened from the metadata cache
                              // with no open RPC — reads address the
                              // file by logical path (kReadScatter
                              // mode 1), close has no remote state
  bool writable = false;      // true: checkpoint write handle (remote_fd
                              // is a kWriteOpen cookie, or pfs_fd is a
                              // real O_WRONLY fd when fallback_pfs)
};

class FdTable {
 public:
  static constexpr int kVirtualFdBase = 1 << 20;

  // Registers an entry and returns its virtual fd.
  int insert(FdEntry entry);

  // Looks up a virtual fd (copy-out to avoid holding the lock during
  // I/O).
  Result<FdEntry> get(int vfd) const;

  // Replaces the stored offset after a read/lseek.
  Status set_offset(int vfd, uint64_t offset);

  // Atomically reserves [offset, offset+count) for a plain write():
  // returns the pre-advance offset and bumps the stored offset by
  // `count` in one critical section, so concurrent writers on the
  // same vfd get disjoint ranges (write(2)'s kernel-atomic offset
  // update).
  Result<uint64_t> reserve_offset(int vfd, uint64_t count);

  // Undoes the tail of a reservation after a short or failed write:
  // sets the offset to `actual_end` only while it still equals
  // `reserved_end` (i.e. no later writer has reserved past us).
  Status rewind_offset(int vfd, uint64_t reserved_end,
                       uint64_t actual_end);

  // Swaps the whole entry (fail-over re-open keeps the vfd stable for
  // the application while the backing server changes underneath).
  Status replace(int vfd, FdEntry entry);

  // Removes the entry, returning it (so close can tear down remote
  // state).
  Result<FdEntry> erase(int vfd);

  static bool is_virtual(int fd) { return fd >= kVirtualFdBase; }

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<int, FdEntry> entries_;
  int next_fd_ = kVirtualFdBase;
};

}  // namespace hvac::core
