// Metrics frame v2 — the self-describing payload behind proto::kMetrics.
//
// The v1 payload was eight bare u64 counters with no version marker,
// so it could never grow without breaking deployed hvacctl binaries.
// v2 keeps those eight words as an immutable prefix (a v1 decoder
// reads them and ignores the rest) and appends a versioned,
// length-prefixed section list a v2 decoder walks by id:
//
//   bytes 0..63   8 x u64: hits, misses, dedup_waits, evictions,
//                 bytes_from_cache, bytes_from_pfs, pfs_fallbacks,
//                 open_fds                      <- v1 clients stop here
//   u32 magic     'HVM2' (absent in a v1 frame)
//   u16 version   kFrameVersion
//   u16 count     number of sections
//   sections      [u16 id][u32 byte_len][byte_len bytes] ...
//
// Compatibility rules (both directions hold by construction):
//   * old client, v2 frame: the prefix is byte-identical to v1.
//   * new client, v1 frame: no magic after the prefix -> sections
//     default to zero and version reports 1.
//   * unknown section ids are skipped by length; sections themselves
//     may grow — decoders read the fields they know and ignore the
//     tail, so adding a field is not a version bump.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/metrics.h"
#include "rpc/wire.h"

namespace hvac::core {

constexpr uint32_t kMetricsFrameMagic = 0x324D5648;  // "HVM2"
constexpr uint16_t kFrameVersion = 2;

// Section ids. New sections get new ids; never reuse or renumber.
enum MetricsSection : uint16_t {
  kSectionHandleCache = 1,
  kSectionBufferPool = 2,
  kSectionReadAhead = 3,
  kSectionLatency = 4,
  kSectionResilience = 5,
  kSectionZeroCopy = 6,
  kSectionMetaCache = 7,
  kSectionTrace = 8,
  kSectionReactors = 9,
  kSectionWriteBack = 10,
  kSectionPrefetch = 11,
  kSectionStall = 12,
};

struct HandleCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t open = 0;    // entries resident in the index
  uint64_t pinned = 0;  // entries with at least one active reader
  uint64_t deferred_closes = 0;  // evicted while pinned; fd closed late
  uint64_t capacity = 0;

  void merge(const HandleCacheStats& other);
};

struct BufferPoolStats {
  uint64_t leases = 0;           // total acquires
  uint64_t pool_hits = 0;        // served from a free list
  uint64_t fallback_allocs = 0;  // had to hit the allocator
  uint64_t recycled = 0;         // leases returned to a free list
  uint64_t dropped = 0;          // leases freed (list full)

  void merge(const BufferPoolStats& other);
};

struct ReadAheadStats {
  uint64_t issued = 0;    // chunks requested ahead of the application
  uint64_t consumed = 0;  // reads served from a pending chunk
  uint64_t wasted = 0;    // pending chunks discarded unread

  void merge(const ReadAheadStats& other);
};

// Fault-domain counters (rpc/health.h): breaker transitions, retries,
// deadline misses, backpressure sheds, drain stats. Process-wide, like
// the buffer pool.
struct ResilienceStats {
  uint64_t breaker_opens = 0;
  uint64_t breaker_closes = 0;
  uint64_t breaker_probes = 0;
  uint64_t breaker_shed = 0;
  uint64_t retries = 0;
  uint64_t deadline_misses = 0;
  uint64_t server_shed = 0;
  uint64_t mover_rejects = 0;
  uint64_t drains = 0;
  uint64_t drained_requests = 0;
  uint64_t faults_injected = 0;  // HVAC_FAULT harness activity

  void merge(const ResilienceStats& other);
};

// Kernel zero-copy send path (rpc/socket.h ZeroCopyCounters):
// sendfile/splice response sends, their byte volume, and how often the
// pooled fallback carried extents instead. Process-wide.
struct ZeroCopyStats {
  uint64_t sendfile_sends = 0;
  uint64_t splice_sends = 0;
  uint64_t fallback_sends = 0;  // extents staged through the pool
  uint64_t sendfile_bytes = 0;
  uint64_t splice_bytes = 0;
  uint64_t short_resumes = 0;  // partial kernel sends resumed in-place

  void merge(const ZeroCopyStats& other);
};

// Client metadata cache (client/meta_cache.h). Process-wide, like the
// read-ahead counters.
struct MetaCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t expired = 0;
  uint64_t invalidated = 0;

  void merge(const MetaCacheStats& other);
};

// Checkpoint write path (server/hvac_server.cc write handlers,
// storage/write_journal.h, core/flush_manager.h): write-back volume,
// journal depth, flush-queue health and the last journal-replay
// summary. Per-instance, like the handle cache.
struct WriteBackStats {
  uint64_t writes = 0;          // kWrite ops acked on the write-back tier
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;          // durability barriers honored
  uint64_t dirty_bytes = 0;     // written, not yet flushed to the PFS
  uint64_t dirty_files = 0;
  uint64_t journal_records = 0;  // journal depth (records)
  uint64_t journal_bytes = 0;    // journal depth (bytes)
  uint64_t flushed_files = 0;
  uint64_t flush_retries = 0;
  uint64_t flush_failures = 0;
  uint64_t flush_queue_depth = 0;
  uint64_t flush_inflight = 0;
  uint64_t flush_lag_ms = 0;     // age of the oldest unflushed file
  uint64_t write_through_sheds = 0;  // handles shed to PFS (ENOSPC)
  uint64_t write_through_bytes = 0;
  uint64_t replay_writes = 0;    // last restart's journal replay
  uint64_t replay_bytes = 0;
  uint64_t replay_truncated_bytes = 0;  // torn/CRC-bad tail cut
  uint64_t replay_dirty_files = 0;      // re-queued to the flusher

  void merge(const WriteBackStats& other);
};

// Clairvoyant prefetch pipeline (client/prefetch_scheduler.h) plus the
// server-side duplicate-fetch suppression in the data mover. The
// client-side words are process-wide globals (core::PrefetchCounters);
// deduped/dedup_inflight are per-instance mover counters. Body layout:
// nine u64s, then the paced-delay histogram as
// [count u64][total_ns u64][n_buckets u16][bucket u64 * n] — a decoder
// that stops after the words it knows still parses.
struct PrefetchStats {
  uint64_t planned = 0;    // samples accepted into access plans
  uint64_t issued = 0;     // samples sent in prefetch batches
  uint64_t completed = 0;  // answered cached
  uint64_t shed = 0;       // answered shed (mover backpressure)
  uint64_t late = 0;       // training cursor beat the prefetch
  uint64_t hit_after_prefetch = 0;  // cursor found the sample warmed
  uint64_t deduped = 0;         // mover submits coalesced onto an
                                // in-flight fetch (N clients, 1 read)
  uint64_t dedup_inflight = 0;  // gauge: paths with a fetch in flight
  uint64_t reserved = 0;        // room to grow without re-shaping
  LatencySnapshot paced_delay;  // token-bucket stall per issued batch

  void merge(const PrefetchStats& other);
};

// Per-epoch I/O stall attribution from the client read path
// (core::StallCounters, charged by client/hvac_client.cc): where
// intercepted-read wall time went — local-hit service, remote RPC,
// direct PFS wait, read-ahead backpressure, retry/recovery penalty.
// Body layout: [u16 n_epochs][u16 words_per_row] then n_epochs rows of
// words_per_row u64s {epoch, reads, total_ns, local_hit_ns,
// remote_rpc_ns, pfs_wait_ns, backpressure_ns, retry_ns} — like the
// reactor rows, decoders read the words they know and skip the tail,
// so rows can grow without a new section.
struct StallStats {
  std::vector<StallEpochRow> epochs;

  // Keyed by epoch id: same-epoch rows sum, new epochs append.
  void merge(const StallStats& other);
};

// Trace-ring health (common/trace.h). Process-wide; `dropped` rising
// means HVAC_TRACE_RING is too small for the drain cadence.
struct TraceStats {
  uint64_t emitted = 0;
  uint64_t dropped = 0;
  uint64_t rings = 0;
  uint64_t ring_capacity = 0;
  uint64_t occupancy = 0;

  void merge(const TraceStats& other);
};

// Per-reactor server counters (rpc/rpc_server.h). Body layout:
// [u16 reactor_count][u16 words_per_reactor] then reactor_count rows
// of words_per_reactor u64s — a decoder reads the words it knows and
// skips the tail of each row, so rows can grow without a new section.
struct ReactorStats {
  struct PerReactor {
    uint64_t conns = 0;
    uint64_t requests = 0;
    uint64_t steals = 0;
    uint64_t shed = 0;
    // Steal scans skipped by the adaptive throttle (shard depths were
    // uniform, so a steal would only have moved the imbalance around).
    uint64_t steal_backoffs = 0;
  };
  std::vector<PerReactor> reactors;

  // Element-wise by reactor index (instances in one process report
  // their own reactor sets; index i of each merges into index i).
  void merge(const ReactorStats& other);
};

struct MetricsFrame {
  // Decoded frame version: kFrameVersion, or 1 for a legacy payload
  // (sections all zero).
  uint16_t version = kFrameVersion;

  MetricsSnapshot cache;  // the seven v1 cache counters
  uint64_t open_fds = 0;  // v1 prefix word 8

  HandleCacheStats handle_cache;
  BufferPoolStats buffer_pool;
  ReadAheadStats readahead;
  ResilienceStats resilience;
  ZeroCopyStats zerocopy;
  MetaCacheStats meta_cache;
  TraceStats trace;
  ReactorStats reactor;
  WriteBackStats write_back;
  PrefetchStats prefetch;
  StallStats stall;
  // Keyed by proto::Opcode value; only ops with samples are present.
  std::map<uint16_t, LatencySnapshot> op_latency;

  rpc::Bytes encode() const;
  static Result<MetricsFrame> decode(const rpc::Bytes& bytes);

  // Sums every section of `other` into this frame. Per-process
  // sections (buffer pool, read-ahead) double-count when the merged
  // frames come from instances sharing one process — NodeRuntime
  // handles that case by assigning them once.
  void merge(const MetricsFrame& other);

  // JSON object (single line) with every section spelled out —
  // the `hvacctl metrics --json` / HVAC_STATS_FILE format.
  std::string to_json() const;
};

// Human name for a proto::Opcode value ("read", "open", ...);
// "op<N>" for ids this build does not know.
std::string op_name(uint16_t opcode);

}  // namespace hvac::core
