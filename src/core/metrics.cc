#include "core/metrics.h"

#include <sstream>

namespace hvac::core {

double LatencySnapshot::percentile_ns(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 100.0) q = 100.0;
  // Rank of the requested percentile (1-based, nearest-rank).
  const uint64_t rank = static_cast<uint64_t>(q / 100.0 * double(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      const double lo = double(uint64_t{1} << i);
      const double hi = i + 1 >= 64 ? lo * 2.0 : double(uint64_t{1} << (i + 1));
      // Linear interpolation by rank position within the bucket.
      const double frac = double(rank - seen - 1) / double(buckets[i]);
      return lo + frac * (hi - lo);
    }
    seen += buckets[i];
  }
  return double(uint64_t{1} << (kLatencyBuckets - 1));
}

void LatencySnapshot::merge(const LatencySnapshot& other) {
  count += other.count;
  total_ns += other.total_ns;
  for (size_t i = 0; i < kLatencyBuckets; ++i) buckets[i] += other.buckets[i];
}

ReadAheadCounters& ReadAheadCounters::global() {
  static ReadAheadCounters counters;
  return counters;
}

MetaCacheCounters& MetaCacheCounters::global() {
  static MetaCacheCounters counters;
  return counters;
}

PrefetchCounters& PrefetchCounters::global() {
  static PrefetchCounters counters;
  return counters;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream oss;
  oss << "hits=" << hits << " misses=" << misses
      << " hit_rate=" << hit_rate() << " dedup_waits=" << dedup_waits
      << " evictions=" << evictions
      << " bytes_from_cache=" << bytes_from_cache
      << " bytes_from_pfs=" << bytes_from_pfs
      << " pfs_fallbacks=" << pfs_fallbacks;
  return oss.str();
}

}  // namespace hvac::core
