#include "core/metrics.h"

#include <sstream>

namespace hvac::core {

std::string MetricsSnapshot::to_string() const {
  std::ostringstream oss;
  oss << "hits=" << hits << " misses=" << misses
      << " hit_rate=" << hit_rate() << " dedup_waits=" << dedup_waits
      << " evictions=" << evictions
      << " bytes_from_cache=" << bytes_from_cache
      << " bytes_from_pfs=" << bytes_from_pfs
      << " pfs_fallbacks=" << pfs_fallbacks;
  return oss.str();
}

}  // namespace hvac::core
