#include "core/metrics.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace hvac::core {

double LatencySnapshot::percentile_ns(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 100.0) q = 100.0;
  // Rank of the requested percentile (1-based, nearest-rank).
  const uint64_t rank = static_cast<uint64_t>(q / 100.0 * double(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      const double lo = double(uint64_t{1} << i);
      const double hi = i + 1 >= 64 ? lo * 2.0 : double(uint64_t{1} << (i + 1));
      // Linear interpolation by rank position within the bucket.
      const double frac = double(rank - seen - 1) / double(buckets[i]);
      return lo + frac * (hi - lo);
    }
    seen += buckets[i];
  }
  return double(uint64_t{1} << (kLatencyBuckets - 1));
}

void LatencySnapshot::merge(const LatencySnapshot& other) {
  count += other.count;
  total_ns += other.total_ns;
  for (size_t i = 0; i < kLatencyBuckets; ++i) buckets[i] += other.buckets[i];
}

ReadAheadCounters& ReadAheadCounters::global() {
  static ReadAheadCounters counters;
  return counters;
}

MetaCacheCounters& MetaCacheCounters::global() {
  static MetaCacheCounters counters;
  return counters;
}

PrefetchCounters& PrefetchCounters::global() {
  static PrefetchCounters counters;
  return counters;
}

namespace {
uint64_t monotonic_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

uint64_t StallCounters::current_epoch() const {
  if (plan_mode_.load(std::memory_order_relaxed)) {
    return plan_epoch_.load(std::memory_order_relaxed);
  }
  // Time-bucket fallback: epochs tick every kFallbackEpochNs from the
  // first charge, so unplanned jobs still get a time axis.
  uint64_t origin = start_ns_.load(std::memory_order_relaxed);
  const uint64_t now = monotonic_ns();
  if (origin == 0) {
    uint64_t expected = 0;
    start_ns_.compare_exchange_strong(expected, now,
                                      std::memory_order_relaxed);
    origin = start_ns_.load(std::memory_order_relaxed);
  }
  return now >= origin ? (now - origin) / kFallbackEpochNs : 0;
}

StallCounters::Slot& StallCounters::slot_for(uint64_t epoch) {
  Slot& s = slots_[epoch % kEpochWindow];
  if (s.used.load(std::memory_order_relaxed) == 0 ||
      s.epoch.load(std::memory_order_relaxed) != epoch) {
    // A new epoch recycles the slot. Concurrent resets (or a straggler
    // charge from the evicted epoch landing in the fresh slot) only
    // smudge the boundary sample — acceptable for attribution data.
    s.epoch.store(epoch, std::memory_order_relaxed);
    s.reads.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    for (auto& b : s.bucket_ns) b.store(0, std::memory_order_relaxed);
    s.used.store(1, std::memory_order_relaxed);
  }
  return s;
}

void StallCounters::begin_epoch(uint64_t id) {
  plan_epoch_.store(id, std::memory_order_relaxed);
  plan_mode_.store(true, std::memory_order_relaxed);
  slot_for(id);
}

void StallCounters::charge(StallBucket bucket, uint64_t ns) {
  if (ns == 0) return;
  Slot& s = slot_for(current_epoch());
  s.total_ns.fetch_add(ns, std::memory_order_relaxed);
  s.bucket_ns[static_cast<size_t>(bucket)].fetch_add(
      ns, std::memory_order_relaxed);
}

void StallCounters::on_read() {
  slot_for(current_epoch())
      .reads.fetch_add(1, std::memory_order_relaxed);
}

std::vector<StallEpochRow> StallCounters::snapshot() const {
  std::vector<StallEpochRow> rows;
  for (const Slot& s : slots_) {
    if (s.used.load(std::memory_order_relaxed) == 0) continue;
    StallEpochRow r;
    r.epoch = s.epoch.load(std::memory_order_relaxed);
    r.reads = s.reads.load(std::memory_order_relaxed);
    r.total_ns = s.total_ns.load(std::memory_order_relaxed);
    r.local_hit_ns = s.bucket_ns[0].load(std::memory_order_relaxed);
    r.remote_rpc_ns = s.bucket_ns[1].load(std::memory_order_relaxed);
    r.pfs_wait_ns = s.bucket_ns[2].load(std::memory_order_relaxed);
    r.backpressure_ns = s.bucket_ns[3].load(std::memory_order_relaxed);
    r.retry_ns = s.bucket_ns[4].load(std::memory_order_relaxed);
    rows.push_back(r);
  }
  std::sort(rows.begin(), rows.end(),
            [](const StallEpochRow& a, const StallEpochRow& b) {
              return a.epoch < b.epoch;
            });
  return rows;
}

StallCounters& StallCounters::global() {
  static StallCounters counters;
  return counters;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream oss;
  oss << "hits=" << hits << " misses=" << misses
      << " hit_rate=" << hit_rate() << " dedup_waits=" << dedup_waits
      << " evictions=" << evictions
      << " bytes_from_cache=" << bytes_from_cache
      << " bytes_from_pfs=" << bytes_from_pfs
      << " pfs_fallbacks=" << pfs_fallbacks;
  return oss.str();
}

}  // namespace hvac::core
