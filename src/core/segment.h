// Segment-level caching (the extension the paper sketches in §III-E:
// "to ensure an even load-distribution among HVAC servers for
// datasets with highly skewed file sizes, segment-level caching can
// be implemented", citing HFetch).
//
// A file larger than `segment_bytes` is cached as independent
// fixed-size segments; the placement key of segment k of `path` is
// `path#<k>`, so segments of one large file spread hash-uniformly
// across the allocation instead of landing on a single home server.
// Everything is still metadata-less: any client derives a segment's
// home from (path, k, segment size) alone.
#pragma once

#include <cstdint>
#include <string>

namespace hvac::core {

struct SegmentRange {
  uint64_t index = 0;   // segment number
  uint64_t offset = 0;  // absolute file offset of the segment start
  uint64_t length = 0;  // bytes of the request inside this segment
  uint64_t skip = 0;    // offset of the request within the segment
};

// Placement/caching key of one segment.
inline std::string segment_key(const std::string& logical_path,
                               uint64_t segment_index) {
  return logical_path + "#" + std::to_string(segment_index);
}

// Number of segments a file of `file_size` splits into.
inline uint64_t segment_count(uint64_t file_size, uint64_t segment_bytes) {
  if (segment_bytes == 0 || file_size == 0) return 1;
  return (file_size + segment_bytes - 1) / segment_bytes;
}

// Splits a read [offset, offset+count) into per-segment subranges.
// Calls `fn(SegmentRange)` in ascending order. `count` should already
// be clamped to the file size by the caller.
template <typename Fn>
void for_each_segment(uint64_t offset, uint64_t count,
                      uint64_t segment_bytes, Fn&& fn) {
  if (count == 0) return;
  uint64_t pos = offset;
  const uint64_t end = offset + count;
  while (pos < end) {
    SegmentRange r;
    r.index = pos / segment_bytes;
    r.offset = r.index * segment_bytes;
    r.skip = pos - r.offset;
    const uint64_t seg_end = r.offset + segment_bytes;
    r.length = std::min(end, seg_end) - pos;
    fn(r);
    pos += r.length;
  }
}

}  // namespace hvac::core
