// DataMover — the dedicated per-server-instance thread of §III-C.
//
// "Every HVAC server instance spawns a dedicated data-mover thread,
//  which manages a shared FIFO queue to track and manage the forwarded
//  file I/O operations."
//
// RPC handlers enqueue fetch tasks; the mover drains them in FIFO
// order and runs CacheManager::ensure_cached. Callers wait on a
// per-task future, so many handler threads can be parked on one
// in-flight copy without tying up the mover.
//
// Duplicate-fetch suppression: concurrent submits for the SAME path
// coalesce onto one queued task — later submitters get the same
// shared future instead of a second queue slot, so N ranks warming a
// shared dataset cost one PFS read per sample and one queue entry
// (the clairvoyant-prefetch stampede case). The coalesced result —
// success or error — is delivered to every waiter exactly once via
// the shared state; the in-flight entry is retired before the result
// is published so a submit that races completion starts a fresh
// fetch rather than piggybacking a stale answer.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/mpmc_queue.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/cache_manager.h"

namespace hvac::core {

class DataMover {
 public:
  // `movers` parallel threads drain the same FIFO queue — this models
  // the HVAC(i×1) variants where i instances widen the copy path.
  DataMover(CacheManager* cache, size_t movers = 1,
            size_t queue_capacity = 4096);
  ~DataMover();

  DataMover(const DataMover&) = delete;
  DataMover& operator=(const DataMover&) = delete;

  // Enqueues a fetch; the future resolves to ensure_cached's result
  // (true = cached, false = PFS fallback). A submit for a path that
  // already has a queued or running fetch piggybacks on it (shared
  // future, no second queue slot).
  std::shared_future<Result<bool>> submit(std::string logical_path);

  // Convenience: submit and wait.
  Result<bool> fetch(const std::string& logical_path);

  // Stops accepting work, drains the queue and joins. Idempotent.
  void shutdown();

  size_t queue_depth() const { return queue_.size(); }

  // Submits that coalesced onto an in-flight fetch instead of
  // enqueueing their own (the dedup win: each one is a PFS read and a
  // queue slot that never happened).
  uint64_t dedup_coalesced() const {
    return dedup_coalesced_.load(std::memory_order_relaxed);
  }

  // Paths with a queued-or-running fetch right now (gauge).
  size_t dedup_inflight() const;

 private:
  // Shared completion state for one coalesced fetch. The promise is
  // resolved exactly once by the mover thread; every waiter holds a
  // copy of `fut`.
  struct Inflight {
    std::promise<Result<bool>> done;
    std::shared_future<Result<bool>> fut;
    uint32_t waiters = 0;          // submits beyond the first
    uint64_t first_wait_ns = 0;    // earliest coalesced submit (trace)
  };

  struct Task {
    std::string logical_path;
    std::shared_ptr<Inflight> inflight;
    // Submitter's trace context + enqueue time: the mover thread
    // adopts the context and reports the FIFO wait as its own span.
    trace::TraceContext ctx;
    uint64_t enqueue_ns = 0;
  };

  void mover_loop();

  CacheManager* cache_;
  MpmcQueue<std::unique_ptr<Task>> queue_;
  std::vector<std::thread> threads_;

  mutable std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::atomic<uint64_t> dedup_coalesced_{0};
};

}  // namespace hvac::core
