// DataMover — the dedicated per-server-instance thread of §III-C.
//
// "Every HVAC server instance spawns a dedicated data-mover thread,
//  which manages a shared FIFO queue to track and manage the forwarded
//  file I/O operations."
//
// RPC handlers enqueue fetch tasks; the mover drains them in FIFO
// order and runs CacheManager::ensure_cached. Callers wait on a
// per-task future, so many handler threads can be parked on one
// in-flight copy without tying up the mover.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <thread>

#include "common/mpmc_queue.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/cache_manager.h"

namespace hvac::core {

class DataMover {
 public:
  // `movers` parallel threads drain the same FIFO queue — this models
  // the HVAC(i×1) variants where i instances widen the copy path.
  DataMover(CacheManager* cache, size_t movers = 1,
            size_t queue_capacity = 4096);
  ~DataMover();

  DataMover(const DataMover&) = delete;
  DataMover& operator=(const DataMover&) = delete;

  // Enqueues a fetch; the future resolves to ensure_cached's result
  // (true = cached, false = PFS fallback).
  std::future<Result<bool>> submit(std::string logical_path);

  // Convenience: submit and wait.
  Result<bool> fetch(const std::string& logical_path);

  // Stops accepting work, drains the queue and joins. Idempotent.
  void shutdown();

  size_t queue_depth() const { return queue_.size(); }

 private:
  struct Task {
    std::string logical_path;
    std::promise<Result<bool>> done;
    // Submitter's trace context + enqueue time: the mover thread
    // adopts the context and reports the FIFO wait as its own span.
    trace::TraceContext ctx;
    uint64_t enqueue_ns = 0;
  };

  void mover_loop();

  CacheManager* cache_;
  MpmcQueue<std::unique_ptr<Task>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace hvac::core
