// Wire codec and Chrome export for trace spans.
//
// The kTraceDump RPC returns the server's drained rings in this
// format; hvacctl decodes dumps from every endpoint and renders them
// either as a table or as Chrome trace-event JSON (load trace.json in
// chrome://tracing or https://ui.perfetto.dev). Span names cross the
// wire as strings — the in-memory SpanRecord's static-literal pointer
// trick stops at the process boundary.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "rpc/wire.h"

namespace hvac::core {

// A SpanRecord with the name materialized.
struct SpanDump {
  uint64_t trace_id = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t arg = 0;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;
  uint32_t tid = 0;
  uint32_t flags = 0;
  std::string name;
};

// Payload: [u32 version=1][u32 count] then per span
// [u64 trace_id][u64 start_ns][u64 dur_ns][u64 arg]
// [u32 span_id][u32 parent_id][u32 tid][u32 flags][string name].
rpc::Bytes encode_spans(const std::vector<trace::SpanRecord>& spans);
Result<std::vector<SpanDump>> decode_spans(const rpc::Bytes& payload);

// Chrome trace-event JSON ("traceEvents" array of "X" duration events,
// one pid per endpoint, one tid row per emitting thread). Each
// endpoint's clock is CLOCK_MONOTONIC of its own process; timestamps
// are shifted so the earliest span of each endpoint sits at 0.
std::string spans_to_chrome_json(
    const std::vector<std::pair<std::string, std::vector<SpanDump>>>&
        endpoints);

}  // namespace hvac::core
