// Wire codec and Chrome export for trace spans.
//
// The kTraceDump RPC returns the server's drained rings in this
// format; hvacctl decodes dumps from every endpoint and renders them
// either as a table or as Chrome trace-event JSON (load trace.json in
// chrome://tracing or https://ui.perfetto.dev). Span names cross the
// wire as strings — the in-memory SpanRecord's static-literal pointer
// trick stops at the process boundary.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "rpc/wire.h"

namespace hvac::core {

// A SpanRecord with the name materialized.
struct SpanDump {
  uint64_t trace_id = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t arg = 0;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;
  uint32_t tid = 0;
  uint32_t flags = 0;
  std::string name;
};

// Paired clock sample taken when a dump was encoded: the same instant
// read on CLOCK_REALTIME and CLOCK_MONOTONIC. Span timestamps are
// monotonic (per endpoint); the pair lets a reader rebase them onto
// wall time — wall = start_ns + (realtime_ns - mono_ns) — so dumps
// from different endpoints land on one common timeline. A v1 dump has
// no sample (mono_ns == 0 → invalid).
struct SpanDumpClock {
  uint64_t realtime_ns = 0;
  uint64_t mono_ns = 0;
  bool valid() const { return mono_ns != 0; }
  uint64_t offset_ns() const { return realtime_ns - mono_ns; }
};

// Payload v2: [u32 version=2][u64 realtime_ns][u64 mono_ns][u32 count]
// then per span [u64 trace_id][u64 start_ns][u64 dur_ns][u64 arg]
// [u32 span_id][u32 parent_id][u32 tid][u32 flags][string name].
// (v1 had no clock pair between version and count; decode accepts
// both.) The clock pair is sampled inside encode_spans, so every
// kTraceDump reply carries the serving endpoint's own sample.
rpc::Bytes encode_spans(const std::vector<trace::SpanRecord>& spans);
Result<std::vector<SpanDump>> decode_spans(const rpc::Bytes& payload);
// As above, also surfacing the dump's clock sample (zeroed for v1).
Result<std::vector<SpanDump>> decode_spans(const rpc::Bytes& payload,
                                           SpanDumpClock* clock);

// One endpoint's dump plus its clock sample, for the aligned export.
struct EndpointSpans {
  std::string name;
  std::vector<SpanDump> spans;
  SpanDumpClock clock;
};

// Chrome trace-event JSON ("traceEvents" array of "X" duration events,
// one pid per endpoint, one tid row per emitting thread). Endpoints
// with a clock sample are rebased onto wall time and share one common
// t=0 (the earliest aligned span across all of them); endpoints
// without one (v1 peers) fall back to a private t=0 at their own
// earliest span.
std::string spans_to_chrome_json(const std::vector<EndpointSpans>& endpoints);

}  // namespace hvac::core
