// Cache eviction & replacement policies (paper §III-G).
//
// The paper ships random eviction ("HVAC is designed to perform
// eviction and replacement randomly") and explicitly invites other
// policies; we provide Random (default), FIFO and LRU so the
// ablation bench can quantify the difference under cache pressure.
// A policy is fed access/insert events by the CacheManager and asked
// for a victim when the store exceeds capacity.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/rng.h"

namespace hvac::core {

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual void on_insert(const std::string& logical_path) = 0;
  virtual void on_access(const std::string& logical_path) = 0;
  virtual void on_evict(const std::string& logical_path) = 0;

  // Picks a victim among tracked entries; nullopt when empty.
  virtual std::optional<std::string> select_victim() = 0;

  virtual const char* name() const = 0;
};

// Random replacement (paper default). Keeps a flat vector for O(1)
// uniform sampling with swap-remove.
class RandomEviction : public EvictionPolicy {
 public:
  explicit RandomEviction(uint64_t seed = 0x48564143 /* "HVAC" */);

  void on_insert(const std::string& logical_path) override;
  void on_access(const std::string& logical_path) override {
    (void)logical_path;  // random policy ignores recency
  }
  void on_evict(const std::string& logical_path) override;
  std::optional<std::string> select_victim() override;
  const char* name() const override { return "random"; }

 private:
  std::mutex mutex_;
  std::vector<std::string> entries_;
  std::unordered_map<std::string, size_t> index_;
  SplitMix64 rng_;
};

// FIFO: evicts the oldest insertion.
class FifoEviction : public EvictionPolicy {
 public:
  void on_insert(const std::string& logical_path) override;
  void on_access(const std::string& logical_path) override {
    (void)logical_path;
  }
  void on_evict(const std::string& logical_path) override;
  std::optional<std::string> select_victim() override;
  const char* name() const override { return "fifo"; }

 private:
  std::mutex mutex_;
  std::list<std::string> order_;
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
};

// LRU: evicts the least recently accessed.
class LruEviction : public EvictionPolicy {
 public:
  void on_insert(const std::string& logical_path) override;
  void on_access(const std::string& logical_path) override;
  void on_evict(const std::string& logical_path) override;
  std::optional<std::string> select_victim() override;
  const char* name() const override { return "lru"; }

 private:
  void touch_locked(const std::string& logical_path);

  std::mutex mutex_;
  std::list<std::string> order_;  // front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
};

std::unique_ptr<EvictionPolicy> make_eviction_policy(const std::string& name,
                                                     uint64_t seed = 0);

}  // namespace hvac::core
