// Lightweight cache metrics, safe to bump from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace hvac::core {

struct MetricsSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t dedup_waits = 0;   // first-reads that piggybacked on an
                              // in-flight copy instead of re-copying
  uint64_t evictions = 0;
  uint64_t bytes_from_cache = 0;
  uint64_t bytes_from_pfs = 0;
  uint64_t pfs_fallbacks = 0;  // requests served directly from PFS
                               // (capacity pressure or server loss)

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
  std::string to_string() const;
};

class Metrics {
 public:
  void on_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_miss(uint64_t bytes) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    bytes_from_pfs_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_cache_bytes(uint64_t bytes) {
    bytes_from_cache_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_pfs_bytes(uint64_t bytes) {
    bytes_from_pfs_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_dedup_wait() { dedup_waits_.fetch_add(1, std::memory_order_relaxed); }
  void on_eviction() { evictions_.fetch_add(1, std::memory_order_relaxed); }
  void on_pfs_fallback(uint64_t bytes) {
    pfs_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    bytes_from_pfs_.fetch_add(bytes, std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.dedup_waits = dedup_waits_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.bytes_from_cache = bytes_from_cache_.load(std::memory_order_relaxed);
    s.bytes_from_pfs = bytes_from_pfs_.load(std::memory_order_relaxed);
    s.pfs_fallbacks = pfs_fallbacks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> dedup_waits_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_from_cache_{0};
  std::atomic<uint64_t> bytes_from_pfs_{0};
  std::atomic<uint64_t> pfs_fallbacks_{0};
};

}  // namespace hvac::core
