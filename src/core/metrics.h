// Lightweight cache metrics, safe to bump from any thread, plus the
// per-op latency histograms behind the metrics frame v2 (see
// core/metrics_frame.h for the wire format).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hvac::core {

struct MetricsSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t dedup_waits = 0;   // first-reads that piggybacked on an
                              // in-flight copy instead of re-copying
  uint64_t evictions = 0;
  uint64_t bytes_from_cache = 0;
  uint64_t bytes_from_pfs = 0;
  uint64_t pfs_fallbacks = 0;  // requests served directly from PFS
                               // (capacity pressure or server loss)

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
  std::string to_string() const;
};

class Metrics {
 public:
  void on_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_miss(uint64_t bytes) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    bytes_from_pfs_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_cache_bytes(uint64_t bytes) {
    bytes_from_cache_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_pfs_bytes(uint64_t bytes) {
    bytes_from_pfs_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_dedup_wait() { dedup_waits_.fetch_add(1, std::memory_order_relaxed); }
  void on_eviction() { evictions_.fetch_add(1, std::memory_order_relaxed); }
  void on_pfs_fallback(uint64_t bytes) {
    pfs_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    bytes_from_pfs_.fetch_add(bytes, std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.dedup_waits = dedup_waits_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.bytes_from_cache = bytes_from_cache_.load(std::memory_order_relaxed);
    s.bytes_from_pfs = bytes_from_pfs_.load(std::memory_order_relaxed);
    s.pfs_fallbacks = pfs_fallbacks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> dedup_waits_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_from_cache_{0};
  std::atomic<uint64_t> bytes_from_pfs_{0};
  std::atomic<uint64_t> pfs_fallbacks_{0};
};

// ---- latency histograms ---------------------------------------------------

// Log2-bucketed latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)) nanoseconds. 40 buckets cover 1 ns .. ~18 minutes,
// which brackets everything from an in-memory cache hit to a PFS stall.
constexpr size_t kLatencyBuckets = 40;

// Point-in-time copy of one histogram, mergeable across instances.
struct LatencySnapshot {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  std::array<uint64_t, kLatencyBuckets> buckets{};

  // Percentile estimate (q in [0, 100]) with linear interpolation
  // inside the winning bucket. Log buckets bound the error to 2x,
  // plenty for p50/p99 dashboards.
  double percentile_ns(double q) const;
  double mean_ns() const { return count == 0 ? 0.0 : double(total_ns) / double(count); }

  void merge(const LatencySnapshot& other);
};

// Lock-free bump histogram: record() is one relaxed fetch_add per
// sample (plus one for the running total), so handler threads never
// serialize on observability.
class LatencyHistogram {
 public:
  static size_t bucket_of(uint64_t ns) {
    if (ns == 0) return 0;
    const size_t b = std::bit_width(ns) - 1;  // floor(log2(ns))
    return b < kLatencyBuckets ? b : kLatencyBuckets - 1;
  }

  void record(uint64_t ns) {
    counts_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  LatencySnapshot snapshot() const {
    LatencySnapshot s;
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      s.buckets[i] = counts_[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.total_ns = total_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<uint64_t>, kLatencyBuckets> counts_{};
  std::atomic<uint64_t> total_ns_{0};
};

// Per-opcode latency histograms for the RPC handler table. Opcodes are
// small protocol constants (hvac::proto::Opcode); anything above
// kMaxOp lands in the overflow slot rather than growing the set, so
// kMaxOp must stay ahead of the highest assigned opcode.
class OpLatencySet {
 public:
  static constexpr uint16_t kMaxOp = 24;

  void record(uint16_t op, uint64_t ns) {
    hist_[op <= kMaxOp ? op : 0].record(ns);
  }

  // Snapshot of every op that has seen at least one sample.
  std::map<uint16_t, LatencySnapshot> snapshot() const {
    std::map<uint16_t, LatencySnapshot> out;
    for (uint16_t op = 0; op <= kMaxOp; ++op) {
      LatencySnapshot s = hist_[op].snapshot();
      if (s.count > 0) out.emplace(op, std::move(s));
    }
    return out;
  }

 private:
  std::array<LatencyHistogram, kMaxOp + 1> hist_;
};

// RAII sample: times its own scope and records into `set` on exit.
class ScopedLatencyTimer {
 public:
  ScopedLatencyTimer(OpLatencySet& set, uint16_t op)
      : set_(set), op_(op), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    set_.record(op_, static_cast<uint64_t>(ns.count()));
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  OpLatencySet& set_;
  uint16_t op_;
  std::chrono::steady_clock::time_point start_;
};

// ---- client read-ahead counters -------------------------------------------

// Process-wide read-ahead accounting, bumped by every HvacClient in
// the process and exported through the metrics frame. Lives in core so
// both the client library (producer) and anything assembling a frame
// (consumer) reach it without a client<->server dependency.
struct ReadAheadCounters {
  std::atomic<uint64_t> issued{0};    // chunks requested ahead of the app
  std::atomic<uint64_t> consumed{0};  // reads served from a pending chunk
  std::atomic<uint64_t> wasted{0};    // pending chunks discarded unread

  static ReadAheadCounters& global();
};

// ---- client metadata-cache counters ---------------------------------------

// Process-wide accounting for the client's TTL metadata cache
// (client/meta_cache.h): per-epoch re-opens served without a stat/open
// round trip show up as hits. Exported through the metrics frame and
// the HVAC_STATS_FILE dump.
struct MetaCacheCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> expired{0};      // entries aged out by the TTL
  std::atomic<uint64_t> invalidated{0};  // dropped on transport failure
                                         // or breaker trip

  static MetaCacheCounters& global();
};

// ---- clairvoyant prefetch counters ----------------------------------------

// Process-wide accounting for the client's plan-driven prefetch
// scheduler (client/prefetch_scheduler.h). Like the read-ahead
// counters, the producers are HvacClients and the consumers are the
// metrics frame (section 11) and the HVAC_STATS_FILE dump. The
// paced_delay histogram records how long the token bucket stalled
// each issued batch — nonzero means HVAC_PREFETCH_BW_MBPS is actually
// shaping warm-up traffic.
struct PrefetchCounters {
  std::atomic<uint64_t> planned{0};    // samples accepted into plans
  std::atomic<uint64_t> issued{0};     // samples sent in prefetch batches
  std::atomic<uint64_t> completed{0};  // answered cached by the server
  std::atomic<uint64_t> shed{0};       // answered shed (mover backpressure)
  std::atomic<uint64_t> late{0};       // cursor reached the sample before
                                       // its prefetch completed
  std::atomic<uint64_t> hit_after{0};  // cursor reached a sample its
                                       // prefetch had already warmed
  LatencyHistogram paced_delay;        // per-batch token-bucket stall (ns)

  static PrefetchCounters& global();
};

// ---- I/O stall attribution ------------------------------------------------

// Where one intercepted read's wall time went. The client read path
// charges every nanosecond of a top-level read() / pread() to exactly
// one bucket (checkpoint accounting: the timer advances at each
// attribution site), so the bucket sum equals the measured wall time
// by construction.
enum class StallBucket : uint8_t {
  kLocalHit = 0,      // served from a warmed chunk / local bookkeeping
  kRemoteRpc = 1,     // synchronous kRead/kReadScatter/kReadSegment RPC
  kPfsWait = 2,       // direct PFS fallback I/O
  kBackpressure = 3,  // waiting on an in-flight read-ahead future
  kRetry = 4,         // failed attempts + channel recovery penalty
};

// One epoch's decomposition, as exported through metrics-frame section
// 12 and the HVAC_STATS_FILE dump. total_ns is the measured wall time;
// the five *_ns buckets partition it.
struct StallEpochRow {
  uint64_t epoch = 0;
  uint64_t reads = 0;
  uint64_t total_ns = 0;
  uint64_t local_hit_ns = 0;
  uint64_t remote_rpc_ns = 0;
  uint64_t pfs_wait_ns = 0;
  uint64_t backpressure_ns = 0;
  uint64_t retry_ns = 0;
};

// Process-wide per-epoch stall accounting, bumped by every HvacClient
// read and read by whatever assembles a metrics frame. Epoch
// boundaries come from the access-plan hook (PrefetchScheduler::
// set_plan calls begin_epoch); without a plan, reads fall into
// wall-clock buckets of kFallbackEpochNs so the decomposition still
// has a time axis. Only the last kEpochWindow epochs are retained;
// older slots are recycled in place.
struct StallCounters {
  static constexpr size_t kEpochWindow = 8;
  static constexpr uint64_t kFallbackEpochNs = 60ull * 1000 * 1000 * 1000;

  // Declares `id` the current epoch (access-plan hook). Resets the
  // ring slot it lands in if a previous epoch owned it.
  void begin_epoch(uint64_t id);

  // Charges `ns` of read wall time to `bucket` in the current epoch.
  void charge(StallBucket bucket, uint64_t ns);

  // Counts one completed top-level read in the current epoch.
  void on_read();

  // Rows with activity, ascending by epoch id.
  std::vector<StallEpochRow> snapshot() const;

  // Wall time measured around the LD_PRELOAD read entry points —
  // the independent total the bucket sums are validated against.
  std::atomic<uint64_t> shim_read_wall_ns{0};
  std::atomic<uint64_t> shim_reads{0};

  static StallCounters& global();

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> used{0};  // 0 until an epoch claims the slot
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> total_ns{0};
    std::atomic<uint64_t> bucket_ns[5]{};
  };

  uint64_t current_epoch() const;
  Slot& slot_for(uint64_t epoch);

  std::array<Slot, kEpochWindow> slots_{};
  std::atomic<uint64_t> plan_epoch_{0};
  std::atomic<bool> plan_mode_{false};    // begin_epoch() seen
  mutable std::atomic<uint64_t> start_ns_{0};  // fallback-bucket origin
};

}  // namespace hvac::core
