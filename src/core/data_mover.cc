#include "core/data_mover.h"

#include "rpc/health.h"

namespace hvac::core {

DataMover::DataMover(CacheManager* cache, size_t movers,
                     size_t queue_capacity)
    : cache_(cache), queue_(queue_capacity) {
  threads_.reserve(movers == 0 ? 1 : movers);
  for (size_t i = 0; i < std::max<size_t>(movers, 1); ++i) {
    threads_.emplace_back([this] { mover_loop(); });
  }
}

DataMover::~DataMover() { shutdown(); }

std::shared_future<Result<bool>> DataMover::submit(std::string logical_path) {
  {
    // Coalesce onto an in-flight fetch for the same path: the waiter
    // shares the first submit's future, the queue sees one task.
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(logical_path);
    if (it != inflight_.end()) {
      ++it->second->waiters;
      if (it->second->first_wait_ns == 0 && trace::enabled()) {
        it->second->first_wait_ns = trace::now_ns();
      }
      dedup_coalesced_.fetch_add(1, std::memory_order_relaxed);
      return it->second->fut;
    }
  }

  auto inflight = std::make_shared<Inflight>();
  inflight->fut = inflight->done.get_future().share();
  auto task = std::make_unique<Task>();
  task->logical_path = logical_path;
  task->inflight = inflight;
  if (trace::enabled()) {
    task->ctx = trace::current_context();
    task->enqueue_ns = trace::now_ns();
  }
  std::shared_future<Result<bool>> fut = inflight->fut;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.emplace(logical_path, inflight);
  }
  // Bounded: a full FIFO rejects instead of blocking the caller (an
  // RPC handler thread). Blocking here under a prefetch flood would
  // park every handler thread on the queue and stall even cache-hit
  // reads; rejecting lets the client fall back to the PFS (fail-open)
  // or re-pace and retry later.
  Status pushed = queue_.try_push(std::move(task));
  if (!pushed.ok()) {
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(logical_path);
    }
    Error error = pushed.error();
    if (error.code == ErrorCode::kCapacity) {
      rpc::ResilienceCounters::global().mover_rejects.fetch_add(
          1, std::memory_order_relaxed);
      error = Error(ErrorCode::kUnavailable,
                    "data-mover queue saturated; retry later");
    }
    // Queue closed or full: resolve immediately with the error. Any
    // waiter that coalesced between the map insert and the failed
    // push still sees this error through the shared future.
    inflight->done.set_value(Result<bool>(std::move(error)));
    return fut;
  }
  return fut;
}

Result<bool> DataMover::fetch(const std::string& logical_path) {
  return submit(logical_path).get();
}

size_t DataMover::dedup_inflight() const {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  return inflight_.size();
}

void DataMover::shutdown() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void DataMover::mover_loop() {
  for (;;) {
    auto task = queue_.pop();
    if (!task.ok()) return;  // closed and drained
    // Queue wait (submit → pop) and the fetch itself are separate
    // spans, so "mover was backed up" and "PFS was slow" are
    // distinguishable in a trace.
    trace::ScopedContext adopt((*task)->ctx);
    if ((*task)->enqueue_ns != 0 && (*task)->ctx.valid()) {
      trace::emit("mover.queue", (*task)->enqueue_ns, trace::now_ns());
    }
    Result<bool> result = [&] {
      trace::Span span("mover.fetch");
      return cache_->ensure_cached((*task)->logical_path);
    }();
    uint32_t waiters = 0;
    uint64_t first_wait_ns = 0;
    {
      // Retire the in-flight entry BEFORE publishing the result: a
      // submit racing this completion starts a fresh fetch instead of
      // receiving an answer that may already be stale (evicted).
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase((*task)->logical_path);
      waiters = (*task)->inflight->waiters;
      first_wait_ns = (*task)->inflight->first_wait_ns;
    }
    if (waiters > 0 && first_wait_ns != 0 && (*task)->ctx.valid()) {
      // One retroactive span covers every piggybacked waiter: from the
      // earliest coalesced submit to completion, arg = waiter count.
      trace::emit("mover.dedup_wait", first_wait_ns, trace::now_ns(),
                  waiters);
    }
    (*task)->inflight->done.set_value(std::move(result));
  }
}

}  // namespace hvac::core
