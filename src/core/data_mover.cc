#include "core/data_mover.h"

#include "rpc/health.h"

namespace hvac::core {

DataMover::DataMover(CacheManager* cache, size_t movers,
                     size_t queue_capacity)
    : cache_(cache), queue_(queue_capacity) {
  threads_.reserve(movers == 0 ? 1 : movers);
  for (size_t i = 0; i < std::max<size_t>(movers, 1); ++i) {
    threads_.emplace_back([this] { mover_loop(); });
  }
}

DataMover::~DataMover() { shutdown(); }

std::future<Result<bool>> DataMover::submit(std::string logical_path) {
  auto task = std::make_unique<Task>();
  task->logical_path = std::move(logical_path);
  if (trace::enabled()) {
    task->ctx = trace::current_context();
    task->enqueue_ns = trace::now_ns();
  }
  std::future<Result<bool>> fut = task->done.get_future();
  // Bounded: a full FIFO rejects instead of blocking the caller (an
  // RPC handler thread). Blocking here under a prefetch flood would
  // park every handler thread on the queue and stall even cache-hit
  // reads; rejecting lets the client fall back to the PFS (fail-open)
  // or retry later.
  Status pushed = queue_.try_push(std::move(task));
  if (!pushed.ok()) {
    Error error = pushed.error();
    if (error.code == ErrorCode::kCapacity) {
      rpc::ResilienceCounters::global().mover_rejects.fetch_add(
          1, std::memory_order_relaxed);
      error = Error(ErrorCode::kUnavailable,
                    "data-mover queue saturated; retry later");
    }
    // Queue closed or full: resolve immediately with the error.
    std::promise<Result<bool>> p;
    p.set_value(Result<bool>(std::move(error)));
    return p.get_future();
  }
  return fut;
}

Result<bool> DataMover::fetch(const std::string& logical_path) {
  return submit(logical_path).get();
}

void DataMover::shutdown() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void DataMover::mover_loop() {
  for (;;) {
    auto task = queue_.pop();
    if (!task.ok()) return;  // closed and drained
    // Queue wait (submit → pop) and the fetch itself are separate
    // spans, so "mover was backed up" and "PFS was slow" are
    // distinguishable in a trace.
    trace::ScopedContext adopt((*task)->ctx);
    if ((*task)->enqueue_ns != 0 && (*task)->ctx.valid()) {
      trace::emit("mover.queue", (*task)->enqueue_ns, trace::now_ns());
    }
    trace::Span span("mover.fetch");
    (*task)->done.set_value(cache_->ensure_cached((*task)->logical_path));
  }
}

}  // namespace hvac::core
