// Packed container format for small-file workloads (FanStore-style).
//
// ImageNet-21k-scale training is a metadata storm: millions of tiny
// files, each costing one open RPC and one PFS metadata round trip.
// The packed format kills the storm at the source: `hvacctl pack`
// concatenates every sample of a dataset tree into a handful of large
// container blobs and writes one compact binary index mapping each
// sample's path hash to {container, offset, length}. Servers resolve
// sample paths through the index and serve reads by offset out of the
// container — a thousand-sample batch costs one cached container
// handle instead of a thousand opens — and clients that fetched the
// index answer open/stat locally with zero round trips.
//
// Everything lives under `<dataset>/.hvacpack/`:
//
//   .hvacpack/index.hvacpack        the binary index (layout below)
//   .hvacpack/container_00000.blob  container 0
//   .hvacpack/container_00001.blob  container 1 ...
//
// Containers are ordinary PFS files addressed by those logical paths,
// so the existing cache machinery (DataMover fetch, LocalStore,
// OpenHandleCache, sendfile ladder) serves them unchanged.
//
// Index layout (little-endian, same byte order as rpc/wire.h; the
// on-disk bytes are also the kPackedIndex RPC payload, verbatim):
//
//   u32 magic      'HVPK'
//   u16 version    1
//   u16 reserved   0
//   u32 container_count
//   u64 entry_count
//   u64 * container_count          container sizes in bytes
//   entry * entry_count            sorted strictly by path_hash:
//     u64 path_hash                stable_hash(logical sample path)
//     u32 container_id
//     u64 offset                   byte offset inside the container
//     u64 length                   sample length in bytes
//   u64 checksum   fnv1a64 over every preceding byte
//
// Decode rejects truncation, bad magic/version, checksum mismatch,
// unsorted or duplicate hashes, container ids out of range, and
// extents that leave their container — a corrupt index must surface
// as kProtocol, never as a wild server-side pread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace hvac::storage {

constexpr uint32_t kPackedIndexMagic = 0x4B505648;  // "HVPK"
constexpr uint16_t kPackedIndexVersion = 1;

// Logical (dataset-relative) names of the pack artifacts.
std::string packed_dir_name();                     // ".hvacpack"
std::string packed_index_logical();                // ".hvacpack/index.hvacpack"
std::string packed_container_logical(uint32_t id); // ".hvacpack/container_%05u.blob"

struct PackedEntry {
  uint64_t path_hash = 0;  // stable_hash of the logical sample path
  uint32_t container_id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

class PackedIndex {
 public:
  // Entries must be sorted strictly by path_hash (build() enforces).
  std::vector<uint64_t> container_sizes;
  std::vector<PackedEntry> entries;

  // Sorts entries and validates (duplicate hashes between *different*
  // paths are a fatal pack-time collision; the caller passes the
  // original paths so the error can name them).
  static Result<PackedIndex> build(std::vector<PackedEntry> entries,
                                   std::vector<uint64_t> container_sizes);

  std::vector<uint8_t> encode() const;
  static Result<PackedIndex> decode(const uint8_t* data, size_t size);

  // Binary search by path hash; nullptr when absent.
  const PackedEntry* find(uint64_t path_hash) const;

  uint64_t total_sample_bytes() const;
};

struct PackOptions {
  // Target container size; a container closes once it reaches this.
  // Overridden by HVAC_PACK_CONTAINER_BYTES when left at 0 by callers
  // that want the env default.
  uint64_t container_bytes = 64ull << 20;
};

struct PackReport {
  uint64_t files = 0;
  uint32_t containers = 0;
  uint64_t bytes = 0;
};

// Packs every regular file under `root` (except .hvacpack itself)
// into containers + index under `root`/.hvacpack. Deterministic: the
// tree is walked in sorted relative-path order, so the same tree
// always packs to byte-identical containers and index. Fails on a
// path-hash collision between two distinct paths (never observed with
// stable_hash on real datasets, but silently dropping a sample is not
// an option).
Result<PackReport> pack_tree(const std::string& root,
                             const PackOptions& options = {});

// Recursive listing of regular files under `root`, as sorted
// root-relative paths. `skip_dir` (a single top-level name, e.g.
// ".hvacpack") is excluded.
Result<std::vector<std::string>> list_files_recursive(
    const std::string& root, const std::string& skip_dir = "");

}  // namespace hvac::storage
