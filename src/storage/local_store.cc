#include "storage/local_store.h"

#include <cinttypes>
#include <cstdio>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/hash.h"

namespace hvac::storage {

LocalStore::LocalStore(std::string root, uint64_t capacity_bytes,
                       size_t handle_cache_slots)
    : root_(std::move(root)), capacity_(capacity_bytes) {
  if (handle_cache_slots == kHandleCacheFromEnv) {
    const int64_t slots = env_int_or("HVAC_HANDLE_CACHE", 128);
    handle_cache_slots = slots > 0 ? static_cast<size_t>(slots) : 0;
  }
  handles_ = std::make_unique<OpenHandleCache>(handle_cache_slots);
  (void)make_directories(root_);
}

std::string LocalStore::physical_path(
    const std::string& logical_path) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016" PRIx64,
                stable_hash(logical_path));
  return path_join(root_, std::string(name) + ".hvac");
}

bool LocalStore::contains(const std::string& logical_path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(logical_path) > 0;
}

Status LocalStore::insert(const std::string& logical_path,
                          uint64_t size_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ != 0 &&
      bytes_used_.load(std::memory_order_relaxed) + size_bytes > capacity_) {
    return Error(ErrorCode::kCapacity,
                 "local store over capacity inserting " + logical_path);
  }
  auto [it, inserted] = entries_.emplace(logical_path, size_bytes);
  if (!inserted) return Status::Ok();  // already cached; idempotent
  bytes_used_.fetch_add(size_bytes, std::memory_order_relaxed);
  return Status::Ok();
}

Result<PosixFile> LocalStore::open(const std::string& logical_path) const {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kStoreRead));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(logical_path) == 0) {
      return Error(ErrorCode::kNotFound, "not cached: " + logical_path);
    }
  }
  return PosixFile::open_read(physical_path(logical_path));
}

Result<PosixFile> LocalStore::open_write(
    const std::string& logical_path) const {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kStoreWrite));
  return PosixFile::open_rw(physical_path(logical_path));
}

Status LocalStore::update_size(const std::string& logical_path,
                               uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(logical_path);
  const uint64_t old_size = it == entries_.end() ? 0 : it->second;
  if (new_size > old_size) {
    const uint64_t grow = new_size - old_size;
    if (capacity_ != 0 &&
        bytes_used_.load(std::memory_order_relaxed) + grow > capacity_) {
      return Error(ErrorCode::kCapacity,
                   "local store over capacity growing " + logical_path);
    }
    bytes_used_.fetch_add(grow, std::memory_order_relaxed);
  } else {
    bytes_used_.fetch_sub(old_size - new_size, std::memory_order_relaxed);
  }
  entries_[logical_path] = new_size;
  return Status::Ok();
}

Result<OpenHandleCache::Pin> LocalStore::open_pinned(
    const std::string& logical_path) const {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kStoreRead));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(logical_path) == 0) {
      return Error(ErrorCode::kNotFound, "not cached: " + logical_path);
    }
  }
  return handles_->acquire(logical_path, physical_path(logical_path));
}

Result<uint64_t> LocalStore::evict(const std::string& logical_path) {
  uint64_t size = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(logical_path);
    if (it == entries_.end()) {
      return Error(ErrorCode::kNotFound, "not cached: " + logical_path);
    }
    size = it->second;
    entries_.erase(it);
    bytes_used_.fetch_sub(size, std::memory_order_relaxed);
  }
  // Drop the cached handle before unlinking: in-flight pinned reads
  // keep their fd (unlink doesn't invalidate it), future opens miss.
  handles_->invalidate(logical_path);
  HVAC_RETURN_IF_ERROR(remove_file(physical_path(logical_path)));
  return size;
}

void LocalStore::purge() {
  std::lock_guard<std::mutex> lock(mutex_);
  handles_->clear();
  for (const auto& [logical, size] : entries_) {
    (void)remove_file(physical_path(logical));
  }
  entries_.clear();
  bytes_used_.store(0, std::memory_order_relaxed);
}

size_t LocalStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::string> LocalStore::logical_paths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [logical, size] : entries_) out.push_back(logical);
  return out;
}

}  // namespace hvac::storage
