// Throughput and latency shaping used by PfsBackend to make a local
// directory behave like a congested parallel file system.
//
// TokenBucket meters bytes/second with a burst allowance; acquire()
// blocks the calling thread until the requested tokens are available.
// LatencyInjector sleeps for a configured base + jitter per operation
// (the "metadata round trip" of a GPFS open).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/rng.h"

namespace hvac::storage {

class TokenBucket {
 public:
  // rate_bytes_per_sec == 0 disables throttling entirely.
  TokenBucket(double rate_bytes_per_sec, double burst_bytes);

  // Blocks until `bytes` tokens are available, then consumes them.
  void acquire(uint64_t bytes);

  // Non-blocking variant used by tests: returns the wait in seconds a
  // caller would incur, without sleeping.
  double would_wait_seconds(uint64_t bytes) const;

  double rate() const { return rate_; }

 private:
  using Clock = std::chrono::steady_clock;

  void refill_locked(Clock::time_point now);

  const double rate_;
  const double burst_;
  mutable std::mutex mutex_;
  double tokens_;
  Clock::time_point last_refill_;
};

class LatencyInjector {
 public:
  // Sleeps base_us +/- uniform jitter_us on each call; zero disables.
  LatencyInjector(uint64_t base_us, uint64_t jitter_us, uint64_t seed);

  void inject();

  uint64_t base_us() const { return base_us_; }

 private:
  const uint64_t base_us_;
  const uint64_t jitter_us_;
  std::mutex mutex_;
  SplitMix64 rng_;
};

}  // namespace hvac::storage
