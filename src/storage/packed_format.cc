#include "storage/packed_format.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/env.h"
#include "common/hash.h"
#include "common/log.h"
#include "storage/posix_file.h"

namespace hvac::storage {

namespace {

constexpr size_t kHeaderBytes = 4 + 2 + 2 + 4 + 8;
constexpr size_t kEntryBytes = 8 + 4 + 8 + 8;
constexpr size_t kChecksumBytes = 8;

void put_le(std::vector<uint8_t>& out, const void* p, size_t n) {
  static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
                "big-endian hosts need byte swaps here");
  const auto* src = static_cast<const uint8_t*>(p);
  out.insert(out.end(), src, src + n);
}

void put_u16(std::vector<uint8_t>& out, uint16_t v) { put_le(out, &v, 2); }
void put_u32(std::vector<uint8_t>& out, uint32_t v) { put_le(out, &v, 4); }
void put_u64(std::vector<uint8_t>& out, uint64_t v) { put_le(out, &v, 8); }

// Bounds-checked little-endian cursor (the index is decoded from
// untrusted bytes: a PFS file or an RPC payload).
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
  bool take(void* dst, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data + pos, n);
    pos += n;
    return true;
  }
};

Error corrupt(const char* what) {
  return Error(ErrorCode::kProtocol,
               std::string("packed index: ") + what);
}

uint64_t checksum_of(const uint8_t* data, size_t size) {
  return fnv1a64(
      std::string_view(reinterpret_cast<const char*>(data), size));
}

Status list_files_walk(const std::string& root, const std::string& rel,
                       const std::string& skip_dir,
                       std::vector<std::string>* out) {
  const std::string dir = rel.empty() ? root : path_join(root, rel);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Error::from_errno(errno, "opendir " + dir);
  }
  Status status = Status::Ok();
  while (const dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    if (rel.empty() && name == skip_dir) continue;
    const std::string child_rel =
        rel.empty() ? name : rel + "/" + name;
    struct stat st{};
    if (::lstat(path_join(root, child_rel).c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      status = list_files_walk(root, child_rel, skip_dir, out);
      if (!status.ok()) break;
    } else if (S_ISREG(st.st_mode)) {
      out->push_back(child_rel);
    }
  }
  ::closedir(d);
  return status;
}

}  // namespace

std::string packed_dir_name() { return ".hvacpack"; }

std::string packed_index_logical() { return ".hvacpack/index.hvacpack"; }

std::string packed_container_logical(uint32_t id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ".hvacpack/container_%05u.blob", id);
  return std::string(buf);
}

Result<PackedIndex> PackedIndex::build(
    std::vector<PackedEntry> entries,
    std::vector<uint64_t> container_sizes) {
  std::sort(entries.begin(), entries.end(),
            [](const PackedEntry& a, const PackedEntry& b) {
              return a.path_hash < b.path_hash;
            });
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].path_hash == entries[i - 1].path_hash) {
      return Error(ErrorCode::kInvalidArgument,
                   "packed index: path-hash collision between two samples");
    }
  }
  PackedIndex index;
  index.container_sizes = std::move(container_sizes);
  index.entries = std::move(entries);
  return index;
}

std::vector<uint8_t> PackedIndex::encode() const {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + container_sizes.size() * 8 +
              entries.size() * kEntryBytes + kChecksumBytes);
  put_u32(out, kPackedIndexMagic);
  put_u16(out, kPackedIndexVersion);
  put_u16(out, 0);
  put_u32(out, static_cast<uint32_t>(container_sizes.size()));
  put_u64(out, static_cast<uint64_t>(entries.size()));
  for (uint64_t size : container_sizes) put_u64(out, size);
  for (const PackedEntry& e : entries) {
    put_u64(out, e.path_hash);
    put_u32(out, e.container_id);
    put_u64(out, e.offset);
    put_u64(out, e.length);
  }
  put_u64(out, checksum_of(out.data(), out.size()));
  return out;
}

Result<PackedIndex> PackedIndex::decode(const uint8_t* data, size_t size) {
  Cursor c{data, size};
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t reserved = 0;
  uint32_t container_count = 0;
  uint64_t entry_count = 0;
  if (!c.take(&magic, 4) || !c.take(&version, 2) || !c.take(&reserved, 2) ||
      !c.take(&container_count, 4) || !c.take(&entry_count, 8)) {
    return corrupt("truncated header");
  }
  if (magic != kPackedIndexMagic) return corrupt("bad magic");
  if (version != kPackedIndexVersion) return corrupt("unsupported version");
  const size_t body = static_cast<size_t>(container_count) * 8 +
                      static_cast<size_t>(entry_count) * kEntryBytes;
  if (c.remaining() < body + kChecksumBytes) {
    return corrupt("truncated body");
  }
  if (c.remaining() > body + kChecksumBytes) {
    return corrupt("trailing bytes");
  }
  // Checksum covers everything before itself; verify before trusting
  // any entry field.
  uint64_t stored = 0;
  std::memcpy(&stored, data + size - kChecksumBytes, kChecksumBytes);
  if (stored != checksum_of(data, size - kChecksumBytes)) {
    return corrupt("checksum mismatch");
  }
  PackedIndex index;
  index.container_sizes.resize(container_count);
  for (uint32_t i = 0; i < container_count; ++i) {
    c.take(&index.container_sizes[i], 8);
  }
  index.entries.resize(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    PackedEntry& e = index.entries[i];
    c.take(&e.path_hash, 8);
    c.take(&e.container_id, 4);
    c.take(&e.offset, 8);
    c.take(&e.length, 8);
    if (i > 0 && e.path_hash <= index.entries[i - 1].path_hash) {
      return corrupt("entries unsorted or duplicate path hash");
    }
    if (e.container_id >= container_count) {
      return corrupt("container id out of range");
    }
    const uint64_t csize = index.container_sizes[e.container_id];
    if (e.offset > csize || e.length > csize - e.offset) {
      return corrupt("extent outside container");
    }
  }
  return index;
}

const PackedEntry* PackedIndex::find(uint64_t path_hash) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), path_hash,
      [](const PackedEntry& e, uint64_t h) { return e.path_hash < h; });
  if (it == entries.end() || it->path_hash != path_hash) return nullptr;
  return &*it;
}

uint64_t PackedIndex::total_sample_bytes() const {
  uint64_t total = 0;
  for (const PackedEntry& e : entries) total += e.length;
  return total;
}

Result<std::vector<std::string>> list_files_recursive(
    const std::string& root, const std::string& skip_dir) {
  std::vector<std::string> out;
  HVAC_RETURN_IF_ERROR(list_files_walk(root, "", skip_dir, &out));
  std::sort(out.begin(), out.end());
  return out;
}

Result<PackReport> pack_tree(const std::string& root,
                             const PackOptions& options) {
  uint64_t container_bytes = options.container_bytes;
  if (container_bytes == 0) {
    const int64_t env = env_int_or("HVAC_PACK_CONTAINER_BYTES", 0);
    container_bytes = env > 0 ? static_cast<uint64_t>(env) : 64ull << 20;
  }
  HVAC_ASSIGN_OR_RETURN(std::vector<std::string> rels,
                        list_files_recursive(root, packed_dir_name()));
  if (rels.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "pack: no files under " + root);
  }
  HVAC_RETURN_IF_ERROR(
      make_directories(path_join(root, packed_dir_name())));

  std::vector<PackedEntry> entries;
  entries.reserve(rels.size());
  std::vector<uint64_t> container_sizes;
  PackReport report;

  PosixFile container;
  uint64_t container_fill = 0;
  auto roll_container = [&]() -> Status {
    if (container.valid()) {
      HVAC_RETURN_IF_ERROR(container.close());
      container_sizes.push_back(container_fill);
    }
    const uint32_t id = static_cast<uint32_t>(container_sizes.size());
    HVAC_ASSIGN_OR_RETURN(
        container,
        PosixFile::create_write(
            path_join(root, packed_container_logical(id))));
    container_fill = 0;
    return Status::Ok();
  };
  HVAC_RETURN_IF_ERROR(roll_container());

  for (const std::string& rel : rels) {
    HVAC_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                          read_file(path_join(root, rel)));
    // Close the current container once full — but never emit an empty
    // one, and never split a sample across two containers.
    if (container_fill > 0 && container_fill + data.size() > container_bytes) {
      HVAC_RETURN_IF_ERROR(roll_container());
    }
    PackedEntry e;
    e.path_hash = stable_hash(rel);
    e.container_id = static_cast<uint32_t>(container_sizes.size());
    e.offset = container_fill;
    e.length = data.size();
    entries.push_back(e);
    if (!data.empty()) {
      HVAC_ASSIGN_OR_RETURN(size_t n,
                            container.write(data.data(), data.size()));
      if (n != data.size()) {
        return Error(ErrorCode::kIoError, "pack: short container write");
      }
    }
    container_fill += data.size();
    report.bytes += data.size();
    ++report.files;
  }
  HVAC_RETURN_IF_ERROR(container.close());
  container_sizes.push_back(container_fill);

  HVAC_ASSIGN_OR_RETURN(
      PackedIndex index,
      PackedIndex::build(std::move(entries), std::move(container_sizes)));
  const std::vector<uint8_t> bytes = index.encode();
  HVAC_RETURN_IF_ERROR(write_file(path_join(root, packed_index_logical()),
                                  bytes.data(), bytes.size()));
  report.containers = static_cast<uint32_t>(index.container_sizes.size());
  HVAC_LOG_INFO("packed " << report.files << " files into "
                          << report.containers << " containers ("
                          << report.bytes << " bytes) under " << root);
  return report;
}

}  // namespace hvac::storage
