#include "storage/open_handle_cache.h"

#include <functional>

namespace hvac::storage {

OpenHandleCache::OpenHandleCache(size_t max_handles)
    : max_handles_(max_handles) {
  const size_t shards =
      (enabled() && max_handles_ >= kShardThreshold) ? kShards : 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Ceiling split so the shard budgets sum to >= max_handles (a hash
  // skew can fill one shard while another sits empty; rounding down
  // would under-use the configured capacity instead of over-using it).
  per_shard_capacity_ = (max_handles_ + shards - 1) / shards;
}

OpenHandleCache::Shard& OpenHandleCache::shard_for(const std::string& key) {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const OpenHandleCache::Shard& OpenHandleCache::shard_for(
    const std::string& key) const {
  return const_cast<OpenHandleCache*>(this)->shard_for(key);
}

Result<OpenHandleCache::Pin> OpenHandleCache::acquire(
    const std::string& key, const std::string& physical_path) {
  if (!enabled()) {
    // Cache off: one-shot handle, closed when the pin drops.
    HVAC_ASSIGN_OR_RETURN(PosixFile file,
                          PosixFile::open_read(physical_path));
    auto entry = std::make_shared<Entry>();
    entry->file = std::move(file);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Pin(std::move(entry));
  }

  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Pin(it->second->second);
    }
  }

  // Miss: open outside the lock (NVMe open is cheap but not free, and
  // a slow open must not stall concurrent hits).
  HVAC_ASSIGN_OR_RETURN(PosixFile file, PosixFile::open_read(physical_path));
  auto entry = std::make_shared<Entry>();
  entry->file = std::move(file);
  misses_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Another reader won the race; use its entry, ours closes here.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return Pin(it->second->second);
  }
  shard.lru.emplace_front(key, entry);
  shard.index[key] = shard.lru.begin();
  shrink_shard_locked(shard);
  return Pin(std::move(entry));
}

void OpenHandleCache::shrink_shard_locked(Shard& shard) {
  auto it = shard.lru.end();
  while (shard.index.size() > per_shard_capacity_ &&
         it != shard.lru.begin()) {
    --it;
    if (it->second->pins.load(std::memory_order_relaxed) > 0) continue;
    shard.index.erase(it->first);
    it = shard.lru.erase(it);  // last index ref dropped: fd closes here
  }
}

void OpenHandleCache::invalidate(const std::string& key) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  std::shared_ptr<Entry> doomed;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return;
    doomed = it->second->second;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    if (doomed->pins.load(std::memory_order_relaxed) > 0) {
      deferred_closes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // `doomed` drops outside the lock: if no reader holds a pin the fd
  // closes now; otherwise the last Pin's unpin closes it (deferred).
}

void OpenHandleCache::clear() {
  for (auto& shard : shards_) {
    LruList drained;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      drained.swap(shard->lru);
      shard->index.clear();
    }
    // Handles close here, outside the lock — except pinned ones, which
    // survive until their readers finish.
    for (const auto& [key, entry] : drained) {
      if (entry->pins.load(std::memory_order_relaxed) > 0) {
        deferred_closes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

size_t OpenHandleCache::open_handles() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->index.size();
  }
  return total;
}

size_t OpenHandleCache::pinned_handles() const {
  size_t pinned = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, entry] : shard->lru) {
      if (entry->pins.load(std::memory_order_relaxed) > 0) ++pinned;
    }
  }
  return pinned;
}

}  // namespace hvac::storage
