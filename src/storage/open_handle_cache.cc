#include "storage/open_handle_cache.h"

namespace hvac::storage {

OpenHandleCache::OpenHandleCache(size_t max_handles)
    : max_handles_(max_handles) {}

Result<OpenHandleCache::Pin> OpenHandleCache::acquire(
    const std::string& key, const std::string& physical_path) {
  if (!enabled()) {
    // Cache off: one-shot handle, closed when the pin drops.
    HVAC_ASSIGN_OR_RETURN(PosixFile file,
                          PosixFile::open_read(physical_path));
    auto entry = std::make_shared<Entry>();
    entry->file = std::move(file);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Pin(std::move(entry));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Pin(it->second->second);
    }
  }

  // Miss: open outside the lock (NVMe open is cheap but not free, and
  // a slow open must not stall concurrent hits).
  HVAC_ASSIGN_OR_RETURN(PosixFile file, PosixFile::open_read(physical_path));
  auto entry = std::make_shared<Entry>();
  entry->file = std::move(file);
  misses_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another reader won the race; use its entry, ours closes here.
    lru_.splice(lru_.begin(), lru_, it->second);
    return Pin(it->second->second);
  }
  lru_.emplace_front(key, entry);
  index_[key] = lru_.begin();
  shrink_to_capacity_locked();
  return Pin(std::move(entry));
}

void OpenHandleCache::shrink_to_capacity_locked() {
  auto it = lru_.end();
  while (index_.size() > max_handles_ && it != lru_.begin()) {
    --it;
    if (it->second->pins.load(std::memory_order_relaxed) > 0) continue;
    index_.erase(it->first);
    it = lru_.erase(it);  // last index ref dropped: fd closes here
  }
}

void OpenHandleCache::invalidate(const std::string& key) {
  std::shared_ptr<Entry> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return;
    doomed = it->second->second;
    lru_.erase(it->second);
    index_.erase(it);
    if (doomed->pins.load(std::memory_order_relaxed) > 0) {
      deferred_closes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // `doomed` drops outside the lock: if no reader holds a pin the fd
  // closes now; otherwise the last Pin's unpin closes it (deferred).
}

void OpenHandleCache::clear() {
  LruList drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drained.swap(lru_);
    index_.clear();
  }
  // Handles close here, outside the lock — except pinned ones, which
  // survive until their readers finish.
  for (const auto& [key, entry] : drained) {
    if (entry->pins.load(std::memory_order_relaxed) > 0) {
      deferred_closes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

size_t OpenHandleCache::open_handles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

size_t OpenHandleCache::pinned_handles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t pinned = 0;
  for (const auto& [key, entry] : lru_) {
    if (entry->pins.load(std::memory_order_relaxed) > 0) ++pinned;
  }
  return pinned;
}

}  // namespace hvac::storage
