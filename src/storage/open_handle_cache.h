// LRU cache of open file handles for the read hot path.
//
// The seed served every cached read with an open()/pread()/close()
// triple; on the hit path — HVAC's whole value proposition — two of
// those three syscalls are pure overhead. This cache keeps up to
// `max_handles` PosixFile handles resident, keyed by the store's
// logical path, so steady-state reads are a single pread on a pinned
// handle.
//
// Concurrency contract:
//   * acquire() returns a Pin — shared ownership of the entry. A
//     pinned handle is never closed: eviction (capacity or explicit
//     invalidate()) only removes the entry from the index; the fd
//     closes when the last Pin drops. Readers therefore never race a
//     close (the evict-vs-pinned-read case the tests exercise under
//     TSAN).
//   * max_handles == 0 disables caching: acquire() opens a one-shot
//     handle that closes when its Pin drops — the seed behaviour.
//   * Internally the index is sharded by key hash once max_handles is
//     large enough to split (>= kShardThreshold): each shard has its
//     own mutex + LRU, so concurrent hit-path acquires from different
//     reactors stop serializing on one lock. Small capacities keep a
//     single shard so LRU eviction order stays exact (the semantics
//     the capacity-1/2 tests pin down). Sharding is safe with the
//     deferred-close accounting because eviction never closes a
//     pinned handle in any shard — the Pin's shared_ptr, not the
//     index, owns the fd's last reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/posix_file.h"

namespace hvac::storage {

class OpenHandleCache {
 public:
  explicit OpenHandleCache(size_t max_handles);

  class Pin {
   public:
    Pin() = default;
    ~Pin() { unpin(); }

    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    Pin(Pin&& other) noexcept : entry_(std::move(other.entry_)) {}
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        unpin();
        entry_ = std::move(other.entry_);
      }
      return *this;
    }

    bool valid() const { return entry_ != nullptr; }
    const PosixFile& file() const { return entry_->file; }

    Result<size_t> pread(void* buf, size_t count, uint64_t offset) const {
      return entry_->file.pread(buf, count, offset);
    }
    Result<uint64_t> size() const { return entry_->file.size(); }

   private:
    friend class OpenHandleCache;
    struct Entry {
      PosixFile file;
      std::atomic<uint32_t> pins{0};
    };
    explicit Pin(std::shared_ptr<Entry> entry) : entry_(std::move(entry)) {
      if (entry_) entry_->pins.fetch_add(1, std::memory_order_relaxed);
    }
    void unpin() {
      if (entry_) entry_->pins.fetch_sub(1, std::memory_order_relaxed);
      entry_.reset();
      // If the index no longer references the entry, this drop closes
      // the fd (PosixFile destructor) — the deferred-close path.
    }

    std::shared_ptr<Entry> entry_;
  };

  // Returns a pinned handle for `key`, opening `physical_path` on a
  // cache miss. The pin stays valid across concurrent invalidate() /
  // capacity eviction.
  Result<Pin> acquire(const std::string& key,
                      const std::string& physical_path);

  // Removes `key` from the index (store eviction). Unpinned handles
  // close immediately; pinned handles close when their last reader
  // lets go. Missing keys are ignored.
  void invalidate(const std::string& key);

  // Drops every index entry (store purge / teardown).
  void clear();

  size_t open_handles() const;   // entries currently in the index
  size_t pinned_handles() const; // index entries with at least one pin
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  // Entries removed from the index while still pinned: their fds
  // outlived eviction and closed on the last Pin drop.
  uint64_t deferred_closes() const {
    return deferred_closes_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return max_handles_; }
  bool enabled() const { return max_handles_ > 0; }
  size_t shard_count() const { return shards_.size(); }

 private:
  using Entry = Pin::Entry;
  // LRU order: front = most recent. The map points into the list.
  using LruList = std::list<std::pair<std::string, std::shared_ptr<Entry>>>;

  // Below this capacity the cache keeps one shard (exact global LRU);
  // at or above it the index splits into kShards hash shards.
  static constexpr size_t kShardThreshold = 16;
  static constexpr size_t kShards = 8;

  struct Shard {
    mutable std::mutex mutex;
    LruList lru;
    std::unordered_map<std::string, LruList::iterator> index;
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;

  // Evicts least-recently-used *unpinned* entries until the shard fits
  // its budget. Pinned entries are skipped — a busy handle must not be
  // churned — so the index can transiently exceed the budget when
  // everything is pinned. Caller holds the shard mutex.
  void shrink_shard_locked(Shard& shard);

  const size_t max_handles_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> deferred_closes_{0};
};

}  // namespace hvac::storage
