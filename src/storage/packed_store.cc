#include "storage/packed_store.h"

#include "common/env.h"
#include "common/hash.h"
#include "common/log.h"
#include "storage/posix_file.h"

namespace hvac::storage {

PackedStore::PackedStore(std::vector<uint8_t> raw, PackedIndex index)
    : raw_(std::move(raw)), index_(std::move(index)) {
  container_logicals_.reserve(index_.container_sizes.size());
  for (uint32_t id = 0; id < index_.container_sizes.size(); ++id) {
    container_logicals_.push_back(packed_container_logical(id));
  }
}

Result<std::unique_ptr<PackedStore>> PackedStore::load(
    const std::string& root) {
  const std::string index_path = path_join(root, packed_index_logical());
  if (!file_exists(index_path)) {
    return std::unique_ptr<PackedStore>();  // dataset is not packed
  }
  HVAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, read_file(index_path));
  HVAC_ASSIGN_OR_RETURN(PackedIndex index,
                        PackedIndex::decode(raw.data(), raw.size()));
  auto store = std::unique_ptr<PackedStore>(
      new PackedStore(std::move(raw), std::move(index)));
  HVAC_LOG_INFO("packed index loaded: " << store->sample_count()
                                        << " samples in "
                                        << store->container_count()
                                        << " containers");
  return store;
}

std::optional<PackedStore::Resolved> PackedStore::resolve(
    const std::string& logical_path) const {
  const PackedEntry* e = index_.find(stable_hash(logical_path));
  if (e == nullptr) return std::nullopt;
  Resolved r;
  r.container_logical = container_logicals_[e->container_id];
  r.base = e->offset;
  r.length = e->length;
  return r;
}

}  // namespace hvac::storage
