#include "storage/posix_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>

namespace hvac::storage {

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

PosixFile& PosixFile::operator=(PosixFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<PosixFile> PosixFile::open_read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Error::from_errno(errno, "open " + path);
  return PosixFile(fd);
}

Result<PosixFile> PosixFile::create_write(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Error::from_errno(errno, "create " + path);
  return PosixFile(fd);
}

Result<PosixFile> PosixFile::open_rw(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Error::from_errno(errno, "open_rw " + path);
  return PosixFile(fd);
}

Result<size_t> PosixFile::read(void* buf, size_t count) {
  for (;;) {
    const ssize_t n = ::read(fd_, buf, count);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno != EINTR) return Error::from_errno(errno, "read");
  }
}

Result<size_t> PosixFile::pread(void* buf, size_t count, uint64_t offset) {
  for (;;) {
    const ssize_t n =
        ::pread(fd_, buf, count, static_cast<off_t>(offset));
    if (n >= 0) return static_cast<size_t>(n);
    if (errno != EINTR) return Error::from_errno(errno, "pread");
  }
}

Result<size_t> PosixFile::write(const void* buf, size_t count) {
  size_t done = 0;
  const auto* p = static_cast<const uint8_t*>(buf);
  while (done < count) {
    const ssize_t n = ::write(fd_, p + done, count - done);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Error::from_errno(errno, "write");
    }
    done += static_cast<size_t>(n);
  }
  return done;
}

Result<size_t> PosixFile::pwrite(const void* buf, size_t count,
                                 uint64_t offset) {
  size_t done = 0;
  const auto* p = static_cast<const uint8_t*>(buf);
  while (done < count) {
    const ssize_t n = ::pwrite(fd_, p + done, count - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Error::from_errno(errno, "pwrite");
    }
    done += static_cast<size_t>(n);
  }
  return done;
}

Status PosixFile::sync() {
  while (::fsync(fd_) != 0) {
    if (errno != EINTR) return Error::from_errno(errno, "fsync");
  }
  return Status::Ok();
}

Status PosixFile::datasync() {
  while (::fdatasync(fd_) != 0) {
    if (errno != EINTR) return Error::from_errno(errno, "fdatasync");
  }
  return Status::Ok();
}

Status PosixFile::truncate(uint64_t length) {
  while (::ftruncate(fd_, static_cast<off_t>(length)) != 0) {
    if (errno != EINTR) return Error::from_errno(errno, "ftruncate");
  }
  return Status::Ok();
}

Result<uint64_t> PosixFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return Error::from_errno(errno, "fstat");
  return static_cast<uint64_t>(st.st_size);
}

Status PosixFile::close() {
  if (fd_ < 0) return Status::Ok();
  const int rc = ::close(std::exchange(fd_, -1));
  if (rc != 0) return Error::from_errno(errno, "close");
  return Status::Ok();
}

Result<std::vector<uint8_t>> read_file(const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(PosixFile f, PosixFile::open_read(path));
  HVAC_ASSIGN_OR_RETURN(uint64_t sz, f.size());
  std::vector<uint8_t> data(sz);
  size_t got = 0;
  while (got < data.size()) {
    HVAC_ASSIGN_OR_RETURN(size_t n, f.read(data.data() + got,
                                           data.size() - got));
    if (n == 0) break;  // truncated concurrently; return what we have
    got += n;
  }
  data.resize(got);
  return data;
}

Status make_directories(const std::string& path) {
  std::string partial;
  size_t i = 0;
  while (i < path.size()) {
    size_t j = path.find('/', i + 1);
    if (j == std::string::npos) j = path.size();
    partial = path.substr(0, j);
    if (!partial.empty() && partial != "/") {
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return Error::from_errno(errno, "mkdir " + partial);
      }
    }
    i = j;
  }
  return Status::Ok();
}

namespace {
std::string parent_dir(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos || slash == 0) return "/";
  return path.substr(0, slash);
}
}  // namespace

Status write_file(const std::string& path, const void* data, size_t size) {
  HVAC_RETURN_IF_ERROR(make_directories(parent_dir(path)));
  HVAC_ASSIGN_OR_RETURN(PosixFile f, PosixFile::create_write(path));
  HVAC_ASSIGN_OR_RETURN(size_t n, f.write(data, size));
  (void)n;
  return f.close();
}

Result<uint64_t> copy_file_contents(const std::string& src,
                                    const std::string& dst) {
  HVAC_ASSIGN_OR_RETURN(PosixFile in, PosixFile::open_read(src));
  HVAC_RETURN_IF_ERROR(make_directories(parent_dir(dst)));
  HVAC_ASSIGN_OR_RETURN(PosixFile out, PosixFile::create_write(dst));
  std::vector<uint8_t> buf(1u << 20);
  uint64_t total = 0;
  for (;;) {
    HVAC_ASSIGN_OR_RETURN(size_t n, in.read(buf.data(), buf.size()));
    if (n == 0) break;
    HVAC_ASSIGN_OR_RETURN(size_t w, out.write(buf.data(), n));
    total += w;
  }
  HVAC_RETURN_IF_ERROR(out.close());
  return total;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Result<uint64_t> file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return Error::from_errno(errno, "stat " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Error::from_errno(errno, "unlink " + path);
  }
  return Status::Ok();
}

}  // namespace hvac::storage
