// Crash-consistent write-ahead journal for the checkpoint write path.
//
// Every write the server acknowledges lands here *before* it touches
// the write-back store, so a kill -9 at any instant loses nothing the
// application was told is durable. The format is a flat append-only
// log of length-prefixed, CRC-framed records:
//
//   ┌────────┬────────┬──────────────────────────────┐
//   │ u32 len│ u32 crc│ body (len bytes)             │  repeated
//   └────────┴────────┴──────────────────────────────┘
//   body := [u8 type][u64 seq][type-specific fields]
//     kWrite   : [u32 path_len][path][u64 offset][u32 data_len][data]
//     kCommit  : (nothing — an fsync barrier marker)
//     kFlushed : [u32 path_len][path]  (PFS now holds the bytes)
//
// `crc` is CRC-32 (IEEE 802.3 polynomial) over the body. Appends are
// buffered in the page cache; `commit()` appends a kCommit marker and
// fdatasync()s — that is the durability barrier behind the shim's
// fsync/fdatasync/close. On restart, `replay()` walks the log from the
// start: complete CRC-valid records are re-applied idempotently
// (pwrite of the same bytes at the same offset commutes with itself),
// the first torn or CRC-bad record truncates the tail — by
// construction everything after a torn record postdates the last
// acked barrier, so cutting it breaks no promise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/posix_file.h"

namespace hvac::storage {

// CRC-32 (polynomial 0xEDB88320, the IEEE one), table-driven.
uint32_t crc32(const void* data, size_t size);

enum class JournalRecordType : uint8_t {
  kWrite = 1,
  kCommit = 2,
  kFlushed = 3,
  kTruncate = 4,  // [path]: file reset to empty (O_TRUNC re-open)
};

// What replay() found and did — surfaced in the metrics frame and by
// `hvacctl journal` as the last-replay summary.
struct JournalReplayStats {
  uint64_t writes_applied = 0;    // kWrite records re-applied
  uint64_t bytes_applied = 0;     // payload bytes across those
  uint64_t commits_seen = 0;
  uint64_t flushes_seen = 0;      // kFlushed records
  uint64_t truncates_seen = 0;    // kTruncate records
  uint64_t truncated_bytes = 0;   // torn/CRC-bad tail cut off
  // Paths with a kWrite after their last kFlushed: still dirty, the
  // caller re-enqueues them to the flusher.
  std::vector<std::string> dirty_paths;
};

class WriteJournal {
 public:
  // Opens (creating if absent) the journal file. The instance starts
  // appending at the current end of file; call replay() first when
  // the file may hold records from a previous incarnation.
  static Result<std::unique_ptr<WriteJournal>> open(const std::string& path);

  // Appends one record. Not durable until commit(). Thread-safe.
  // Fault site: journal_append.
  Status append_write(const std::string& logical_path, uint64_t offset,
                      const void* data, size_t size);
  Status append_flushed(const std::string& logical_path);
  Status append_truncate(const std::string& logical_path);

  // The durability barrier: appends a kCommit marker and fdatasyncs
  // the journal. When this returns Ok, every record appended before
  // it survives kill -9. Fault sites: journal_append (the marker),
  // journal_fsync (the sync).
  Status commit();

  // Re-applies the log through `apply` (called for each kWrite record;
  // it must be idempotent), truncating any torn/CRC-bad tail. A bad
  // tail is NOT an error — recovery proceeds with everything before
  // it. Call once, before the first append of this incarnation.
  using ApplyFn = std::function<Status(
      const std::string& logical_path, uint64_t offset, const void* data,
      size_t size)>;
  // Called for kTruncate records; null = ignore them.
  using TruncateFn = std::function<Status(const std::string& logical_path)>;
  Result<JournalReplayStats> replay(const ApplyFn& apply,
                                    const TruncateFn& truncate = nullptr);

  // Truncates the log to empty — valid only when every dirty path has
  // been flushed to the PFS (the caller's bookkeeping proves it).
  // Keeps the journal from growing without bound across checkpoints.
  Status checkpoint_reset();

  // Observability.
  uint64_t size_bytes() const;
  uint64_t record_count() const;   // records appended or replayed
  uint64_t next_seq() const;

  const std::string& path() const { return path_; }

 private:
  WriteJournal(std::string path, PosixFile file, uint64_t end);

  Status append_record(JournalRecordType type,
                       const std::vector<uint8_t>& body_tail);

  const std::string path_;
  mutable std::mutex mutex_;
  PosixFile file_;
  uint64_t end_ = 0;        // append position
  uint64_t seq_ = 0;        // next record sequence number
  uint64_t records_ = 0;
};

}  // namespace hvac::storage
