// Server-side view of a packed dataset (see packed_format.h).
//
// Loaded once at server start from `<pfs_root>/.hvacpack/`: holds the
// raw index bytes (served verbatim to clients over kPackedIndex) and
// the decoded lookup table. resolve() turns a logical sample path
// into (container logical path, base offset, length); the server then
// serves the read out of the container through the regular cache
// machinery — DataMover fetch, LocalStore, OpenHandleCache pin,
// sendfile ladder — so a whole packed dataset costs one open(2) per
// container, not one per sample.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/packed_format.h"

namespace hvac::storage {

class PackedStore {
 public:
  struct Resolved {
    std::string container_logical;  // e.g. ".hvacpack/container_00000.blob"
    uint64_t base = 0;              // sample's byte offset in the container
    uint64_t length = 0;            // sample length
  };

  // Loads `<root>/.hvacpack/index.hvacpack`. Returns nullptr (ok) when
  // the dataset simply is not packed; an error only when an index
  // exists but is unreadable or corrupt.
  static Result<std::unique_ptr<PackedStore>> load(const std::string& root);

  std::optional<Resolved> resolve(const std::string& logical_path) const;
  bool contains(const std::string& logical_path) const {
    return resolve(logical_path).has_value();
  }

  // The on-disk index bytes, byte-identical to what decode() consumed;
  // kPackedIndex ships these to clients verbatim.
  const std::vector<uint8_t>& raw_index() const { return raw_; }

  size_t sample_count() const { return index_.entries.size(); }
  size_t container_count() const { return index_.container_sizes.size(); }
  const PackedIndex& index() const { return index_; }

 private:
  PackedStore(std::vector<uint8_t> raw, PackedIndex index);

  std::vector<uint8_t> raw_;
  PackedIndex index_;
  // container_id -> logical path, precomputed (resolve is on the read
  // hot path).
  std::vector<std::string> container_logicals_;
};

}  // namespace hvac::storage
