// RAII POSIX file handle with Result-based error reporting.
//
// The interception shim cannot use C++ iostreams (their internal
// open/read would recurse through the shim), so every real I/O in the
// library funnels through this thin syscalls wrapper.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hvac::storage {

class PosixFile {
 public:
  PosixFile() = default;
  ~PosixFile();

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;
  PosixFile(PosixFile&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  PosixFile& operator=(PosixFile&& other) noexcept;

  static Result<PosixFile> open_read(const std::string& path);
  static Result<PosixFile> create_write(const std::string& path);
  // Read/write open that preserves existing contents (O_RDWR|O_CREAT,
  // no truncation): the journal and the write-back store both re-open
  // files across restarts and must not lose what a crashed process
  // already persisted.
  static Result<PosixFile> open_rw(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Sequential read; returns the byte count (0 at EOF).
  Result<size_t> read(void* buf, size_t count);
  // Positional read; does not move the file offset.
  Result<size_t> pread(void* buf, size_t count, uint64_t offset);
  // Both writes are exact: they resume short transfers and retry
  // EINTR/EAGAIN until every byte is down or a real error surfaces
  // (same discipline as sendfile_exact/splice_exact on the read side).
  Result<size_t> write(const void* buf, size_t count);
  Result<size_t> pwrite(const void* buf, size_t count, uint64_t offset);
  // fsync / fdatasync. The journal's commit barrier is datasync():
  // record bytes must be on media before an fsync is acked, but the
  // inode mtime is not part of the durability contract.
  Status sync();
  Status datasync();
  // ftruncate: replay cuts torn/CRC-bad journal tails with this.
  Status truncate(uint64_t length);
  Result<uint64_t> size() const;
  Status close();

 private:
  explicit PosixFile(int fd) : fd_(fd) {}
  int fd_ = -1;
};

// Reads a whole file into memory.
Result<std::vector<uint8_t>> read_file(const std::string& path);

// Writes a buffer to a file, creating parent directories as needed.
Status write_file(const std::string& path, const void* data, size_t size);

// Copies src to dst (creating parent directories); returns bytes
// copied. This is the data-mover's PFS -> NVMe "fs::copy" step.
Result<uint64_t> copy_file_contents(const std::string& src,
                                    const std::string& dst);

// mkdir -p.
Status make_directories(const std::string& path);

// True when the path exists and is a regular file.
bool file_exists(const std::string& path);

// Size of an existing file, or error.
Result<uint64_t> file_size(const std::string& path);

// Unlinks a file (missing file is OK).
Status remove_file(const std::string& path);

}  // namespace hvac::storage
