// Functional stand-in for the parallel file system (GPFS "Alpine").
//
// A PfsBackend wraps a real directory and charges every operation the
// cost profile of a congested PFS: a metadata latency per open/stat
// (the MDS round trip + lock/token acquisition the paper's §II-C
// describes) and a shared token-bucket bandwidth for data. With both
// set to zero it degrades to a plain directory — which is exactly the
// XFS-on-NVMe baseline.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/posix_file.h"
#include "storage/throttle.h"

namespace hvac::storage {

struct PfsOptions {
  // Per-open metadata latency (microseconds). GPFS-profile defaults
  // are supplied by `gpfs_like_options()`.
  uint64_t metadata_latency_us = 0;
  uint64_t metadata_jitter_us = 0;
  // Aggregate data bandwidth shared by all readers; 0 = unthrottled.
  double bandwidth_bytes_per_sec = 0.0;
  double burst_bytes = 8.0 * (1u << 20);
  uint64_t seed = 42;
};

// A profile that makes a local directory feel like a busy GPFS from a
// single node's perspective (used by examples and functional tests;
// the scale experiments use hvac::sim instead).
PfsOptions gpfs_like_options();

class PfsBackend {
 public:
  explicit PfsBackend(std::string root, PfsOptions options = {});

  // Opens `relative_path` under the PFS root, paying metadata latency.
  Result<PosixFile> open(const std::string& relative_path);

  // Reads the whole file, paying metadata + bandwidth costs.
  Result<std::vector<uint8_t>> read_all(const std::string& relative_path);

  // Positional read of an already-open file, paying bandwidth cost.
  Result<size_t> pread(PosixFile& file, void* buf, size_t count,
                       uint64_t offset);

  // stat() with metadata cost.
  Result<uint64_t> size_of(const std::string& relative_path);

  // Copies a PFS file out to `dst` (an absolute path outside the PFS),
  // paying metadata + bandwidth costs. This is the data-mover's
  // fs::copy(src, dst) step from the paper's I/O flow (§III-D, step 6).
  Result<uint64_t> copy_out(const std::string& relative_path,
                            const std::string& dst);

  // Copies one byte range [offset, offset+length) out to `dst` —
  // the fetch primitive behind segment-level caching (paper §III-E
  // cites HFetch-style segmentation for skewed file sizes). Returns
  // bytes copied (clamped at EOF).
  Result<uint64_t> copy_range_out(const std::string& relative_path,
                                  const std::string& dst, uint64_t offset,
                                  uint64_t length);

  // Opens `relative_path` for writing (creating parents and the file,
  // truncating if asked), paying metadata latency — the write-through
  // path used when the local store is out of space. Fault site:
  // pfs_write.
  Result<PosixFile> open_write(const std::string& relative_path, bool trunc);

  // Positional write to an already-open PFS file, paying bandwidth
  // cost. Fault site: pfs_write.
  Result<size_t> pwrite(PosixFile& file, const void* buf, size_t count,
                        uint64_t offset);

  // Copies a local file (absolute `src` outside the PFS) into the PFS
  // at `relative_path`, paying metadata + bandwidth costs and syncing
  // the destination — the flusher's write-back step, the inverse of
  // copy_out. Writes land in a `.hvacflush` sibling first and rename
  // into place, so a crashed flush never leaves a half-written
  // checkpoint visible under the final name. Fault site: pfs_write.
  Result<uint64_t> copy_in(const std::string& src,
                           const std::string& relative_path);

  bool exists(const std::string& relative_path) const;

  const std::string& root() const { return root_; }
  std::string absolute(const std::string& relative_path) const;

  // Cumulative counters for tests/benches.
  uint64_t metadata_ops() const { return metadata_ops_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void charge_metadata();
  void charge_bandwidth(uint64_t bytes);

  std::string root_;
  PfsOptions options_;
  LatencyInjector latency_;
  TokenBucket bandwidth_;
  std::atomic<uint64_t> metadata_ops_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace hvac::storage
