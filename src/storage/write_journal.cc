#include "storage/write_journal.h"

#include <array>
#include <cstring>
#include <unordered_set>

#include "common/fault_injection.h"

namespace hvac::storage {

namespace {

// A record body is [u8 type][u64 seq] plus at most a path, an offset,
// a length prefix and one client-chunked data blob (<= 4 MiB on the
// wire). Anything claiming to be bigger is corruption, not data —
// replay treats it like a CRC failure and truncates.
constexpr uint32_t kMaxBody = (8u << 20);
constexpr size_t kFrameHeader = 8;  // u32 len + u32 crc

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  const size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  const size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

void put_string(std::vector<uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked little-endian cursor over a replayed body. Any
// overrun flags `bad` — the caller treats the record as corrupt.
struct Cursor {
  const uint8_t* p;
  size_t left;
  bool bad = false;

  uint8_t u8() {
    if (left < 1) { bad = true; return 0; }
    const uint8_t v = *p;
    ++p; --left;
    return v;
  }
  uint32_t u32() {
    if (left < 4) { bad = true; return 0; }
    uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4; left -= 4;
    return v;
  }
  uint64_t u64() {
    if (left < 8) { bad = true; return 0; }
    uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8; left -= 8;
    return v;
  }
  std::string str() {
    const uint32_t n = u32();
    if (bad || left < n) { bad = true; return {}; }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n; left -= n;
    return s;
  }
};

}  // namespace

uint32_t crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

WriteJournal::WriteJournal(std::string path, PosixFile file, uint64_t end)
    : path_(std::move(path)), file_(std::move(file)), end_(end) {}

Result<std::unique_ptr<WriteJournal>> WriteJournal::open(
    const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(PosixFile f, PosixFile::open_rw(path));
  HVAC_ASSIGN_OR_RETURN(uint64_t end, f.size());
  return std::unique_ptr<WriteJournal>(
      new WriteJournal(path, std::move(f), end));
}

Status WriteJournal::append_record(JournalRecordType type,
                                   const std::vector<uint8_t>& body_tail) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kJournalAppend));
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeader + 9 + body_tail.size());
  frame.resize(kFrameHeader);  // patched below
  frame.push_back(static_cast<uint8_t>(type));
  put_u64(frame, seq_);
  frame.insert(frame.end(), body_tail.begin(), body_tail.end());
  const uint32_t len = static_cast<uint32_t>(frame.size() - kFrameHeader);
  const uint32_t crc = crc32(frame.data() + kFrameHeader, len);
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, &crc, 4);
  HVAC_ASSIGN_OR_RETURN(size_t n,
                        file_.pwrite(frame.data(), frame.size(), end_));
  end_ += n;
  ++seq_;
  ++records_;
  return Status::Ok();
}

Status WriteJournal::append_write(const std::string& logical_path,
                                  uint64_t offset, const void* data,
                                  size_t size) {
  std::vector<uint8_t> tail;
  tail.reserve(4 + logical_path.size() + 8 + 4 + size);
  put_string(tail, logical_path);
  put_u64(tail, offset);
  put_u32(tail, static_cast<uint32_t>(size));
  const auto* p = static_cast<const uint8_t*>(data);
  tail.insert(tail.end(), p, p + size);
  std::lock_guard<std::mutex> lock(mutex_);
  return append_record(JournalRecordType::kWrite, tail);
}

Status WriteJournal::append_flushed(const std::string& logical_path) {
  std::vector<uint8_t> tail;
  put_string(tail, logical_path);
  std::lock_guard<std::mutex> lock(mutex_);
  return append_record(JournalRecordType::kFlushed, tail);
}

Status WriteJournal::append_truncate(const std::string& logical_path) {
  std::vector<uint8_t> tail;
  put_string(tail, logical_path);
  std::lock_guard<std::mutex> lock(mutex_);
  return append_record(JournalRecordType::kTruncate, tail);
}

Status WriteJournal::commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  HVAC_RETURN_IF_ERROR(append_record(JournalRecordType::kCommit, {}));
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kJournalFsync));
  return file_.datasync();
}

Result<JournalReplayStats> WriteJournal::replay(const ApplyFn& apply,
                                                const TruncateFn& truncate) {
  std::lock_guard<std::mutex> lock(mutex_);
  JournalReplayStats stats;

  // Snapshot the log. Reading it whole is fine: the journal is
  // checkpoint-reset whenever all dirty paths drain, so its size is
  // bounded by one burst of unflushed writes.
  std::vector<uint8_t> log;
  log.resize(end_);
  size_t got = 0;
  while (got < log.size()) {
    HVAC_ASSIGN_OR_RETURN(
        size_t n, file_.pread(log.data() + got, log.size() - got, got));
    if (n == 0) break;  // file shorter than expected: treat as torn
    got += n;
  }
  log.resize(got);

  // Last-writer-wins per path: a kWrite marks it dirty, a kFlushed
  // with a later seq clears it.
  std::unordered_set<std::string> dirty;
  uint64_t max_seq = 0;

  size_t pos = 0;
  size_t valid_end = 0;
  while (log.size() - pos >= kFrameHeader) {
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, log.data() + pos, 4);
    std::memcpy(&crc, log.data() + pos + 4, 4);
    if (len > kMaxBody || log.size() - pos - kFrameHeader < len) {
      break;  // torn tail (or garbage length)
    }
    const uint8_t* body = log.data() + pos + kFrameHeader;
    if (crc32(body, len) != crc) break;  // bit rot / torn overwrite

    Cursor c{body, len};
    const auto type = static_cast<JournalRecordType>(c.u8());
    const uint64_t seq = c.u64();
    bool parsed = true;
    switch (type) {
      case JournalRecordType::kWrite: {
        const std::string path = c.str();
        const uint64_t offset = c.u64();
        const uint32_t data_len = c.u32();
        if (c.bad || c.left < data_len) {
          parsed = false;
          break;
        }
        HVAC_RETURN_IF_ERROR(apply(path, offset, c.p, data_len));
        ++stats.writes_applied;
        stats.bytes_applied += data_len;
        dirty.insert(path);
        break;
      }
      case JournalRecordType::kCommit:
        parsed = !c.bad;
        if (parsed) ++stats.commits_seen;
        break;
      case JournalRecordType::kFlushed: {
        const std::string path = c.str();
        parsed = !c.bad;
        if (parsed) {
          ++stats.flushes_seen;
          dirty.erase(path);
        }
        break;
      }
      case JournalRecordType::kTruncate: {
        const std::string path = c.str();
        parsed = !c.bad;
        if (parsed) {
          ++stats.truncates_seen;
          if (truncate) {
            HVAC_RETURN_IF_ERROR(truncate(path));
            // Still dirty: the truncation itself must reach the PFS.
            dirty.insert(path);
          }
        }
        break;
      }
      default:
        parsed = false;
        break;
    }
    if (!parsed) break;  // framed correctly but body is garbage
    max_seq = seq + 1 > max_seq ? seq + 1 : max_seq;
    pos += kFrameHeader + len;
    valid_end = pos;
  }

  stats.truncated_bytes = end_ - valid_end;
  if (stats.truncated_bytes > 0) {
    HVAC_RETURN_IF_ERROR(file_.truncate(valid_end));
    HVAC_RETURN_IF_ERROR(file_.datasync());
    end_ = valid_end;
  }
  seq_ = max_seq;
  records_ = stats.writes_applied + stats.commits_seen +
             stats.flushes_seen + stats.truncates_seen;
  stats.dirty_paths.assign(dirty.begin(), dirty.end());
  return stats;
}

Status WriteJournal::checkpoint_reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  HVAC_RETURN_IF_ERROR(file_.truncate(0));
  HVAC_RETURN_IF_ERROR(file_.datasync());
  end_ = 0;
  records_ = 0;
  return Status::Ok();
}

uint64_t WriteJournal::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return end_;
}

uint64_t WriteJournal::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

uint64_t WriteJournal::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

}  // namespace hvac::storage
