#include "storage/pfs_backend.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>

#include "common/env.h"
#include "common/fault_injection.h"

namespace hvac::storage {

PfsOptions gpfs_like_options() {
  PfsOptions o;
  // A loaded GPFS open costs hundreds of microseconds to milliseconds;
  // 800us +/- 300us is a representative mid-load figure and is slow
  // enough that the cache win is visible in second-long examples.
  o.metadata_latency_us = 800;
  o.metadata_jitter_us = 300;
  // Model this node's fair share of the PFS under congestion.
  o.bandwidth_bytes_per_sec = 256.0 * (1u << 20);  // 256 MiB/s
  return o;
}

PfsBackend::PfsBackend(std::string root, PfsOptions options)
    : root_(std::move(root)),
      options_(options),
      latency_(options.metadata_latency_us, options.metadata_jitter_us,
               options.seed),
      bandwidth_(options.bandwidth_bytes_per_sec, options.burst_bytes) {}

std::string PfsBackend::absolute(const std::string& relative_path) const {
  if (!relative_path.empty() && relative_path.front() == '/') {
    return relative_path;  // already absolute (caller passed full path)
  }
  return path_join(root_, relative_path);
}

void PfsBackend::charge_metadata() {
  metadata_ops_.fetch_add(1, std::memory_order_relaxed);
  latency_.inject();
}

void PfsBackend::charge_bandwidth(uint64_t bytes) {
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  bandwidth_.acquire(bytes);
}

Result<PosixFile> PfsBackend::open(const std::string& relative_path) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kPfsRead));
  charge_metadata();
  return PosixFile::open_read(absolute(relative_path));
}

Result<std::vector<uint8_t>> PfsBackend::read_all(
    const std::string& relative_path) {
  HVAC_ASSIGN_OR_RETURN(PosixFile f, open(relative_path));
  HVAC_ASSIGN_OR_RETURN(uint64_t sz, f.size());
  charge_bandwidth(sz);
  std::vector<uint8_t> data(sz);
  size_t got = 0;
  while (got < data.size()) {
    HVAC_ASSIGN_OR_RETURN(size_t n,
                          f.read(data.data() + got, data.size() - got));
    if (n == 0) break;
    got += n;
  }
  data.resize(got);
  return data;
}

Result<uint64_t> PfsBackend::copy_out(const std::string& relative_path,
                                      const std::string& dst) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kPfsRead));
  charge_metadata();
  HVAC_ASSIGN_OR_RETURN(
      uint64_t bytes, copy_file_contents(absolute(relative_path), dst));
  charge_bandwidth(bytes);
  return bytes;
}

Result<uint64_t> PfsBackend::copy_range_out(const std::string& relative_path,
                                            const std::string& dst,
                                            uint64_t offset,
                                            uint64_t length) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kPfsRead));
  charge_metadata();
  HVAC_ASSIGN_OR_RETURN(PosixFile in,
                        PosixFile::open_read(absolute(relative_path)));
  HVAC_ASSIGN_OR_RETURN(PosixFile out, PosixFile::create_write(dst));
  std::vector<uint8_t> buf(std::min<uint64_t>(length, 1u << 20));
  uint64_t copied = 0;
  while (copied < length) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(buf.size(), length - copied));
    HVAC_ASSIGN_OR_RETURN(size_t n,
                          in.pread(buf.data(), want, offset + copied));
    if (n == 0) break;  // EOF inside the last segment
    HVAC_ASSIGN_OR_RETURN(size_t w, out.write(buf.data(), n));
    copied += w;
  }
  HVAC_RETURN_IF_ERROR(out.close());
  charge_bandwidth(copied);
  return copied;
}

Result<PosixFile> PfsBackend::open_write(const std::string& relative_path,
                                         bool trunc) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kPfsWrite));
  charge_metadata();
  const std::string dst = absolute(relative_path);
  const auto slash = dst.rfind('/');
  if (slash != std::string::npos && slash > 0) {
    HVAC_RETURN_IF_ERROR(make_directories(dst.substr(0, slash)));
  }
  HVAC_ASSIGN_OR_RETURN(PosixFile out, PosixFile::open_rw(dst));
  if (trunc) HVAC_RETURN_IF_ERROR(out.truncate(0));
  return out;
}

Result<size_t> PfsBackend::pwrite(PosixFile& file, const void* buf,
                                  size_t count, uint64_t offset) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kPfsWrite));
  HVAC_ASSIGN_OR_RETURN(size_t n, file.pwrite(buf, count, offset));
  bytes_written_.fetch_add(n, std::memory_order_relaxed);
  bandwidth_.acquire(n);
  return n;
}

Result<uint64_t> PfsBackend::copy_in(const std::string& src,
                                     const std::string& relative_path) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kPfsWrite));
  charge_metadata();
  const std::string dst = absolute(relative_path);
  const std::string tmp = dst + ".hvacflush";
  HVAC_ASSIGN_OR_RETURN(PosixFile in, PosixFile::open_read(src));
  HVAC_RETURN_IF_ERROR(make_directories(
      dst.rfind('/') == std::string::npos ? std::string("/")
                                          : dst.substr(0, dst.rfind('/'))));
  HVAC_ASSIGN_OR_RETURN(PosixFile out, PosixFile::create_write(tmp));
  std::vector<uint8_t> buf(1u << 20);
  uint64_t total = 0;
  for (;;) {
    HVAC_ASSIGN_OR_RETURN(size_t n, in.read(buf.data(), buf.size()));
    if (n == 0) break;
    HVAC_ASSIGN_OR_RETURN(size_t w, out.write(buf.data(), n));
    total += w;
  }
  HVAC_RETURN_IF_ERROR(out.sync());
  HVAC_RETURN_IF_ERROR(out.close());
  if (::rename(tmp.c_str(), dst.c_str()) != 0) {
    const Error e = Error::from_errno(errno, "rename " + tmp);
    (void)remove_file(tmp);
    return e;
  }
  bytes_written_.fetch_add(total, std::memory_order_relaxed);
  bandwidth_.acquire(total);
  return total;
}

Result<size_t> PfsBackend::pread(PosixFile& file, void* buf, size_t count,
                                 uint64_t offset) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kPfsRead));
  HVAC_ASSIGN_OR_RETURN(size_t n, file.pread(buf, count, offset));
  charge_bandwidth(n);
  return n;
}

Result<uint64_t> PfsBackend::size_of(const std::string& relative_path) {
  charge_metadata();
  return file_size(absolute(relative_path));
}

bool PfsBackend::exists(const std::string& relative_path) const {
  return file_exists(absolute(relative_path));
}

}  // namespace hvac::storage
