#include "storage/throttle.h"

#include <algorithm>
#include <thread>

namespace hvac::storage {

TokenBucket::TokenBucket(double rate_bytes_per_sec, double burst_bytes)
    : rate_(rate_bytes_per_sec),
      burst_(std::max(burst_bytes, 1.0)),
      tokens_(burst_),
      last_refill_(Clock::now()) {}

void TokenBucket::refill_locked(Clock::time_point now) {
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_refill_ = now;
}

void TokenBucket::acquire(uint64_t bytes) {
  if (rate_ <= 0.0) return;
  const double need = static_cast<double>(bytes);
  std::unique_lock<std::mutex> lock(mutex_);
  refill_locked(Clock::now());
  // Allow the bucket to go negative ("debt"): each caller pays for its
  // own bytes but large requests are not starved by small ones.
  const double deficit = need - tokens_;
  tokens_ -= need;
  if (deficit <= 0.0) return;
  const double wait_s = deficit / rate_;
  lock.unlock();
  std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
}

double TokenBucket::would_wait_seconds(uint64_t bytes) const {
  if (rate_ <= 0.0) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  const double deficit = static_cast<double>(bytes) - tokens_;
  return deficit <= 0.0 ? 0.0 : deficit / rate_;
}

LatencyInjector::LatencyInjector(uint64_t base_us, uint64_t jitter_us,
                                 uint64_t seed)
    : base_us_(base_us), jitter_us_(jitter_us), rng_(seed) {}

void LatencyInjector::inject() {
  if (base_us_ == 0 && jitter_us_ == 0) return;
  uint64_t us = base_us_;
  if (jitter_us_ > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    us += rng_.next_below(2 * jitter_us_ + 1);
    us -= std::min(us, jitter_us_);  // center the jitter on base
  }
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace hvac::storage
