// Node-local cache store: the XFS-on-NVMe directory an HVAC server
// owns. Cached files are stored flat, named by the stable hash of
// their logical (PFS) path — the cache never needs to reproduce the
// dataset's directory tree, and lookup is O(1) with no directory
// walking. Capacity is tracked in bytes so eviction can keep the
// store under the NVMe budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "storage/open_handle_cache.h"
#include "storage/posix_file.h"

namespace hvac::storage {

class LocalStore {
 public:
  // Sentinel: size the open-handle cache from HVAC_HANDLE_CACHE
  // (default 128 handles; 0 disables it — the seed's
  // open-per-read behaviour).
  static constexpr size_t kHandleCacheFromEnv = static_cast<size_t>(-1);

  // `root` is created if missing. `capacity_bytes` of 0 means
  // unlimited (the paper's common case: datasets fit in aggregate
  // NVMe).
  LocalStore(std::string root, uint64_t capacity_bytes = 0,
             size_t handle_cache_slots = kHandleCacheFromEnv);

  // Physical path a logical path would be cached at.
  std::string physical_path(const std::string& logical_path) const;

  bool contains(const std::string& logical_path) const;

  // Registers a file that was just copied in via physical_path().
  // Returns kCapacity when the store is over budget (caller evicts and
  // retries).
  Status insert(const std::string& logical_path, uint64_t size_bytes);

  // Opens a cached file for reading.
  Result<PosixFile> open(const std::string& logical_path) const;

  // Write path: opens (creating if absent, never truncating) the
  // backing file for read/write. Does not register the entry —
  // callers account the bytes with update_size() once they land.
  // Fault site: store_write.
  Result<PosixFile> open_write(const std::string& logical_path) const;

  // Records that `logical_path` now occupies `new_size` bytes (a
  // checkpoint write extended or truncated it), inserting the entry
  // if new. kCapacity when the growth would blow the NVMe budget —
  // the write path sheds to write-through PFS mode on that.
  Status update_size(const std::string& logical_path, uint64_t new_size);

  // Hot-path open: reads through the pinned open-handle cache, so the
  // steady-state hit path costs one pread instead of an
  // open/pread/close triple. The pin keeps the handle alive across a
  // concurrent evict().
  Result<OpenHandleCache::Pin> open_pinned(
      const std::string& logical_path) const;

  // Removes one cached entry; returns its size, or kNotFound.
  Result<uint64_t> evict(const std::string& logical_path);

  // Removes everything (job teardown: "cache lifetime == job
  // lifetime", paper §III-D).
  void purge();

  uint64_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  uint64_t capacity_bytes() const { return capacity_; }
  size_t entry_count() const;

  // Snapshot of cached logical paths (eviction policies sample this).
  std::vector<std::string> logical_paths() const;

  const std::string& root() const { return root_; }

  OpenHandleCache& handle_cache() const { return *handles_; }

 private:
  std::string root_;
  uint64_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, uint64_t> entries_;  // logical -> size
  std::atomic<uint64_t> bytes_used_{0};
  // Mutable: reads are logically const but touch the LRU/pin state.
  mutable std::unique_ptr<OpenHandleCache> handles_;
};

}  // namespace hvac::storage
