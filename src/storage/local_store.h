// Node-local cache store: the XFS-on-NVMe directory an HVAC server
// owns. Cached files are stored flat, named by the stable hash of
// their logical (PFS) path — the cache never needs to reproduce the
// dataset's directory tree, and lookup is O(1) with no directory
// walking. Capacity is tracked in bytes so eviction can keep the
// store under the NVMe budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "storage/posix_file.h"

namespace hvac::storage {

class LocalStore {
 public:
  // `root` is created if missing. `capacity_bytes` of 0 means
  // unlimited (the paper's common case: datasets fit in aggregate
  // NVMe).
  LocalStore(std::string root, uint64_t capacity_bytes = 0);

  // Physical path a logical path would be cached at.
  std::string physical_path(const std::string& logical_path) const;

  bool contains(const std::string& logical_path) const;

  // Registers a file that was just copied in via physical_path().
  // Returns kCapacity when the store is over budget (caller evicts and
  // retries).
  Status insert(const std::string& logical_path, uint64_t size_bytes);

  // Opens a cached file for reading.
  Result<PosixFile> open(const std::string& logical_path) const;

  // Removes one cached entry; returns its size, or kNotFound.
  Result<uint64_t> evict(const std::string& logical_path);

  // Removes everything (job teardown: "cache lifetime == job
  // lifetime", paper §III-D).
  void purge();

  uint64_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  uint64_t capacity_bytes() const { return capacity_; }
  size_t entry_count() const;

  // Snapshot of cached logical paths (eviction policies sample this).
  std::vector<std::string> logical_paths() const;

  const std::string& root() const { return root_; }

 private:
  std::string root_;
  uint64_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, uint64_t> entries_;  // logical -> size
  std::atomic<uint64_t> bytes_used_{0};
};

}  // namespace hvac::storage
