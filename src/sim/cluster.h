// Cluster — the simulated Summit allocation: per-node NVMe and NIC
// resources, the shared GPFS data path and metadata station, and the
// event engine that advances it all.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/resources.h"
#include "sim/summit_config.h"

namespace hvac::sim {

struct NodeResources {
  PsResource nvme_read;
  PsResource nvme_write;
  PsResource nic_in;
  PsResource nic_out;

  explicit NodeResources(const SummitConfig& cfg)
      : nvme_read(cfg.nvme_read_bps),
        nvme_write(cfg.nvme_write_bps),
        nic_in(cfg.nic_bps),
        nic_out(cfg.nic_bps) {}
};

class Cluster {
 public:
  Cluster(const SummitConfig& cfg, uint32_t num_nodes)
      : cfg_(cfg),
        gpfs_meta_(cfg.gpfs_metadata_ops_per_s),
        gpfs_data_(cfg.gpfs_aggregate_bps),
        nvme_pool_read_(cfg.nvme_read_bps * num_nodes),
        nvme_pool_write_(cfg.nvme_write_bps * num_nodes) {
    nodes_.reserve(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) nodes_.emplace_back(cfg);
  }

  SimEngine& engine() { return engine_; }
  const SummitConfig& cfg() const { return cfg_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  NodeResources& node(uint32_t n) { return nodes_.at(n); }
  ServiceStation& gpfs_meta() { return gpfs_meta_; }
  PsResource& gpfs_data() { return gpfs_data_; }

  // Pooled NVMe capacity of the whole allocation. Hash placement
  // spreads cache reads uniformly over the per-node devices, so
  // remote-read aggregates can charge the pool instead of admitting
  // one tiny flow per home server (which would distort the
  // fixed-rate-at-admission approximation).
  PsResource& nvme_pool_read() { return nvme_pool_read_; }
  PsResource& nvme_pool_write() { return nvme_pool_write_; }

  // Starts a bandwidth transfer of `bytes` across `resources` at time
  // `start` (absolute). The rate is the bottleneck fair share at
  // admission; all resources are held for the duration. `done` fires
  // at completion.
  void transfer(double start, std::vector<PsResource*> resources,
                uint64_t bytes, EventFn done) {
    engine_.schedule_at(start, [this, resources = std::move(resources),
                                bytes, done = std::move(done)]() mutable {
      double rate = 1e30;
      for (PsResource* r : resources) {
        rate = std::min(rate, r->admit());
        r->add_bytes(bytes);
      }
      const double duration =
          rate > 0 ? static_cast<double>(bytes) / rate : 0.0;
      engine_.schedule_in(duration,
                          [resources = std::move(resources),
                           done = std::move(done)]() mutable {
                            for (PsResource* r : resources) r->release();
                            done();
                          });
    });
  }

 private:
  SummitConfig cfg_;
  SimEngine engine_;
  std::vector<NodeResources> nodes_;
  ServiceStation gpfs_meta_;
  PsResource gpfs_data_;
  PsResource nvme_pool_read_;
  PsResource nvme_pool_write_;
};

}  // namespace hvac::sim
