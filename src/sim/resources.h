// Shared-resource models for the simulator.
//
// ServiceStation: a work-conserving FCFS server with deterministic
// per-op service time — used for GPFS metadata service (the pool of
// MDS is folded into one station of aggregate rate) and for HVAC
// server-instance CPU (request deserialization, queueing, fd
// bookkeeping). Queueing delay emerges from next_free bookkeeping;
// this is exact for deterministic service under FCFS.
//
// PsResource: an approximate processor-sharing bandwidth pipe. A
// transfer's rate is fixed at admission to capacity / concurrency
// (the snapshot includes the new transfer). The approximation errs
// conservatively in transient phases but converges to exact fair
// sharing in the closed-loop steady states our experiments measure
// (every rank keeps exactly one request outstanding).
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace hvac::sim {

class ServiceStation {
 public:
  // `ops_per_second` aggregate service rate (e.g. 24 MDS x 12.5k
  // ops/s each folds to 300k ops/s).
  explicit ServiceStation(double ops_per_second)
      : service_s_(ops_per_second > 0 ? 1.0 / ops_per_second : 0.0) {}

  // Enqueues `ops` operations at `now` (fractional ops model
  // per-transaction costs like 1.25 metadata ops per open-read-close);
  // returns the absolute time the last one completes.
  double enqueue(double now, double ops) {
    const double start = std::max(now, next_free_);
    next_free_ = start + ops * service_s_;
    total_ops_ += static_cast<uint64_t>(ops);
    busy_ += ops * service_s_;
    return next_free_;
  }

  // Current backlog delay a new op would see.
  double backlog(double now) const {
    return std::max(0.0, next_free_ - now);
  }

  double service_seconds() const { return service_s_; }
  uint64_t total_ops() const { return total_ops_; }
  double busy_seconds() const { return busy_; }
  void reset() {
    next_free_ = 0;
    total_ops_ = 0;
    busy_ = 0;
  }

 private:
  double service_s_;
  double next_free_ = 0.0;
  uint64_t total_ops_ = 0;
  double busy_ = 0.0;
};

class PsResource {
 public:
  explicit PsResource(double capacity_bytes_per_sec)
      : capacity_(capacity_bytes_per_sec) {}

  // Admission: returns the per-transfer rate (bytes/s) under the
  // post-admission concurrency. Caller must release() at completion.
  double admit() {
    ++active_;
    peak_active_ = std::max(peak_active_, active_);
    return rate();
  }

  void release() {
    if (active_ > 0) --active_;
  }

  // Fair-share rate at current concurrency.
  double rate() const {
    return active_ > 0 ? capacity_ / static_cast<double>(active_)
                       : capacity_;
  }

  double capacity() const { return capacity_; }
  uint32_t active() const { return active_; }
  uint32_t peak_active() const { return peak_active_; }
  void add_bytes(uint64_t bytes) { total_bytes_ += bytes; }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  double capacity_;
  uint32_t active_ = 0;
  uint32_t peak_active_ = 0;
  uint64_t total_bytes_ = 0;
};

// Duration of a transfer of `bytes` crossing every resource in `rs`:
// admits on all, takes the min fair-share rate, releases are the
// caller's responsibility via the returned token pattern — here we
// keep it simple: the caller admits/releases explicitly. This helper
// only computes the bottleneck rate without admission.
inline double bottleneck_rate(std::initializer_list<const PsResource*> rs) {
  double r = 1e30;
  for (const PsResource* p : rs) r = std::min(r, p->rate());
  return r;
}

}  // namespace hvac::sim
