#include "sim/backends.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/hash.h"

namespace hvac::sim {

namespace {

// Sum of file sizes in a batch.
uint64_t batch_bytes(const workload::DatasetSpec& dataset,
                     const std::vector<uint64_t>& files) {
  uint64_t bytes = 0;
  for (uint64_t f : files) bytes += dataset.file_size(f);
  return bytes;
}

}  // namespace

// ---- GPFS -----------------------------------------------------------------

GpfsSim::GpfsSim(Cluster* cluster, const workload::DatasetSpec& dataset)
    : cluster_(cluster), dataset_(dataset) {}

void GpfsSim::read_batch(const BatchIo& io, EventFn done) {
  ++stats_.requests;
  const SummitConfig& cfg = cluster_->cfg();
  SimEngine& engine = cluster_->engine();
  const double now = engine.now();
  const uint64_t nfiles = io.files.size();
  const uint64_t bytes = batch_bytes(dataset_, io.files);
  stats_.bytes_from_gpfs += bytes;

  // Metadata: the shared station sees ops from every rank in the
  // center; the requesting rank additionally serializes one unloaded
  // round trip per file.
  const double ops = double(nfiles) * cfg.meta_ops_per_transaction;
  const double station_done = cluster_->gpfs_meta().enqueue(now, ops);
  const double serial_done =
      now + double(nfiles) * cfg.gpfs_metadata_latency_s;
  const double meta_done = std::max(station_done, serial_done);

  // Data: shared GPFS pipe into this node's NIC.
  cluster_->transfer(meta_done,
                     {&cluster_->gpfs_data(),
                      &cluster_->node(io.node).nic_in},
                     bytes, std::move(done));
}

// ---- XFS-on-NVMe ------------------------------------------------------------

XfsSim::XfsSim(Cluster* cluster, const workload::DatasetSpec& dataset)
    : cluster_(cluster), dataset_(dataset) {}

void XfsSim::read_batch(const BatchIo& io, EventFn done) {
  ++stats_.requests;
  const SummitConfig& cfg = cluster_->cfg();
  const double now = cluster_->engine().now();
  const uint64_t bytes = batch_bytes(dataset_, io.files);
  stats_.bytes_from_nvme += bytes;

  const double opens_done =
      now + double(io.files.size()) * cfg.xfs_open_latency_s;
  cluster_->transfer(opens_done,
                     {&cluster_->node(io.node).nvme_read}, bytes,
                     std::move(done));
}

// ---- HVAC -------------------------------------------------------------------

HvacSim::HvacSim(Cluster* cluster, const workload::DatasetSpec& dataset,
                 HvacSimOptions options)
    : cluster_(cluster),
      dataset_(dataset),
      options_(options),
      placement_(cluster->num_nodes() * options.instances_per_node,
                 options.placement, options.replicas),
      cached_(dataset.num_files,
              options.prewarmed ? uint8_t{1} : uint8_t{0}) {
  const SummitConfig& cfg = cluster_->cfg();
  const uint32_t servers = num_servers();
  server_cpu_.reserve(servers);
  for (uint32_t s = 0; s < servers; ++s) {
    server_cpu_.emplace_back(1.0 / cfg.hvac_request_cpu_s);
  }
  server_file_count_.assign(servers, 0);
}

std::string HvacSim::name() const {
  return "HVAC(" + std::to_string(options_.instances_per_node) + "x1)";
}

uint32_t HvacSim::home_server(uint64_t file,
                              uint32_t requesting_node) const {
  if (options_.forced_local_fraction >= 0.0) {
    // Fig 13 manual residency: a deterministic per-file coin decides
    // local vs remote; remote homes spread hash-uniformly over the
    // other nodes.
    const uint64_t coin = mix64(file ^ 0x46696731336c6f63ULL);
    const double u = double(coin >> 11) * 0x1.0p-53;
    const uint32_t inst = static_cast<uint32_t>(
        mix64(file) % options_.instances_per_node);
    if (u < options_.forced_local_fraction ||
        cluster_->num_nodes() == 1) {
      return requesting_node * options_.instances_per_node + inst;
    }
    const uint32_t other = static_cast<uint32_t>(
        mix64(file ^ 0x72656d6f7465ULL) % (cluster_->num_nodes() - 1));
    const uint32_t node = other >= requesting_node ? other + 1 : other;
    return node * options_.instances_per_node + inst;
  }
  // Metadata-less hash placement: key the placement on the dataset
  // file path, exactly what the real client hashes.
  return placement_.home(workload::dataset_file_path(dataset_, file));
}

void HvacSim::read_batch(const BatchIo& io, EventFn done) {
  ++stats_.requests;
  const SummitConfig& cfg = cluster_->cfg();
  SimEngine& engine = cluster_->engine();
  const double now = engine.now();

  // Group the batch's files by serving server, splitting hit/miss.
  // kDirectGpfs marks files whose every home is dead: the client
  // fails open and reads the PFS directly.
  constexpr uint32_t kDirectGpfs = UINT32_MAX;
  struct Group {
    uint64_t hit_bytes = 0;
    uint64_t miss_bytes = 0;
    uint64_t hit_files = 0;
    uint64_t miss_files = 0;
  };
  std::map<uint32_t, Group> groups;
  uint64_t propagate_bytes = 0;
  for (uint64_t f : io.files) {
    const uint64_t size = dataset_.file_size(f);
    uint32_t server = kDirectGpfs;
    uint32_t replica_rank = 0;
    if (options_.forced_local_fraction >= 0.0 ||
        (options_.replicas <= 1 && options_.failed_servers == 0)) {
      server = home_server(f, io.node);
      if (!server_alive(server)) server = kDirectGpfs;
    } else {
      const auto homes = placement_.homes(
          workload::dataset_file_path(dataset_, f));
      for (uint32_t k = 0; k < homes.size(); ++k) {
        if (server_alive(homes[k])) {
          server = homes[k];
          replica_rank = k;
          break;
        }
      }
      if (server != kDirectGpfs && replica_rank > 0) ++stats_.failover_reads;
      // Replication propagation: once a file is fetched, alive
      // replicas also hold it (the copy rides the interconnect in the
      // background; see the miss path below).
    }
    if (server == kDirectGpfs) {
      ++stats_.dead_fallback_reads;
      Group& g = groups[kDirectGpfs];
      g.miss_bytes += size;
      ++g.miss_files;
      continue;
    }
    Group& g = groups[server];
    if (cached_[f] & (1u << replica_rank)) {
      g.hit_bytes += size;
      ++g.hit_files;
      ++stats_.cache_hits;
    } else {
      g.miss_bytes += size;
      ++g.miss_files;
      ++stats_.cache_misses;
      // Claimed: concurrent requesters piggyback on the in-flight
      // copy (the single-copy guarantee of the real CacheManager).
      cached_[f] |= uint8_t(1u << replica_rank);
      ++server_file_count_[server];
      if (options_.replicas > 1) {
        // Propagate to the other alive homes in the background; the
        // copies are batched into one interconnect flow below.
        const auto homes = placement_.homes(
            workload::dataset_file_path(dataset_, f));
        for (uint32_t k = 0; k < homes.size(); ++k) {
          if (k == replica_rank || !server_alive(homes[k])) continue;
          cached_[f] |= uint8_t(1u << k);
          propagate_bytes += size;
        }
      }
    }
  }

  if (groups.empty()) {
    engine.schedule_in(0, std::move(done));
    return;
  }

  // The data loader issues its per-file transactions back to back
  // (§III-F); each costs the RPC round trips plus its share of a
  // server instance's request CPU. This serialized client-side path
  // is what the extra instances of HVAC(i x 1) parallelize.
  const double per_file_s =
      cfg.hvac_rpcs_per_file * cfg.hvac_rpc_latency_s +
      cfg.hvac_request_cpu_s / double(options_.instances_per_node);
  const double client_serial_done =
      now + double(io.files.size()) * per_file_s;

  // Server-instance CPU: every forwarded op crosses the RPC handler
  // and the data-mover FIFO of its home instance (queueing against
  // other ranks' requests). The batch proceeds once the slowest
  // involved instance and the client's own request stream are done.
  double cpu_done = client_serial_done;
  uint64_t local_hit_bytes = 0, remote_hit_bytes = 0;
  uint64_t miss_bytes = 0, miss_files = 0;
  uint64_t direct_bytes = 0, direct_files = 0;
  for (const auto& [server, g] : groups) {
    if (server == kDirectGpfs) {
      direct_bytes += g.miss_bytes;
      direct_files += g.miss_files;
      continue;
    }
    cpu_done = std::max(
        cpu_done, server_cpu_[server].enqueue(
                      now, double(g.hit_files + g.miss_files)) +
                      cfg.hvac_rpc_latency_s);
    const bool remote = server_node(server) != io.node;
    if (remote) {
      remote_hit_bytes += g.hit_bytes;
      stats_.bytes_over_network += g.hit_bytes + g.miss_bytes;
    } else {
      local_hit_bytes += g.hit_bytes;
    }
    miss_bytes += g.miss_bytes;
    miss_files += g.miss_files;
  }
  stats_.bytes_from_nvme += local_hit_bytes + remote_hit_bytes;
  stats_.bytes_from_gpfs += miss_bytes + direct_bytes;

  // The batch's transfers run concurrently; it completes when the
  // slowest one does. Per-batch aggregation (one flow per class
  // rather than one per home server) keeps the fixed-rate-at-
  // admission approximation honest: hash placement loads the per-node
  // devices uniformly, so remote reads charge the pooled NVMe.
  NodeResources& req = cluster_->node(io.node);
  std::vector<std::pair<std::vector<PsResource*>, uint64_t>> flows;
  if (local_hit_bytes > 0) {
    flows.push_back({{&req.nvme_read}, local_hit_bytes});
  }
  if (remote_hit_bytes > 0) {
    flows.push_back({{&cluster_->nvme_pool_read(), &req.nic_in},
                     remote_hit_bytes});
  }
  if (miss_bytes > 0) {
    // First-epoch pull: GPFS metadata + shared data pipe, the NVMe
    // write of the new copy, and the hop to the requester.
    std::vector<PsResource*> path{&cluster_->gpfs_data(), &req.nic_in};
    if (cfg.hvac_charge_nvme_write) {
      path.push_back(&cluster_->nvme_pool_write());
    }
    flows.push_back({std::move(path), miss_bytes});
  }
  if (direct_bytes > 0) {
    // Fail-open path: the client reads the PFS directly, exactly like
    // the GPFS baseline.
    flows.push_back({{&cluster_->gpfs_data(), &req.nic_in}, direct_bytes});
  }

  if (flows.empty()) {
    engine.schedule_at(cpu_done, std::move(done));
    return;
  }
  auto pending = std::make_shared<size_t>(flows.size());
  auto flow_done = [pending, done = std::move(done)]() {
    if (--*pending == 0) done();
  };
  const double meta_ops =
      double(miss_files + direct_files) * cfg.meta_ops_per_transaction;
  const double meta_done = std::max(
      meta_ops > 0 ? cluster_->gpfs_meta().enqueue(cpu_done, meta_ops)
                   : cpu_done,
      cpu_done + double(miss_files + direct_files) *
                     cfg.gpfs_metadata_latency_s);
  for (auto& [path, bytes] : flows) {
    const bool touches_gpfs = path.front() == &cluster_->gpfs_data();
    const double start = (touches_gpfs ? meta_done : cpu_done) +
                         cfg.network_latency_s;
    cluster_->transfer(start, std::move(path), bytes, flow_done);
  }

  // Background replication traffic (does not gate the batch).
  if (propagate_bytes > 0) {
    stats_.bytes_over_network += propagate_bytes;
    cluster_->transfer(cpu_done + cfg.network_latency_s,
                       {&cluster_->nvme_pool_read(),
                        &cluster_->nvme_pool_write()},
                       propagate_bytes, [] {});
  }
}

std::vector<uint64_t> HvacSim::per_server_file_counts() const {
  return server_file_count_;
}

// ---- factory -----------------------------------------------------------------

std::unique_ptr<SimBackend> make_backend(
    const std::string& label, Cluster* cluster,
    const workload::DatasetSpec& dataset) {
  if (label == "GPFS") {
    return std::make_unique<GpfsSim>(cluster, dataset);
  }
  if (label == "XFS" || label == "XFS-on-NVMe") {
    return std::make_unique<XfsSim>(cluster, dataset);
  }
  HvacSimOptions options;
  if (label == "HVAC(1x1)") {
    options.instances_per_node = 1;
  } else if (label == "HVAC(2x1)") {
    options.instances_per_node = 2;
  } else if (label == "HVAC(4x1)") {
    options.instances_per_node = 4;
  } else {
    return nullptr;
  }
  return std::make_unique<HvacSim>(cluster, dataset, options);
}

}  // namespace hvac::sim
