// SimEngine — a minimal discrete-event simulation core.
//
// Deterministic: events at equal timestamps fire in scheduling order
// (a monotonic sequence number breaks ties), so every simulated
// experiment is bit-reproducible. Time is in seconds (double); the
// experiments span microseconds (RPC latency) to hours (training
// runs), well within double's 2^53 resolution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hvac::sim {

using EventFn = std::function<void()>;

class SimEngine {
 public:
  double now() const { return now_; }

  void schedule_at(double time, EventFn fn) {
    if (time < now_) time = now_;  // clamp: no time travel
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }

  void schedule_in(double delay, EventFn fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  // Runs until the queue drains. Returns the final simulation time.
  double run() {
    while (!queue_.empty()) step();
    return now_;
  }

  // Runs until the queue drains or `time` is reached (events at
  // exactly `time` still fire).
  double run_until(double time) {
    while (!queue_.empty() && queue_.top().time <= time) step();
    if (now_ < time) now_ = time;
    return now_;
  }

  bool empty() const { return queue_.empty(); }
  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    double time;
    uint64_t seq;
    EventFn fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void step() {
    // Moving out of the priority queue requires a const_cast because
    // top() is const; the pop immediately follows.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace hvac::sim
