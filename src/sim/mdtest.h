// MDTest model (paper §II-C, Figs 3 & 4): every rank performs a fixed
// number of random <open-read-close> transactions against a backend;
// the metric is aggregate transactions per second. 32 KB files probe
// the metadata path, 8 MB files probe bandwidth (where the
// GPFS-vs-NVMe crossover near ~450 nodes comes from).
#pragma once

#include <cstdint>
#include <string>

#include "sim/backends.h"
#include "sim/cluster.h"
#include "sim/summit_config.h"

namespace hvac::sim {

struct MdTestConfig {
  uint32_t nodes = 1;
  uint32_t ranks_per_node = 6;  // one per GPU, the usual mdtest layout
  uint64_t transactions_per_rank = 100;
  uint64_t file_bytes = 32 * 1024;
  uint64_t num_files = 1u << 20;  // population to draw random files from
  uint64_t seed = 0x6d645eedULL;
};

struct MdTestResult {
  std::string backend;
  double makespan_seconds = 0;
  uint64_t transactions = 0;
  double transactions_per_second = 0;
  uint64_t events = 0;
};

MdTestResult run_mdtest(const SummitConfig& cfg, const MdTestConfig& test,
                        const std::string& backend_label);

}  // namespace hvac::sim
