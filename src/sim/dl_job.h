// DlTrainingJob — the simulated distributed training loop that every
// figure-8-family experiment runs (paper §IV-B/C/D/E).
//
// World = nodes x procs_per_node ranks. Per epoch: the file list is
// shuffled (seeded, backend-independent — the invariant behind Fig
// 14), partitioned across ranks, and each rank iterates its batches:
// read the batch through the backend, then compute. An epoch ends at
// an allreduce barrier; training time is the sum over epochs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/backends.h"
#include "sim/cluster.h"
#include "workload/dataset_spec.h"
#include "workload/shuffler.h"

namespace hvac::sim {

struct DlJobConfig {
  workload::AppSpec app;
  uint32_t nodes = 1;
  // Scale the dataset 1/k to bound event counts; reported times are
  // multiplied back by k (valid because epochs are throughput-bound:
  // tests assert shape invariance under scaling).
  uint64_t dataset_scale = 1;
  uint64_t shuffle_seed = 0x5eed;
  // Overrides (0 = take from app).
  uint32_t epochs_override = 0;
  uint32_t batch_size_override = 0;
};

// Post-run resource accounting (simulated time, unscaled).
struct UtilizationReport {
  double sim_seconds = 0;            // simulated makespan
  double gpfs_meta_utilization = 0;  // busy fraction of the MDS pool
  uint64_t gpfs_data_bytes = 0;      // bytes over the shared GPFS pipe
  uint64_t nvme_read_bytes = 0;      // summed over nodes
  uint64_t nic_bytes = 0;            // summed over node nic_in
  uint32_t peak_gpfs_flows = 0;      // concurrent transfers at peak
};

struct DlJobResult {
  std::string backend;
  double total_seconds = 0;               // scaled-back training time
  std::vector<double> epoch_seconds;      // per-epoch (scaled back)
  BackendStats io;
  UtilizationReport utilization;
  uint64_t events = 0;

  double first_epoch_seconds() const {
    return epoch_seconds.empty() ? 0.0 : epoch_seconds.front();
  }
  // Best epoch excluding the first (the paper's R_epoch).
  double best_random_epoch_seconds() const;
  double avg_epoch_seconds() const;
};

// Runs one training job against `backend_label` ("GPFS", "XFS",
// "HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)") on a fresh cluster.
DlJobResult run_dl_job(const SummitConfig& cfg, const DlJobConfig& job,
                       const std::string& backend_label,
                       HvacSimOptions* hvac_options = nullptr);

}  // namespace hvac::sim
