#include "sim/summit_config.h"

#include <sstream>

namespace hvac::sim {

std::string table1_string(const SummitConfig& c) {
  std::ostringstream oss;
  oss << "TABLE I: The compute node specification of Summit.\n"
      << "  Supercomputer              | " << c.supercomputer << "\n"
      << "  CPU                        | " << c.cpu << "\n"
      << "  GPU                        | " << c.gpu << "\n"
      << "  Memory Capacity            | " << c.memory_gb << " GB DDR4\n"
      << "  Node-local Storage         | " << c.node_local_storage << "\n"
      << "  Network Interconnect Family| " << c.interconnect << "\n"
      << "  --- simulator calibration ---\n"
      << "  NVMe read per node         | " << c.nvme_read_bps / 1e9
      << " GB/s (22.5 TB/s at 4096 nodes, paper Sec. II-C)\n"
      << "  NIC per direction          | " << c.nic_bps / 1e9 << " GB/s\n"
      << "  GPFS aggregate             | " << c.gpfs_aggregate_bps / 1e12
      << " TB/s\n"
      << "  GPFS metadata service      | " << c.gpfs_metadata_ops_per_s / 1e3
      << " k ops/s, " << c.gpfs_metadata_latency_s * 1e6
      << " us unloaded latency\n"
      << "  HVAC per-request CPU       | " << c.hvac_request_cpu_s * 1e6
      << " us per server instance\n";
  return oss.str();
}

}  // namespace hvac::sim
