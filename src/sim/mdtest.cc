#include "sim/mdtest.h"

#include <memory>

#include "common/rng.h"
#include "workload/dataset_spec.h"

namespace hvac::sim {

MdTestResult run_mdtest(const SummitConfig& cfg, const MdTestConfig& test,
                        const std::string& backend_label) {
  Cluster cluster(cfg, test.nodes);

  // Fixed-size file population.
  workload::DatasetSpec dataset;
  dataset.name = "mdtest";
  dataset.num_files = test.num_files;
  dataset.mean_file_bytes = static_cast<double>(test.file_bytes);
  dataset.lognormal_sigma = 0.0;
  dataset.min_file_bytes = 1;

  std::unique_ptr<SimBackend> backend =
      make_backend(backend_label, &cluster, dataset);
  if (!backend) return MdTestResult{backend_label, 0, 0, 0, 0};

  const uint32_t world = test.nodes * test.ranks_per_node;

  // Each rank: a closed loop of single-file random transactions.
  struct Rank {
    uint64_t remaining = 0;
    SplitMix64 rng{0};
  };
  auto ranks = std::make_shared<std::vector<Rank>>(world);
  for (uint32_t r = 0; r < world; ++r) {
    (*ranks)[r].remaining = test.transactions_per_rank;
    (*ranks)[r].rng = SplitMix64(test.seed + r * 0x9e37u);
  }

  // Recursive per-rank step.
  struct Driver {
    Cluster* cluster;
    SimBackend* backend;
    std::shared_ptr<std::vector<Rank>> ranks;
    uint32_t ranks_per_node;
    uint64_t num_files;

    void step(uint32_t rank) {
      Rank& state = (*ranks)[rank];
      if (state.remaining == 0) return;
      --state.remaining;
      BatchIo io;
      io.rank = rank;
      io.node = rank / ranks_per_node;
      io.files = {state.rng.next_below(num_files)};
      backend->read_batch(io, [this, rank]() { step(rank); });
    }
  };
  auto driver = std::make_shared<Driver>();
  driver->cluster = &cluster;
  driver->backend = backend.get();
  driver->ranks = ranks;
  driver->ranks_per_node = test.ranks_per_node;
  driver->num_files = test.num_files;

  for (uint32_t r = 0; r < world; ++r) {
    cluster.engine().schedule_in(0, [driver, r]() { driver->step(r); });
  }
  const double makespan = cluster.engine().run();

  MdTestResult result;
  result.backend = backend->name();
  result.makespan_seconds = makespan;
  result.transactions =
      static_cast<uint64_t>(world) * test.transactions_per_rank;
  result.transactions_per_second =
      makespan > 0 ? static_cast<double>(result.transactions) / makespan
                   : 0.0;
  result.events = cluster.engine().events_processed();
  return result;
}

}  // namespace hvac::sim
