// Storage backends of the simulated experiments: GPFS (baseline,
// lower bound), XFS-on-NVMe (pre-staged, upper bound) and HVAC with
// i instances per node. All three serve the same request — "rank r on
// node n reads this batch of dataset files" — and report completion
// through the event engine, so the DL-job and MDTest drivers are
// backend-agnostic, exactly like the applications in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/placement.h"
#include "sim/cluster.h"
#include "workload/dataset_spec.h"

namespace hvac::sim {

struct BatchIo {
  uint32_t node = 0;           // requesting compute node
  uint32_t rank = 0;           // requesting rank (diagnostics)
  std::vector<uint64_t> files; // dataset file indices
};

struct BackendStats {
  uint64_t requests = 0;
  uint64_t bytes_from_gpfs = 0;
  uint64_t bytes_from_nvme = 0;
  uint64_t bytes_over_network = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // HVAC fail-over accounting (§III-H experiments).
  uint64_t failover_reads = 0;       // served by a non-primary replica
  uint64_t dead_fallback_reads = 0;  // every home dead -> direct GPFS
};

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  // Serves the batch; `done` fires at the simulated completion time.
  virtual void read_batch(const BatchIo& io, EventFn done) = 0;

  virtual std::string name() const = 0;
  virtual const BackendStats& stats() const { return stats_; }

  // Per-server cached-file counts (HVAC only; empty otherwise).
  virtual std::vector<uint64_t> per_server_file_counts() const {
    return {};
  }

 protected:
  BackendStats stats_;
};

// ---- GPFS ------------------------------------------------------------------
// Every <open-read-close> pays the shared metadata station plus the
// unloaded round-trip latency (serialized per rank: the profiled
// loaders issue per-file ORC transactions back to back, §III-F), and
// the data crosses the shared GPFS pipe into the node's NIC.
class GpfsSim : public SimBackend {
 public:
  GpfsSim(Cluster* cluster, const workload::DatasetSpec& dataset);

  void read_batch(const BatchIo& io, EventFn done) override;
  std::string name() const override { return "GPFS"; }

 private:
  Cluster* cluster_;
  workload::DatasetSpec dataset_;
};

// ---- XFS-on-NVMe -----------------------------------------------------------
// The ideal: the dataset was pre-staged to every node's NVMe before
// the job (no first-epoch penalty, no network). Local opens are
// cheap; data is bounded only by the node's own NVMe.
class XfsSim : public SimBackend {
 public:
  XfsSim(Cluster* cluster, const workload::DatasetSpec& dataset);

  void read_batch(const BatchIo& io, EventFn done) override;
  std::string name() const override { return "XFS-on-NVMe"; }

 private:
  Cluster* cluster_;
  workload::DatasetSpec dataset_;
};

// ---- HVAC ------------------------------------------------------------------
struct HvacSimOptions {
  uint32_t instances_per_node = 1;  // the i of HVAC(i x 1)
  core::PlacementPolicy placement = core::PlacementPolicy::kHashModulo;
  // Fig 13 control: when >= 0, overrides placement so this fraction
  // of files is homed on the requesting node and the rest on remote
  // nodes (manual L%/R% residency control).
  double forced_local_fraction = -1.0;
  // Prefetch ablation: when true the cache is pre-populated (epoch 1
  // behaves like a cached epoch).
  bool prewarmed = false;

  // ---- §III-H future work: replication & fail-over ----------------------
  // Replica count (1 = paper's single-home baseline). With r > 1 a
  // file is served by its first *alive* home; on a miss the copy also
  // propagates to the other alive replicas over the interconnect.
  uint32_t replicas = 1;
  // Servers whose index is < failed_servers die at fail_at_seconds.
  uint32_t failed_servers = 0;
  double fail_at_seconds = 0.0;
};

class HvacSim : public SimBackend {
 public:
  HvacSim(Cluster* cluster, const workload::DatasetSpec& dataset,
          HvacSimOptions options);

  void read_batch(const BatchIo& io, EventFn done) override;
  std::string name() const override;
  std::vector<uint64_t> per_server_file_counts() const override;

  uint32_t num_servers() const {
    return cluster_->num_nodes() * options_.instances_per_node;
  }

 private:
  uint32_t home_server(uint64_t file, uint32_t requesting_node) const;
  uint32_t server_node(uint32_t server) const {
    return server / options_.instances_per_node;
  }
  bool server_alive(uint32_t server) const {
    return server >= options_.failed_servers ||
           cluster_->engine().now() < options_.fail_at_seconds;
  }

  Cluster* cluster_;
  workload::DatasetSpec dataset_;
  HvacSimOptions options_;
  core::Placement placement_;
  std::vector<ServiceStation> server_cpu_;   // one per instance
  // Per-file bitmask over the replica list: bit k set = the k-th home
  // in homes(file) holds a copy.
  std::vector<uint8_t> cached_;
  std::vector<uint64_t> server_file_count_;  // per instance
};

// Factory used by the bench harnesses ("GPFS", "XFS", "HVAC(1x1)",
// "HVAC(2x1)", "HVAC(4x1)").
std::unique_ptr<SimBackend> make_backend(const std::string& label,
                                         Cluster* cluster,
                                         const workload::DatasetSpec& dataset);

}  // namespace hvac::sim
