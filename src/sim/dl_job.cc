#include "sim/dl_job.h"

#include <algorithm>
#include <memory>

namespace hvac::sim {

double DlJobResult::best_random_epoch_seconds() const {
  if (epoch_seconds.size() < 2) return first_epoch_seconds();
  return *std::min_element(epoch_seconds.begin() + 1, epoch_seconds.end());
}

double DlJobResult::avg_epoch_seconds() const {
  if (epoch_seconds.empty()) return 0.0;
  double sum = 0;
  for (double e : epoch_seconds) sum += e;
  return sum / static_cast<double>(epoch_seconds.size());
}

namespace {

// Driver state shared by all rank state machines of one job.
struct JobState {
  Cluster* cluster = nullptr;
  SimBackend* backend = nullptr;
  workload::DatasetSpec dataset;
  uint32_t world = 0;
  uint32_t procs_per_node = 0;
  uint32_t batch_size = 0;
  uint32_t epochs = 0;
  double compute_per_batch = 0;
  bool overlap_io_compute = false;
  uint64_t shuffle_seed = 0;

  uint32_t current_epoch = 0;
  uint32_t ranks_done = 0;
  double epoch_start_time = 0;
  std::vector<double> epoch_seconds;
  std::vector<std::vector<uint64_t>> rank_files;  // per-rank, this epoch

  void start_epoch();
  void start_rank(uint32_t rank);
  void run_batch(uint32_t rank, size_t batch_index);
  void rank_finished();
};

void JobState::start_epoch() {
  epoch_start_time = cluster->engine().now();
  ranks_done = 0;

  // Backend-independent shuffle + distributed sampling.
  workload::EpochShuffler shuffler(dataset.num_files, shuffle_seed);
  const std::vector<uint64_t> order = shuffler.shuffled(current_epoch);
  rank_files.assign(world, {});
  for (uint32_t r = 0; r < world; ++r) {
    workload::DistributedSampler sampler(r, world);
    rank_files[r] = sampler.partition(order);
  }
  for (uint32_t r = 0; r < world; ++r) start_rank(r);
}

void JobState::start_rank(uint32_t rank) { run_batch(rank, 0); }

void JobState::run_batch(uint32_t rank, size_t batch_index) {
  const std::vector<uint64_t>& files = rank_files[rank];
  const size_t begin = batch_index * batch_size;
  if (begin >= files.size()) {
    rank_finished();
    return;
  }
  const size_t end = std::min(files.size(), begin + batch_size);

  BatchIo io;
  io.rank = rank;
  io.node = rank / procs_per_node;
  io.files.assign(files.begin() + begin, files.begin() + end);

  SimEngine& engine = cluster->engine();
  if (overlap_io_compute) {
    // Prefetch-style pipeline: the batch's I/O runs concurrently with
    // this batch's compute; the step ends at max(io, compute).
    auto arrivals = std::make_shared<int>(2);
    auto next = [this, rank, batch_index, arrivals]() {
      if (--*arrivals == 0) run_batch(rank, batch_index + 1);
    };
    backend->read_batch(io, next);
    engine.schedule_in(compute_per_batch, next);
  } else {
    backend->read_batch(io, [this, rank, batch_index]() {
      cluster->engine().schedule_in(compute_per_batch, [this, rank,
                                                        batch_index]() {
        run_batch(rank, batch_index + 1);
      });
    });
  }
}

void JobState::rank_finished() {
  if (++ranks_done < world) return;
  // Allreduce barrier: every rank waited for the slowest.
  epoch_seconds.push_back(cluster->engine().now() - epoch_start_time);
  ++current_epoch;
  if (current_epoch >= epochs) return;
  cluster->engine().schedule_in(cluster->cfg().epoch_barrier_s,
                                [this]() { start_epoch(); });
}

}  // namespace

DlJobResult run_dl_job(const SummitConfig& cfg, const DlJobConfig& job,
                       const std::string& backend_label,
                       HvacSimOptions* hvac_options) {
  Cluster cluster(cfg, job.nodes);
  const workload::DatasetSpec dataset =
      job.app.dataset.scaled(job.dataset_scale);

  std::unique_ptr<SimBackend> backend;
  if (hvac_options != nullptr) {
    backend = std::make_unique<HvacSim>(&cluster, dataset, *hvac_options);
  } else {
    backend = make_backend(backend_label, &cluster, dataset);
  }
  if (!backend) {
    return DlJobResult{backend_label, 0, {}, {}, 0};
  }

  JobState state;
  state.cluster = &cluster;
  state.backend = backend.get();
  state.dataset = dataset;
  state.procs_per_node = std::max<uint32_t>(job.app.procs_per_node, 1);
  state.world = job.nodes * state.procs_per_node;
  state.batch_size = job.batch_size_override != 0 ? job.batch_size_override
                                                  : job.app.batch_size;
  state.epochs =
      job.epochs_override != 0 ? job.epochs_override : job.app.epochs;
  state.compute_per_batch = job.app.compute_seconds_per_batch;
  state.overlap_io_compute = cfg.overlap_io_compute;
  state.shuffle_seed = job.shuffle_seed;

  state.start_epoch();
  cluster.engine().run();

  DlJobResult result;
  result.backend = backend->name();
  // Scale the wall-clock back up: with 1/k of the files every epoch
  // ran 1/k of the batches, so epoch time scales ~linearly in the
  // throughput-bound regime (validated by the scaling-invariance
  // test).
  const double k = static_cast<double>(job.dataset_scale < 1
                                           ? 1
                                           : job.dataset_scale);
  for (double e : state.epoch_seconds) {
    result.epoch_seconds.push_back(e * k);
    result.total_seconds += e * k;
  }
  result.io = backend->stats();
  result.events = cluster.engine().events_processed();

  UtilizationReport& u = result.utilization;
  u.sim_seconds = cluster.engine().now();
  if (u.sim_seconds > 0) {
    u.gpfs_meta_utilization =
        cluster.gpfs_meta().busy_seconds() / u.sim_seconds;
  }
  u.gpfs_data_bytes = cluster.gpfs_data().total_bytes();
  u.peak_gpfs_flows = cluster.gpfs_data().peak_active();
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    u.nvme_read_bytes += cluster.node(n).nvme_read.total_bytes();
    u.nic_bytes += cluster.node(n).nic_in.total_bytes();
  }
  return result;
}

}  // namespace hvac::sim
