// Summit testbed constants (paper Table I and §II-C / §IV-A1) plus
// the calibration knobs of the simulator. Absolute wall-clock is not
// the reproduction target — the figure *shapes* are — but every
// number here is anchored to a published Summit/Alpine figure where
// one exists.
#pragma once

#include <cstdint>
#include <string>

namespace hvac::sim {

struct SummitConfig {
  // ---- Table I ----------------------------------------------------------
  std::string supercomputer = "Summit (simulated)";
  std::string cpu = "2 x IBM POWER9 22 cores 3.07 GHz";
  std::string gpu = "6 x NVIDIA Tesla V100";
  uint32_t gpus_per_node = 6;
  double memory_gb = 512;
  std::string node_local_storage = "1.6 TB Samsung NVMe SSD with XFS";
  std::string interconnect = "Dual-rail Mellanox EDR InfiniBand";
  uint32_t total_nodes = 4608;

  // ---- node-local NVMe --------------------------------------------------
  // Paper §II-C: aggregate NVMe read at 4,096 nodes is 22.5 TB/s
  // => ~5.5 GB/s per node.
  double nvme_read_bps = 5.5e9;
  double nvme_write_bps = 2.1e9;
  double nvme_capacity_bytes = 1.6e12;
  // Local XFS open+close cost per file (no network, dentry cache hot).
  double xfs_open_latency_s = 30e-6;

  // ---- network ------------------------------------------------------------
  // Dual-rail EDR: 2 x 100 Gb/s = 25 GB/s; ~12.5 GB/s usable per
  // direction per node.
  double nic_bps = 12.5e9;
  double network_latency_s = 5e-6;

  // ---- GPFS (Alpine) -----------------------------------------------------
  // 2.5 TB/s aggregate sequential; small-file/metadata limited.
  double gpfs_aggregate_bps = 2.5e12;
  // Metadata service: "tens of metadata servers"; folded into one
  // station. 400k metadata ops/s (= 320k open-read-close transactions
  // at 1.25 ops each) keeps 8 MB MDTest bandwidth-bound, which is what
  // puts the Fig 4 GPFS/XFS crossover at ~450 nodes.
  double gpfs_metadata_ops_per_s = 400e3;
  // Unloaded metadata round-trip latency per open (token/lock grant
  // plus lookup on a shared, center-wide file system).
  double gpfs_metadata_latency_s = 600e-6;
  // Metadata ops charged per <open-read-close> transaction. Opens are
  // expensive; closes mostly client-side.
  double meta_ops_per_transaction = 1.25;

  // ---- HVAC ---------------------------------------------------------------
  // Per-file-request CPU on one HVAC server instance (RPC decode, FIFO
  // queue, fd bookkeeping, NVMe submit). A client's per-file requests
  // stripe across the node's instances, so the serialized per-file
  // cost seen by one rank is this constant divided by the instance
  // count — that quotient is the 1x1/2x1/4x1 overhead ladder of
  // Fig 9b (~25% / ~14% / ~9% over XFS-on-NVMe).
  double hvac_request_cpu_s = 240e-6;
  // One RPC round trip; an <open, read, close> transaction issues
  // ~2.5 of them (close is fire-and-forget).
  double hvac_rpc_latency_s = 10e-6;
  double hvac_rpcs_per_file = 2.5;
  // First-epoch extra cost per byte for writing the NVMe copy.
  bool hvac_charge_nvme_write = true;

  // ---- training-loop model -------------------------------------------------
  // Allreduce/sync cost per epoch barrier (coarse).
  double epoch_barrier_s = 0.5;
  // When true, batch I/O overlaps with the previous batch's compute
  // (the paper's future-work prefetching; off by default to match the
  // measured system).
  bool overlap_io_compute = false;
};

// Default calibrated instance.
inline SummitConfig summit_defaults() { return SummitConfig{}; }

// Human-readable Table I reproduction.
std::string table1_string(const SummitConfig& config);

}  // namespace hvac::sim
