// Environment-variable helpers. HVAC is configured entirely through
// the environment (paper §III-C: HVAC_DATASET_DIR selects the cached
// subtree; the server map and instance counts are also env-driven so
// the LD_PRELOAD shim can bootstrap without any code in the
// application).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hvac {

std::optional<std::string> env_string(const char* name);
std::string env_string_or(const char* name, const std::string& fallback);
int64_t env_int_or(const char* name, int64_t fallback);
bool env_bool_or(const char* name, bool fallback);

// Splits a comma-separated list ("host:1234,host:1235").
std::vector<std::string> split_csv(const std::string& csv);

// Joins path segments with a single '/'.
std::string path_join(const std::string& a, const std::string& b);

// True when `path` is lexically under directory `dir` (or equal).
bool path_under(const std::string& path, const std::string& dir);

// Lexically normalizes "a//b/./c" -> "a/b/c" (no filesystem access, so
// it is safe inside the interception shim).
std::string lexically_normal(const std::string& path);

}  // namespace hvac
