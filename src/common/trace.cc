#include "common/trace.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace hvac::trace {
namespace {

// Global counters. `emitted`/`dropped` are process totals across all
// rings; span/trace id generators never hand out 0 (0 means "none").
std::atomic<uint64_t> g_emitted{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint32_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_trace_id{0};
std::atomic<uint32_t> g_next_tid{0};
std::atomic<size_t> g_ring_capacity{0};  // 0: not yet read from env
std::atomic<int64_t> g_slow_ms{-2};      // -2: not yet read from env

constexpr size_t kDefaultRingCapacity = 4096;

size_t ring_capacity() {
  size_t cap = g_ring_capacity.load(std::memory_order_relaxed);
  if (cap == 0) {
    const char* env = std::getenv("HVAC_TRACE_RING");
    long parsed = env != nullptr ? std::atol(env) : 0;
    cap = parsed > 0 ? size_t(parsed) : kDefaultRingCapacity;
    g_ring_capacity.store(cap, std::memory_order_relaxed);
  }
  return cap;
}

int64_t slow_ms() {
  int64_t ms = g_slow_ms.load(std::memory_order_relaxed);
  if (ms == -2) {
    const char* env = std::getenv("HVAC_SLOW_MS");
    ms = env != nullptr ? std::atoll(env) : 0;
    if (ms < 0) ms = 0;
    g_slow_ms.store(ms, std::memory_order_relaxed);
  }
  return ms;
}

// Single-producer ring: the owning thread pushes, drain()/snapshot
// read under the registry mutex. head/tail are monotonically
// increasing record counts; (head - tail) is the occupancy. A full
// ring drops the record — unread history is never overwritten, so the
// dropped counter is exact.
struct Ring {
  explicit Ring(size_t cap) : capacity(cap), slots(cap) {}

  const size_t capacity;
  std::vector<SpanRecord> slots;
  std::atomic<uint64_t> head{0};  // written by producer, release
  std::atomic<uint64_t> tail{0};  // written by drain, release
  uint32_t tid = 0;

  bool push(const SpanRecord& rec) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    // Acquire pairs with drain()'s release store: slot [tail-1] must
    // be fully read before the producer reuses it.
    const uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t >= capacity) return false;
    slots[h % capacity] = rec;
    head.store(h + 1, std::memory_order_release);
    return true;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives exiting threads
  return *r;
}

// Thread state: the active span and this thread's ring. The ring is a
// shared_ptr held both here and in the registry so records emitted by
// a thread remain drainable after it exits.
struct ThreadState {
  uint64_t trace_id = 0;
  uint32_t active_span = 0;
  std::shared_ptr<Ring> ring;
};

ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

Ring& thread_ring(ThreadState& state) {
  if (!state.ring) {
    auto ring = std::make_shared<Ring>(ring_capacity());
    ring->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.rings.push_back(ring);
    state.ring = std::move(ring);
  }
  return *state.ring;
}

uint64_t new_trace_id() {
  uint64_t seed = g_next_trace_id.load(std::memory_order_relaxed);
  if (seed == 0) {
    // Seed once from wall clock ^ pid so traces from concurrent
    // processes don't collide; ids are then sequential oddified.
    struct timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts);
    uint64_t init = (uint64_t(ts.tv_sec) << 32) ^ uint64_t(ts.tv_nsec) ^
                    (uint64_t(::getpid()) << 17);
    init |= 1;  // never 0
    uint64_t expected = 0;
    g_next_trace_id.compare_exchange_strong(expected, init,
                                            std::memory_order_relaxed);
  }
  uint64_t id = g_next_trace_id.fetch_add(2, std::memory_order_relaxed);
  return id | 1;
}

void push_record(ThreadState& state, const SpanRecord& rec) {
  Ring& ring = thread_ring(state);
  SpanRecord stamped = rec;
  stamped.tid = ring.tid;
  if (ring.push(stamped)) {
    g_emitted.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void dump_slow_trace(uint64_t trace_id, uint64_t dur_ns);

}  // namespace

namespace detail {

std::atomic<int> g_mode{-1};

int init_mode() {
  const char* env = std::getenv("HVAC_TRACE");
  const int mode =
      (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) ? 1 : 0;
  g_mode.store(mode, std::memory_order_relaxed);
  return mode;
}

}  // namespace detail

uint64_t now_ns() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return uint64_t(ts.tv_sec) * 1000000000ull + uint64_t(ts.tv_nsec);
}

TraceContext current_context() {
  TraceContext ctx;
  if (!enabled()) return ctx;
  ThreadState& state = tls();
  if (state.trace_id == 0) return ctx;
  ctx.trace_id = state.trace_id;
  ctx.parent_span_id = state.active_span;
  ctx.flags = kFlagSampled;
  return ctx;
}

uint64_t current_trace_id() {
  return enabled() ? tls().trace_id : 0;
}

uint32_t current_span_id() {
  return enabled() ? tls().active_span : 0;
}

void Span::begin() {
  ThreadState& state = tls();
  prev_trace_ = state.trace_id;
  prev_span_ = state.active_span;
  if (state.trace_id == 0) {
    state.trace_id = new_trace_id();
    state.active_span = 0;
    root_ = true;
  }
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  if (span_id_ == 0) {  // wrapped
    span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  }
  start_ns_ = now_ns();
  armed_ = true;
  // The record's parent is whatever was active when we started; our
  // children see us as the active span.
  state.active_span = span_id_;
}

void Span::finish() {
  ThreadState& state = tls();
  SpanRecord rec;
  rec.trace_id = state.trace_id;
  rec.start_ns = start_ns_;
  rec.dur_ns = now_ns() - start_ns_;
  rec.arg = arg_;
  rec.name = name_;
  rec.span_id = span_id_;
  rec.parent_id = prev_span_;
  rec.flags = kFlagSampled;
  const uint64_t trace_id = state.trace_id;
  push_record(state, rec);
  state.active_span = prev_span_;
  state.trace_id = prev_trace_;
  if (root_) {
    const int64_t threshold = slow_ms();
    if (threshold > 0 && rec.dur_ns >= uint64_t(threshold) * 1000000ull) {
      dump_slow_trace(trace_id, rec.dur_ns);
    }
  }
}

void Span::event(const char* name, uint64_t arg) {
  if (!enabled()) return;
  ThreadState& state = tls();
  if (state.trace_id == 0) return;  // events never root a trace
  SpanRecord rec;
  rec.trace_id = state.trace_id;
  rec.start_ns = now_ns();
  rec.dur_ns = 0;
  rec.arg = arg;
  rec.name = name;
  rec.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  rec.parent_id = state.active_span;
  rec.flags = kFlagSampled;
  push_record(state, rec);
}

ScopedContext::ScopedContext(const TraceContext& ctx) {
  if (!enabled() || !ctx.valid()) return;
  ThreadState& state = tls();
  prev_trace_ = state.trace_id;
  prev_span_ = state.active_span;
  state.trace_id = ctx.trace_id;
  state.active_span = ctx.parent_span_id;
  armed_ = true;
}

ScopedContext::~ScopedContext() {
  if (!armed_) return;
  ThreadState& state = tls();
  state.trace_id = prev_trace_;
  state.active_span = prev_span_;
}

void emit(const char* name, uint64_t start_ns, uint64_t end_ns, uint64_t arg) {
  if (!enabled()) return;
  ThreadState& state = tls();
  if (state.trace_id == 0) return;
  SpanRecord rec;
  rec.trace_id = state.trace_id;
  rec.start_ns = start_ns;
  rec.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  rec.arg = arg;
  rec.name = name;
  rec.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  rec.parent_id = state.active_span;
  rec.flags = kFlagSampled;
  push_record(state, rec);
}

std::vector<SpanRecord> drain() {
  std::vector<SpanRecord> out;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& ring : reg.rings) {
    // Acquire pairs with push()'s release: every slot below `h` is
    // fully written.
    const uint64_t h = ring->head.load(std::memory_order_acquire);
    uint64_t t = ring->tail.load(std::memory_order_relaxed);
    for (; t < h; ++t) {
      out.push_back(ring->slots[t % ring->capacity]);
    }
    ring->tail.store(t, std::memory_order_release);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::vector<SpanRecord> snapshot_trace(uint64_t trace_id) {
  std::vector<SpanRecord> out;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& ring : reg.rings) {
    const uint64_t h = ring->head.load(std::memory_order_acquire);
    const uint64_t t = ring->tail.load(std::memory_order_relaxed);
    for (uint64_t i = t; i < h; ++i) {
      const SpanRecord& rec = ring->slots[i % ring->capacity];
      if (rec.trace_id == trace_id) out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

Stats stats() {
  Stats s;
  s.emitted = g_emitted.load(std::memory_order_relaxed);
  s.dropped = g_dropped.load(std::memory_order_relaxed);
  s.ring_capacity = ring_capacity();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  s.rings = reg.rings.size();
  for (auto& ring : reg.rings) {
    s.occupancy += ring->head.load(std::memory_order_acquire) -
                   ring->tail.load(std::memory_order_relaxed);
  }
  return s;
}

std::string format_tree(const std::vector<SpanRecord>& spans) {
  if (spans.empty()) return "(no spans)\n";
  uint64_t min_start = UINT64_MAX;
  for (const auto& s : spans) min_start = std::min(min_start, s.start_ns);
  std::string out;
  char line[256];
  // Depth by walking parent ids; spans whose parent is not buffered
  // (e.g. the client half of a server-side-only dump) print at the
  // top level.
  auto depth_of = [&spans](const SpanRecord& rec) {
    int depth = 0;
    uint32_t parent = rec.parent_id;
    while (parent != 0 && depth < 16) {
      bool found = false;
      for (const auto& s : spans) {
        if (s.span_id == parent) {
          parent = s.parent_id;
          ++depth;
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    return depth;
  };
  for (const auto& s : spans) {
    const int depth = depth_of(s);
    std::snprintf(line, sizeof(line),
                  "%*s%-18s +%8.3fms %9.3fms tid=%u arg=%" PRIu64 "\n",
                  depth * 2, "", s.name != nullptr ? s.name : "?",
                  double(s.start_ns - min_start) / 1e6, double(s.dur_ns) / 1e6,
                  s.tid, s.arg);
    out += line;
  }
  return out;
}

namespace {

void dump_slow_trace(uint64_t trace_id, uint64_t dur_ns) {
  const std::vector<SpanRecord> spans = snapshot_trace(trace_id);
  std::string tree = format_tree(spans);
  std::fprintf(stderr,
               "[hvac-trace] slow request t=%016" PRIx64 " (%.3f ms):\n%s",
               trace_id, double(dur_ns) / 1e6, tree.c_str());
}

}  // namespace

void init_for_test(bool enabled, size_t ring_capacity, int64_t slow_ms) {
  detail::g_mode.store(enabled ? 1 : 0, std::memory_order_relaxed);
  if (ring_capacity > 0) {
    g_ring_capacity.store(ring_capacity, std::memory_order_relaxed);
  }
  if (slow_ms >= 0) g_slow_ms.store(slow_ms, std::memory_order_relaxed);
  g_emitted.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace hvac::trace
