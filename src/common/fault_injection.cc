#include "common/fault_injection.h"

#include <time.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/env.h"
#include "common/rng.h"

namespace hvac::fault {

namespace {

constexpr size_t kSiteCount = static_cast<size_t>(Site::kCount);

struct Rule {
  enum class Action { kError, kDelay, kShort };
  Action action = Action::kError;
  ErrorCode code = ErrorCode::kIoError;
  uint32_t delay_ms = 0;
  uint64_t cap_bytes = 0;  // kShort: per-transfer byte budget
  double probability = 1.0;
  uint64_t seed = 0;
  uint64_t after = 0;
  uint64_t max_fires = UINT64_MAX;
  // Per-rule decision index: the k-th check of this rule draws from
  // SplitMix64(seed + k), so the fire/skip sequence is a pure function
  // of the spec, independent of threads' interleaving of *other* rules.
  std::atomic<uint64_t> checks{0};
  std::atomic<uint64_t> fires{0};
};

struct Config {
  std::array<std::vector<std::unique_ptr<Rule>>, kSiteCount> rules;
};

std::mutex g_mutex;
std::shared_ptr<Config> g_config;  // read under g_mutex

struct AtomicSiteStats {
  std::atomic<uint64_t> checks{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> delays{0};
  std::atomic<uint64_t> shorts{0};
};
AtomicSiteStats g_stats[kSiteCount];

Result<Site> parse_site(const std::string& name) {
  for (size_t i = 0; i < kSiteCount; ++i) {
    if (name == site_name(static_cast<Site>(i))) {
      return static_cast<Site>(i);
    }
  }
  return Error(ErrorCode::kInvalidArgument, "unknown fault site: " + name);
}

Result<ErrorCode> parse_code(const std::string& name) {
  if (name == "unavailable") return ErrorCode::kUnavailable;
  if (name == "timeout") return ErrorCode::kTimeout;
  if (name == "io") return ErrorCode::kIoError;
  if (name == "not_found" || name == "notfound") return ErrorCode::kNotFound;
  if (name == "capacity") return ErrorCode::kCapacity;
  if (name == "protocol") return ErrorCode::kProtocol;
  return Error(ErrorCode::kInvalidArgument, "unknown fault code: " + name);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

Result<uint64_t> parse_u64(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Error(ErrorCode::kInvalidArgument, "bad integer: " + s);
  }
  return static_cast<uint64_t>(v);
}

// One `site:action[:token]*` rule.
Status parse_rule(const std::string& text, Config* config) {
  const std::vector<std::string> parts = split(text, ':');
  if (parts.size() < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "fault rule needs site:action — got '" + text + "'");
  }
  HVAC_ASSIGN_OR_RETURN(Site site, parse_site(parts[0]));
  auto rule = std::make_unique<Rule>();

  const std::string& action = parts[1];
  if (action == "error") {
    rule->action = Rule::Action::kError;
  } else if (action.rfind("error=", 0) == 0) {
    rule->action = Rule::Action::kError;
    HVAC_ASSIGN_OR_RETURN(rule->code, parse_code(action.substr(6)));
  } else if (action.rfind("delay_ms=", 0) == 0) {
    rule->action = Rule::Action::kDelay;
    HVAC_ASSIGN_OR_RETURN(uint64_t ms, parse_u64(action.substr(9)));
    rule->delay_ms = static_cast<uint32_t>(ms);
  } else if (action.rfind("short=", 0) == 0) {
    rule->action = Rule::Action::kShort;
    HVAC_ASSIGN_OR_RETURN(rule->cap_bytes, parse_u64(action.substr(6)));
    if (rule->cap_bytes == 0) {
      return Error(ErrorCode::kInvalidArgument, "short=0 would stall");
    }
  } else {
    return Error(ErrorCode::kInvalidArgument,
                 "unknown fault action: " + action);
  }

  for (size_t i = 2; i < parts.size(); ++i) {
    const std::string& token = parts[i];
    if (token.rfind("seed=", 0) == 0) {
      HVAC_ASSIGN_OR_RETURN(rule->seed, parse_u64(token.substr(5)));
    } else if (token.rfind("after=", 0) == 0) {
      HVAC_ASSIGN_OR_RETURN(rule->after, parse_u64(token.substr(6)));
    } else if (token.rfind("count=", 0) == 0) {
      HVAC_ASSIGN_OR_RETURN(rule->max_fires, parse_u64(token.substr(6)));
    } else {
      char* end = nullptr;
      const double p = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        return Error(ErrorCode::kInvalidArgument,
                     "bad fault token: " + token);
      }
      rule->probability = p;
    }
  }
  config->rules[static_cast<size_t>(site)].push_back(std::move(rule));
  return Status::Ok();
}

void sleep_ms(uint32_t ms) {
  timespec ts{static_cast<time_t>(ms / 1000),
              static_cast<long>(ms % 1000) * 1'000'000L};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kRpcConnect: return "rpc_connect";
    case Site::kRpcSend: return "rpc_send";
    case Site::kRpcRecv: return "rpc_recv";
    case Site::kOpen: return "open";
    case Site::kRead: return "read";
    case Site::kStat: return "stat";
    case Site::kStoreRead: return "store_read";
    case Site::kPfsRead: return "pfs_read";
    case Site::kZcSend: return "zc_send";
    case Site::kZcSplice: return "zc_splice";
    case Site::kJournalAppend: return "journal_append";
    case Site::kJournalFsync: return "journal_fsync";
    case Site::kStoreWrite: return "store_write";
    case Site::kPfsWrite: return "pfs_write";
    case Site::kCount: break;
  }
  return "?";
}

namespace detail {

std::atomic<bool> g_enabled{false};

Status inject(Site site) {
  std::shared_ptr<Config> config;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    config = g_config;
  }
  if (!config) return Status::Ok();
  const size_t idx = static_cast<size_t>(site);
  g_stats[idx].checks.fetch_add(1, std::memory_order_relaxed);

  for (const auto& rule : config->rules[idx]) {
    if (rule->action == Rule::Action::kShort) continue;  // cap() only
    const uint64_t k = rule->checks.fetch_add(1, std::memory_order_relaxed);
    if (k < rule->after) continue;
    if (rule->fires.load(std::memory_order_relaxed) >= rule->max_fires) {
      continue;
    }
    if (rule->probability < 1.0 &&
        SplitMix64(rule->seed + k).next_double() >= rule->probability) {
      continue;
    }
    rule->fires.fetch_add(1, std::memory_order_relaxed);
    if (rule->action == Rule::Action::kDelay) {
      g_stats[idx].delays.fetch_add(1, std::memory_order_relaxed);
      sleep_ms(rule->delay_ms);
      continue;  // a delay does not preclude a later error rule
    }
    g_stats[idx].errors.fetch_add(1, std::memory_order_relaxed);
    return Error(rule->code,
                 std::string("injected fault at ") + site_name(site));
  }
  return Status::Ok();
}

size_t cap(Site site, size_t want) {
  std::shared_ptr<Config> config;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    config = g_config;
  }
  if (!config) return want;
  const size_t idx = static_cast<size_t>(site);
  size_t budget = want;
  for (const auto& rule : config->rules[idx]) {
    if (rule->action != Rule::Action::kShort) continue;
    const uint64_t k = rule->checks.fetch_add(1, std::memory_order_relaxed);
    if (k < rule->after) continue;
    if (rule->fires.load(std::memory_order_relaxed) >= rule->max_fires) {
      continue;
    }
    if (rule->probability < 1.0 &&
        SplitMix64(rule->seed + k).next_double() >= rule->probability) {
      continue;
    }
    if (rule->cap_bytes >= budget) continue;  // no-op cap: not a fire
    rule->fires.fetch_add(1, std::memory_order_relaxed);
    g_stats[idx].shorts.fetch_add(1, std::memory_order_relaxed);
    budget = static_cast<size_t>(rule->cap_bytes);
  }
  return budget;
}

}  // namespace detail

Status configure(const std::string& spec) {
  auto config = std::make_shared<Config>();
  bool any = false;
  if (!spec.empty()) {
    for (const std::string& rule : split(spec, ';')) {
      if (rule.empty()) continue;
      HVAC_RETURN_IF_ERROR(parse_rule(rule, config.get()));
      any = true;
    }
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = any ? std::move(config) : nullptr;
  for (auto& s : g_stats) {
    s.checks.store(0, std::memory_order_relaxed);
    s.errors.store(0, std::memory_order_relaxed);
    s.delays.store(0, std::memory_order_relaxed);
    s.shorts.store(0, std::memory_order_relaxed);
  }
  detail::g_enabled.store(any, std::memory_order_release);
  return Status::Ok();
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const auto spec = env_string("HVAC_FAULT");
    if (!spec.has_value() || spec->empty()) return;
    if (Status s = configure(*spec); !s.ok()) {
      // A typo in HVAC_FAULT must not take the process down — report
      // and run clean.
      std::fprintf(stderr, "hvac: ignoring HVAC_FAULT: %s\n",
                   s.error().to_string().c_str());
    }
  });
}

SiteStats stats(Site site) {
  const auto& s = g_stats[static_cast<size_t>(site)];
  return SiteStats{s.checks.load(std::memory_order_relaxed),
                   s.errors.load(std::memory_order_relaxed),
                   s.delays.load(std::memory_order_relaxed),
                   s.shorts.load(std::memory_order_relaxed)};
}

uint64_t total_injected() {
  uint64_t total = 0;
  for (const auto& s : g_stats) {
    total += s.errors.load(std::memory_order_relaxed) +
             s.delays.load(std::memory_order_relaxed) +
             s.shorts.load(std::memory_order_relaxed);
  }
  return total;
}

void reset() { (void)configure(""); }

}  // namespace hvac::fault
