#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/trace.h"

namespace hvac::log {
namespace {

std::atomic<int> g_threshold{-1};  // -1: not yet initialized from env.

int init_from_env() {
  const char* env = std::getenv("HVAC_LOG");
  Level level = env != nullptr ? parse_level(env) : Level::kWarn;
  return static_cast<int>(level);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

Level threshold() {
  int t = g_threshold.load(std::memory_order_relaxed);
  if (t < 0) {
    t = init_from_env();
    g_threshold.store(t, std::memory_order_relaxed);
  }
  return static_cast<Level>(t);
}

void set_threshold(Level level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level parse_level(const std::string& name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kWarn;
}

void emit(Level level, const char* file, int line, const std::string& msg) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  // When a trace is active the line carries its ids, so spans and log
  // lines are joinable after the fact. Empty otherwise — untraced
  // output is byte-identical to before.
  char span_tag[40] = "";
  if (const uint64_t trace_id = trace::current_trace_id(); trace_id != 0) {
    std::snprintf(span_tag, sizeof(span_tag),
                  " [t=%016" PRIx64 " s=%08x]", trace_id,
                  trace::current_span_id());
  }
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "[%10.6f %s %s:%d t%zu]%s %s\n", secs,
               level_name(level), base, line,
               std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1000,
               span_tag, msg.c_str());
}

}  // namespace hvac::log
