// Bounded, blocking multi-producer/multi-consumer queue.
//
// This is the "shared FIFO queue" of the paper's data-mover design
// (§III-C): RPC handler threads enqueue forwarded file operations and
// the dedicated data-mover thread drains them. The paper calls out the
// mutex on this queue as the mechanism that serializes concurrent
// first-reads of the same file; we keep the same shape (mutex + two
// condition variables) rather than a lock-free ring because the queue
// is never the bottleneck — the PFS copy is.
//
// close() wakes all waiters; subsequent pops drain the remaining
// items, then report kCancelled. Pushes after close are rejected.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/result.h"

namespace hvac {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Blocks until there is room or the queue is closed.
  Status push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return Error(ErrorCode::kCancelled, "queue closed");
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::Ok();
  }

  // Non-blocking push; fails with kCapacity when full.
  Status try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Error(ErrorCode::kCancelled, "queue closed");
      if (items_.size() >= capacity_) {
        return Error(ErrorCode::kCapacity, "queue full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  // Blocks until an item is available; returns kCancelled once the
  // queue is closed *and* drained.
  Result<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return Error(ErrorCode::kCancelled, "queue closed");
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hvac
