#include "common/result.h"

#include <cerrno>

namespace hvac {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kPermission: return "PERMISSION";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kExists: return "EXISTS";
    case ErrorCode::kCapacity: return "CAPACITY";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kBadFd: return "BAD_FD";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

int error_code_to_errno(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kNotFound: return ENOENT;
    case ErrorCode::kPermission: return EACCES;
    case ErrorCode::kIoError: return EIO;
    case ErrorCode::kInvalidArgument: return EINVAL;
    case ErrorCode::kUnavailable: return ECONNREFUSED;
    case ErrorCode::kTimeout: return ETIMEDOUT;
    case ErrorCode::kExists: return EEXIST;
    case ErrorCode::kCapacity: return ENOSPC;
    case ErrorCode::kProtocol: return EPROTO;
    case ErrorCode::kBadFd: return EBADF;
    case ErrorCode::kCancelled: return ECANCELED;
    case ErrorCode::kUnimplemented: return ENOSYS;
    case ErrorCode::kInternal: return EIO;
  }
  return EIO;
}

ErrorCode errno_to_error_code(int err) {
  switch (err) {
    case 0: return ErrorCode::kOk;
    case ENOENT: return ErrorCode::kNotFound;
    case EACCES: case EPERM: return ErrorCode::kPermission;
    case EINVAL: return ErrorCode::kInvalidArgument;
    case ECONNREFUSED: case EHOSTUNREACH: case ENETUNREACH:
      return ErrorCode::kUnavailable;
    case ETIMEDOUT: return ErrorCode::kTimeout;
    case EEXIST: return ErrorCode::kExists;
    case ENOSPC: return ErrorCode::kCapacity;
    case EPROTO: return ErrorCode::kProtocol;
    case EBADF: return ErrorCode::kBadFd;
    case ECANCELED: return ErrorCode::kCancelled;
    case ENOSYS: return ErrorCode::kUnimplemented;
    default: return ErrorCode::kIoError;
  }
}

}  // namespace hvac
