#include "common/buffer_pool.h"

#include "common/env.h"

namespace hvac {

BufferPool::BufferPool(Options options) : options_(options) {
  if (options_.min_class_bytes == 0) options_.min_class_bytes = 1;
  for (size_t bytes = options_.min_class_bytes;
       bytes <= options_.max_class_bytes && bytes != 0; bytes <<= 1) {
    class_bytes_.push_back(bytes);
  }
  free_lists_.resize(class_bytes_.size());
}

size_t BufferPool::class_index(size_t size) const {
  if (options_.max_per_class == 0) return kNoClass;
  for (size_t i = 0; i < class_bytes_.size(); ++i) {
    if (class_bytes_[i] >= size) return i;
  }
  return kNoClass;
}

BufferPool::Lease BufferPool::acquire(size_t size) {
  const size_t cls = class_index(size);
  if (cls == kNoClass) {
    std::vector<uint8_t> buf(size);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.unpooled;
    }
    // pool_ == nullptr: the storage is freed, not recycled.
    return Lease(nullptr, std::move(buf), size);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& list = free_lists_[cls];
    if (!list.empty()) {
      std::vector<uint8_t> buf = std::move(list.back());
      list.pop_back();
      ++stats_.hits;
      return Lease(this, std::move(buf), size);
    }
    ++stats_.misses;
  }
  return Lease(this, std::vector<uint8_t>(class_bytes_[cls]), size);
}

void BufferPool::give_back(std::vector<uint8_t> buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The buffer's capacity is exactly one class size (acquire allocated
  // it that way); anything else (or a full list) is dropped.
  for (size_t i = 0; i < class_bytes_.size(); ++i) {
    if (buf.size() == class_bytes_[i]) {
      if (free_lists_[i].size() < options_.max_per_class) {
        free_lists_[i].push_back(std::move(buf));
        ++stats_.recycled;
        return;
      }
      break;
    }
  }
  ++stats_.dropped;
}

void BufferPool::Lease::release() {
  // resize() only moves the logical size_; buf_ keeps its full class
  // allocation, so it can go straight back on the free list.
  if (pool_ != nullptr && !buf_.empty()) {
    pool_->give_back(std::move(buf_));
  }
  pool_ = nullptr;
  buf_.clear();
  size_ = 0;
  valid_ = false;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace {

BufferPool::Options env_sized_options() {
  BufferPool::Options options;
  options.max_per_class =
      static_cast<size_t>(env_int_or("HVAC_BUFFER_POOL", 64));
  return options;
}

// Arena registry: append-only, leaked (arenas are bound to threads
// whose lifetime we do not control at exit).
std::mutex g_arena_mutex;
std::vector<BufferPool*>& arena_registry() {
  static auto* arenas = new std::vector<BufferPool*>();
  return *arenas;
}

thread_local BufferPool* t_arena = nullptr;

}  // namespace

BufferPool& BufferPool::global() {
  static BufferPool* pool = new BufferPool(env_sized_options());
  return *pool;
}

BufferPool& BufferPool::arena(size_t index) {
  std::lock_guard<std::mutex> lock(g_arena_mutex);
  auto& arenas = arena_registry();
  while (arenas.size() <= index) {
    arenas.push_back(new BufferPool(env_sized_options()));
  }
  return *arenas[index];
}

void BufferPool::set_thread_arena(BufferPool* pool) { t_arena = pool; }

BufferPool& BufferPool::local() {
  return t_arena != nullptr ? *t_arena : global();
}

BufferPool::Stats BufferPool::aggregated_stats() {
  Stats total = global().stats();
  std::vector<BufferPool*> arenas;
  {
    std::lock_guard<std::mutex> lock(g_arena_mutex);
    arenas = arena_registry();
  }
  for (BufferPool* pool : arenas) {
    const Stats s = pool->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.unpooled += s.unpooled;
    total.recycled += s.recycled;
    total.dropped += s.dropped;
  }
  return total;
}

}  // namespace hvac
