// Low-overhead request tracing for the HVAC data path.
//
// A trace is a tree of spans identified by a 64-bit trace id; every
// span gets a 32-bit span id and remembers its parent. The active span
// lives in a thread-local, so instrumentation sites never pass context
// explicitly — a `Span` constructed while another span is active
// becomes its child, and a `Span` constructed with no trace active
// roots a fresh trace. Crossing a thread or a socket is explicit: the
// 16-byte `TraceContext` travels in the RPC frame header (see
// rpc/protocol.h) or inside a queued task, and `ScopedContext` adopts
// it on the far side so remote/deferred spans keep their parent.
//
// Finished spans are appended to fixed-size per-thread ring buffers
// (single producer, drained under a registry lock by `drain()`); a
// full ring drops the span and counts it — producers never block and
// never overwrite unread records, so drops are exact and visible in
// the metrics frame. Everything is off by default: with HVAC_TRACE
// unset or 0 a span site costs one relaxed atomic load.
//
// Environment:
//   HVAC_TRACE       1 enables tracing (default 0).
//   HVAC_TRACE_RING  per-thread ring capacity in spans (default 4096).
//   HVAC_SLOW_MS     when > 0, a finished *root* span slower than this
//                    prints its reconstructed span tree to stderr.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hvac::trace {

// Wire-visible context: exactly what HVC2 frames carry (16 bytes,
// little-endian: u64 trace_id, u32 parent_span_id, u32 flags).
struct TraceContext {
  uint64_t trace_id = 0;
  uint32_t parent_span_id = 0;
  uint32_t flags = 0;

  bool valid() const { return trace_id != 0; }
};

constexpr uint32_t kFlagSampled = 1u << 0;
constexpr size_t kTraceContextSize = 16;

// One finished span. `name` must be a string literal (rings store the
// pointer, not the bytes); `arg` is a span-specific detail — opcode for
// RPC spans, byte count for I/O spans, attempt number for retries.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t arg = 0;
  const char* name = nullptr;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;
  uint32_t tid = 0;  // small per-thread index, stable for the thread's life
  uint32_t flags = 0;
};

namespace detail {
extern std::atomic<int> g_mode;  // -1 uninit, 0 off, 1 on
int init_mode();
}  // namespace detail

// True when tracing is on; first call reads HVAC_TRACE, later calls are
// one relaxed load. This is the only cost a span site pays when off.
inline bool enabled() {
  int mode = detail::g_mode.load(std::memory_order_relaxed);
  if (mode < 0) mode = detail::init_mode();
  return mode == 1;
}

uint64_t now_ns();  // CLOCK_MONOTONIC

// The context a child span (or an outgoing RPC) would inherit right
// now: {0,0,0} when tracing is off or no span is active.
TraceContext current_context();
uint64_t current_trace_id();
uint32_t current_span_id();

// RAII span. Roots a new trace when none is active; otherwise a child
// of the current active span. The record is pushed on destruction.
class Span {
 public:
  explicit Span(const char* name, uint64_t arg = 0) : name_(name), arg_(arg) {
    if (enabled()) begin();
  }
  ~Span() {
    if (armed_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool armed() const { return armed_; }
  uint32_t id() const { return span_id_; }
  void set_arg(uint64_t arg) { arg_ = arg; }

  // Zero-duration child of the current active span ("retry happened",
  // "meta cache miss"). No-op when tracing is off or no trace active.
  static void event(const char* name, uint64_t arg = 0);

 private:
  void begin();
  void finish();

  const char* name_;
  uint64_t arg_;
  uint64_t start_ns_ = 0;
  uint64_t prev_trace_ = 0;
  uint32_t prev_span_ = 0;
  uint32_t span_id_ = 0;
  bool armed_ = false;
  bool root_ = false;
};

// Adopts a context received from another thread or host: spans opened
// while this is in scope parent under `ctx.parent_span_id`. Restores
// the previous thread state on destruction. Invalid/empty contexts
// (or tracing off) make this a no-op.
class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  uint64_t prev_trace_ = 0;
  uint32_t prev_span_ = 0;
  bool armed_ = false;
};

// Records a span with explicit endpoints, parented under the current
// active span — for durations measured across threads after the fact
// (queue wait between submit and pop). No-op when no trace is active.
void emit(const char* name, uint64_t start_ns, uint64_t end_ns,
          uint64_t arg = 0);

// Consumes every buffered record from every ring (including rings of
// threads that have exited).
std::vector<SpanRecord> drain();

// Non-destructive read of the records buffered for one trace, oldest
// first. Used by the HVAC_SLOW_MS dump.
std::vector<SpanRecord> snapshot_trace(uint64_t trace_id);

struct Stats {
  uint64_t emitted = 0;        // records pushed into rings
  uint64_t dropped = 0;        // records lost to full rings
  uint64_t rings = 0;          // live per-thread rings
  uint64_t ring_capacity = 0;  // capacity of each ring, in spans
  uint64_t occupancy = 0;      // records currently buffered
};
Stats stats();

// Renders `spans` (one trace, any order) as an indented tree; exposed
// for the slow-request log and its tests.
std::string format_tree(const std::vector<SpanRecord>& spans);

// Test hook: force the enabled flag, ring capacity for rings created
// after this call, and the slow threshold (-1 leaves HVAC_SLOW_MS
// alone; 0 disables). Also resets the emitted/dropped counters.
void init_for_test(bool enabled, size_t ring_capacity, int64_t slow_ms = 0);

}  // namespace hvac::trace
