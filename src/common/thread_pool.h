// Fixed-size worker pool used by HVAC servers to run RPC handlers and
// by the benches to parallelize independent simulator runs, plus the
// sharded work-stealing pool backing the multi-reactor RPC server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"

namespace hvac {

class ThreadPool {
 public:
  // `num_threads` workers; `queue_capacity` bounds backlog so a
  // misbehaving producer blocks instead of exhausting memory.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks when the queue is full; returns kCancelled after shutdown.
  Status submit(std::function<void()> task);

  // Drains outstanding tasks and joins the workers. Idempotent.
  void shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

// Sharded handler pool with work stealing. Each shard (one per
// reactor) owns a bounded FIFO deque and a set of home workers; an
// idle worker first drains its home shard, then — unless stealing is
// disabled — steals the *oldest* task from the busiest other shard,
// so mover-bound misses queued behind a hot reactor migrate to idle
// cores while the common case stays shard-local.
//
// submit() never blocks: a full shard returns kCapacity and the
// caller sheds the request (the RPC server's backpressure contract).
class WorkStealingPool {
 public:
  struct Options {
    size_t shards = 1;
    size_t workers_per_shard = 1;
    // Per-shard backlog bound; a full deque rejects with kCapacity.
    size_t shard_capacity = 1024;
    // HVAC_STEAL=0 pins workers to their home shard (measurement aid).
    bool steal_enabled = true;
    // Adaptive steal throttling (HVAC_STEAL_THROTTLE=0 disables):
    // when no victim shard has a backlog (every depth <= 1), their
    // home workers drain the odd queued task as fast as a thief
    // would, so the scan's n-1 mutex acquisitions buy nothing — the
    // worker backs off instead (counted per home shard). Two
    // consecutive backoffs force a scan anyway, bounding the added
    // pickup latency for a lone task stuck behind a busy worker.
    bool steal_throttle = true;
    // Runs once on each worker thread before it serves tasks, with the
    // worker's home shard index (binds per-reactor buffer arenas).
    std::function<void(size_t shard)> worker_init;
  };

  explicit WorkStealingPool(Options options);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  // Enqueues on `shard` (clamped by modulo). Returns kCapacity when
  // the shard deque is full, kCancelled after shutdown.
  Status submit(size_t shard, std::function<void()> task);

  // Drains every shard, then joins the workers. Idempotent.
  void shutdown();

  size_t shard_count() const { return shards_.size(); }
  size_t num_threads() const { return workers_.size(); }
  // Tasks submitted to `shard` that were executed by a foreign
  // worker (counted on the victim shard).
  uint64_t steals(size_t shard) const;
  // Steal scans skipped by the adaptive throttle while stealable work
  // existed (counted on the would-be thief's home shard).
  uint64_t steal_backoffs(size_t shard) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<std::function<void()>> tasks;
    // Queue depth mirrored outside the mutex so the throttle's
    // uniformity check is a relaxed load, not a lock acquisition.
    std::atomic<size_t> depth{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> steal_backoffs{0};
  };

  bool try_pop(size_t shard, std::function<void()>* out);
  void worker_loop(size_t home);

  const Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Sleep/wake plumbing shared by all workers: `pending_` counts
  // queued tasks across shards so an idle worker knows whether a
  // steal scan is worth another pass before sleeping.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;
};

}  // namespace hvac
