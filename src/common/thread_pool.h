// Fixed-size worker pool used by HVAC servers to run RPC handlers and
// by the benches to parallelize independent simulator runs.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"

namespace hvac {

class ThreadPool {
 public:
  // `num_threads` workers; `queue_capacity` bounds backlog so a
  // misbehaving producer blocks instead of exhausting memory.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks when the queue is full; returns kCancelled after shutdown.
  Status submit(std::function<void()> task);

  // Drains outstanding tasks and joins the workers. Idempotent.
  void shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace hvac
