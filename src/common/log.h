// Minimal leveled, thread-safe logger for the HVAC library.
//
// Severity is controlled at runtime through the HVAC_LOG environment
// variable ("trace", "debug", "info", "warn", "error", "off"); the
// default is "warn" so that library users are not spammed. All sinks
// write to stderr; log lines carry a monotonic timestamp and the
// calling thread id so that interleaved client/server traces can be
// reconstructed in tests.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace hvac::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global threshold; messages below it are discarded without formatting.
Level threshold();
void set_threshold(Level level);

// Parses a level name; unknown names map to kWarn.
Level parse_level(const std::string& name);

// Emits one formatted line. Prefer the HVAC_LOG_* macros below, which
// avoid building the message string when the level is disabled.
void emit(Level level, const char* file, int line, const std::string& msg);

inline bool enabled(Level level) {
  return static_cast<int>(level) >= static_cast<int>(threshold());
}

}  // namespace hvac::log

#define HVAC_LOG_AT(level, expr)                                     \
  do {                                                               \
    if (::hvac::log::enabled(level)) {                               \
      std::ostringstream hvac_log_oss_;                              \
      hvac_log_oss_ << expr;                                         \
      ::hvac::log::emit(level, __FILE__, __LINE__,                   \
                        hvac_log_oss_.str());                        \
    }                                                                \
  } while (0)

#define HVAC_LOG_TRACE(expr) HVAC_LOG_AT(::hvac::log::Level::kTrace, expr)
#define HVAC_LOG_DEBUG(expr) HVAC_LOG_AT(::hvac::log::Level::kDebug, expr)
#define HVAC_LOG_INFO(expr) HVAC_LOG_AT(::hvac::log::Level::kInfo, expr)
#define HVAC_LOG_WARN(expr) HVAC_LOG_AT(::hvac::log::Level::kWarn, expr)
#define HVAC_LOG_ERROR(expr) HVAC_LOG_AT(::hvac::log::Level::kError, expr)
