// Deterministic, seedable RNG utilities.
//
// Everything in the reproduction that involves randomness — epoch
// shuffles, synthetic dataset generation, random eviction, simulator
// service-time jitter — draws from SplitMix64/Xoshiro so that a run is
// bit-reproducible from its seed on every platform. std::mt19937 is
// avoided only because distribution results differ across standard
// libraries; the raw engines below are fully specified.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace hvac {

// SplitMix64: tiny, fast, passes BigCrush; ideal for seeding and for
// low-volume decisions (eviction victims, jitter).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t next_below(uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the mapping unbiased enough for our use.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box-Muller (deterministic, no caching).
  double next_gaussian();

  // Exponential with the given mean.
  double next_exponential(double mean);

  // Log-normal such that the *mean of the distribution* is `mean` and
  // sigma is the log-space standard deviation. Used for file-size
  // populations (ImageNet-style datasets are heavily right-skewed).
  double next_lognormal_with_mean(double mean, double sigma);

 private:
  uint64_t state_;
};

// In-place Fisher-Yates shuffle driven by SplitMix64. This is the
// shuffle HVAC must *not* perturb (paper §IV-F): given the same seed
// the sequence is identical whether reads go to GPFS or to the cache.
template <typename T>
void fisher_yates_shuffle(std::vector<T>& items, SplitMix64& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.next_below(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

inline double SplitMix64::next_gaussian() {
  // Box-Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  double u2 = next_double();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  // std::sqrt/log/cos are fine here; we only need determinism per
  // platform for tests, and cross-platform agreement to double ulp.
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(kTwoPi * u2);
}

inline double SplitMix64::next_exponential(double mean) {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * __builtin_log(u);
}

inline double SplitMix64::next_lognormal_with_mean(double mean,
                                                   double sigma) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
  double mu = __builtin_log(mean) - 0.5 * sigma * sigma;
  return __builtin_exp(mu + sigma * next_gaussian());
}

}  // namespace hvac
