// Statistics helpers shared by the metric collectors and the bench
// harnesses: online mean/variance (Welford), percentile extraction,
// 95% confidence intervals (the paper reports all results as the mean
// of three runs with a 95% CI), simple fixed-bin histograms, and CDF
// extraction for the Fig 15 load-distribution analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hvac {

// Numerically stable online accumulator.
class OnlineStats {
 public:
  void add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  // Half-width of the 95% confidence interval of the mean, using the
  // normal approximation (1.96 * s / sqrt(n)); matches how the paper
  // reports its three-repetition averages.
  double ci95_half_width() const;

  void merge(const OnlineStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set (linear interpolation between order
// statistics). `q` in [0, 100]. Copies and sorts; callers on hot paths
// should batch.
double percentile(std::vector<double> samples, double q);

// Cumulative distribution of `samples` evaluated at `points` (fraction
// of samples <= point).
std::vector<double> cdf_at(const std::vector<double>& samples,
                           const std::vector<double>& points);

// Gini coefficient of a non-negative sample set; 0 = perfectly even.
// Used to quantify placement load balance (Fig 15).
double gini(std::vector<double> samples);

// Coefficient of variation (stddev / mean) of a sample set.
double coefficient_of_variation(const std::vector<double>& samples);

// Fixed-width histogram over [lo, hi); values outside clamp to the
// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void add(double x);
  uint64_t bin_count(size_t i) const { return counts_.at(i); }
  size_t num_bins() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;

  // Renders an ASCII bar chart (used by the bench harness output).
  std::string to_ascii(size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace hvac
