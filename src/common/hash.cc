#include "common/hash.h"

namespace hvac {

int32_t jump_consistent_hash(uint64_t key, int32_t num_buckets) {
  if (num_buckets <= 0) return -1;
  int64_t b = -1;
  int64_t j = 0;
  while (j < num_buckets) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<int32_t>(b);
}

}  // namespace hvac
