#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace hvac {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(other.count_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

std::vector<double> cdf_at(const std::vector<double>& samples,
                           const std::vector<double>& points) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), p);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

double gini(std::vector<double> samples) {
  if (samples.size() < 2) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    cum_weighted += (static_cast<double>(i) + 1.0) * samples[i];
    total += samples[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

double coefficient_of_variation(const std::vector<double>& samples) {
  OnlineStats s;
  for (double x : samples) s.add(x);
  return s.mean() != 0.0 ? s.stddev() / s.mean() : 0.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  size_t bin = 0;
  if (span > 0.0) {
    const double t = (x - lo_) / span;
    const auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
    bin = static_cast<size_t>(
        std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1));
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(size_t i) const { return bin_lo(i + 1); }

std::string Histogram::to_ascii(size_t width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream oss;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<size_t>(static_cast<double>(counts_[i]) /
                            static_cast<double>(peak) *
                            static_cast<double>(width));
    oss << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return oss.str();
}

}  // namespace hvac
