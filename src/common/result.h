// Error-code based result type used across the HVAC library.
//
// The library deliberately avoids exceptions on its hot paths (reads
// intercepted from a training loop); every fallible operation returns
// Result<T>, an expected-like sum type of a value and an Error. The
// POSIX-facing layers map Error::code back onto errno values so that
// the LD_PRELOAD shim can surface faithful error semantics to the
// application.
#pragma once

#include <cassert>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace hvac {

// Stable error taxonomy. Values are part of the wire protocol (the RPC
// layer ships them between client and server), so only append.
enum class ErrorCode : int {
  kOk = 0,
  kNotFound = 1,        // ENOENT
  kPermission = 2,      // EACCES
  kIoError = 3,         // EIO
  kInvalidArgument = 4, // EINVAL
  kUnavailable = 5,     // server unreachable / connection refused
  kTimeout = 6,         // deadline exceeded
  kExists = 7,          // EEXIST
  kCapacity = 8,        // cache full and eviction failed / ENOSPC
  kProtocol = 9,        // malformed RPC frame
  kBadFd = 10,          // EBADF
  kCancelled = 11,      // queue closed / shutdown in progress
  kUnimplemented = 12,
  kInternal = 13,
};

const char* error_code_name(ErrorCode code);

// Maps an ErrorCode onto the closest errno value (for the shim).
int error_code_to_errno(ErrorCode code);
ErrorCode errno_to_error_code(int err);

struct [[nodiscard]] Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  static Error from_errno(int err, const std::string& context) {
    return Error(errno_to_error_code(err),
                 context + ": " + std::strerror(err));
  }

  std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

// Result<T>: either a T or an Error. Result<void> is supported through
// the Status alias below.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT implicit
  Result(Error error) : rep_(std::move(error)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return ok() ? value() : fallback; }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(rep_);
  }

 private:
  std::variant<T, Error> rep_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT implicit

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace hvac

// Propagates the error of a Result/Status expression, binding the value
// (if any) is the caller's job. Usage:
//   HVAC_RETURN_IF_ERROR(do_thing());
#define HVAC_RETURN_IF_ERROR(expr)               \
  do {                                           \
    auto hvac_status_ = (expr);                  \
    if (!hvac_status_.ok()) {                    \
      return hvac_status_.error();               \
    }                                            \
  } while (0)

// Assigns the value of a Result expression to `lhs`, or returns its
// error. Usage: HVAC_ASSIGN_OR_RETURN(auto fd, open_file(path));
#define HVAC_ASSIGN_OR_RETURN(lhs, expr)          \
  HVAC_ASSIGN_OR_RETURN_IMPL_(                    \
      HVAC_RESULT_CONCAT_(hvac_result_, __LINE__), lhs, expr)
#define HVAC_RESULT_CONCAT_INNER_(a, b) a##b
#define HVAC_RESULT_CONCAT_(a, b) HVAC_RESULT_CONCAT_INNER_(a, b)
#define HVAC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.error();                             \
  }                                                 \
  lhs = std::move(tmp).value()
