#include "common/env.h"

#include <cstdlib>

namespace hvac {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::string env_string_or(const char* name, const std::string& fallback) {
  return env_string(name).value_or(fallback);
}

int64_t env_int_or(const char* name, int64_t fallback) {
  auto value = env_string(name);
  if (!value.has_value() || value->empty()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool env_bool_or(const char* name, bool fallback) {
  auto value = env_string(name);
  if (!value.has_value()) return fallback;
  return *value == "1" || *value == "true" || *value == "yes" ||
         *value == "on";
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    std::string item = csv.substr(start, comma - start);
    if (!item.empty()) out.push_back(std::move(item));
    start = comma + 1;
  }
  return out;
}

std::string path_join(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const bool a_slash = a.back() == '/';
  const bool b_slash = b.front() == '/';
  if (a_slash && b_slash) return a + b.substr(1);
  if (!a_slash && !b_slash) return a + "/" + b;
  return a + b;
}

std::string lexically_normal(const std::string& path) {
  const bool absolute = !path.empty() && path.front() == '/';
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    std::string seg = path.substr(i, j - i);
    if (seg.empty() || seg == ".") {
      // skip
    } else if (seg == "..") {
      if (!parts.empty() && parts.back() != "..") {
        parts.pop_back();
      } else if (!absolute) {
        parts.push_back("..");
      }
    } else {
      parts.push_back(std::move(seg));
    }
    i = j + 1;
  }
  std::string out = absolute ? "/" : "";
  for (size_t k = 0; k < parts.size(); ++k) {
    out += parts[k];
    if (k + 1 < parts.size()) out += "/";
  }
  if (out.empty()) out = ".";
  return out;
}

bool path_under(const std::string& path, const std::string& dir) {
  if (dir.empty()) return false;
  std::string p = lexically_normal(path);
  std::string d = lexically_normal(dir);
  if (p.size() < d.size()) return false;
  if (p.compare(0, d.size(), d) != 0) return false;
  return p.size() == d.size() || p[d.size()] == '/' || d == "/";
}

}  // namespace hvac
