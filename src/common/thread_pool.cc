#include "common/thread_pool.h"

namespace hvac {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : tasks_(queue_capacity) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

Status ThreadPool::submit(std::function<void()> task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Result<std::function<void()>> task = tasks_.pop();
    if (!task.ok()) return;  // closed and drained
    (*task)();
  }
}

}  // namespace hvac
