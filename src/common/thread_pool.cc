#include "common/thread_pool.h"

#include <chrono>

namespace hvac {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : tasks_(queue_capacity) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

Status ThreadPool::submit(std::function<void()> task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Result<std::function<void()>> task = tasks_.pop();
    if (!task.ok()) return;  // closed and drained
    (*task)();
  }
}

WorkStealingPool::WorkStealingPool(Options options)
    : options_(std::move(options)) {
  const size_t shards = options_.shards == 0 ? 1 : options_.shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  const size_t per_shard =
      options_.workers_per_shard == 0 ? 1 : options_.workers_per_shard;
  workers_.reserve(shards * per_shard);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t w = 0; w < per_shard; ++w) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

WorkStealingPool::~WorkStealingPool() { shutdown(); }

Status WorkStealingPool::submit(size_t shard, std::function<void()> task) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Error(ErrorCode::kCancelled, "pool shut down");
  }
  Shard& s = *shards_[shard % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.tasks.size() >= options_.shard_capacity) {
      return Error(ErrorCode::kCapacity, "shard queue full");
    }
    s.tasks.push_back(std::move(task));
    s.depth.store(s.tasks.size(), std::memory_order_relaxed);
  }
  pending_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
  return Status::Ok();
}

void WorkStealingPool::shutdown() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    sleep_cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

uint64_t WorkStealingPool::steals(size_t shard) const {
  if (shards_.empty()) return 0;
  return shards_[shard % shards_.size()]->steals.load(
      std::memory_order_relaxed);
}

uint64_t WorkStealingPool::steal_backoffs(size_t shard) const {
  if (shards_.empty()) return 0;
  return shards_[shard % shards_.size()]->steal_backoffs.load(
      std::memory_order_relaxed);
}

bool WorkStealingPool::try_pop(size_t shard, std::function<void()>* out) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.tasks.empty()) return false;
  *out = std::move(s.tasks.front());
  s.tasks.pop_front();
  s.depth.store(s.tasks.size(), std::memory_order_relaxed);
  return true;
}

void WorkStealingPool::worker_loop(size_t home) {
  if (options_.worker_init) options_.worker_init(home);
  const size_t n = shards_.size();
  // Consecutive throttled scans; the third scan runs unthrottled so a
  // lone queued task behind a busy worker is picked up within a couple
  // of passes even when depths stay uniform.
  size_t backoff_streak = 0;
  for (;;) {
    std::function<void()> task;
    bool got = try_pop(home, &task);
    if (!got && options_.steal_enabled) {
      bool scan = true;
      if (options_.steal_throttle && backoff_streak < 2) {
        size_t max_depth = 0;
        for (size_t i = 1; i < n; ++i) {
          const size_t d =
              shards_[(home + i) % n]->depth.load(std::memory_order_relaxed);
          if (d > max_depth) max_depth = d;
        }
        if (max_depth < 2) {
          // Depths are uniform (no victim backlogged): its home worker
          // drains a depth-1 queue as fast as a thief would, so skip
          // the n-1 lock acquisitions. Only count it as a backoff when
          // stealable work actually existed.
          scan = false;
          if (max_depth > 0) {
            ++backoff_streak;
            shards_[home]->steal_backoffs.fetch_add(
                1, std::memory_order_relaxed);
          }
        }
      }
      if (scan) {
        backoff_streak = 0;
        // Steal scan: oldest task from the first non-empty victim,
        // walking shards in ring order starting after home so steal
        // pressure spreads instead of piling on shard 0.
        for (size_t i = 1; i < n && !got; ++i) {
          const size_t victim = (home + i) % n;
          got = try_pop(victim, &task);
          if (got) {
            shards_[victim]->steals.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    if (got) {
      backoff_streak = 0;
      pending_.fetch_sub(1, std::memory_order_release);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      // Draining shutdown: exit only once every shard is empty. With
      // stealing off, a worker still drains foreign shards here so no
      // accepted task is dropped.
      if (pending_.load(std::memory_order_acquire) == 0) return;
      if (!options_.steal_enabled) {
        lock.unlock();
        for (size_t i = 1; i < n; ++i) {
          if (try_pop((home + i) % n, &task)) {
            pending_.fetch_sub(1, std::memory_order_release);
            task();
            break;
          }
        }
      }
      continue;
    }
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
  }
}

}  // namespace hvac
