// Deterministic fault-injection harness.
//
// The ROADMAP north-star ("handle as many scenarios as you can
// imagine") needs a way to *provoke* failures on demand: a recv that
// errors 1% of the time, an open that stalls 50 ms, a PFS that starts
// returning EIO mid-epoch. Faults are declared in the HVAC_FAULT
// environment variable and evaluated at fixed hook points (sites)
// compiled into the transport, the local store and the PFS backend:
//
//   HVAC_FAULT="rpc_recv:error:0.01;open:delay_ms=50:seed=7"
//
// Grammar: rules separated by ';', each rule `site:action[:token]*`.
//   site    rpc_connect | rpc_send | rpc_recv | open | read | stat |
//           store_read | pfs_read | zc_send | zc_splice |
//           journal_append | journal_fsync | store_write | pfs_write
//   action  error            inject kIoError
//           error=CODE       CODE in {unavailable, timeout, io,
//                            not_found, capacity, protocol}
//           delay_ms=N       sleep N ms, then continue
//           short=N          cap one kernel transfer at N bytes
//                            (cap_len sites only: zc_send/zc_splice —
//                            forces the short-sendfile resume loop)
//   tokens  a bare float     probability of firing (default 1.0)
//           seed=N           decision-stream seed (default 0)
//           after=N          skip the first N checks of this rule
//           count=N          fire at most N times
//
// Determinism: the k-th check of a rule draws from
// SplitMix64(seed + k), so a fixed spec yields the same injected
// sequence on every run regardless of wall clock or ASLR — chaos
// tests can replay an exact failure schedule.
//
// Cost when unset: `check()` is one relaxed atomic load and a
// predictable branch; no rule parsing, no RNG, no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace hvac::fault {

enum class Site : uint8_t {
  kRpcConnect = 0,
  kRpcSend,
  kRpcRecv,
  kOpen,
  kRead,
  kStat,
  kStoreRead,
  kPfsRead,
  kZcSend,    // sendfile() leg of the zero-copy response path
  kZcSplice,  // splice() leg of the zero-copy response path
  kJournalAppend,  // write-ahead journal record append
  kJournalFsync,   // journal commit-barrier fdatasync
  kStoreWrite,     // write-back store pwrite on local NVMe
  kPfsWrite,       // flusher's copy-out to the PFS
  kCount,  // sentinel
};

const char* site_name(Site site);

namespace detail {
extern std::atomic<bool> g_enabled;
Status inject(Site site);
size_t cap(Site site, size_t want);
}  // namespace detail

// True when any fault rule is active.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Hook point: call at the top of an operation. Returns the injected
// error (if a matching `error` rule fires), after applying any
// matching `delay_ms` rules. The fast path when no spec is configured
// is a single relaxed load.
inline Status check(Site site) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) {
    return Status::Ok();
  }
  return detail::inject(site);
}

// Transfer-length hook for the zero-copy send loops: returns the
// byte budget for one kernel transfer — `want`, or less when a
// matching `short=N` rule fires. The resume loop around sendfile/
// splice must deliver every byte regardless of how small the cap is.
inline size_t cap_len(Site site, size_t want) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) {
    return want;
  }
  return detail::cap(site, want);
}

// Installs a spec, replacing any previous one. An empty spec disables
// injection entirely. kInvalidArgument on a malformed spec.
Status configure(const std::string& spec);

// Reads HVAC_FAULT once per process (idempotent, thread-safe). Safe
// to call from the shim bootstrap: no static-initialization-order
// hazards, allocation happens only when the variable is set.
void init_from_env();

// Per-site observability (totals since the last configure/reset).
struct SiteStats {
  uint64_t checks = 0;
  uint64_t errors = 0;
  uint64_t delays = 0;
  uint64_t shorts = 0;  // transfers capped by a short=N rule
};
SiteStats stats(Site site);

// Sum of `errors` + `delays` over all sites.
uint64_t total_injected();

// Drops the active spec and zeroes all counters (tests).
void reset();

}  // namespace hvac::fault
