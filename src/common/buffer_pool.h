// Size-classed buffer pool for the read hot path.
//
// Every cached read used to heap-allocate (and free) a payload buffer
// per RPC; at DL-training request rates that is an allocator round
// trip per sample. The pool keeps a bounded free list of reusable
// buffers per power-of-two size class and hands them out through an
// RAII Lease, so the server read handler and the client receive path
// recycle the same few buffers instead of churning the allocator.
//
// Knobs (see DESIGN.md "Read hot path"):
//   HVAC_BUFFER_POOL — buffers retained per size class for the global
//                      pool (0 disables pooling: every acquire is a
//                      plain heap allocation, the seed behaviour).
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace hvac {

struct BufferPoolOptions {
  // Buffers kept per size class; 0 disables pooling entirely.
  size_t max_per_class = 64;
  // Smallest / largest pooled class (powers of two in between).
  // Requests above max_class_bytes are served unpooled.
  size_t min_class_bytes = 4096;      // 4 KiB
  size_t max_class_bytes = 8u << 20;  // 8 MiB
};

class BufferPool {
 public:
  using Options = BufferPoolOptions;

  struct Stats {
    uint64_t hits = 0;      // acquire served from a free list
    uint64_t misses = 0;    // acquire had to allocate
    uint64_t unpooled = 0;  // acquire above max class (or pool off)
    uint64_t recycled = 0;  // lease returned to a free list
    uint64_t dropped = 0;   // lease freed (free list full)
  };

  // RAII lease over one buffer. The logical size() can be shrunk below
  // the class capacity (short reads); the backing storage returns to
  // the pool when the lease is destroyed.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          buf_(std::move(other.buf_)),
          size_(std::exchange(other.size_, 0)),
          valid_(std::exchange(other.valid_, false)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        buf_ = std::move(other.buf_);
        size_ = std::exchange(other.size_, 0);
        valid_ = std::exchange(other.valid_, false);
      }
      return *this;
    }

    uint8_t* data() { return buf_.data(); }
    const uint8_t* data() const { return buf_.data(); }
    size_t size() const { return size_; }
    size_t capacity() const { return buf_.size(); }
    bool valid() const { return valid_; }

    // Shrinks the logical size (e.g. after a short read). Never grows
    // past the class capacity.
    void resize(size_t n) { size_ = n < buf_.size() ? n : buf_.size(); }

    // Hands the backing storage to the caller as a plain vector; the
    // buffer does NOT return to the pool (legacy Bytes-shaped paths).
    std::vector<uint8_t> detach() {
      pool_ = nullptr;
      valid_ = false;
      std::vector<uint8_t> out = std::move(buf_);
      out.resize(std::exchange(size_, 0));
      return out;
    }

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, std::vector<uint8_t> buf, size_t size)
        : pool_(pool), buf_(std::move(buf)), size_(size), valid_(true) {}

    void release();

    BufferPool* pool_ = nullptr;  // null: unpooled, plain free
    std::vector<uint8_t> buf_;    // capacity == class size
    size_t size_ = 0;
    bool valid_ = false;
  };

  explicit BufferPool(Options options = {});

  // Acquires a buffer with capacity >= `size` and logical size `size`.
  Lease acquire(size_t size);

  Stats stats() const;

  // Process-wide pool shared by the RPC server/client hot paths,
  // sized from HVAC_BUFFER_POOL (buffers per class, default 64).
  static BufferPool& global();

  // Reactor-private arena registry. arena(i) lazily creates a pool
  // with the same env sizing as global(); arenas live for the process
  // (never destroyed) and are shared by every server instance in it —
  // arena i always belongs to reactor/shard index i, so a worker
  // thread can bind one for its lifetime without lifetime hazards
  // across server restarts.
  static BufferPool& arena(size_t index);

  // Binds `pool` as this thread's arena (nullptr unbinds). Reactor
  // threads and their home pool workers bind arena(reactor_id) so
  // hit-path buffers recycle core-locally.
  static void set_thread_arena(BufferPool* pool);

  // The thread's bound arena, or global() when none is bound.
  static BufferPool& local();

  // global() plus every arena created so far (metrics frame section).
  static Stats aggregated_stats();

 private:
  friend class Lease;

  // Index of the smallest class with capacity >= size, or npos when
  // the request must go unpooled.
  static constexpr size_t kNoClass = static_cast<size_t>(-1);
  size_t class_index(size_t size) const;

  void give_back(std::vector<uint8_t> buf);

  Options options_;
  std::vector<size_t> class_bytes_;  // ascending class capacities
  mutable std::mutex mutex_;
  std::vector<std::vector<std::vector<uint8_t>>> free_lists_;
  Stats stats_;
};

}  // namespace hvac
