// Hash primitives backing HVAC's metadata-less placement (paper §III-E).
//
// Placement must be a *pure function* of (file path, allocation): every
// client computes the same home server with no coordination, so the
// hashes here are fixed-for-all-time and independent of std::hash
// (whose value is implementation-defined and process-seeded for
// strings on some standard libraries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hvac {

// 64-bit FNV-1a over bytes. Stable across platforms and processes.
constexpr uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Fibonacci/splitmix-style 64-bit finalizer. Used to decorrelate the
// low bits of FNV output before reduction modulo the server count.
constexpr uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Stable string hash used for placement: fnv1a then mixed.
constexpr uint64_t stable_hash(std::string_view bytes) {
  return mix64(fnv1a64(bytes));
}

// Combines two hashes (order-dependent).
constexpr uint64_t hash_combine(uint64_t a, uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Jump consistent hash (Lamping & Veach): maps key uniformly onto
// [0, num_buckets) with minimal movement when num_buckets changes.
// Offered as a placement alternative for the ablation benches.
int32_t jump_consistent_hash(uint64_t key, int32_t num_buckets);

}  // namespace hvac
