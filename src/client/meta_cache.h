// Client-side TTL cache of per-file metadata.
//
// DL training re-opens the same sample files every epoch; without a
// metadata service (paper §III-E) each re-open still pays a stat/open
// round trip just to re-learn what the client already knew: the file's
// size, its home server, and whether that server holds a cached copy.
// This cache remembers {size, home, cached} per logical path for a
// short TTL (HVAC_META_TTL_MS), so a fresh entry lets open() hand out
// a path-mode fd with zero round trips — reads then address the file
// by path via kReadScatter.
//
// Staleness is bounded three ways: the TTL, explicit invalidation on
// any transport-level failure touching the path, and a breaker check
// at use time (a tripped home makes every entry pointing at it
// unusable — see HvacClient::meta_lookup). Entries are advisory: a
// server that evicted the file since we cached "cached=true" simply
// serves the scatter read through its PFS path, so a stale entry
// costs latency, never correctness.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace hvac::client {

struct MetaEntry {
  uint64_t size = 0;
  uint32_t home = 0;   // server index that served the file last
  bool cached = false;  // home held a node-local copy at lookup time
};

class MetaCache {
 public:
  // ttl_ms <= 0 disables the cache (every lookup misses, puts are
  // dropped).
  explicit MetaCache(int64_t ttl_ms);

  bool enabled() const { return ttl_ms_ > 0; }

  // Fresh entry or nullopt. Expired entries are erased on the way out
  // (and counted in MetaCacheCounters::expired).
  std::optional<MetaEntry> lookup(const std::string& logical);

  void put(const std::string& logical, const MetaEntry& entry);

  // Drops one path (transport failure touching it).
  void invalidate(const std::string& logical);

  // Drops every entry homed at `home` (its breaker tripped: nothing
  // we remember about that server is actionable until it recovers).
  void invalidate_home(uint32_t home);

  size_t size() const;

 private:
  struct Slot {
    MetaEntry meta;
    int64_t expires_ms = 0;
  };

  const int64_t ttl_ms_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> map_;
};

}  // namespace hvac::client
