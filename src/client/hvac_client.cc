#include "client/hvac_client.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <chrono>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "client/prefetch_scheduler.h"

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/log.h"
#include "common/trace.h"
#include "core/metrics.h"
#include "rpc/health.h"
#include "core/segment.h"
#include "rpc/async_client.h"
#include "rpc/wire.h"
#include "server/hvac_proto.h"
#include "storage/packed_format.h"
#include "storage/posix_file.h"

namespace hvac::client {

using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {

// ---- I/O stall attribution (frame v2 section 12) --------------------------
//
// Checkpoint charging: the top-level pread owns a thread-local
// timestamp; every attribution site charges the wall time since the
// previous checkpoint to one stall bucket and advances the
// checkpoint, so the per-epoch bucket sum equals the measured total
// by construction (no double counting, no gaps).
thread_local uint64_t t_stall_checkpoint = 0;

void stall_charge(core::StallBucket bucket) {
  if (t_stall_checkpoint == 0) return;  // not inside a timed read
  const uint64_t now = trace::now_ns();
  core::StallCounters::global().charge(bucket, now - t_stall_checkpoint);
  t_stall_checkpoint = now;
}

// Owns the checkpoint for one application-level read. Recursive
// pread_attempt calls (fd recovery) nest inside the same scope and
// keep charging against the outer checkpoint.
struct StallScope {
  const bool owner = t_stall_checkpoint == 0;
  StallScope() {
    if (owner) {
      t_stall_checkpoint = trace::now_ns();
      core::StallCounters::global().on_read();
    }
  }
  ~StallScope() {
    if (owner) {
      // The residual tail (decode, memcpy, fd-table bookkeeping)
      // counts as local service time.
      stall_charge(core::StallBucket::kLocalHit);
      t_stall_checkpoint = 0;
    }
  }
};

}  // namespace

Result<HvacClientOptions> options_from_env() {
  HvacClientOptions o;
  auto dataset = env_string("HVAC_DATASET_DIR");
  if (!dataset.has_value() || dataset->empty()) {
    return Error(ErrorCode::kInvalidArgument, "HVAC_DATASET_DIR not set");
  }
  o.dataset_dir = lexically_normal(*dataset);
  auto servers = env_string("HVAC_SERVERS");
  if (!servers.has_value() || servers->empty()) {
    return Error(ErrorCode::kInvalidArgument, "HVAC_SERVERS not set");
  }
  o.server_endpoints = split_csv(*servers);
  o.replicas = static_cast<uint32_t>(env_int_or("HVAC_REPLICAS", 1));
  const std::string policy = env_string_or("HVAC_PLACEMENT", "hash-modulo");
  if (policy == "rendezvous") {
    o.placement = core::PlacementPolicy::kRendezvous;
  } else if (policy == "jump") {
    o.placement = core::PlacementPolicy::kJump;
  }
  o.allow_pfs_fallback = env_bool_or("HVAC_PFS_FALLBACK", true);
  o.segment_bytes =
      static_cast<uint64_t>(env_int_or("HVAC_SEGMENT_BYTES", 0));
  const int64_t readahead = env_int_or("HVAC_READAHEAD", 2);
  o.readahead_chunks =
      readahead > 0 ? static_cast<uint32_t>(readahead) : 0;
  const int64_t pf_depth = env_int_or("HVAC_PREFETCH_DEPTH", 0);
  o.prefetch_depth = pf_depth > 0 ? static_cast<uint32_t>(pf_depth) : 0;
  if (auto bw = env_string("HVAC_PREFETCH_BW_MBPS");
      bw.has_value() && !bw->empty()) {
    const double mbps = std::strtod(bw->c_str(), nullptr);
    o.prefetch_bw_mbps = mbps > 0 ? mbps : 0.0;
  }
  o.prefetch_plan_file = env_string_or("HVAC_PREFETCH_PLAN", "");
  o.meta_ttl_ms = env_int_or("HVAC_META_TTL_MS", o.meta_ttl_ms);
  o.packed_enabled = env_bool_or("HVAC_PACK", true);
  o.packed_ttl_ms = env_int_or("HVAC_PACK_TTL_MS", o.packed_ttl_ms);
  const std::string durability =
      env_string_or("HVAC_WRITE_DURABILITY", "local");
  o.write_durability = durability == "pfs" ? proto::kDurabilityPfs
                                           : proto::kDurabilityLocal;
  // Fault-domain knobs: an end-to-end deadline per call and a bounded
  // retry budget for idempotent ops (stat / positional reads).
  o.rpc.call_timeout_ms =
      static_cast<int>(env_int_or("HVAC_CALL_TIMEOUT_MS",
                                  o.rpc.call_timeout_ms));
  o.rpc.max_retries =
      static_cast<int>(env_int_or("HVAC_RPC_RETRIES", o.rpc.max_retries));
  o.rpc.retry_backoff_ms = static_cast<int>(
      env_int_or("HVAC_RPC_RETRY_BACKOFF_MS", o.rpc.retry_backoff_ms));
  return o;
}

HvacClient::HvacClient(HvacClientOptions options)
    : options_(std::move(options)),
      placement_(static_cast<uint32_t>(options_.server_endpoints.size()),
                 options_.placement, options_.replicas),
      meta_(options_.meta_ttl_ms),
      packed_(options_.packed_ttl_ms) {
  fault::init_from_env();
  options_.dataset_dir = lexically_normal(options_.dataset_dir);
  channels_.resize(options_.server_endpoints.size());
  async_channels_.resize(options_.server_endpoints.size());
  // A plan file turns clairvoyant prefetch on for processes that never
  // call set_access_plan() themselves — the LD_PRELOAD shim's path.
  if (!options_.prefetch_plan_file.empty()) {
    std::ifstream in(options_.prefetch_plan_file);
    if (!in) {
      HVAC_LOG_INFO("prefetch plan unreadable, ignoring: "
                    << options_.prefetch_plan_file);
    } else {
      std::vector<std::string> plan;
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty()) plan.push_back(std::move(line));
      }
      if (!plan.empty()) set_access_plan(plan);
    }
  }
}

HvacClient::~HvacClient() {
  // Stop the issue thread before the channels it rides on go away.
  if (prefetch_) prefetch_->stop();
}

void HvacClient::set_access_plan(const std::vector<std::string>& paths) {
  std::vector<std::string> logicals;
  logicals.reserve(paths.size());
  for (const auto& path : paths) {
    // Plans carry absolute paths (the shim sees absolute opens) or
    // already-logical ones; ineligible entries are dropped — a stale
    // plan line must never break training.
    if (auto logical = logical_path(path); logical.ok()) {
      logicals.push_back(std::move(*logical));
    } else if (!path.empty() && path.front() != '/') {
      logicals.push_back(lexically_normal(path));
    }
  }
  {
    std::lock_guard<std::mutex> lock(prefetch_mutex_);
    if (!prefetch_) {
      PrefetchSchedulerOptions po;
      if (options_.prefetch_depth > 0) po.depth = options_.prefetch_depth;
      po.bw_mbps = options_.prefetch_bw_mbps;
      prefetch_ = std::make_unique<PrefetchScheduler>(this, po);
      prefetch_ptr_.store(prefetch_.get(), std::memory_order_release);
    }
  }
  prefetch_->set_plan(std::move(logicals));
}

bool HvacClient::eligible(const std::string& path) const {
  return path_under(path, options_.dataset_dir);
}

Result<std::string> HvacClient::logical_path(const std::string& path) const {
  if (!eligible(path)) {
    return Error(ErrorCode::kInvalidArgument,
                 path + " is not under " + options_.dataset_dir);
  }
  std::string normal = lexically_normal(path);
  if (normal.size() == options_.dataset_dir.size()) return std::string(".");
  return normal.substr(options_.dataset_dir.size() + 1);
}

uint32_t HvacClient::home_of(const std::string& path) const {
  auto logical = logical_path(path);
  return placement_.home(logical.ok() ? *logical : path);
}

rpc::RpcClient& HvacClient::channel(uint32_t server_index) {
  std::lock_guard<std::mutex> lock(channels_mutex_);
  auto& slot = channels_.at(server_index);
  if (!slot) {
    slot = std::make_unique<rpc::RpcClient>(
        rpc::Endpoint{options_.server_endpoints[server_index]},
        options_.rpc);
  }
  return *slot;
}

rpc::AsyncRpcClient& HvacClient::async_channel(uint32_t server_index) {
  std::lock_guard<std::mutex> lock(channels_mutex_);
  auto& slot = async_channels_.at(server_index);
  if (!slot) {
    slot = std::make_unique<rpc::AsyncRpcClient>(
        rpc::Endpoint{options_.server_endpoints[server_index]},
        options_.rpc);
  }
  return *slot;
}

// ---- sequential read-ahead ------------------------------------------------
//
// When a vfd reads sequentially (the DL-training common case: one
// sample file streamed front to back), the next chunks are requested
// over the async channel before the application asks, so the server's
// pread and the network transfer overlap with client-side compute.
// Everything fails open: a lost or mismatched read-ahead chunk just
// degrades to the synchronous path.

// Counts the chunks of a dead window as wasted (frame v2 read-ahead
// telemetry: bytes fetched ahead that the application never took).
void HvacClient::discard_window(ReadAheadState& state) {
  if (state.pending.empty()) return;
  core::ReadAheadCounters::global().wasted.fetch_add(
      state.pending.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.readahead_wasted += state.pending.size();
  }
  state.pending.clear();
  state.issued_end = 0;
}

std::optional<HvacClient::PendingChunk> HvacClient::readahead_take(
    int vfd, uint64_t offset, uint32_t count, uint64_t file_size) {
  std::lock_guard<std::mutex> lock(ra_mutex_);
  auto it = ra_.find(vfd);
  if (it == ra_.end() || it->second.pending.empty()) return std::nullopt;
  auto& pending = it->second.pending;
  const PendingChunk& front = pending.front();
  // A shorter pending chunk is still a hit when it runs to EOF (the
  // issue path clamps the final chunk to the file size); any other
  // mismatch means the fd went non-sequential and the window is dead.
  const bool match =
      front.offset == offset &&
      (front.count == count ||
       (front.count < count && offset + front.count >= file_size));
  if (!match) {
    // The pattern broke: every pending chunk was wasted, so the
    // adaptive policy halves the window before the next run starts.
    it->second.policy.on_miss();
    discard_window(it->second);
    return std::nullopt;
  }
  PendingChunk chunk = std::move(pending.front());
  pending.pop_front();
  return chunk;
}

void HvacClient::readahead_advance(int vfd, const core::FdEntry& entry,
                                   uint64_t offset, size_t got,
                                   uint32_t chunk) {
  if (options_.readahead_chunks == 0 || chunk == 0) return;
  std::lock_guard<std::mutex> lock(ra_mutex_);
  const auto [slot, inserted] = ra_.try_emplace(vfd);
  ReadAheadState& state = slot->second;
  if (inserted) {
    // HVAC_READAHEAD seeds the adaptive window; the policy grows or
    // shrinks it per fd from the measured inter-arrival gap.
    state.policy.depth = options_.readahead_chunks;
    state.policy.max_depth =
        std::max(options_.readahead_chunks, state.policy.max_depth);
  }
  const bool sequential = offset == state.next_expected;
  const uint64_t now = trace::now_ns();
  if (sequential && state.last_arrival_ns != 0 &&
      now > state.last_arrival_ns) {
    state.policy.on_sequential(now - state.last_arrival_ns);
  }
  state.last_arrival_ns = now;
  state.next_expected = offset + got;
  if (!sequential) {
    state.policy.on_miss();
    discard_window(state);
    return;
  }
  if (got < chunk) return;  // EOF reached; nothing left to fetch
  if (state.issued_end < state.next_expected) {
    state.issued_end = state.next_expected;
  }
  // The whole top-up goes out as ONE kReadScatter call: N chunks, one
  // framed response (single header, single kernel-copied burst on the
  // server's hit path) instead of N round trips' worth of frames.
  std::vector<std::pair<uint64_t, uint32_t>> batch;
  uint64_t batch_bytes = 0;
  uint64_t cursor = state.issued_end;
  while (state.pending.size() + batch.size() < state.policy.depth &&
         batch.size() < proto::kMaxScatterExtents && cursor < entry.size) {
    const uint32_t next_count = static_cast<uint32_t>(
        std::min<uint64_t>(chunk, entry.size - cursor));
    if (batch_bytes + next_count > proto::kMaxScatterBytes) break;
    batch.emplace_back(cursor, next_count);
    batch_bytes += next_count;
    cursor += next_count;
  }
  if (batch.empty()) return;
  WireWriter w;
  if (entry.path_mode) {
    w.put_u8(1);  // by path
    w.put_string(entry.logical_path);
  } else {
    w.put_u8(0);  // by remote fd
    w.put_u64(entry.remote_fd);
  }
  w.put_u32(static_cast<uint32_t>(batch.size()));
  for (const auto& [off, len] : batch) {
    w.put_u64(off);
    w.put_u32(len);
  }
  const std::shared_future<Result<Bytes>> shared =
      async_channel(entry.server_index)
          .call_async(proto::kReadScatter, w.bytes())
          .share();
  for (uint32_t i = 0; i < batch.size(); ++i) {
    PendingChunk next;
    next.offset = batch[i].first;
    next.count = batch[i].second;
    next.data = shared;
    next.extent_index = i;
    state.pending.push_back(std::move(next));
  }
  state.issued_end = cursor;
  core::ReadAheadCounters::global().issued.fetch_add(
      batch.size(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.readahead_issued += batch.size();
}

void HvacClient::readahead_drop(int vfd) {
  std::lock_guard<std::mutex> lock(ra_mutex_);
  auto it = ra_.find(vfd);
  if (it == ra_.end()) return;
  discard_window(it->second);
  ra_.erase(it);
}

Result<int> HvacClient::open_via_pfs(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Error::from_errno(errno, "open " + path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  ::lseek(fd, 0, SEEK_SET);
  core::FdEntry entry;
  entry.logical_path = path;
  entry.fallback_pfs = true;
  entry.pfs_fd = fd;
  entry.size = end < 0 ? 0 : static_cast<uint64_t>(end);
  const int vfd = fds_.insert(std::move(entry));
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.fallback_opens;
  return vfd;
}

std::optional<MetaEntry> HvacClient::meta_lookup(const std::string& logical) {
  if (!meta_.enabled()) return std::nullopt;
  std::optional<MetaEntry> meta = meta_.lookup(logical);
  if (meta.has_value() &&
      meta->home < options_.server_endpoints.size()) {
    // Breaker-trip invalidation: the entry's home has an open circuit,
    // so acting on the cached location would only fail fast anyway.
    // Drop everything we remembered about that server.
    auto health = rpc::HealthRegistry::global().get(
        options_.server_endpoints[meta->home]);
    if (health->state() == rpc::EndpointHealth::State::kOpen) {
      meta_.invalidate_home(meta->home);
      meta.reset();
    }
  } else {
    meta.reset();
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (meta.has_value()) {
    ++stats_.meta_hits;
  } else {
    ++stats_.meta_misses;
  }
  return meta;
}

std::optional<PackedCatalog::Resolved> HvacClient::packed_lookup(
    const std::string& logical) {
  if (!options_.packed_enabled || options_.server_endpoints.empty()) {
    return std::nullopt;
  }
  return packed_.resolve(
      logical,
      [this]() -> Result<std::optional<std::vector<uint8_t>>> {
        // The index is served from memory by every instance; ask the
        // one that homes the index's own logical path so the fetch
        // load spreads like any other file's.
        const uint32_t server =
            placement_.home(storage::packed_index_logical());
        HVAC_ASSIGN_OR_RETURN(
            Bytes resp,
            channel(server).call_idempotent(proto::kPackedIndex, Bytes{}));
        WireReader r(resp);
        HVAC_ASSIGN_OR_RETURN(uint8_t present, r.get_u8());
        if (present == 0) return std::optional<std::vector<uint8_t>>{};
        HVAC_ASSIGN_OR_RETURN(WireReader::BlobView raw, r.get_blob_view());
        return std::optional<std::vector<uint8_t>>(
            std::vector<uint8_t>(raw.data, raw.data + raw.size));
      });
}

Result<int> HvacClient::open(const std::string& path) {
  trace::Span span("client.open");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.opens;
  }
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kOpen));
  HVAC_ASSIGN_OR_RETURN(std::string logical, logical_path(path));

  // Every open advances the clairvoyant training cursor (and slides
  // the prefetch lookahead window forward).
  if (PrefetchScheduler* pf = prefetch_scheduler()) pf->on_access(logical);

  // Packed sample: everything open() needs (size, home) comes from the
  // locally cached index — hand out a path-mode fd with zero round
  // trips. The fd homes at the *container's* home server (that is
  // where the blob gets cached); reads still address the sample by its
  // own logical path and the server translates per read.
  if (std::optional<PackedCatalog::Resolved> packed = packed_lookup(logical)) {
    if (PrefetchScheduler* pf = prefetch_scheduler()) {
      pf->observe_sample_bytes(packed->length);
    }
    core::FdEntry entry;
    entry.logical_path = logical;
    entry.server_index = placement_.home(packed->container_logical);
    entry.path_mode = true;
    entry.size = packed->length;
    const int vfd = fds_.insert(std::move(entry));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.remote_opens;
    return vfd;
  }

  // Segment-level caching: a large file is not opened on one home
  // server at all — reads address (segment, offset) pairs and each
  // segment has its own home. All we need up front is the size.
  if (options_.segment_bytes > 0) {
    const auto size = stat_size(path);
    if (size.ok() && *size > options_.segment_bytes) {
      core::FdEntry entry;
      entry.logical_path = logical;
      entry.segmented = true;
      entry.size = *size;
      const int vfd = fds_.insert(std::move(entry));
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.remote_opens;
      return vfd;
    }
  }

  // Metadata-cache fast path: a fresh entry saying "home X holds a
  // cached copy of this file" lets us skip the open round trip and
  // hand out a path-mode fd — reads address the file by logical path
  // (kReadScatter mode 1), and the server re-resolves its cached copy
  // per read. If the copy was evicted meanwhile the server degrades
  // that read to its PFS path, so a stale entry costs latency, never
  // correctness.
  if (std::optional<MetaEntry> meta = meta_lookup(logical);
      meta.has_value() && meta->cached) {
    if (PrefetchScheduler* pf = prefetch_scheduler()) {
      pf->observe_sample_bytes(meta->size);
    }
    core::FdEntry entry;
    entry.logical_path = logical;
    entry.server_index = meta->home;
    entry.path_mode = true;
    entry.size = meta->size;
    const int vfd = fds_.insert(std::move(entry));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.remote_opens;
    return vfd;
  }

  // Try the primary home, then the replicas (paper §III-H fail-over) —
  // but walk replicas whose breaker is open LAST, so a file homed at a
  // known-dead primary goes straight to a live replica instead of
  // burning a shed/backoff cycle first.
  const std::vector<uint32_t> homes = core::order_by_health(
      placement_.homes(logical), options_.server_endpoints);
  Error last_error(ErrorCode::kUnavailable, "no servers");
  for (size_t attempt = 0; attempt < homes.size(); ++attempt) {
    const uint32_t server = homes[attempt];
    WireWriter w;
    w.put_string(logical);
    Result<Bytes> resp = channel(server).call(proto::kOpen, w);
    if (resp.ok()) {
      WireReader r(*resp);
      HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
      HVAC_ASSIGN_OR_RETURN(uint64_t size, r.get_u64());
      HVAC_ASSIGN_OR_RETURN(uint8_t served_from, r.get_u8());
      if (PrefetchScheduler* pf = prefetch_scheduler()) {
        pf->observe_sample_bytes(size);
      }
      core::FdEntry entry;
      entry.logical_path = logical;
      entry.server_index = server;
      entry.remote_fd = remote_fd;
      entry.size = size;
      const int vfd = fds_.insert(std::move(entry));
      meta_.put(logical,
                MetaEntry{size, server,
                          served_from == proto::kFromCache});
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.remote_opens;
      if (attempt > 0) ++stats_.failovers;
      return vfd;
    }
    last_error = resp.error();
    // Only transport-level failures justify fail-over; a real error
    // from a healthy server (ENOENT etc.) is final.
    if (last_error.code != ErrorCode::kUnavailable &&
        last_error.code != ErrorCode::kTimeout) {
      return last_error;
    }
    meta_.invalidate(logical);
    HVAC_LOG_DEBUG("open failover from server " << server << ": "
                                                << last_error.to_string());
  }

  if (options_.allow_pfs_fallback) {
    HVAC_LOG_INFO("falling back to PFS for " << path);
    return open_via_pfs(path);
  }
  return last_error;
}

Result<size_t> HvacClient::pread_segmented(const core::FdEntry& entry,
                                           void* buf, size_t count,
                                           uint64_t offset) {
  if (offset >= entry.size) return size_t{0};
  count = static_cast<size_t>(
      std::min<uint64_t>(count, entry.size - offset));
  auto* out = static_cast<uint8_t*>(buf);
  size_t total = 0;
  Error failure(ErrorCode::kInternal, "");
  bool failed = false;
  core::for_each_segment(
      offset, count, options_.segment_bytes,
      [&](const core::SegmentRange& range) {
        if (failed) return;
        // Chunk within the segment to respect the RPC frame cap.
        uint64_t done = 0;
        while (done < range.length && !failed) {
          const uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
              range.length - done, options_.read_chunk_bytes));
          WireWriter w;
          w.put_string(entry.logical_path);
          w.put_u64(range.index);
          w.put_u64(options_.segment_bytes);
          w.put_u64(range.skip + done);
          w.put_u32(chunk);
          const uint32_t server = placement_.home(
              core::segment_key(entry.logical_path, range.index));
          Result<Bytes> resp =
              channel(server).call(proto::kReadSegment, w);
          if (!resp.ok()) {
            failure = resp.error();
            failed = true;
            return;
          }
          WireReader r(*resp);
          auto data = r.get_blob();
          if (!data.ok()) {
            failure = data.error();
            failed = true;
            return;
          }
          std::copy(data->begin(), data->end(), out + total);
          total += data->size();
          done += data->size();
          if (data->size() < chunk) return;  // EOF in final segment
        }
      });
  if (failed) return failure;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.reads;
  stats_.bytes_read += total;
  return total;
}

Status HvacClient::recover_fd(int vfd, const core::FdEntry& stale,
                              bool force_pfs) {
  HVAC_LOG_INFO("recovering fd " << vfd << " for " << stale.logical_path
                                 << " after server loss");
  const std::string abs_path =
      path_join(options_.dataset_dir, stale.logical_path);
  // Whatever the meta cache believed about this file routed us to the
  // server we just lost — the re-open below must not trust it.
  meta_.invalidate(stale.logical_path);
  if (force_pfs && !options_.allow_pfs_fallback) {
    return Error(ErrorCode::kUnavailable,
                 "remote reads keep failing and PFS fallback is disabled");
  }
  HVAC_ASSIGN_OR_RETURN(int fresh_vfd,
                        force_pfs ? open_via_pfs(abs_path) : open(abs_path));
  HVAC_ASSIGN_OR_RETURN(core::FdEntry fresh, fds_.erase(fresh_vfd));
  fresh.offset = stale.offset;  // the application's position survives
  // Any read-ahead in flight targets the dead server's remote fd.
  readahead_drop(vfd);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failovers;
  }
  return fds_.replace(vfd, std::move(fresh));
}

Result<size_t> HvacClient::pread(int vfd, void* buf, size_t count,
                                 uint64_t offset) {
  trace::Span span("client.pread", count);
  StallScope stall;
  return pread_attempt(vfd, buf, count, offset, /*recoveries=*/0);
}

Result<size_t> HvacClient::pread_attempt(int vfd, void* buf, size_t count,
                                         uint64_t offset, int recoveries) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kRead));
  HVAC_ASSIGN_OR_RETURN(core::FdEntry entry, fds_.get(vfd));

  if (entry.segmented) {
    Result<size_t> n = pread_segmented(entry, buf, count, offset);
    stall_charge(core::StallBucket::kRemoteRpc);
    return n;
  }
  if (entry.fallback_pfs) {
    const ssize_t n = ::pread(entry.pfs_fd, buf, count,
                              static_cast<off_t>(offset));
    stall_charge(core::StallBucket::kPfsWait);
    if (n < 0) return Error::from_errno(errno, "pread(pfs)");
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.reads;
    stats_.bytes_read += static_cast<uint64_t>(n);
    return static_cast<size_t>(n);
  }

  auto* out = static_cast<uint8_t*>(buf);
  size_t total = 0;
  while (total < count) {
    const uint32_t chunk = static_cast<uint32_t>(
        std::min<size_t>(count - total, options_.read_chunk_bytes));
    const uint64_t chunk_offset = offset + total;

    // Read-ahead hit: the chunk is already in flight (or landed); take
    // its bytes instead of a fresh round trip. The whole issue batch
    // came back as one scatter frame — this chunk is one extent of it.
    // A transport/parse failure falls through to the synchronous path
    // below.
    if (options_.readahead_chunks > 0) {
      if (auto pending =
              readahead_take(vfd, chunk_offset, chunk, entry.size)) {
        const bool was_ready =
            pending->data.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready;
        const Result<Bytes>& ready = pending->data.get();
        // A batch that landed before the application asked is a
        // genuine local hit; blocking on one still in flight is
        // read-ahead backpressure.
        stall_charge(was_ready ? core::StallBucket::kLocalHit
                               : core::StallBucket::kBackpressure);
        if (ready.ok()) {
          auto view = rpc::decode_scatter(ready->data(), ready->size());
          if (view.ok() && pending->extent_index < view->extents.size()) {
            const auto& ext = view->extents[pending->extent_index];
            if (ext.offset == chunk_offset && ext.length <= chunk) {
              std::memcpy(out + total, ext.data, ext.length);
              total += ext.length;
              core::ReadAheadCounters::global().consumed.fetch_add(
                  1, std::memory_order_relaxed);
              {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.readahead_hits;
              }
              readahead_advance(vfd, entry, chunk_offset, ext.length,
                                chunk);
              if (ext.length < chunk) break;  // EOF
              continue;
            }
          }
        }
      }
    }

    // Positional reads are idempotent: transient transport errors get
    // a bounded retry with backoff before the recover_fd machinery
    // (replica fail-over / PFS) takes over. Path-mode fds (opened from
    // the meta cache, no remote fd) read by logical path via a
    // single-extent scatter request.
    WireWriter w;
    uint16_t opcode = proto::kRead;
    if (entry.path_mode) {
      opcode = proto::kReadScatter;
      w.put_u8(1);  // by path
      w.put_string(entry.logical_path);
      w.put_u32(1);
      w.put_u64(chunk_offset);
      w.put_u32(chunk);
    } else {
      w.put_u64(entry.remote_fd);
      w.put_u64(chunk_offset);
      w.put_u32(chunk);
    }
    Result<rpc::Payload> resp = channel(entry.server_index)
                                    .call_payload_idempotent(opcode,
                                                             w.bytes());
    if (!resp.ok()) {
      // The failed attempt's wall time (and the recovery below) is
      // retry/fail-over penalty, whatever the eventual serving path.
      stall_charge(core::StallBucket::kRetry);
      const ErrorCode code = resp.error().code;
      if (code != ErrorCode::kUnavailable && code != ErrorCode::kTimeout &&
          code != ErrorCode::kBadFd) {
        return resp.error();
      }
      meta_.invalidate(entry.logical_path);
      // The home server died (or restarted and lost the fd) while we
      // held it open: re-open via replicas/PFS and finish the read
      // there (fail-open extends to in-flight fds, §III-H). Recovery
      // is bounded: a server that accepts opens but fails every read
      // (e.g. a hostile frame bound) must not trap the client in an
      // open/fail loop, so the last attempt goes straight to the PFS.
      constexpr int kMaxRecoveries = 3;
      if (recoveries >= kMaxRecoveries) return resp.error();
      const bool force_pfs = recoveries + 1 == kMaxRecoveries;
      HVAC_RETURN_IF_ERROR(recover_fd(vfd, entry, force_pfs));
      stall_charge(core::StallBucket::kRetry);
      HVAC_ASSIGN_OR_RETURN(size_t rest,
                            pread_attempt(vfd, out + total, count - total,
                                          chunk_offset, recoveries + 1));
      return total + rest;
    }
    stall_charge(core::StallBucket::kRemoteRpc);
    // Single copy: response buffer (pooled) -> caller's buffer.
    size_t got = 0;
    if (entry.path_mode) {
      HVAC_ASSIGN_OR_RETURN(
          rpc::ScatterView sv,
          rpc::decode_scatter(resp->data(), resp->size()));
      if (sv.extents.size() != 1 || sv.extents[0].length > chunk) {
        return Error(ErrorCode::kProtocol, "bad scatter response shape");
      }
      // A scatter extent may only come back short at EOF (the fd's
      // size came from the open-time stat or the packed index, both
      // authoritative for immutable files). Short mid-file means the
      // serving copy was cut — an eviction race or an injected fault —
      // so recover like a transport failure instead of handing the
      // application a truncated sample.
      if (sv.extents[0].length < chunk &&
          chunk_offset + sv.extents[0].length < entry.size) {
        meta_.invalidate(entry.logical_path);
        constexpr int kMaxRecoveries = 3;
        if (recoveries >= kMaxRecoveries) {
          return Error(ErrorCode::kUnavailable,
                       "short scatter read mid-file for " +
                           entry.logical_path);
        }
        const bool force_pfs = recoveries + 1 == kMaxRecoveries;
        HVAC_RETURN_IF_ERROR(recover_fd(vfd, entry, force_pfs));
        stall_charge(core::StallBucket::kRetry);
        HVAC_ASSIGN_OR_RETURN(
            size_t rest, pread_attempt(vfd, out + total, count - total,
                                       chunk_offset, recoveries + 1));
        return total + rest;
      }
      std::memcpy(out + total, sv.extents[0].data, sv.extents[0].length);
      got = sv.extents[0].length;
    } else {
      WireReader r(resp->data(), resp->size());
      HVAC_ASSIGN_OR_RETURN(WireReader::BlobView data, r.get_blob_view());
      std::memcpy(out + total, data.data, data.size);
      got = data.size;
    }
    total += got;
    readahead_advance(vfd, entry, chunk_offset, got, chunk);
    if (got < chunk) break;  // EOF
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.reads;
  stats_.bytes_read += total;
  return total;
}

Result<size_t> HvacClient::read(int vfd, void* buf, size_t count) {
  // The fd table's logical offset is the single source of truth for
  // both remote and PFS-backed entries. (Kernel offset semantics on
  // the private pfs_fd would desynchronize when recover_fd swaps a
  // remote entry for a PFS one mid-stream: the recovering pread
  // delivers bytes without advancing the kernel offset.)
  HVAC_ASSIGN_OR_RETURN(core::FdEntry entry, fds_.get(vfd));
  HVAC_ASSIGN_OR_RETURN(size_t n, pread(vfd, buf, count, entry.offset));
  HVAC_RETURN_IF_ERROR(fds_.set_offset(vfd, entry.offset + n));
  return n;
}

Result<int64_t> HvacClient::lseek(int vfd, int64_t offset, int whence) {
  HVAC_ASSIGN_OR_RETURN(core::FdEntry entry, fds_.get(vfd));
  int64_t base = 0;
  switch (whence) {
    case SEEK_SET: base = 0; break;
    case SEEK_CUR: base = static_cast<int64_t>(entry.offset); break;
    case SEEK_END: base = static_cast<int64_t>(entry.size); break;
    default:
      return Error(ErrorCode::kInvalidArgument, "bad whence");
  }
  const int64_t target = base + offset;
  if (target < 0) {
    return Error(ErrorCode::kInvalidArgument, "negative seek");
  }
  HVAC_RETURN_IF_ERROR(fds_.set_offset(vfd, static_cast<uint64_t>(target)));
  return target;
}

Status HvacClient::close(int vfd) {
  trace::Span span("client.close");
  HVAC_ASSIGN_OR_RETURN(core::FdEntry entry, fds_.erase(vfd));
  readahead_drop(vfd);
  // Segmented and path-mode fds never opened anything remotely.
  if (entry.segmented || entry.path_mode) return Status::Ok();
  if (entry.fallback_pfs) {
    if (entry.writable && ::fsync(entry.pfs_fd) != 0) {
      const Error e = Error::from_errno(errno, "fsync(pfs)");
      ::close(entry.pfs_fd);
      return e;
    }
    if (::close(entry.pfs_fd) != 0) {
      return Error::from_errno(errno, "close(pfs)");
    }
    return Status::Ok();
  }
  if (entry.writable) {
    // close is a durability barrier on the write path: the server
    // commits the journal (and drains to the PFS at level "pfs")
    // before dropping the handle, so this failure IS surfaced.
    WireWriter w;
    w.put_u64(entry.remote_fd);
    w.put_u8(options_.write_durability);
    HVAC_ASSIGN_OR_RETURN(
        Bytes resp, channel(entry.server_index).call(proto::kWriteClose, w));
    (void)resp;
    return Status::Ok();
  }
  // Out-of-band teardown RPC (paper §III-D step 8). Failure here is
  // non-fatal — the server GCs fds when the connection drops.
  WireWriter w;
  w.put_u64(entry.remote_fd);
  Result<Bytes> resp = channel(entry.server_index).call(proto::kClose, w);
  if (!resp.ok() && resp.error().code != ErrorCode::kUnavailable) {
    return resp.error();
  }
  return Status::Ok();
}

// ---- checkpoint write path ------------------------------------------------

Result<int> HvacClient::open_write(const std::string& path, bool trunc) {
  trace::Span span("client.open_write");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.opens;
  }
  HVAC_ASSIGN_OR_RETURN(std::string logical, logical_path(path));
  // A write invalidates whatever the read path remembered or cached
  // about this file.
  meta_.invalidate(logical);

  const uint32_t server = placement_.home(logical);
  WireWriter w;
  w.put_string(logical);
  w.put_u8(trunc ? 1 : 0);
  Result<Bytes> resp = channel(server).call(proto::kWriteOpen, w);
  if (resp.ok()) {
    WireReader r(*resp);
    HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(uint8_t mode, r.get_u8());
    (void)mode;  // server-side routing detail; the fd API is identical
    core::FdEntry entry;
    entry.logical_path = logical;
    entry.server_index = server;
    entry.remote_fd = remote_fd;
    entry.writable = true;
    const int vfd = fds_.insert(std::move(entry));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.remote_opens;
    return vfd;
  }
  // Fail open on transport errors only: a real error from a healthy
  // server (bad path etc.) is final. Mid-file writes do NOT fail over
  // (bytes already acked to a dead server would silently vanish from
  // the copy), so the choice of backing is made once, here.
  if (resp.error().code != ErrorCode::kUnavailable &&
      resp.error().code != ErrorCode::kTimeout) {
    return resp.error();
  }
  if (!options_.allow_pfs_fallback) return resp.error();
  HVAC_LOG_INFO("write falling back to PFS for " << path);
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  if (trunc) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Error::from_errno(errno, "open " + path);
  core::FdEntry entry;
  entry.logical_path = path;
  entry.fallback_pfs = true;
  entry.pfs_fd = fd;
  entry.writable = true;
  const int vfd = fds_.insert(std::move(entry));
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.fallback_write_opens;
  return vfd;
}

Result<size_t> HvacClient::pwrite(int vfd, const void* buf, size_t count,
                                  uint64_t offset) {
  trace::Span span("client.write", count);
  HVAC_ASSIGN_OR_RETURN(core::FdEntry entry, fds_.get(vfd));
  if (!entry.writable) {
    return Error(ErrorCode::kInvalidArgument, "fd not open for writing");
  }
  const auto* src = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  if (entry.fallback_pfs) {
    while (done < count) {
      const ssize_t n = ::pwrite(entry.pfs_fd, src + done, count - done,
                                 static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return Error::from_errno(errno, "pwrite(pfs)");
      }
      done += static_cast<size_t>(n);
    }
  } else {
    // Chunk to the RPC frame cap. A chunk is idempotent (same bytes,
    // same offset), so transport retries are safe.
    while (done < count) {
      const uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
          count - done, options_.read_chunk_bytes));
      WireWriter w;
      w.put_u64(entry.remote_fd);
      w.put_u64(offset + done);
      w.put_blob(src + done, chunk);
      HVAC_ASSIGN_OR_RETURN(
          Bytes resp,
          channel(entry.server_index).call_idempotent(proto::kWrite, w));
      WireReader r(resp);
      HVAC_ASSIGN_OR_RETURN(uint32_t written, r.get_u32());
      if (written == 0) break;
      done += written;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.writes;
  stats_.bytes_written += done;
  return done;
}

Result<size_t> HvacClient::write(int vfd, const void* buf, size_t count) {
  HVAC_ASSIGN_OR_RETURN(core::FdEntry entry, fds_.get(vfd));
  if (!entry.writable) {
    return Error(ErrorCode::kInvalidArgument, "fd not open for writing");
  }
  // Reserve [offset, offset+count) up front so concurrent write()s on
  // one vfd land at disjoint offsets (write(2)'s kernel-atomic offset
  // update); a read-pwrite-set sequence would let two threads write
  // the same range and lose an advance.
  HVAC_ASSIGN_OR_RETURN(uint64_t offset, fds_.reserve_offset(vfd, count));
  Result<size_t> n = pwrite(vfd, buf, count, offset);
  const size_t done = n.ok() ? *n : 0;
  if (done < count) {
    // Short or failed write: give back the unused tail of the
    // reservation when no later writer has built on top of it.
    (void)fds_.rewind_offset(vfd, offset + count, offset + done);
  }
  return n;
}

Status HvacClient::fsync(int vfd) {
  trace::Span span("client.fsync");
  HVAC_ASSIGN_OR_RETURN(core::FdEntry entry, fds_.get(vfd));
  if (!entry.writable) {
    return Error(ErrorCode::kInvalidArgument, "fd not open for writing");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.fsyncs;
  }
  if (entry.fallback_pfs) {
    if (::fsync(entry.pfs_fd) != 0) {
      return Error::from_errno(errno, "fsync(pfs)");
    }
    return Status::Ok();
  }
  WireWriter w;
  w.put_u64(entry.remote_fd);
  w.put_u8(options_.write_durability);
  // The barrier is idempotent — committing twice is harmless.
  HVAC_ASSIGN_OR_RETURN(
      Bytes resp,
      channel(entry.server_index).call_idempotent(proto::kFsync, w));
  (void)resp;
  return Status::Ok();
}

Result<uint64_t> HvacClient::stat_size(const std::string& path) {
  trace::Span span("client.stat");
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kStat));
  HVAC_ASSIGN_OR_RETURN(std::string logical, logical_path(path));
  // Packed sample: the index is authoritative for the size.
  if (std::optional<PackedCatalog::Resolved> packed = packed_lookup(logical)) {
    return packed->length;
  }
  if (std::optional<MetaEntry> meta = meta_lookup(logical)) {
    return meta->size;
  }
  WireWriter w;
  w.put_string(logical);
  const uint32_t server = placement_.home(logical);
  // stat is idempotent: transport failures are retried with backoff
  // (bounded, breaker-gated) before the PFS fallback takes over.
  Result<Bytes> resp = channel(server).call_idempotent(proto::kStat, w);
  if (!resp.ok()) {
    meta_.invalidate(logical);
    if (options_.allow_pfs_fallback) {
      return storage::file_size(path);
    }
    return resp.error();
  }
  WireReader r(*resp);
  HVAC_ASSIGN_OR_RETURN(uint64_t size, r.get_u64());
  // Trailing cached flag: new servers append it; its absence (an old
  // server) just means we cannot vouch for a cached copy.
  auto cached = r.get_u8();
  meta_.put(logical,
            MetaEntry{size, server, cached.ok() && *cached == 1});
  return size;
}

Status HvacClient::prefetch(const std::string& path) {
  HVAC_ASSIGN_OR_RETURN(std::string logical, logical_path(path));
  WireWriter w;
  w.put_string(logical);
  HVAC_ASSIGN_OR_RETURN(
      Bytes resp, channel(placement_.home(logical)).call(proto::kPrefetch, w));
  (void)resp;
  return Status::Ok();
}

Result<std::vector<uint8_t>> HvacClient::prefetch_batch_status(
    const std::vector<std::string>& logical_paths) {
  // Group by home server, then batch: one kPrefetchBatch call warms up
  // to kMaxPrefetchBatch files in a single round trip, and the batches
  // of different servers are in flight concurrently (Mercury-style
  // pipelining with far fewer frames than one call per file) over the
  // PERSISTENT async channels — the scheduler issues continuously, so
  // dialling per round would dominate.
  std::vector<uint8_t> statuses(logical_paths.size(),
                                proto::kPrefetchShed);
  std::unordered_map<uint32_t, std::vector<size_t>> by_server;
  for (size_t i = 0; i < logical_paths.size(); ++i) {
    by_server[placement_.home(logical_paths[i])].push_back(i);
  }
  struct Pending {
    std::future<Result<rpc::Bytes>> fut;
    std::vector<size_t> indices;  // into logical_paths / statuses
  };
  std::vector<Pending> pending;
  for (auto& [server, indices] : by_server) {
    for (size_t base = 0; base < indices.size();
         base += proto::kMaxPrefetchBatch) {
      const uint32_t n = static_cast<uint32_t>(std::min<size_t>(
          proto::kMaxPrefetchBatch, indices.size() - base));
      WireWriter w;
      w.put_u32(n);
      std::vector<size_t> sub(indices.begin() + base,
                              indices.begin() + base + n);
      for (const size_t idx : sub) w.put_string(logical_paths[idx]);
      pending.push_back(
          Pending{async_channel(server).call_async(proto::kPrefetchBatch,
                                                   w.bytes()),
                  std::move(sub)});
    }
  }
  for (Pending& p : pending) {
    Result<rpc::Bytes> resp = p.fut.get();
    // A dead server or open breaker reads as shed for the sub-batch:
    // retryable, never fatal (the demand path covers any sample the
    // warm-up misses).
    if (!resp.ok()) continue;
    WireReader r(*resp);
    auto n = r.get_u32();
    if (!n.ok() || *n != p.indices.size()) continue;
    for (const size_t idx : p.indices) {
      auto status = r.get_u8();
      if (!status.ok()) break;
      statuses[idx] = *status;
    }
  }
  return statuses;
}

Result<size_t> HvacClient::prefetch_many(
    const std::vector<std::string>& paths) {
  std::vector<std::string> remaining;
  remaining.reserve(paths.size());
  for (const auto& path : paths) {
    HVAC_ASSIGN_OR_RETURN(std::string logical, logical_path(path));
    remaining.push_back(std::move(logical));
  }
  // Shed answers mean the mover queue is full, not that the files are
  // unfetchable: back off and re-pace the shed tail a bounded number
  // of rounds instead of dropping warm-up on the floor.
  constexpr int kMaxRounds = 4;
  constexpr int kBackoffMs = 5;
  size_t warmed = 0;
  for (int round = 0; round < kMaxRounds && !remaining.empty(); ++round) {
    if (round > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kBackoffMs * round));
    }
    HVAC_ASSIGN_OR_RETURN(std::vector<uint8_t> statuses,
                          prefetch_batch_status(remaining));
    std::vector<std::string> shed;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (statuses[i] == proto::kPrefetchCached) {
        ++warmed;
      } else if (statuses[i] == proto::kPrefetchShed) {
        shed.push_back(std::move(remaining[i]));
      }
    }
    remaining = std::move(shed);
  }
  return warmed;
}

ClientStats HvacClient::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string stats_to_json(const ClientStats& s) {
  const BufferPool::Stats bp = BufferPool::global().stats();
  std::ostringstream o;
  o << "{\"opens\":" << s.opens << ",\"remote_opens\":" << s.remote_opens
    << ",\"fallback_opens\":" << s.fallback_opens
    << ",\"reads\":" << s.reads << ",\"bytes_read\":" << s.bytes_read
    << ",\"failovers\":" << s.failovers
    << ",\"writes\":" << s.writes
    << ",\"bytes_written\":" << s.bytes_written
    << ",\"fsyncs\":" << s.fsyncs
    << ",\"fallback_write_opens\":" << s.fallback_write_opens
    << ",\"read_ahead\":{\"issued\":" << s.readahead_issued
    << ",\"consumed\":" << s.readahead_hits
    << ",\"wasted\":" << s.readahead_wasted << "}"
    << ",\"buffer_pool\":{\"leases\":" << bp.hits + bp.misses + bp.unpooled
    << ",\"pool_hits\":" << bp.hits
    << ",\"fallback_allocs\":" << bp.misses + bp.unpooled
    << ",\"recycled\":" << bp.recycled << ",\"dropped\":" << bp.dropped
    << "}";
  const core::MetaCacheCounters& mc = core::MetaCacheCounters::global();
  o << ",\"meta_cache\":{\"hits\":" << s.meta_hits
    << ",\"misses\":" << s.meta_misses
    << ",\"expired\":" << mc.expired.load(std::memory_order_relaxed)
    << ",\"invalidated\":"
    << mc.invalidated.load(std::memory_order_relaxed) << "}";
  const core::PrefetchCounters& pf = core::PrefetchCounters::global();
  const core::LatencySnapshot paced = pf.paced_delay.snapshot();
  o << ",\"prefetch\":{\"planned\":"
    << pf.planned.load(std::memory_order_relaxed)
    << ",\"issued\":" << pf.issued.load(std::memory_order_relaxed)
    << ",\"completed\":" << pf.completed.load(std::memory_order_relaxed)
    << ",\"shed\":" << pf.shed.load(std::memory_order_relaxed)
    << ",\"late\":" << pf.late.load(std::memory_order_relaxed)
    << ",\"hit_after_prefetch\":"
    << pf.hit_after.load(std::memory_order_relaxed)
    << ",\"paced_batches\":" << paced.count
    << ",\"paced_delay_total_ns\":" << paced.total_ns << "}";
  const rpc::ResilienceCounters& rc = rpc::ResilienceCounters::global();
  o << ",\"resilience\":{\"breaker_opens\":"
    << rc.breaker_opens.load(std::memory_order_relaxed)
    << ",\"breaker_closes\":"
    << rc.breaker_closes.load(std::memory_order_relaxed)
    << ",\"breaker_probes\":"
    << rc.breaker_probes.load(std::memory_order_relaxed)
    << ",\"breaker_shed\":"
    << rc.breaker_shed.load(std::memory_order_relaxed)
    << ",\"retries\":" << rc.retries.load(std::memory_order_relaxed)
    << ",\"deadline_misses\":"
    << rc.deadline_misses.load(std::memory_order_relaxed)
    << ",\"faults_injected\":" << fault::total_injected() << "}";
  // Per-epoch stall attribution plus the shim's independent wall-time
  // measurement of the same reads — the telemetry CI leg asserts the
  // bucket sums reconcile with the latter within tolerance.
  const core::StallCounters& sc = core::StallCounters::global();
  o << ",\"stall\":{\"shim_reads\":"
    << sc.shim_reads.load(std::memory_order_relaxed)
    << ",\"shim_read_wall_ns\":"
    << sc.shim_read_wall_ns.load(std::memory_order_relaxed)
    << ",\"epochs\":[";
  const std::vector<core::StallEpochRow> stall = sc.snapshot();
  for (size_t i = 0; i < stall.size(); ++i) {
    const core::StallEpochRow& e = stall[i];
    if (i > 0) o << ",";
    o << "{\"epoch\":" << e.epoch << ",\"reads\":" << e.reads
      << ",\"total_ns\":" << e.total_ns
      << ",\"local_hit_ns\":" << e.local_hit_ns
      << ",\"remote_rpc_ns\":" << e.remote_rpc_ns
      << ",\"pfs_wait_ns\":" << e.pfs_wait_ns
      << ",\"backpressure_ns\":" << e.backpressure_ns
      << ",\"retry_ns\":" << e.retry_ns << "}";
  }
  o << "]}}";
  return o.str();
}

}  // namespace hvac::client
