#include "client/meta_cache.h"

#include "common/trace.h"
#include "core/metrics.h"
#include "rpc/health.h"  // steady_now_ms — shared monotonic time base

namespace hvac::client {

namespace {
core::MetaCacheCounters& counters() {
  return core::MetaCacheCounters::global();
}
}  // namespace

MetaCache::MetaCache(int64_t ttl_ms) : ttl_ms_(ttl_ms) {}

std::optional<MetaEntry> MetaCache::lookup(const std::string& logical) {
  if (!enabled()) return std::nullopt;
  const int64_t now = rpc::steady_now_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(logical);
  if (it == map_.end()) {
    counters().misses.fetch_add(1, std::memory_order_relaxed);
    trace::Span::event("meta.miss");
    return std::nullopt;
  }
  if (now >= it->second.expires_ms) {
    map_.erase(it);
    counters().expired.fetch_add(1, std::memory_order_relaxed);
    counters().misses.fetch_add(1, std::memory_order_relaxed);
    trace::Span::event("meta.expired");
    return std::nullopt;
  }
  counters().hits.fetch_add(1, std::memory_order_relaxed);
  trace::Span::event("meta.hit");
  return it->second.meta;
}

void MetaCache::put(const std::string& logical, const MetaEntry& entry) {
  if (!enabled()) return;
  const int64_t expires = rpc::steady_now_ms() + ttl_ms_;
  std::lock_guard<std::mutex> lock(mutex_);
  map_[logical] = Slot{entry, expires};
}

void MetaCache::invalidate(const std::string& logical) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_.erase(logical) > 0) {
    counters().invalidated.fetch_add(1, std::memory_order_relaxed);
  }
}

void MetaCache::invalidate_home(uint32_t home) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.meta.home == home) {
      it = map_.erase(it);
      counters().invalidated.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

size_t MetaCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

}  // namespace hvac::client
