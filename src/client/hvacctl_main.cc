// hvacctl — tiny operator CLI for a running HVAC allocation.
//
//   hvacctl [--timeout MS] ping    HOST:PORT[,HOST:PORT...]
//   hvacctl [--timeout MS] health  HOST:PORT[,HOST:PORT...] [--json]
//   hvacctl [--timeout MS] metrics HOST:PORT[,HOST:PORT...] [--json]
//                                  [--watch N]
//   hvacctl [--timeout MS] stat    HOST:PORT <relative-path>
//   hvacctl [--timeout MS] warm    HOST:PORT <relative-path>
//   hvacctl [--timeout MS] trace   HOST:PORT[,HOST:PORT...] [--chrome]
//   hvacctl [--timeout MS] top     HOST:PORT[,HOST:PORT...] [--json]
//                                  [--interval N] [--count N]
//   hvacctl pack    ROOT [--container-bytes N]
//   hvacctl gentree ROOT NUM_FILES MEAN_BYTES [--sigma S] [--seed N]
//                   [--manifest FILE]
//
// `pack` and `gentree` are offline dataset-ingest commands (no server
// involved): gentree materializes a deterministic synthetic small-file
// tree (writing an optional "<path> <size> <fnv64>" manifest in the
// intercept_target output format, for byte-level verification without
// the originals), and pack rolls a tree into .hvacpack/ container
// blobs plus the binary index the servers and clients resolve packed
// samples from (storage/packed_format.h).
//
// Talks the same RPC schema as the client library; useful for
// checking server health from a login node and for watching hit
// rates during a training run. `metrics` decodes the metrics frame
// v2 (handle-cache / buffer-pool / read-ahead / resilience sections
// and per-op latency histograms) and degrades to the seven v1
// counters against an old server; --json emits one machine-readable
// document per sample (the CI bench gate consumes this), --watch N
// resamples every N seconds until interrupted. `health` pings each
// endpoint, reports the round-trip time and the server's fault-domain
// counters, and exits nonzero when any endpoint is unreachable.
//
// Every RPC is bounded by --timeout (default 2000 ms, applied to
// connect, per-recv and the whole call) so a dead or wedged server
// cannot hang the CLI.
// `trace` drains each server's span rings (servers run with
// HVAC_TRACE=1) and prints a per-span table, or with --chrome a
// trace.json loadable in chrome://tracing / ui.perfetto.dev. The
// dump is consuming: each span is returned to exactly one poller.
#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/hash.h"
#include "core/metrics_frame.h"
#include "core/timeseries.h"
#include "core/trace_wire.h"
#include "rpc/health.h"
#include "rpc/rpc_client.h"
#include "rpc/wire.h"
#include "server/hvac_proto.h"
#include "storage/packed_format.h"
#include "workload/dataset_spec.h"
#include "workload/file_tree.h"

using namespace hvac;
using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {

// Short, uniform bound for an interactive tool: a dead server should
// cost one timeout, not the library's 30 s default.
int g_timeout_ms = 2000;

rpc::RpcClientOptions cli_options() {
  rpc::RpcClientOptions o;
  o.connect_timeout_ms = g_timeout_ms;
  o.recv_timeout_ms = g_timeout_ms;
  o.call_timeout_ms = g_timeout_ms;
  o.max_retries = 0;  // operators prefer a fast error over a retry
  return o;
}

int cmd_ping(const std::string& csv) {
  int failures = 0;
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
    const auto resp = client.call(proto::kPing, Bytes{});
    std::printf("%-24s %s\n", endpoint.c_str(),
                resp.ok() ? "OK" : resp.error().to_string().c_str());
    if (!resp.ok()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int cmd_health(const std::string& csv, bool json) {
  int failures = 0;
  std::string json_rows;
  if (!json) {
    std::printf("%-24s %-6s %8s  %s\n", "endpoint", "state", "rtt_us",
                "resilience");
  }
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
    const int64_t t0 = rpc::steady_now_us();
    const auto ping = client.call(proto::kPing, Bytes{});
    const int64_t rtt_us = rpc::steady_now_us() - t0;
    core::ResilienceStats rs;
    bool have_stats = false;
    if (ping.ok()) {
      const auto resp = client.call(proto::kMetrics, Bytes{});
      if (resp.ok()) {
        if (const auto frame = core::MetricsFrame::decode(*resp);
            frame.ok() && frame->version >= 2) {
          rs = frame->resilience;
          have_stats = true;
        }
      }
    }
    if (json) {
      if (!json_rows.empty()) json_rows += ",";
      json_rows += "{\"endpoint\":\"" + endpoint + "\",\"up\":" +
                   (ping.ok() ? "true" : "false") +
                   ",\"rtt_us\":" + std::to_string(rtt_us);
      if (have_stats) {
        json_rows +=
            ",\"breaker_opens\":" + std::to_string(rs.breaker_opens) +
            ",\"breaker_shed\":" + std::to_string(rs.breaker_shed) +
            ",\"retries\":" + std::to_string(rs.retries) +
            ",\"deadline_misses\":" + std::to_string(rs.deadline_misses) +
            ",\"server_shed\":" + std::to_string(rs.server_shed) +
            ",\"mover_rejects\":" + std::to_string(rs.mover_rejects) +
            ",\"drains\":" + std::to_string(rs.drains) +
            ",\"faults_injected\":" + std::to_string(rs.faults_injected);
      }
      json_rows += "}";
    } else if (!ping.ok()) {
      std::printf("%-24s %-6s %8s  %s\n", endpoint.c_str(), "DOWN", "-",
                  ping.error().to_string().c_str());
    } else if (have_stats) {
      std::printf("%-24s %-6s %8ld  opens=%lu shed=%lu+%lu retries=%lu "
                  "deadline_misses=%lu mover_rejects=%lu drains=%lu\n",
                  endpoint.c_str(), "UP", (long)rtt_us,
                  (unsigned long)rs.breaker_opens,
                  (unsigned long)rs.breaker_shed,
                  (unsigned long)rs.server_shed, (unsigned long)rs.retries,
                  (unsigned long)rs.deadline_misses,
                  (unsigned long)rs.mover_rejects,
                  (unsigned long)rs.drains);
    } else {
      std::printf("%-24s %-6s %8ld  (v1 server, no resilience section)\n",
                  endpoint.c_str(), "UP", (long)rtt_us);
    }
    if (!ping.ok()) ++failures;
  }
  if (json) {
    std::printf("{\"endpoints\":[%s],\"failures\":%d}\n", json_rows.c_str(),
                failures);
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

void print_metrics_row(const std::string& endpoint,
                       const core::MetricsFrame& f) {
  const auto& m = f.cache;
  std::printf("%-24s %10lu %10lu %8lu %10lu %12lu %12lu %8lu %6lu\n",
              endpoint.c_str(), (unsigned long)m.hits,
              (unsigned long)m.misses, (unsigned long)m.dedup_waits,
              (unsigned long)m.evictions, (unsigned long)m.bytes_from_cache,
              (unsigned long)m.bytes_from_pfs, (unsigned long)m.pfs_fallbacks,
              (unsigned long)f.open_fds);
  if (f.version < 2) return;
  std::printf("  handle_cache hits=%lu misses=%lu open=%lu pinned=%lu "
              "deferred_closes=%lu\n",
              (unsigned long)f.handle_cache.hits,
              (unsigned long)f.handle_cache.misses,
              (unsigned long)f.handle_cache.open,
              (unsigned long)f.handle_cache.pinned,
              (unsigned long)f.handle_cache.deferred_closes);
  std::printf("  buffer_pool  leases=%lu pool_hits=%lu fallback_allocs=%lu\n",
              (unsigned long)f.buffer_pool.leases,
              (unsigned long)f.buffer_pool.pool_hits,
              (unsigned long)f.buffer_pool.fallback_allocs);
  std::printf("  read_ahead   issued=%lu consumed=%lu wasted=%lu\n",
              (unsigned long)f.readahead.issued,
              (unsigned long)f.readahead.consumed,
              (unsigned long)f.readahead.wasted);
  const auto& rs = f.resilience;
  std::printf("  resilience   breaker(opens=%lu closes=%lu probes=%lu "
              "shed=%lu) retries=%lu deadline_misses=%lu server_shed=%lu "
              "mover_rejects=%lu drains=%lu drained=%lu faults=%lu\n",
              (unsigned long)rs.breaker_opens,
              (unsigned long)rs.breaker_closes,
              (unsigned long)rs.breaker_probes,
              (unsigned long)rs.breaker_shed, (unsigned long)rs.retries,
              (unsigned long)rs.deadline_misses,
              (unsigned long)rs.server_shed,
              (unsigned long)rs.mover_rejects, (unsigned long)rs.drains,
              (unsigned long)rs.drained_requests,
              (unsigned long)rs.faults_injected);
  // Present only on servers with the sharded-reactor core (section 9);
  // an old binary's frame simply has no rows here.
  for (size_t i = 0; i < f.reactor.reactors.size(); ++i) {
    const auto& rr = f.reactor.reactors[i];
    std::printf("  reactor %-4zu conns=%lu requests=%lu steals=%lu "
                "shed=%lu\n",
                i, (unsigned long)rr.conns, (unsigned long)rr.requests,
                (unsigned long)rr.steals, (unsigned long)rr.shed);
  }
  for (const auto& [op, snap] : f.op_latency) {
    std::printf("  latency %-12s n=%-8lu p50=%.1fus p99=%.1fus\n",
                core::op_name(op).c_str(), (unsigned long)snap.count,
                snap.percentile_ns(50) / 1e3, snap.percentile_ns(99) / 1e3);
  }
}

// Caller-side rate tracking for `metrics --watch`: remembers the
// previous scrape per endpoint and prints delta/interval next to the
// cumulative counters. (For server-cadence rates with no caller state
// see `hvacctl top`, which reads the kTimeSeries ring instead.)
struct RateState {
  bool have = false;
  uint64_t reads = 0;  // hits + misses at the previous scrape
  uint64_t bytes = 0;  // cache + pfs bytes at the previous scrape
  int64_t t_us = 0;
};
using RateMap = std::unordered_map<std::string, RateState>;

int metrics_once(const std::vector<std::string>& endpoints, bool json,
                 RateMap* rates) {
  int failures = 0;
  core::MetricsFrame aggregate;
  bool first = true;
  std::string json_endpoints;
  if (!json) {
    std::printf("%-24s %10s %10s %8s %10s %12s %12s %8s %6s\n", "endpoint",
                "hits", "misses", "dedup", "evictions", "cache_bytes",
                "pfs_bytes", "fallbk", "fds");
  }
  for (const auto& endpoint : endpoints) {
    rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
    const auto resp = client.call(proto::kMetrics, Bytes{});
    if (!resp.ok()) {
      if (!json) {
        std::printf("%-24s %s\n", endpoint.c_str(),
                    resp.error().to_string().c_str());
      } else {
        std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                     resp.error().to_string().c_str());
      }
      ++failures;
      continue;
    }
    const auto frame = core::MetricsFrame::decode(*resp);
    if (!frame.ok()) {
      std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                   frame.error().to_string().c_str());
      ++failures;
      continue;
    }
    double reads_per_s = 0, mb_per_s = 0;
    bool have_rate = false;
    if (rates != nullptr) {
      RateState& st = (*rates)[endpoint];
      const int64_t now_us = rpc::steady_now_us();
      const uint64_t reads = frame->cache.hits + frame->cache.misses;
      const uint64_t bytes =
          frame->cache.bytes_from_cache + frame->cache.bytes_from_pfs;
      if (st.have && now_us > st.t_us) {
        const double dt = double(now_us - st.t_us) / 1e6;
        // Counters are monotonic; a restarted server reads as zero
        // progress for one interval rather than a negative rate.
        reads_per_s = reads >= st.reads ? double(reads - st.reads) / dt : 0;
        mb_per_s = bytes >= st.bytes ? double(bytes - st.bytes) / dt / 1e6
                                     : 0;
        have_rate = true;
      }
      st = RateState{true, reads, bytes, now_us};
    }
    if (json) {
      if (!json_endpoints.empty()) json_endpoints += ",";
      json_endpoints +=
          "{\"endpoint\":\"" + endpoint + "\",\"metrics\":" +
          frame->to_json() + "}";
      if (have_rate) {
        char rate[96];
        std::snprintf(rate, sizeof(rate),
                      ",\"rates\":{\"reads_per_s\":%.3f,\"mb_per_s\":%.3f}",
                      reads_per_s, mb_per_s);
        json_endpoints.insert(json_endpoints.size() - 1, rate);
      }
    } else {
      print_metrics_row(endpoint, *frame);
      if (have_rate) {
        std::printf("  rates        %.1f reads/s  %.2f MB/s\n", reads_per_s,
                    mb_per_s);
      }
    }
    if (first) {
      aggregate = *frame;
      first = false;
    } else {
      aggregate.merge(*frame);
    }
  }
  if (json) {
    std::printf("{\"endpoints\":[%s],\"aggregate\":%s}\n",
                json_endpoints.c_str(), aggregate.to_json().c_str());
  } else if (endpoints.size() > 1 && !first) {
    print_metrics_row("TOTAL", aggregate);
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

volatile std::sig_atomic_t g_interrupted = 0;

void on_interrupt(int) { g_interrupted = 1; }

// Naps in short slices until the absolute deadline so SIGINT stays
// responsive; returns false when interrupted.
bool wait_until_us(int64_t deadline_us) {
  for (;;) {
    if (g_interrupted) return false;
    const int64_t now = rpc::steady_now_us();
    if (now >= deadline_us) return true;
    ::usleep(static_cast<useconds_t>(
        std::min<int64_t>(deadline_us - now, 200'000)));
  }
}

int cmd_metrics(const std::string& csv, bool json, int watch_seconds) {
  const std::vector<std::string> endpoints = split_csv(csv);
  RateMap rates;
  if (watch_seconds > 0) {
    // Watch mode is routinely piped (`hvacctl metrics --watch | head`)
    // and interrupted. SIGPIPE would kill us mid-printf with a noisy
    // 141; instead ignore it and treat a write failure as a normal
    // end-of-watch. SIGINT just stops the loop cleanly (exit 0).
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGPIPE, SIG_IGN);
  }
  // Absolute-deadline pacing: sleep-after-work would drift by the
  // scrape time every iteration, so the Nth sample lands at
  // t0 + N*interval instead of slowly walking away from it.
  int64_t next_us = rpc::steady_now_us();
  for (;;) {
    const int rc =
        metrics_once(endpoints, json, watch_seconds > 0 ? &rates : nullptr);
    if (watch_seconds <= 0) return rc;
    if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) return 0;
    next_us += int64_t(watch_seconds) * 1'000'000;
    if (const int64_t now = rpc::steady_now_us(); next_us < now) {
      next_us = now;  // a scrape slower than the interval skips, not bunches
    }
    if (!wait_until_us(next_us)) return 0;
  }
}

int cmd_trace(const std::string& csv, bool chrome) {
  int failures = 0;
  std::vector<core::EndpointSpans> endpoints;
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
    const auto resp = client.call(proto::kTraceDump, Bytes{});
    if (!resp.ok()) {
      std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                   resp.error().to_string().c_str());
      ++failures;
      continue;
    }
    // The v2 dump carries the endpoint's (REALTIME, MONOTONIC) sample;
    // the Chrome export uses it to land every endpoint on one common
    // t=0. A v1 peer decodes with an invalid clock and keeps a private
    // zero.
    core::SpanDumpClock clock;
    auto spans = core::decode_spans(*resp, &clock);
    if (!spans.ok()) {
      std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                   spans.error().to_string().c_str());
      ++failures;
      continue;
    }
    endpoints.push_back(
        core::EndpointSpans{endpoint, std::move(*spans), clock});
  }
  if (chrome) {
    std::printf("%s\n", core::spans_to_chrome_json(endpoints).c_str());
  } else {
    std::printf("%-24s %-16s %9s %9s %-18s %10s %10s %8s\n", "endpoint",
                "trace", "span", "parent", "name", "t_ms", "dur_ms", "arg");
    for (const auto& ep : endpoints) {
      if (ep.spans.empty()) continue;
      uint64_t min_start = UINT64_MAX;
      for (const auto& s : ep.spans) {
        min_start = std::min(min_start, s.start_ns);
      }
      for (const auto& s : ep.spans) {
        std::printf("%-24s %016" PRIx64 " %9u %9u %-18s %10.3f %10.3f "
                    "%8" PRIu64 "\n",
                    ep.name.c_str(), s.trace_id, s.span_id, s.parent_id,
                    s.name.c_str(), double(s.start_ns - min_start) / 1e6,
                    double(s.dur_ns) / 1e6, s.arg);
      }
    }
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

int cmd_path_op(uint16_t opcode, const std::string& endpoint,
                const std::string& path) {
  rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
  WireWriter w;
  w.put_string(path);
  const auto resp = client.call(opcode, w.bytes());
  if (!resp.ok()) {
    std::fprintf(stderr, "%s\n", resp.error().to_string().c_str());
    return 1;
  }
  WireReader r(*resp);
  if (opcode == proto::kStat) {
    const auto size = r.get_u64();
    std::printf("%s: %lu bytes\n", path.c_str(),
                (unsigned long)size.value_or(0));
  } else {
    const auto cached = r.get_u8();
    std::printf("%s: %s\n", path.c_str(),
                cached.ok() && *cached == 1 ? "cached"
                                            : "pfs-fallback");
  }
  return 0;
}

int cmd_pack(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "pack needs ROOT\n");
    return 2;
  }
  storage::PackOptions options;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--container-bytes" && i + 1 < args.size()) {
      options.container_bytes =
          static_cast<uint64_t>(std::atoll(args[++i].c_str()));
    } else {
      std::fprintf(stderr, "unknown pack flag %s\n", args[i].c_str());
      return 2;
    }
  }
  const auto report = storage::pack_tree(args[1], options);
  if (!report.ok()) {
    std::fprintf(stderr, "pack: %s\n", report.error().to_string().c_str());
    return 1;
  }
  std::printf("packed %lu files (%lu bytes) into %lu containers under "
              "%s/%s\n",
              (unsigned long)report->files, (unsigned long)report->bytes,
              (unsigned long)report->containers, args[1].c_str(),
              storage::packed_dir_name().c_str());
  return 0;
}

int cmd_gentree(const std::vector<std::string>& args) {
  if (args.size() < 4) {
    std::fprintf(stderr, "gentree needs ROOT NUM_FILES MEAN_BYTES\n");
    return 2;
  }
  const std::string& root = args[1];
  const uint64_t num_files =
      static_cast<uint64_t>(std::atoll(args[2].c_str()));
  const uint64_t mean_bytes =
      static_cast<uint64_t>(std::atoll(args[3].c_str()));
  double sigma = 0.35;
  uint64_t seed = 0;
  std::string manifest_path;
  for (size_t i = 4; i < args.size(); ++i) {
    if (args[i] == "--sigma" && i + 1 < args.size()) {
      sigma = std::atof(args[++i].c_str());
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = static_cast<uint64_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--manifest" && i + 1 < args.size()) {
      manifest_path = args[++i];
    } else {
      std::fprintf(stderr, "unknown gentree flag %s\n", args[i].c_str());
      return 2;
    }
  }
  if (num_files == 0 || mean_bytes == 0) {
    std::fprintf(stderr, "gentree: NUM_FILES and MEAN_BYTES must be > 0\n");
    return 2;
  }
  const workload::DatasetSpec spec =
      workload::synthetic_small(num_files, mean_bytes, sigma);
  const auto tree = workload::generate_tree(root, spec, seed);
  if (!tree.ok()) {
    std::fprintf(stderr, "gentree: %s\n", tree.error().to_string().c_str());
    return 1;
  }
  if (!manifest_path.empty()) {
    FILE* m = ::fopen(manifest_path.c_str(), "w");
    if (m == nullptr) {
      std::fprintf(stderr, "gentree: cannot write %s\n",
                   manifest_path.c_str());
      return 1;
    }
    for (size_t i = 0; i < tree->relative_paths.size(); ++i) {
      const std::string& rel = tree->relative_paths[i];
      const std::vector<uint8_t> data =
          workload::expected_contents(rel, tree->sizes[i]);
      const uint64_t h = fnv1a64(std::string_view(
          reinterpret_cast<const char*>(data.data()), data.size()));
      std::fprintf(m, "%s/%s %" PRIu64 " %016" PRIx64 "\n", root.c_str(),
                   rel.c_str(), tree->sizes[i], h);
    }
    if (::fclose(m) != 0) {
      std::fprintf(stderr, "gentree: write failed for %s\n",
                   manifest_path.c_str());
      return 1;
    }
  }
  std::printf("generated %zu files (%lu bytes) under %s\n",
              tree->relative_paths.size(),
              (unsigned long)tree->total_bytes, root.c_str());
  return 0;
}

// Write-back health: journal depth, flush-queue state, the age of the
// oldest unflushed file and the last restart's replay summary — the
// operator's view of "would a crash right now lose anything" (no: the
// journal covers it) and "how far behind is the PFS".
int cmd_journal(const std::string& csv, bool json) {
  int failures = 0;
  std::string json_rows;
  if (!json) {
    std::printf("%-24s %10s %12s %8s %9s %8s  %s\n", "endpoint", "journal",
                "dirty", "queue", "lag_ms", "flushed", "last_replay");
  }
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
    const auto resp = client.call(proto::kMetrics, Bytes{});
    core::WriteBackStats wb;
    bool have = false;
    if (resp.ok()) {
      if (const auto frame = core::MetricsFrame::decode(*resp);
          frame.ok() && frame->version >= 2) {
        wb = frame->write_back;
        have = true;
      }
    }
    if (json) {
      if (!json_rows.empty()) json_rows += ",";
      json_rows += "{\"endpoint\":\"" + endpoint + "\",\"up\":" +
                   (have ? "true" : "false");
      if (have) {
        json_rows +=
            ",\"journal_records\":" + std::to_string(wb.journal_records) +
            ",\"journal_bytes\":" + std::to_string(wb.journal_bytes) +
            ",\"dirty_files\":" + std::to_string(wb.dirty_files) +
            ",\"dirty_bytes\":" + std::to_string(wb.dirty_bytes) +
            ",\"flush_queue_depth\":" +
            std::to_string(wb.flush_queue_depth) +
            ",\"flush_inflight\":" + std::to_string(wb.flush_inflight) +
            ",\"flush_lag_ms\":" + std::to_string(wb.flush_lag_ms) +
            ",\"flushed_files\":" + std::to_string(wb.flushed_files) +
            ",\"flush_retries\":" + std::to_string(wb.flush_retries) +
            ",\"flush_failures\":" + std::to_string(wb.flush_failures) +
            ",\"write_through_sheds\":" +
            std::to_string(wb.write_through_sheds) +
            ",\"replay\":{\"writes\":" + std::to_string(wb.replay_writes) +
            ",\"bytes\":" + std::to_string(wb.replay_bytes) +
            ",\"truncated_bytes\":" +
            std::to_string(wb.replay_truncated_bytes) +
            ",\"dirty_files\":" + std::to_string(wb.replay_dirty_files) +
            "}";
      }
      json_rows += "}";
    } else if (!have) {
      std::printf("%-24s %s\n", endpoint.c_str(),
                  resp.ok() ? "(no write-back section)"
                            : resp.error().to_string().c_str());
    } else {
      char replay[96];
      std::snprintf(replay, sizeof(replay),
                    "%lu writes/%lu bytes, %lu dirty, %lu torn",
                    (unsigned long)wb.replay_writes,
                    (unsigned long)wb.replay_bytes,
                    (unsigned long)wb.replay_dirty_files,
                    (unsigned long)wb.replay_truncated_bytes);
      std::printf("%-24s %7lur/%luB %6luf/%luB %8lu %9lu %8lu  %s\n",
                  endpoint.c_str(), (unsigned long)wb.journal_records,
                  (unsigned long)wb.journal_bytes,
                  (unsigned long)wb.dirty_files,
                  (unsigned long)wb.dirty_bytes,
                  (unsigned long)(wb.flush_queue_depth + wb.flush_inflight),
                  (unsigned long)wb.flush_lag_ms,
                  (unsigned long)wb.flushed_files, replay);
    }
    if (!have) ++failures;
  }
  if (json) {
    std::printf("{\"endpoints\":[%s],\"failures\":%d}\n", json_rows.c_str(),
                failures);
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

// Clairvoyant-prefetch health: how much of the plan has been warmed,
// how much the mover shed or deduplicated, and whether bandwidth
// pacing actually stalled anything — the operator's view of "is
// warm-up ahead of training, and is it stampeding the PFS".
int cmd_prefetch(const std::string& csv, bool json) {
  int failures = 0;
  std::string json_rows;
  if (!json) {
    std::printf("%-24s %8s %8s %9s %6s %6s %9s %8s %10s\n", "endpoint",
                "planned", "issued", "completed", "shed", "late",
                "hit_after", "deduped", "paced_ms");
  }
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
    const auto resp = client.call(proto::kMetrics, Bytes{});
    core::PrefetchStats pf;
    bool have = false;
    if (resp.ok()) {
      if (const auto frame = core::MetricsFrame::decode(*resp);
          frame.ok() && frame->version >= 2) {
        pf = frame->prefetch;
        have = true;
      }
    }
    if (json) {
      if (!json_rows.empty()) json_rows += ",";
      json_rows += "{\"endpoint\":\"" + endpoint + "\",\"up\":" +
                   (have ? "true" : "false");
      if (have) {
        json_rows +=
            ",\"planned\":" + std::to_string(pf.planned) +
            ",\"issued\":" + std::to_string(pf.issued) +
            ",\"completed\":" + std::to_string(pf.completed) +
            ",\"shed\":" + std::to_string(pf.shed) +
            ",\"late\":" + std::to_string(pf.late) +
            ",\"hit_after_prefetch\":" +
            std::to_string(pf.hit_after_prefetch) +
            ",\"deduped\":" + std::to_string(pf.deduped) +
            ",\"dedup_inflight\":" + std::to_string(pf.dedup_inflight) +
            ",\"paced_delay\":{\"batches\":" +
            std::to_string(pf.paced_delay.count) + ",\"total_ns\":" +
            std::to_string(pf.paced_delay.total_ns) + "}";
      }
      json_rows += "}";
    } else if (!have) {
      std::printf("%-24s %s\n", endpoint.c_str(),
                  resp.ok() ? "(no prefetch section)"
                            : resp.error().to_string().c_str());
    } else {
      std::printf("%-24s %8lu %8lu %9lu %6lu %6lu %9lu %8lu %10.1f\n",
                  endpoint.c_str(), (unsigned long)pf.planned,
                  (unsigned long)pf.issued, (unsigned long)pf.completed,
                  (unsigned long)pf.shed, (unsigned long)pf.late,
                  (unsigned long)pf.hit_after_prefetch,
                  (unsigned long)pf.deduped,
                  double(pf.paced_delay.total_ns) / 1e6);
    }
    if (!have) ++failures;
  }
  if (json) {
    std::printf("{\"endpoints\":[%s],\"failures\":%d}\n", json_rows.c_str(),
                failures);
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

// ---- top: live dashboard off the server-side time-series ring -------------
//
// Unlike `metrics --watch` (caller-side diffing), every rate here
// comes from the collector's own per-interval deltas (kTimeSeries),
// so two operators watching the same server see the same numbers and
// a freshly started top shows rates immediately.

struct TopRates {
  bool have = false;
  double reads_per_s = 0;
  double hit_pct = 0;
  double cache_mb_s = 0;   // served from NVMe cache
  double pfs_mb_s = 0;     // pulled from the PFS (misses + movers)
  uint64_t flush_lag_ms = 0;
  double pf_hit_pct = 0;   // hit-after-prefetch / (hit-after + late)
  double read_p99_us = 0;
};

TopRates rates_from(const core::TimeSeriesFrame& ts) {
  TopRates r;
  if (ts.samples.empty()) return r;
  const core::TimeSeriesSample& s = ts.samples.back();
  const core::MetricsFrame& d = s.delta;
  const double dt = std::max<uint32_t>(1, s.interval_ms) / 1e3;
  const uint64_t reads = d.cache.hits + d.cache.misses;
  r.have = true;
  r.reads_per_s = double(reads) / dt;
  r.hit_pct = reads > 0 ? 100.0 * double(d.cache.hits) / double(reads) : 0;
  r.cache_mb_s = double(d.cache.bytes_from_cache) / dt / 1e6;
  r.pfs_mb_s = double(d.cache.bytes_from_pfs) / dt / 1e6;
  r.flush_lag_ms = d.write_back.flush_lag_ms;  // gauge: point-in-time
  const uint64_t pf_outcomes =
      d.prefetch.hit_after_prefetch + d.prefetch.late;
  r.pf_hit_pct =
      pf_outcomes > 0
          ? 100.0 * double(d.prefetch.hit_after_prefetch) / pf_outcomes
          : 0;
  // p99 of the busiest read-family op this interval (the delta
  // histogram covers exactly this interval's requests).
  const core::LatencySnapshot* busiest = nullptr;
  for (const auto& [op, snap] : d.op_latency) {
    const std::string name = core::op_name(op);
    if (name != "read" && name != "read_scatter" && name != "read_segment") {
      continue;
    }
    if (busiest == nullptr || snap.count > busiest->count) busiest = &snap;
  }
  if (busiest != nullptr && busiest->count > 0) {
    r.read_p99_us = busiest->percentile_ns(99) / 1e3;
  }
  return r;
}

int top_once(const std::vector<std::string>& endpoints, bool json) {
  int failures = 0;
  std::string json_rows;
  if (!json) {
    std::printf("%-24s %9s %6s %10s %9s %9s %8s %9s\n", "endpoint",
                "reads/s", "hit%", "cacheMB/s", "pfsMB/s", "flushlag",
                "pf_hit%", "p99_us");
  }
  for (const auto& endpoint : endpoints) {
    rpc::RpcClient client(rpc::Endpoint{endpoint}, cli_options());
    const auto resp = client.call(proto::kTimeSeries, Bytes{});
    if (!resp.ok()) {
      if (!json) {
        std::printf("%-24s %s\n", endpoint.c_str(),
                    resp.error().to_string().c_str());
      } else {
        std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                     resp.error().to_string().c_str());
      }
      ++failures;
      continue;
    }
    const auto ts = core::TimeSeriesFrame::decode(*resp);
    if (!ts.ok()) {
      std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                   ts.error().to_string().c_str());
      ++failures;
      continue;
    }
    const TopRates r = rates_from(*ts);
    if (json) {
      if (!json_rows.empty()) json_rows += ",";
      json_rows += "{\"endpoint\":\"" + endpoint +
                   "\",\"up\":true,\"interval_ms\":" +
                   std::to_string(ts->interval_ms) +
                   ",\"window\":" + std::to_string(ts->window) +
                   ",\"samples\":" + std::to_string(ts->samples.size()) +
                   ",\"total\":" + std::to_string(ts->total);
      if (r.have) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      ",\"rates\":{\"reads_per_s\":%.3f,\"hit_pct\":%.2f,"
                      "\"cache_mb_per_s\":%.3f,\"pfs_mb_per_s\":%.3f,"
                      "\"flush_lag_ms\":%llu,\"prefetch_hit_pct\":%.2f,"
                      "\"read_p99_us\":%.1f}",
                      r.reads_per_s, r.hit_pct, r.cache_mb_s, r.pfs_mb_s,
                      (unsigned long long)r.flush_lag_ms, r.pf_hit_pct,
                      r.read_p99_us);
        json_rows += buf;
      }
      json_rows += "}";
    } else if (!r.have) {
      std::printf("%-24s %s\n", endpoint.c_str(),
                  ts->interval_ms == 0 ? "(collector off: HVAC_TS_INTERVAL_MS=0)"
                                       : "(no samples yet)");
    } else {
      std::printf("%-24s %9.1f %5.1f%% %10.2f %9.2f %9lu %7.1f%% %9.1f\n",
                  endpoint.c_str(), r.reads_per_s, r.hit_pct, r.cache_mb_s,
                  r.pfs_mb_s, (unsigned long)r.flush_lag_ms, r.pf_hit_pct,
                  r.read_p99_us);
    }
    if (!resp.ok()) ++failures;
  }
  if (json) {
    std::printf("{\"endpoints\":[%s],\"failures\":%d}\n", json_rows.c_str(),
                failures);
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

int cmd_top(const std::string& csv, bool json, int interval_seconds,
            int count) {
  const std::vector<std::string> endpoints = split_csv(csv);
  std::signal(SIGINT, on_interrupt);
  std::signal(SIGPIPE, SIG_IGN);
  int64_t next_us = rpc::steady_now_us();
  for (int iter = 0;;) {
    const int rc = top_once(endpoints, json);
    ++iter;
    if (count > 0 && iter >= count) return rc;
    if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) return 0;
    next_us += int64_t(interval_seconds) * 1'000'000;
    if (const int64_t now = rpc::steady_now_us(); next_us < now) {
      next_us = now;
    }
    if (!wait_until_us(next_us)) return 0;
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--timeout MS] ping ENDPOINTS\n"
               "       %s [--timeout MS] health ENDPOINTS [--json]\n"
               "       %s [--timeout MS] metrics ENDPOINTS [--json] "
               "[--watch N]\n"
               "       %s [--timeout MS] stat|warm ENDPOINT PATH\n"
               "       %s [--timeout MS] journal ENDPOINTS [--json]\n"
               "       %s [--timeout MS] prefetch ENDPOINTS [--json]\n"
               "       %s [--timeout MS] top ENDPOINTS [--json]\n"
               "                  [--interval N] [--count N]\n"
               "       %s [--timeout MS] trace ENDPOINTS [--chrome]\n"
               "       %s pack ROOT [--container-bytes N]\n"
               "       %s gentree ROOT NUM_FILES MEAN_BYTES [--sigma S]\n"
               "                  [--seed N] [--manifest FILE]\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global --timeout flag (valid before or after the
  // command word) so the per-command parsing below stays positional.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout") {
      if (i + 1 >= argc) return usage(argv[0]);
      g_timeout_ms = std::atoi(argv[++i]);
      if (g_timeout_ms <= 0) g_timeout_ms = 2000;
      continue;
    }
    args.push_back(arg);
  }
  if (args.size() < 2) return usage(argv[0]);
  const std::string cmd = args[0];
  if (cmd == "ping") return cmd_ping(args[1]);
  if (cmd == "pack") return cmd_pack(args);
  if (cmd == "gentree") return cmd_gentree(args);
  if (cmd == "health") {
    bool json = false;
    for (size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else {
        std::fprintf(stderr, "unknown health flag %s\n", args[i].c_str());
        return 2;
      }
    }
    return cmd_health(args[1], json);
  }
  if (cmd == "journal") {
    bool json = false;
    for (size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else {
        std::fprintf(stderr, "unknown journal flag %s\n", args[i].c_str());
        return 2;
      }
    }
    return cmd_journal(args[1], json);
  }
  if (cmd == "prefetch") {
    bool json = false;
    for (size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else {
        std::fprintf(stderr, "unknown prefetch flag %s\n", args[i].c_str());
        return 2;
      }
    }
    return cmd_prefetch(args[1], json);
  }
  if (cmd == "top") {
    bool json = false;
    int interval_seconds = 2;
    int count = 0;  // 0 = until interrupted
    for (size_t i = 2; i < args.size(); ++i) {
      const std::string& flag = args[i];
      if (flag == "--json") {
        json = true;
      } else if (flag == "--interval" && i + 1 < args.size()) {
        interval_seconds = std::max(1, std::atoi(args[++i].c_str()));
      } else if (flag == "--count" && i + 1 < args.size()) {
        count = std::atoi(args[++i].c_str());
      } else {
        std::fprintf(stderr, "unknown top flag %s\n", flag.c_str());
        return 2;
      }
    }
    return cmd_top(args[1], json, interval_seconds, count);
  }
  if (cmd == "metrics") {
    bool json = false;
    int watch_seconds = 0;
    for (size_t i = 2; i < args.size(); ++i) {
      const std::string& flag = args[i];
      if (flag == "--json") {
        json = true;
      } else if (flag == "--watch" && i + 1 < args.size()) {
        watch_seconds = std::atoi(args[++i].c_str());
      } else {
        std::fprintf(stderr, "unknown metrics flag %s\n", flag.c_str());
        return 2;
      }
    }
    return cmd_metrics(args[1], json, watch_seconds);
  }
  if (cmd == "trace") {
    bool chrome = false;
    for (size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--chrome") {
        chrome = true;
      } else {
        std::fprintf(stderr, "unknown trace flag %s\n", args[i].c_str());
        return 2;
      }
    }
    return cmd_trace(args[1], chrome);
  }
  if (args.size() < 3) {
    std::fprintf(stderr, "%s needs ENDPOINT PATH\n", cmd.c_str());
    return 2;
  }
  if (cmd == "stat") return cmd_path_op(proto::kStat, args[1], args[2]);
  if (cmd == "warm") return cmd_path_op(proto::kPrefetch, args[1], args[2]);
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}
