// hvacctl — tiny operator CLI for a running HVAC allocation.
//
//   hvacctl ping    HOST:PORT[,HOST:PORT...]
//   hvacctl metrics HOST:PORT[,HOST:PORT...] [--json] [--watch N]
//   hvacctl stat    HOST:PORT <relative-path>
//   hvacctl warm    HOST:PORT <relative-path>
//
// Talks the same RPC schema as the client library; useful for
// checking server health from a login node and for watching hit
// rates during a training run. `metrics` decodes the metrics frame
// v2 (handle-cache / buffer-pool / read-ahead sections and per-op
// latency histograms) and degrades to the seven v1 counters against
// an old server; --json emits one machine-readable document per
// sample (the CI bench gate consumes this), --watch N resamples
// every N seconds until interrupted.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/metrics_frame.h"
#include "rpc/rpc_client.h"
#include "rpc/wire.h"
#include "server/hvac_proto.h"

using namespace hvac;
using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {

int cmd_ping(const std::string& csv) {
  int failures = 0;
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint},
                          rpc::RpcClientOptions{2000, 2000});
    const auto resp = client.call(proto::kPing, Bytes{});
    std::printf("%-24s %s\n", endpoint.c_str(),
                resp.ok() ? "OK" : resp.error().to_string().c_str());
    if (!resp.ok()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

void print_metrics_row(const std::string& endpoint,
                       const core::MetricsFrame& f) {
  const auto& m = f.cache;
  std::printf("%-24s %10lu %10lu %8lu %10lu %12lu %12lu %8lu %6lu\n",
              endpoint.c_str(), (unsigned long)m.hits,
              (unsigned long)m.misses, (unsigned long)m.dedup_waits,
              (unsigned long)m.evictions, (unsigned long)m.bytes_from_cache,
              (unsigned long)m.bytes_from_pfs, (unsigned long)m.pfs_fallbacks,
              (unsigned long)f.open_fds);
  if (f.version < 2) return;
  std::printf("  handle_cache hits=%lu misses=%lu open=%lu pinned=%lu "
              "deferred_closes=%lu\n",
              (unsigned long)f.handle_cache.hits,
              (unsigned long)f.handle_cache.misses,
              (unsigned long)f.handle_cache.open,
              (unsigned long)f.handle_cache.pinned,
              (unsigned long)f.handle_cache.deferred_closes);
  std::printf("  buffer_pool  leases=%lu pool_hits=%lu fallback_allocs=%lu\n",
              (unsigned long)f.buffer_pool.leases,
              (unsigned long)f.buffer_pool.pool_hits,
              (unsigned long)f.buffer_pool.fallback_allocs);
  std::printf("  read_ahead   issued=%lu consumed=%lu wasted=%lu\n",
              (unsigned long)f.readahead.issued,
              (unsigned long)f.readahead.consumed,
              (unsigned long)f.readahead.wasted);
  for (const auto& [op, snap] : f.op_latency) {
    std::printf("  latency %-12s n=%-8lu p50=%.1fus p99=%.1fus\n",
                core::op_name(op).c_str(), (unsigned long)snap.count,
                snap.percentile_ns(50) / 1e3, snap.percentile_ns(99) / 1e3);
  }
}

int metrics_once(const std::vector<std::string>& endpoints, bool json) {
  int failures = 0;
  core::MetricsFrame aggregate;
  bool first = true;
  std::string json_endpoints;
  if (!json) {
    std::printf("%-24s %10s %10s %8s %10s %12s %12s %8s %6s\n", "endpoint",
                "hits", "misses", "dedup", "evictions", "cache_bytes",
                "pfs_bytes", "fallbk", "fds");
  }
  for (const auto& endpoint : endpoints) {
    rpc::RpcClient client(rpc::Endpoint{endpoint},
                          rpc::RpcClientOptions{2000, 2000});
    const auto resp = client.call(proto::kMetrics, Bytes{});
    if (!resp.ok()) {
      if (!json) {
        std::printf("%-24s %s\n", endpoint.c_str(),
                    resp.error().to_string().c_str());
      } else {
        std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                     resp.error().to_string().c_str());
      }
      ++failures;
      continue;
    }
    const auto frame = core::MetricsFrame::decode(*resp);
    if (!frame.ok()) {
      std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                   frame.error().to_string().c_str());
      ++failures;
      continue;
    }
    if (json) {
      if (!json_endpoints.empty()) json_endpoints += ",";
      json_endpoints +=
          "{\"endpoint\":\"" + endpoint + "\",\"metrics\":" +
          frame->to_json() + "}";
    } else {
      print_metrics_row(endpoint, *frame);
    }
    if (first) {
      aggregate = *frame;
      first = false;
    } else {
      aggregate.merge(*frame);
    }
  }
  if (json) {
    std::printf("{\"endpoints\":[%s],\"aggregate\":%s}\n",
                json_endpoints.c_str(), aggregate.to_json().c_str());
  } else if (endpoints.size() > 1 && !first) {
    print_metrics_row("TOTAL", aggregate);
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

int cmd_metrics(const std::string& csv, bool json, int watch_seconds) {
  const std::vector<std::string> endpoints = split_csv(csv);
  for (;;) {
    const int rc = metrics_once(endpoints, json);
    if (watch_seconds <= 0) return rc;
    ::sleep(static_cast<unsigned>(watch_seconds));
  }
}

int cmd_path_op(uint16_t opcode, const std::string& endpoint,
                const std::string& path) {
  rpc::RpcClient client(rpc::Endpoint{endpoint},
                        rpc::RpcClientOptions{5000, 30000});
  WireWriter w;
  w.put_string(path);
  const auto resp = client.call(opcode, w.bytes());
  if (!resp.ok()) {
    std::fprintf(stderr, "%s\n", resp.error().to_string().c_str());
    return 1;
  }
  WireReader r(*resp);
  if (opcode == proto::kStat) {
    const auto size = r.get_u64();
    std::printf("%s: %lu bytes\n", path.c_str(),
                (unsigned long)size.value_or(0));
  } else {
    const auto cached = r.get_u8();
    std::printf("%s: %s\n", path.c_str(),
                cached.ok() && *cached == 1 ? "cached"
                                            : "pfs-fallback");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s ping ENDPOINTS\n"
                 "       %s metrics ENDPOINTS [--json] [--watch N]\n"
                 "       %s stat|warm ENDPOINT PATH\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "ping") return cmd_ping(argv[2]);
  if (cmd == "metrics") {
    bool json = false;
    int watch_seconds = 0;
    for (int i = 3; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--json") {
        json = true;
      } else if (flag == "--watch" && i + 1 < argc) {
        watch_seconds = std::atoi(argv[++i]);
      } else {
        std::fprintf(stderr, "unknown metrics flag %s\n", flag.c_str());
        return 2;
      }
    }
    return cmd_metrics(argv[2], json, watch_seconds);
  }
  if (argc < 4) {
    std::fprintf(stderr, "%s needs ENDPOINT PATH\n", cmd.c_str());
    return 2;
  }
  if (cmd == "stat") return cmd_path_op(proto::kStat, argv[2], argv[3]);
  if (cmd == "warm") return cmd_path_op(proto::kPrefetch, argv[2], argv[3]);
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}
