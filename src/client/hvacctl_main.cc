// hvacctl — tiny operator CLI for a running HVAC allocation.
//
//   hvacctl ping    HOST:PORT[,HOST:PORT...]
//   hvacctl metrics HOST:PORT[,HOST:PORT...]
//   hvacctl stat    HOST:PORT <relative-path>
//   hvacctl warm    HOST:PORT <relative-path>
//
// Talks the same RPC schema as the client library; useful for
// checking server health from a login node and for watching hit
// rates during a training run.
#include <cstdio>
#include <string>

#include "common/env.h"
#include "rpc/rpc_client.h"
#include "rpc/wire.h"
#include "server/hvac_proto.h"

using namespace hvac;
using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {

int cmd_ping(const std::string& csv) {
  int failures = 0;
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint},
                          rpc::RpcClientOptions{2000, 2000});
    const auto resp = client.call(proto::kPing, Bytes{});
    std::printf("%-24s %s\n", endpoint.c_str(),
                resp.ok() ? "OK" : resp.error().to_string().c_str());
    if (!resp.ok()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int cmd_metrics(const std::string& csv) {
  std::printf("%-24s %10s %10s %8s %10s %12s %12s %8s %6s\n", "endpoint",
              "hits", "misses", "dedup", "evictions", "cache_bytes",
              "pfs_bytes", "fallbk", "fds");
  int failures = 0;
  for (const auto& endpoint : split_csv(csv)) {
    rpc::RpcClient client(rpc::Endpoint{endpoint},
                          rpc::RpcClientOptions{2000, 2000});
    const auto resp = client.call(proto::kMetrics, Bytes{});
    if (!resp.ok()) {
      std::printf("%-24s %s\n", endpoint.c_str(),
                  resp.error().to_string().c_str());
      ++failures;
      continue;
    }
    WireReader r(*resp);
    uint64_t v[8] = {0};
    for (auto& x : v) {
      auto got = r.get_u64();
      if (got.ok()) x = *got;
    }
    std::printf("%-24s %10lu %10lu %8lu %10lu %12lu %12lu %8lu %6lu\n",
                endpoint.c_str(), (unsigned long)v[0], (unsigned long)v[1],
                (unsigned long)v[2], (unsigned long)v[3],
                (unsigned long)v[4], (unsigned long)v[5],
                (unsigned long)v[6], (unsigned long)v[7]);
  }
  return failures == 0 ? 0 : 1;
}

int cmd_path_op(uint16_t opcode, const std::string& endpoint,
                const std::string& path) {
  rpc::RpcClient client(rpc::Endpoint{endpoint},
                        rpc::RpcClientOptions{5000, 30000});
  WireWriter w;
  w.put_string(path);
  const auto resp = client.call(opcode, w.bytes());
  if (!resp.ok()) {
    std::fprintf(stderr, "%s\n", resp.error().to_string().c_str());
    return 1;
  }
  WireReader r(*resp);
  if (opcode == proto::kStat) {
    const auto size = r.get_u64();
    std::printf("%s: %lu bytes\n", path.c_str(),
                (unsigned long)size.value_or(0));
  } else {
    const auto cached = r.get_u8();
    std::printf("%s: %s\n", path.c_str(),
                cached.ok() && *cached == 1 ? "cached"
                                            : "pfs-fallback");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s ping|metrics ENDPOINTS\n"
                 "       %s stat|warm ENDPOINT PATH\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "ping") return cmd_ping(argv[2]);
  if (cmd == "metrics") return cmd_metrics(argv[2]);
  if (argc < 4) {
    std::fprintf(stderr, "%s needs ENDPOINT PATH\n", cmd.c_str());
    return 2;
  }
  if (cmd == "stat") return cmd_path_op(proto::kStat, argv[2], argv[3]);
  if (cmd == "warm") return cmd_path_op(proto::kPrefetch, argv[2], argv[3]);
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}
