// HvacClient — the client-side library behind the LD_PRELOAD shim and
// the public C++ API (paper §III-C/D).
//
// The client owns the server map (endpoint per server index, in
// allocation order), computes each file's home with the metadata-less
// Placement function, and forwards open/read/close over RPC. Reads
// above the chunk size are split into multiple bulk pulls. On any
// transport failure the client fails open: replicas are tried in
// order, and as a last resort the file is read directly from the PFS
// mount — a cache must never kill a training run (paper §III-H).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/meta_cache.h"
#include "client/packed_catalog.h"
#include "client/readahead_policy.h"
#include "common/result.h"
#include "core/fd_table.h"
#include "core/placement.h"
#include "rpc/async_client.h"
#include "rpc/rpc_client.h"

namespace hvac::client {

class PrefetchScheduler;

struct HvacClientOptions {
  // Dataset root on the PFS (the HVAC_DATASET_DIR of the paper); only
  // paths under it are eligible for caching.
  std::string dataset_dir;
  // Endpoints in server-index order (node-major, instance-minor).
  std::vector<std::string> server_endpoints;
  core::PlacementPolicy placement = core::PlacementPolicy::kHashModulo;
  uint32_t replicas = 1;
  // Per-RPC read chunk; must be <= proto::kMaxReadChunk.
  uint32_t read_chunk_bytes = 4u << 20;
  // Segment-level caching (paper §III-E extension): files larger than
  // this are cached segment-by-segment, each segment homed
  // independently so one huge file spreads over the allocation.
  // 0 disables segmentation.
  uint64_t segment_bytes = 0;
  // Disables the direct-PFS fallback (tests use this to assert remote
  // behaviour; production keeps it on).
  bool allow_pfs_fallback = true;
  // Sequential read-ahead STARTING depth, in read-chunk units
  // (HVAC_READAHEAD). When a vfd reads sequentially, upcoming chunks
  // are requested over the async channel before the application asks,
  // overlapping network latency with compute; the per-fd depth then
  // adapts to the measured inter-arrival gap (ReadAheadPolicy). 0
  // disables (the seed behaviour: every chunk is a synchronous round
  // trip).
  uint32_t readahead_chunks = 2;
  // Clairvoyant prefetch lookahead window, in samples
  // (HVAC_PREFETCH_DEPTH): how far the plan-driven scheduler may warm
  // caches ahead of the training cursor. 0 disables the scheduler
  // (set_access_plan() still enables it on demand with the default
  // window).
  uint32_t prefetch_depth = 0;
  // Prefetch issue-rate pace in decimal MB/s (HVAC_PREFETCH_BW_MBPS);
  // 0 = unpaced.
  double prefetch_bw_mbps = 0.0;
  // Access-plan file (HVAC_PREFETCH_PLAN): one path per line, in
  // access order — absolute or dataset-relative. Loaded at client
  // construction; ignored when empty.
  std::string prefetch_plan_file;
  // TTL for the client metadata cache (HVAC_META_TTL_MS): per-epoch
  // re-opens of a file whose {size, home, cached} is still fresh skip
  // the stat/open round trip entirely (path-mode fds). 0 disables.
  int64_t meta_ttl_ms = 3000;
  // Packed-container resolution (HVAC_PACK): when the dataset carries
  // a .hvacpack index, the client fetches it once and resolves packed
  // sample paths locally — opens and stats of packed samples cost zero
  // round trips. The fetched answer (present or absent) is re-checked
  // every packed_ttl_ms (HVAC_PACK_TTL_MS; <= 0 never re-checks).
  bool packed_enabled = true;
  int64_t packed_ttl_ms = 30000;
  // Checkpoint-write durability barrier (HVAC_WRITE_DURABILITY):
  // "local" (0) — fsync returns once the server's journal commit is on
  // node-local media; "pfs" (1) — fsync additionally waits until the
  // flusher landed the file on the PFS.
  uint8_t write_durability = 0;
  rpc::RpcClientOptions rpc;
};

// Builds options from the environment (HVAC_DATASET_DIR, HVAC_SERVERS,
// HVAC_REPLICAS, HVAC_PLACEMENT) — the bootstrap path used by the
// interception shim.
Result<HvacClientOptions> options_from_env();

struct ClientStats {
  uint64_t opens = 0;
  uint64_t remote_opens = 0;
  uint64_t fallback_opens = 0;
  uint64_t reads = 0;
  uint64_t bytes_read = 0;
  uint64_t failovers = 0;  // replica failovers after a dead primary
  uint64_t readahead_issued = 0;  // chunks requested ahead of the app
  uint64_t readahead_hits = 0;    // reads served from a pending chunk
  uint64_t readahead_wasted = 0;  // pending chunks discarded unread
                                  // (non-sequential turn, close, failover)
  uint64_t meta_hits = 0;    // opens/stats answered from the meta cache
  uint64_t meta_misses = 0;  // lookups that had to pay the round trip
  uint64_t writes = 0;           // write() calls on write vfds
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;           // durability barriers requested
  uint64_t fallback_write_opens = 0;  // write opens served by the PFS
};

// JSON rendering of the shim's exit summary (HVAC_STATS_FILE): the
// per-client counters plus the process-wide buffer-pool stats.
std::string stats_to_json(const ClientStats& stats);

class HvacClient {
 public:
  explicit HvacClient(HvacClientOptions options);
  ~HvacClient();

  HvacClient(const HvacClient&) = delete;
  HvacClient& operator=(const HvacClient&) = delete;

  // POSIX-shaped API over virtual fds (>= FdTable::kVirtualFdBase).
  Result<int> open(const std::string& path);
  Result<size_t> read(int vfd, void* buf, size_t count);
  Result<size_t> pread(int vfd, void* buf, size_t count, uint64_t offset);
  Result<int64_t> lseek(int vfd, int64_t offset, int whence);
  Status close(int vfd);

  // Checkpoint write path: the file lands in the home server's
  // write-back tier (journal + local NVMe) and is flushed to the PFS
  // asynchronously; fsync() is the durability barrier (level set by
  // options().write_durability). A failed kWriteOpen fails open to a
  // direct PFS fd — a cache must never kill a training run.
  Result<int> open_write(const std::string& path, bool trunc);
  Result<size_t> write(int vfd, const void* buf, size_t count);
  Result<size_t> pwrite(int vfd, const void* buf, size_t count,
                        uint64_t offset);
  Status fsync(int vfd);

  // Size without opening.
  Result<uint64_t> stat_size(const std::string& path);

  // Warms the home server's cache (paper future work: prefetching).
  Status prefetch(const std::string& path);

  // Pipelined warm-up: fans the prefetches out over async channels
  // (many in flight per server) instead of one round trip at a time.
  // Paths the server SHED under mover backpressure are re-paced with a
  // bounded backoff-and-retry. Returns the number of files
  // successfully cached.
  Result<size_t> prefetch_many(const std::vector<std::string>& paths);

  // One pipelined kPrefetchBatch round over the persistent async
  // channels: statuses[i] is the proto::PrefetchStatus for
  // logical_paths[i] (LOGICAL paths, dataset-relative). Transport
  // failures and open breakers read as kPrefetchShed for the affected
  // sub-batch — the caller re-paces, it never aborts.
  Result<std::vector<uint8_t>> prefetch_batch_status(
      const std::vector<std::string>& logical_paths);

  // Installs the access plan for the coming epoch (paths in access
  // order, absolute or dataset-relative; ineligible paths are
  // dropped), starting the clairvoyant scheduler on first use. The
  // scheduler warms sample caches ahead of the training cursor, which
  // advances on every intercepted open.
  void set_access_plan(const std::vector<std::string>& paths);

  // The plan-driven scheduler; null until set_access_plan() (or the
  // HVAC_PREFETCH_PLAN file) enabled it.
  PrefetchScheduler* prefetch_scheduler() {
    return prefetch_ptr_.load(std::memory_order_acquire);
  }

  // True when the path falls under dataset_dir (the shim's routing
  // test).
  bool eligible(const std::string& path) const;

  // Home server index for a path — exposed for tests and the load
  // distribution bench (Fig 15).
  uint32_t home_of(const std::string& path) const;

  ClientStats stats() const;

  const HvacClientOptions& options() const { return options_; }

 private:
  // One chunk requested ahead of the application's read position. A
  // whole issue batch rides in ONE kReadScatter call, so the chunks of
  // a batch share the response future and each remembers which extent
  // of the scatter frame is theirs.
  struct PendingChunk {
    uint64_t offset = 0;
    uint32_t count = 0;
    std::shared_future<Result<rpc::Bytes>> data;
    uint32_t extent_index = 0;
  };

  // Per-vfd sequential-pattern tracker and in-flight chunk window.
  struct ReadAheadState {
    uint64_t next_expected = 0;  // byte after the last sequential read
    uint64_t issued_end = 0;     // byte after the last issued chunk
    std::deque<PendingChunk> pending;
    ReadAheadPolicy policy;        // adaptive window depth
    uint64_t last_arrival_ns = 0;  // previous sequential arrival
  };

  // Path relative to dataset_dir — the canonical placement key.
  Result<std::string> logical_path(const std::string& path) const;

  rpc::RpcClient& channel(uint32_t server_index);

  // Async channel for read-ahead (lazily dialled, one per server).
  rpc::AsyncRpcClient& async_channel(uint32_t server_index);

  // Pops the pending chunk matching (offset, count) for `vfd`, if any.
  // A mismatch means the fd went non-sequential: the whole window is
  // discarded.
  std::optional<PendingChunk> readahead_take(int vfd, uint64_t offset,
                                             uint32_t count,
                                             uint64_t file_size);

  // Records a completed chunk read and, while the pattern stays
  // sequential, tops the in-flight window back up to readahead_chunks.
  void readahead_advance(int vfd, const core::FdEntry& entry,
                         uint64_t offset, size_t got, uint32_t chunk);

  // Drops all read-ahead state for `vfd` (close / failover re-open).
  void readahead_drop(int vfd);

  // Clears a window, counting its in-flight chunks as wasted (caller
  // holds ra_mutex_).
  void discard_window(ReadAheadState& state);

  Result<int> open_via_pfs(const std::string& path);

  // Meta-cache lookup with the breaker check folded in: an entry whose
  // home endpoint has an open circuit is invalidated on the spot (the
  // cached location is unusable until the breaker half-opens). Bumps
  // the per-client hit/miss stats.
  std::optional<MetaEntry> meta_lookup(const std::string& logical);

  // Packed-index resolution: non-nullopt when `logical` is a sample of
  // the dataset's packed containers (fetching the index first when
  // needed — see PackedCatalog).
  std::optional<PackedCatalog::Resolved> packed_lookup(
      const std::string& logical);

  // Segment-granular positional read (entry.segmented == true).
  Result<size_t> pread_segmented(const core::FdEntry& entry, void* buf,
                                 size_t count, uint64_t offset);

  // pread with a bounded recovery budget (recover_fd may re-home the
  // fd remotely; after kMaxRecoveries the read fails rather than loop).
  Result<size_t> pread_attempt(int vfd, void* buf, size_t count,
                               uint64_t offset, int recoveries);

  // The home server died while `vfd` was open: re-open the file (via
  // replicas or PFS fallback) and swap the fd's backing in place.
  // `force_pfs` skips the remote re-open — used when remote reads keep
  // failing even though opens succeed.
  Status recover_fd(int vfd, const core::FdEntry& stale,
                    bool force_pfs = false);

  HvacClientOptions options_;
  core::Placement placement_;
  core::FdTable fds_;
  MetaCache meta_;
  PackedCatalog packed_;
  std::vector<std::unique_ptr<rpc::RpcClient>> channels_;
  std::vector<std::unique_ptr<rpc::AsyncRpcClient>> async_channels_;
  std::mutex channels_mutex_;

  std::mutex ra_mutex_;
  std::unordered_map<int, ReadAheadState> ra_;

  mutable std::mutex stats_mutex_;
  ClientStats stats_;

  // Declared last: the scheduler's issue thread calls back into the
  // channels above, so it must be torn down before they are. The raw
  // pointer is the lock-free published view (the open() hot path reads
  // it on every call); prefetch_mutex_ guards lazy creation.
  std::unique_ptr<PrefetchScheduler> prefetch_;
  std::atomic<PrefetchScheduler*> prefetch_ptr_{nullptr};
  std::mutex prefetch_mutex_;
};

}  // namespace hvac::client
