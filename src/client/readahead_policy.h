// Inter-arrival-gap adaptive read-ahead depth.
//
// HVAC_READAHEAD used to be a fixed chunk count; it now sets the
// STARTING depth (0 still disables read-ahead entirely) and this
// policy adapts per-fd from there:
//
//  * sequential hit with a SMALL inter-arrival gap — the application
//    consumes chunks faster than a fetch round trip, so the window
//    must run deeper to stay ahead of it: grow by one.
//  * sequential hit with a LARGE gap — the application is compute-
//    bound and the current window already hides the fetch; hold depth
//    (a deeper window would only pin more pooled buffers and fetch
//    bytes earlier than needed, for no latency win).
//  * miss / seek — the sequential pattern broke and every pending
//    chunk in the window was wasted: halve, so a workload that
//    interleaves scans with random access stops paying full-depth
//    waste on every turn.
//
// Pure state machine, no clocks of its own (callers feed measured
// gaps), so tests can drive it with a synthetic access trace.
#pragma once

#include <algorithm>
#include <cstdint>

namespace hvac::client {

struct ReadAheadPolicy {
  uint32_t min_depth = 1;
  uint32_t max_depth = 16;  // one kReadScatter batch (kMaxScatterExtents)
  uint32_t depth = 2;

  // EWMA of sequential inter-arrival gaps (ns); 0 = no sample yet.
  uint64_t avg_gap_ns = 0;
  // Gaps above this mean "the application is slower than a fetch":
  // ~2 ms covers an in-rack round trip with margin.
  uint64_t slow_gap_ns = 2'000'000;

  void on_sequential(uint64_t gap_ns) {
    avg_gap_ns = avg_gap_ns == 0 ? gap_ns : (avg_gap_ns * 7 + gap_ns) / 8;
    if (avg_gap_ns < slow_gap_ns) depth = std::min(depth + 1, max_depth);
  }

  void on_miss() { depth = std::max(depth / 2, min_depth); }
};

}  // namespace hvac::client
