#include "client/prefetch_scheduler.h"

#include <algorithm>
#include <chrono>

#include "client/hvac_client.h"
#include "common/trace.h"
#include "core/metrics.h"
#include "server/hvac_proto.h"

namespace hvac::client {

PrefetchScheduler::PrefetchScheduler(HvacClient* client,
                                     PrefetchSchedulerOptions options)
    : client_(client), options_(options) {
  if (options_.depth == 0) options_.depth = 1;
  if (options_.est_sample_bytes == 0) options_.est_sample_bytes = 1;
  est_sample_bytes_.store(options_.est_sample_bytes,
                          std::memory_order_relaxed);
  options_.batch_size = std::max<uint32_t>(
      1, std::min<uint32_t>(options_.batch_size, proto::kMaxPrefetchBatch));
  if (options_.bw_mbps > 0) {
    // Decimal MB/s; burst = one full batch so a freshly installed plan
    // starts immediately and pacing kicks in from the second batch.
    bucket_ = std::make_unique<storage::TokenBucket>(
        options_.bw_mbps * 1e6,
        double(options_.est_sample_bytes) * options_.batch_size);
  }
  thread_ = std::thread([this] { run(); });
}

PrefetchScheduler::~PrefetchScheduler() { stop(); }

void PrefetchScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  caught_up_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PrefetchScheduler::set_plan(std::vector<std::string> logical_paths) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plan_.clear();
    plan_.reserve(logical_paths.size());
    occurrences_.clear();
    for (size_t i = 0; i < logical_paths.size(); ++i) {
      occurrences_[logical_paths[i]].push_back(i);
      Entry e;
      e.path = std::move(logical_paths[i]);
      plan_.push_back(std::move(e));
    }
    cursor_ = 0;
    issue_pos_ = 0;
    ++epoch_;  // a batch in flight for the old plan discards its answer
    // Epoch boundary for stall attribution: reads from here on charge
    // against this plan's epoch (frame v2 section 12).
    core::StallCounters::global().begin_epoch(epoch_);
    stats_.planned += plan_.size();
    core::PrefetchCounters::global().planned.fetch_add(
        plan_.size(), std::memory_order_relaxed);
  }
  cv_.notify_all();
}

void PrefetchScheduler::on_access(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = occurrences_.find(logical_path);
  if (it == occurrences_.end() || it->second.empty()) return;
  const size_t idx = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) occurrences_.erase(it);

  Entry& e = plan_[idx];
  core::PrefetchCounters& g = core::PrefetchCounters::global();
  if (e.state == State::kWarm) {
    ++stats_.hit_after_prefetch;
    g.hit_after.fetch_add(1, std::memory_order_relaxed);
  } else if (e.state == State::kIssued || e.state == State::kPending) {
    // The training cursor beat the prefetch — the pipeline ran late
    // (window too shallow, pacing too tight, or the mover shed us).
    ++stats_.late;
    g.late.fetch_add(1, std::memory_order_relaxed);
    if (e.state == State::kPending) {
      // Never issued and already consumed: prefetching it now would
      // be pure waste.
      e.state = State::kMiss;
    }
  }
  if (idx + 1 > cursor_) {
    cursor_ = idx + 1;
    cv_.notify_all();  // the window slid forward
  }
}

size_t PrefetchScheduler::next_issuable_locked() const {
  const size_t window_end =
      std::min(plan_.size(), cursor_ + options_.depth);
  for (size_t i = std::min(issue_pos_, window_end); i < window_end; ++i) {
    if (plan_[i].state == State::kPending) return i;
  }
  return plan_.size();
}

void PrefetchScheduler::wait_caught_up() {
  std::unique_lock<std::mutex> lock(mutex_);
  caught_up_cv_.wait(lock, [&] {
    return stop_ || (!issuing_ && next_issuable_locked() >= plan_.size());
  });
}

void PrefetchScheduler::observe_sample_bytes(uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t cur = est_sample_bytes_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    // EWMA with alpha = 1/8, rounded so tiny samples still register.
    next = std::max<uint64_t>(1, (cur * 7 + bytes + 7) / 8);
  } while (!est_sample_bytes_.compare_exchange_weak(
      cur, next, std::memory_order_relaxed));
}

PrefetchScheduler::Stats PrefetchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.cursor = cursor_;
  s.est_sample_bytes = est_sample_bytes_.load(std::memory_order_relaxed);
  return s;
}

void PrefetchScheduler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || next_issuable_locked() < plan_.size();
    });
    if (stop_) return;

    // Collect one batch of pending entries inside the window, in plan
    // (= deadline) order.
    const uint64_t epoch = epoch_;
    const size_t window_end =
        std::min(plan_.size(), cursor_ + options_.depth);
    std::vector<size_t> batch_idx;
    std::vector<std::string> batch_paths;
    size_t pos = std::min(issue_pos_, window_end);
    while (pos < window_end && batch_idx.size() < options_.batch_size) {
      if (plan_[pos].state == State::kPending) {
        plan_[pos].state = State::kIssued;
        batch_idx.push_back(pos);
        batch_paths.push_back(plan_[pos].path);
      }
      ++pos;
    }
    issue_pos_ = pos;
    if (batch_idx.empty()) continue;
    issuing_ = true;
    stats_.issued += batch_idx.size();
    core::PrefetchCounters& g = core::PrefetchCounters::global();
    g.issued.fetch_add(batch_idx.size(), std::memory_order_relaxed);
    lock.unlock();

    // Pace OUTSIDE the lock: a stalled bucket must not block
    // on_access / set_plan / stats.
    uint64_t paced_ns = 0;
    if (bucket_) {
      const uint64_t bytes =
          est_sample_bytes_.load(std::memory_order_relaxed) *
          batch_idx.size();
      const double wait_s = bucket_->would_wait_seconds(bytes);
      paced_ns = wait_s > 0 ? uint64_t(wait_s * 1e9) : 0;
      bucket_->acquire(bytes);
      g.paced_delay.record(paced_ns);
    }

    Result<std::vector<uint8_t>> statuses = [&] {
      trace::Span span("client.prefetch", batch_paths.size());
      return client_->prefetch_batch_status(batch_paths);
    }();

    lock.lock();
    stats_.paced_delay_ns += paced_ns;
    bool had_shed = false;
    if (epoch_ == epoch) {
      for (size_t b = 0; b < batch_idx.size(); ++b) {
        Entry& e = plan_[batch_idx[b]];
        if (e.state != State::kIssued) continue;  // consumed meanwhile
        const uint8_t status =
            statuses.ok() && b < statuses->size()
                ? (*statuses)[b]
                // Transport failure / open breaker: every path is
                // retryable, same as a server-side shed.
                : uint8_t(proto::kPrefetchShed);
        if (status == proto::kPrefetchCached) {
          e.state = State::kWarm;
          ++stats_.completed;
          g.completed.fetch_add(1, std::memory_order_relaxed);
        } else if (status == proto::kPrefetchShed) {
          ++stats_.shed;
          g.shed.fetch_add(1, std::memory_order_relaxed);
          if (++e.shed_count > options_.max_shed_retries) {
            e.state = State::kMiss;  // demand fetch will cover it
          } else {
            e.state = State::kPending;
            issue_pos_ = std::min(issue_pos_, batch_idx[b]);
            had_shed = true;
          }
        } else {
          e.state = State::kMiss;
        }
      }
    }
    issuing_ = false;
    caught_up_cv_.notify_all();
    if (had_shed && options_.shed_backoff_ms > 0 && !stop_) {
      // Re-pace: give the mover queue room to drain before retrying.
      lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.shed_backoff_ms));
      lock.lock();
    }
  }
}

}  // namespace hvac::client
