#include "client/packed_catalog.h"

#include "common/hash.h"
#include "common/log.h"
#include "rpc/health.h"  // steady_now_ms — shared monotonic time base

namespace hvac::client {

bool PackedCatalog::fresh_locked() const {
  if (state_ == State::kUnknown) return false;
  if (ttl_ms_ <= 0) return true;
  return rpc::steady_now_ms() - fetched_at_ms_ < ttl_ms_;
}

std::optional<PackedCatalog::Resolved> PackedCatalog::resolve(
    const std::string& logical, const FetchFn& fetch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!fresh_locked()) {
    // The fetch runs under the mutex on purpose: a training job's
    // worth of workers opening their first samples must produce one
    // index round trip, not a thundering herd of them.
    ++fetches_;
    fetched_at_ms_ = rpc::steady_now_ms();
    auto raw = fetch();
    if (!raw.ok()) {
      // Fail open: an unreachable server must not block opens — the
      // per-file path (and ultimately the PFS) still serves. Re-ask
      // after the TTL.
      HVAC_LOG_DEBUG("packed index fetch failed: "
                     << raw.error().to_string());
      state_ = State::kAbsent;
    } else if (!raw->has_value()) {
      state_ = State::kAbsent;  // dataset simply is not packed
    } else {
      auto index = storage::PackedIndex::decode((*raw)->data(),
                                                (*raw)->size());
      if (!index.ok()) {
        HVAC_LOG_WARN("packed index rejected: "
                      << index.error().to_string());
        state_ = State::kAbsent;
      } else {
        index_ = std::move(index).value();
        state_ = State::kPresent;
        HVAC_LOG_INFO("packed index cached: " << index_.entries.size()
                                              << " samples in "
                                              << index_.container_sizes.size()
                                              << " containers");
      }
    }
  }
  if (state_ != State::kPresent) return std::nullopt;
  const storage::PackedEntry* e = index_.find(stable_hash(logical));
  if (e == nullptr) return std::nullopt;
  Resolved r;
  r.container_logical = storage::packed_container_logical(e->container_id);
  r.base = e->offset;
  r.length = e->length;
  return r;
}

void PackedCatalog::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kUnknown;
}

uint64_t PackedCatalog::fetches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fetches_;
}

}  // namespace hvac::client
