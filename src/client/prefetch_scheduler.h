// Clairvoyant epoch-aware prefetch scheduler (Dryden et al.,
// "Clairvoyant Prefetching for Distributed Machine Learning I/O").
//
// DL access order is KNOWN in advance: the seeded shuffle fixes the
// exact per-epoch sample sequence before the epoch starts. This
// scheduler turns that plan into a deadline-driven warm-up pipeline:
//
//   * The plan is the access order, so issuing in plan order IS
//     deadline order — sample k is needed strictly before sample k+1.
//   * A lookahead window keeps at most `depth` samples of prefetch
//     between the training cursor and the issue frontier. on_access()
//     (called from every intercepted open) advances the cursor and
//     slides the window.
//   * Batches ride the existing kPrefetchBatch RPC over the client's
//     multiplexed async channels; the server answers per-path
//     cached / miss / SHED. Shed paths re-enter the issue frontier
//     after a backoff (bounded per path), so mover backpressure
//     re-paces the pipeline instead of dropping warm-up or flooding
//     the bounded queue. An open circuit breaker reads as shed for
//     the whole sub-batch (fail-fast, retry after the backoff).
//   * A token bucket (HVAC_PREFETCH_BW_MBPS) meters issue rate so
//     cold-epoch warm-up cannot starve foreground reads or stampede
//     the PFS; every stall is recorded in the paced-delay histogram.
//
// Everything fails open: a dead server, a shed batch or a plan that
// does not match the access stream degrade to the demand-fetch path —
// the scheduler only ever warms caches ahead of time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "storage/throttle.h"

namespace hvac::client {

class HvacClient;

struct PrefetchSchedulerOptions {
  // Lookahead window: samples the issue frontier may run ahead of the
  // training cursor (HVAC_PREFETCH_DEPTH).
  uint32_t depth = 256;
  // Samples per issued batch; clamped to proto::kMaxPrefetchBatch.
  uint32_t batch_size = 64;
  // Issue-rate pace in MB/s (decimal; HVAC_PREFETCH_BW_MBPS). Applied
  // against est_sample_bytes per planned sample. 0 = unpaced.
  double bw_mbps = 0.0;
  // SEED for the per-sample pacing estimate. The live estimate is an
  // EWMA of sizes measured on the client's own open paths (packed
  // index, meta cache, open replies — all free, no extra round trip),
  // so pacing tracks the dataset's real sample size instead of
  // assuming 1 MiB forever.
  uint64_t est_sample_bytes = 1u << 20;
  // Backoff before shed paths re-enter the issue frontier.
  int shed_backoff_ms = 5;
  // Give up re-pacing a path after this many sheds (it will still be
  // demand-fetched on access).
  int max_shed_retries = 3;
};

class PrefetchScheduler {
 public:
  // `client` must outlive the scheduler (HvacClient owns it and stops
  // it before tearing down its channels).
  PrefetchScheduler(HvacClient* client, PrefetchSchedulerOptions options);
  ~PrefetchScheduler();

  PrefetchScheduler(const PrefetchScheduler&) = delete;
  PrefetchScheduler& operator=(const PrefetchScheduler&) = delete;

  // Installs the access plan for the coming epoch (logical paths in
  // access order), replacing any previous plan and resetting the
  // cursor. Duplicate paths are allowed (they occur at epoch
  // boundaries in wrap-padded partitions).
  void set_plan(std::vector<std::string> logical_paths);

  // Advances the training cursor: the application just opened/read
  // `logical_path`. Paths outside the plan are ignored. Accounting:
  // a sample whose prefetch completed in time counts hit-after-
  // prefetch; one still pending or in flight counts late.
  void on_access(const std::string& logical_path);

  // Feeds one measured sample size into the pacing EWMA
  // (alpha = 1/8, seeded from options.est_sample_bytes). Called from
  // the client's open paths, where the size is already known.
  void observe_sample_bytes(uint64_t bytes);

  // Stops the issue thread. Idempotent; called by ~PrefetchScheduler.
  void stop();

  // Blocks until the issue frontier has caught up with the current
  // window (nothing issuable remains) — tests and the warm-up phase
  // of benches use this to wait for a full-plan prefetch when
  // depth >= plan size.
  void wait_caught_up();

  struct Stats {
    uint64_t planned = 0;
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t late = 0;
    uint64_t hit_after_prefetch = 0;
    uint64_t paced_delay_ns = 0;  // total token-bucket stall
    uint64_t cursor = 0;          // samples the app has consumed
    uint64_t est_sample_bytes = 0;  // live EWMA pacing estimate
  };
  Stats stats() const;

 private:
  enum class State : uint8_t {
    kPending,  // not issued yet (or re-queued after a shed)
    kIssued,   // in an in-flight batch
    kWarm,     // server answered cached
    kMiss,     // server answered miss, or shed-retry budget exhausted
  };

  struct Entry {
    std::string path;
    State state = State::kPending;
    uint8_t shed_count = 0;
  };

  void run();
  // Next plan index the issue loop may pick up, honoring the window
  // bound; plan_.size() when nothing is issuable. Caller holds mutex_.
  size_t next_issuable_locked() const;

  HvacClient* client_;
  PrefetchSchedulerOptions options_;
  std::unique_ptr<storage::TokenBucket> bucket_;  // null when unpaced
  // Live per-sample size estimate (EWMA of measured opens). The token
  // bucket itself is immutable; the estimate scales how many tokens a
  // batch acquires.
  std::atomic<uint64_t> est_sample_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;          // wakes the issue loop
  std::condition_variable caught_up_cv_;
  std::vector<Entry> plan_;
  // path -> plan indices not yet consumed by on_access (FIFO per path).
  std::unordered_map<std::string, std::deque<size_t>> occurrences_;
  size_t cursor_ = 0;     // first plan index the app has not accessed
  size_t issue_pos_ = 0;  // first plan index the issue loop has not
                          // inspected (rewinds to re-pace sheds)
  bool issuing_ = false;  // a batch is in flight right now
  bool stop_ = false;
  uint64_t epoch_ = 0;    // bumped by set_plan; stale batches discard

  Stats stats_;
  std::thread thread_;
};

}  // namespace hvac::client
