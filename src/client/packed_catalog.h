// PackedCatalog — the client's cached copy of the dataset's
// packed-container index (storage/packed_format.h).
//
// The first open of a packed-eligible path pays ONE kPackedIndex round
// trip; every open/stat after that resolves locally from the decoded
// index, so packed samples cost zero metadata RPCs (the FanStore
// technique the paper cites for small-file workloads). The answer —
// present or absent — is cached with a TTL so a dataset packed while
// the job runs is picked up within one TTL, and a server that has no
// index is not re-asked on every open. Fetch failures fail open: the
// catalog reports "not packed" and the regular per-file path serves.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/packed_format.h"

namespace hvac::client {

class PackedCatalog {
 public:
  // A packed sample resolved against the cached index: the container's
  // logical path (its placement key) and the sample's extent within it.
  struct Resolved {
    std::string container_logical;
    uint64_t base = 0;
    uint64_t length = 0;
  };

  // Fetches the raw index bytes from a server; nullopt when the server
  // has no packed index for the dataset.
  using FetchFn =
      std::function<Result<std::optional<std::vector<uint8_t>>>()>;

  // ttl_ms <= 0 caches the fetched answer for the process lifetime.
  explicit PackedCatalog(int64_t ttl_ms) : ttl_ms_(ttl_ms) {}

  // Resolves `logical` against the index, fetching (or re-fetching,
  // after the TTL) via `fetch` first when needed. Concurrent callers
  // serialize on the fetch so the index is pulled once, not per open.
  std::optional<Resolved> resolve(const std::string& logical,
                                  const FetchFn& fetch);

  // Drops the cached index so the next resolve re-fetches (used when
  // the serving endpoint turns out to be unreachable).
  void invalidate();

  // Observability for tests: how many fetches actually went out.
  uint64_t fetches() const;

 private:
  enum class State { kUnknown, kPresent, kAbsent };

  bool fresh_locked() const;

  const int64_t ttl_ms_;
  mutable std::mutex mutex_;
  State state_ = State::kUnknown;
  int64_t fetched_at_ms_ = 0;
  uint64_t fetches_ = 0;
  storage::PackedIndex index_;
};

}  // namespace hvac::client
