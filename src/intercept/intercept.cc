// libhvac_intercept.so — the LD_PRELOAD interposition layer
// (paper §III-F: "HVAC is built using an LD_PRELOAD mechanism for
// intercepting I/O related function calls", so DL applications need
// no code changes).
//
// Routing rules:
//   * Only read-only opens of paths under HVAC_DATASET_DIR are
//     redirected to HVAC; everything else goes to the real libc.
//   * Virtual fds live at >= FdTable::kVirtualFdBase, far above any
//     real descriptor, so read/lseek/close route by range.
//   * A thread-local recursion guard keeps the HVAC client's own
//     syscalls (socket I/O, PFS fallback open/read) from re-entering
//     the shim.
//   * If bootstrap fails (env unset, servers unreachable) the shim
//     degrades to pure passthrough — the application must never
//     break because the cache is missing (fail-open, §III-H).
#include <dlfcn.h>
#include <fcntl.h>
#include <stdarg.h>
#include <stdio.h>  // fopencookie
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "client/hvac_client.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/log.h"
#include "common/trace.h"
#include "core/fd_table.h"
#include "core/metrics.h"

namespace {

using hvac::client::HvacClient;
using hvac::client::options_from_env;
using hvac::core::FdTable;

// ---- real libc entry points --------------------------------------------

using open_fn = int (*)(const char*, int, ...);
using openat_fn = int (*)(int, const char*, int, ...);
using read_fn = ssize_t (*)(int, void*, size_t);
using pread_fn = ssize_t (*)(int, void*, size_t, off_t);
using write_fn = ssize_t (*)(int, const void*, size_t);
using pwrite_fn = ssize_t (*)(int, const void*, size_t, off_t);
using lseek_fn = off_t (*)(int, off_t, int);
using close_fn = int (*)(int);
using fsync_fn = int (*)(int);

template <typename Fn>
Fn resolve(const char* name) {
  void* sym = ::dlsym(RTLD_NEXT, name);
  return reinterpret_cast<Fn>(sym);
}

open_fn real_open() {
  static open_fn fn = resolve<open_fn>("open");
  return fn;
}
open_fn real_open64() {
  static open_fn fn = resolve<open_fn>("open64");
  return fn;
}
openat_fn real_openat() {
  static openat_fn fn = resolve<openat_fn>("openat");
  return fn;
}
read_fn real_read() {
  static read_fn fn = resolve<read_fn>("read");
  return fn;
}
pread_fn real_pread() {
  static pread_fn fn = resolve<pread_fn>("pread");
  return fn;
}
write_fn real_write() {
  static write_fn fn = resolve<write_fn>("write");
  return fn;
}
pwrite_fn real_pwrite() {
  static pwrite_fn fn = resolve<pwrite_fn>("pwrite");
  return fn;
}
fsync_fn real_fsync() {
  static fsync_fn fn = resolve<fsync_fn>("fsync");
  return fn;
}
fsync_fn real_fdatasync() {
  static fsync_fn fn = resolve<fsync_fn>("fdatasync");
  return fn;
}
lseek_fn real_lseek() {
  static lseek_fn fn = resolve<lseek_fn>("lseek");
  return fn;
}
close_fn real_close() {
  static close_fn fn = resolve<close_fn>("close");
  return fn;
}

// ---- recursion guard ------------------------------------------------------

thread_local int g_in_shim = 0;

class ShimGuard {
 public:
  ShimGuard() { ++g_in_shim; }
  ~ShimGuard() { --g_in_shim; }
  ShimGuard(const ShimGuard&) = delete;
  ShimGuard& operator=(const ShimGuard&) = delete;
};

// ---- client bootstrap ------------------------------------------------------

std::atomic<int> g_state{0};  // 0 = uninit, 1 = active, 2 = disabled
HvacClient* g_client = nullptr;  // leaked on purpose: outlives exit hooks
std::mutex g_init_mutex;

// HVAC_STATS_FILE: dump the client's counters as JSON when the
// application exits, so a training job leaves a per-rank I/O summary
// behind without anyone instrumenting it (shim-side counterpart of
// `hvacctl metrics --json`).
void dump_stats_at_exit() {
  const auto path = hvac::env_string("HVAC_STATS_FILE");
  if (!path.has_value() || path->empty() || g_client == nullptr) return;
  ShimGuard guard;  // plain libc I/O below must not re-enter the shim
  FILE* out = ::fopen(path->c_str(), "w");
  if (out == nullptr) return;
  const std::string json =
      hvac::client::stats_to_json(g_client->stats());
  std::fputs(json.c_str(), out);
  std::fputc('\n', out);
  ::fclose(out);
}

bool client_active() {
  int state = g_state.load(std::memory_order_acquire);
  if (state == 1) return true;
  if (state == 2) return false;
  std::lock_guard<std::mutex> lock(g_init_mutex);
  state = g_state.load(std::memory_order_acquire);
  if (state != 0) return state == 1;
  ShimGuard guard;  // bootstrap does real I/O
  if (hvac::env_bool_or("HVAC_INTERCEPT_DISABLE", false)) {
    g_state.store(2, std::memory_order_release);
    return false;
  }
  // Arm HVAC_FAULT here, inside the guard, rather than from some
  // static constructor: interposed libc symbols are callable before
  // our own globals are built, and the harness init only touches
  // getenv + its own statics (constructor-safe by design).
  hvac::fault::init_from_env();
  auto options = options_from_env();
  if (!options.ok()) {
    HVAC_LOG_INFO("hvac shim passthrough: " << options.error().to_string());
    g_state.store(2, std::memory_order_release);
    return false;
  }
  g_client = new HvacClient(std::move(options).value());
  HVAC_LOG_INFO("hvac shim active; dataset="
                << g_client->options().dataset_dir << " servers="
                << g_client->options().server_endpoints.size());
  std::atexit(dump_stats_at_exit);
  g_state.store(1, std::memory_order_release);
  return true;
}

bool want_intercept(const char* path, int flags) {
  // Copy to a local first: glibc declares these parameters nonnull,
  // but a defensive shim must not trust callers.
  const char* volatile p = path;
  if (g_in_shim > 0 || p == nullptr) return false;
  if ((flags & O_ACCMODE) != O_RDONLY) return false;  // reads only here
  if (!client_active()) return false;
  ShimGuard guard;
  return g_client->eligible(path);
}

// Checkpoint writes: O_WRONLY|O_CREAT opens under the dataset dir
// route to the write-back tier. Plain O_WRONLY (no O_CREAT) passes
// through — the write channel always creates its backing file, so
// routing a create-less open would succeed where POSIX says ENOENT.
// O_RDWR, O_APPEND and O_EXCL pass through too: the write channel has
// no read-back, append-offset or exclusivity semantics, and
// mis-promising those would corrupt checkpoints.
bool want_intercept_write(const char* path, int flags) {
  const char* volatile p = path;
  if (g_in_shim > 0 || p == nullptr) return false;
  if ((flags & O_ACCMODE) != O_WRONLY) return false;
  if ((flags & O_CREAT) == 0) return false;
  if ((flags & (O_APPEND | O_EXCL)) != 0) return false;
  if (!client_active()) return false;
  ShimGuard guard;
  return g_client->eligible(path);
}

// Independent wall-clock measurement of every intercepted read, taken
// at the shim boundary (the closest observable proxy for trainer
// stall). The client's per-bucket stall attribution must reconcile
// with this total — the telemetry CI leg asserts it within tolerance.
class ShimReadTimer {
 public:
  ShimReadTimer() : t0_(hvac::trace::now_ns()) {}
  ~ShimReadTimer() {
    auto& sc = hvac::core::StallCounters::global();
    sc.shim_read_wall_ns.fetch_add(hvac::trace::now_ns() - t0_,
                                   std::memory_order_relaxed);
    sc.shim_reads.fetch_add(1, std::memory_order_relaxed);
  }
  ShimReadTimer(const ShimReadTimer&) = delete;
  ShimReadTimer& operator=(const ShimReadTimer&) = delete;

 private:
  uint64_t t0_;
};

int do_open(const char* path) {
  ShimGuard guard;
  // Shim entry points root the trace: everything below (client open,
  // RPCs, mover work on the server) hangs off this span.
  hvac::trace::Span span("shim.open");
  auto vfd = g_client->open(path);
  if (!vfd.ok()) {
    errno = hvac::error_code_to_errno(vfd.error().code);
    return -1;
  }
  return *vfd;
}

int do_open_write(const char* path, bool trunc) {
  ShimGuard guard;
  hvac::trace::Span span("shim.open_write");
  auto vfd = g_client->open_write(path, trunc);
  if (!vfd.ok()) {
    errno = hvac::error_code_to_errno(vfd.error().code);
    return -1;
  }
  return *vfd;
}

}  // namespace

extern "C" {

int open(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  if (want_intercept(path, flags)) return do_open(path);
  if (want_intercept_write(path, flags)) {
    return do_open_write(path, (flags & O_TRUNC) != 0);
  }
  return real_open()(path, flags, mode);
}

int open64(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  if (want_intercept(path, flags)) return do_open(path);
  if (want_intercept_write(path, flags)) {
    return do_open_write(path, (flags & O_TRUNC) != 0);
  }
  open_fn fn = real_open64() != nullptr ? real_open64() : real_open();
  return fn(path, flags, mode);
}

int openat(int dirfd, const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  // Only absolute paths (or AT_FDCWD-relative under the dataset dir
  // when cwd-independent) can be routed; relative-to-dirfd paths pass
  // through untouched.
  const char* volatile path_checked = path;
  if (path_checked != nullptr && path_checked[0] == '/') {
    if (want_intercept(path, flags)) return do_open(path);
    if (want_intercept_write(path, flags)) {
      return do_open_write(path, (flags & O_TRUNC) != 0);
    }
  }
  return real_openat()(dirfd, path, flags, mode);
}

ssize_t read(int fd, void* buf, size_t count) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    ShimGuard guard;
    hvac::trace::Span span("shim.read", count);
    ShimReadTimer timer;
    auto n = g_client->read(fd, buf, count);
    if (!n.ok()) {
      errno = hvac::error_code_to_errno(n.error().code);
      return -1;
    }
    return static_cast<ssize_t>(*n);
  }
  return real_read()(fd, buf, count);
}

ssize_t pread(int fd, void* buf, size_t count, off_t offset) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    ShimGuard guard;
    hvac::trace::Span span("shim.pread", count);
    ShimReadTimer timer;
    auto n = g_client->pread(fd, buf, count,
                             static_cast<uint64_t>(offset));
    if (!n.ok()) {
      errno = hvac::error_code_to_errno(n.error().code);
      return -1;
    }
    return static_cast<ssize_t>(*n);
  }
  return real_pread()(fd, buf, count, offset);
}

ssize_t pread64(int fd, void* buf, size_t count, off_t offset) {
  return pread(fd, buf, count, offset);
}

ssize_t write(int fd, const void* buf, size_t count) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    ShimGuard guard;
    hvac::trace::Span span("shim.write", count);
    auto n = g_client->write(fd, buf, count);
    if (!n.ok()) {
      errno = hvac::error_code_to_errno(n.error().code);
      return -1;
    }
    return static_cast<ssize_t>(*n);
  }
  return real_write()(fd, buf, count);
}

ssize_t pwrite(int fd, const void* buf, size_t count, off_t offset) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    ShimGuard guard;
    hvac::trace::Span span("shim.write", count);
    auto n = g_client->pwrite(fd, buf, count,
                              static_cast<uint64_t>(offset));
    if (!n.ok()) {
      errno = hvac::error_code_to_errno(n.error().code);
      return -1;
    }
    return static_cast<ssize_t>(*n);
  }
  return real_pwrite()(fd, buf, count, offset);
}

ssize_t pwrite64(int fd, const void* buf, size_t count, off_t offset) {
  return pwrite(fd, buf, count, offset);
}

int fsync(int fd) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    ShimGuard guard;
    hvac::trace::Span span("shim.fsync");
    auto status = g_client->fsync(fd);
    if (!status.ok()) {
      errno = hvac::error_code_to_errno(status.error().code);
      return -1;
    }
    return 0;
  }
  return real_fsync()(fd);
}

int fdatasync(int fd) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    // Same barrier as fsync: the journal commit IS the data sync.
    return fsync(fd);
  }
  return real_fdatasync()(fd);
}

off_t lseek(int fd, off_t offset, int whence) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    ShimGuard guard;
    auto pos = g_client->lseek(fd, static_cast<int64_t>(offset), whence);
    if (!pos.ok()) {
      errno = hvac::error_code_to_errno(pos.error().code);
      return -1;
    }
    return static_cast<off_t>(*pos);
  }
  return real_lseek()(fd, offset, whence);
}

off_t lseek64(int fd, off_t offset, int whence) {
  return lseek(fd, offset, whence);
}

int close(int fd) {
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr) {
    ShimGuard guard;
    hvac::trace::Span span("shim.close");
    auto status = g_client->close(fd);
    if (!status.ok()) {
      errno = hvac::error_code_to_errno(status.error().code);
      return -1;
    }
    return 0;
  }
  return real_close()(fd);
}

// ---- stdio interception ----------------------------------------------------
// Many data loaders (NumPy, PIL, plain Python file objects) read via
// stdio rather than raw syscalls. fopencookie() lets us hand back a
// real FILE* whose underlying I/O is routed through the HVAC client,
// so buffered fread/fseek work unmodified.

static ssize_t hvac_cookie_read(void* cookie, char* buf, size_t size) {
  const int vfd = static_cast<int>(reinterpret_cast<intptr_t>(cookie));
  ShimGuard guard;
  ShimReadTimer timer;
  auto n = g_client->read(vfd, buf, size);
  if (!n.ok()) {
    errno = hvac::error_code_to_errno(n.error().code);
    return -1;
  }
  return static_cast<ssize_t>(*n);
}

static int hvac_cookie_seek(void* cookie, off64_t* offset, int whence) {
  const int vfd = static_cast<int>(reinterpret_cast<intptr_t>(cookie));
  ShimGuard guard;
  auto pos = g_client->lseek(vfd, static_cast<int64_t>(*offset), whence);
  if (!pos.ok()) {
    errno = hvac::error_code_to_errno(pos.error().code);
    return -1;
  }
  *offset = static_cast<off64_t>(*pos);
  return 0;
}

static int hvac_cookie_close(void* cookie) {
  const int vfd = static_cast<int>(reinterpret_cast<intptr_t>(cookie));
  ShimGuard guard;
  auto status = g_client->close(vfd);
  if (!status.ok()) {
    errno = hvac::error_code_to_errno(status.error().code);
    return -1;
  }
  return 0;
}

static bool mode_is_read_only(const char* mode) {
  // "r", "rb", "rm", "rbe", ... — anything without +/w/a.
  if (mode == nullptr || mode[0] != 'r') return false;
  for (const char* p = mode + 1; *p != '\0'; ++p) {
    if (*p == '+' || *p == 'w' || *p == 'a') return false;
  }
  return true;
}

static FILE* fopen_impl(const char* path) {
  const int vfd = do_open(path);
  if (vfd < 0) return nullptr;
  cookie_io_functions_t io{};
  io.read = hvac_cookie_read;
  io.write = nullptr;  // read-only cache
  io.seek = hvac_cookie_seek;
  io.close = hvac_cookie_close;
  FILE* f = ::fopencookie(reinterpret_cast<void*>(intptr_t{vfd}), "r", io);
  if (f == nullptr) {
    ShimGuard guard;
    (void)g_client->close(vfd);
  }
  return f;
}

FILE* fopen(const char* path, const char* mode) {
  if (mode_is_read_only(mode) && want_intercept(path, O_RDONLY)) {
    return fopen_impl(path);
  }
  using fopen_fn = FILE* (*)(const char*, const char*);
  static fopen_fn fn = resolve<fopen_fn>("fopen");
  return fn(path, mode);
}

FILE* fopen64(const char* path, const char* mode) {
  if (mode_is_read_only(mode) && want_intercept(path, O_RDONLY)) {
    return fopen_impl(path);
  }
  using fopen_fn = FILE* (*)(const char*, const char*);
  static fopen_fn fn = resolve<fopen_fn>("fopen64");
  if (fn == nullptr) fn = resolve<fopen_fn>("fopen");
  return fn(path, mode);
}

// Applications commonly fstat a freshly opened fd to size their read
// buffer; synthesize a regular-file stat for virtual fds.
int fstat(int fd, struct stat* st) {
  struct stat* volatile st_checked = st;
  if (g_in_shim == 0 && FdTable::is_virtual(fd) && g_client != nullptr &&
      st_checked != nullptr) {
    ShimGuard guard;
    auto pos = g_client->lseek(fd, 0, SEEK_CUR);
    auto end = g_client->lseek(fd, 0, SEEK_END);
    if (pos.ok() && end.ok()) {
      (void)g_client->lseek(fd, *pos, SEEK_SET);
      std::memset(st, 0, sizeof(*st));
      st->st_mode = S_IFREG | 0444;
      st->st_size = static_cast<off_t>(*end);
      st->st_blksize = 4096;
      st->st_nlink = 1;
      return 0;
    }
    errno = EBADF;
    return -1;
  }
  using fstat_fn = int (*)(int, struct stat*);
  static fstat_fn fn = resolve<fstat_fn>("fstat");
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  return fn(fd, st);
}

}  // extern "C"
