#include "server/prom_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace hvac::server {

namespace {

void put_family(std::string& o, const char* name, const char* type,
                const char* help) {
  o += "# HELP ";
  o += name;
  o += ' ';
  o += help;
  o += "\n# TYPE ";
  o += name;
  o += ' ';
  o += type;
  o += '\n';
}

// One label-free counter family. OpenMetrics: the family name carries
// no suffix; the sample is <name>_total.
void counter(std::string& o, const char* name, const char* help,
             uint64_t value) {
  put_family(o, name, "counter", help);
  o += name;
  o += "_total ";
  o += std::to_string(value);
  o += '\n';
}

void gauge(std::string& o, const char* name, const char* help,
           uint64_t value) {
  put_family(o, name, "gauge", help);
  o += name;
  o += ' ';
  o += std::to_string(value);
  o += '\n';
}

void fmt_double(std::string& o, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  o += buf;
}

}  // namespace

std::string render_openmetrics(const core::MetricsFrame& f) {
  std::string o;
  o.reserve(16384);

  counter(o, "hvac_cache_hits", "Reads served from the node-local cache",
          f.cache.hits);
  counter(o, "hvac_cache_misses", "Reads that required a PFS fetch",
          f.cache.misses);
  counter(o, "hvac_cache_dedup_waits",
          "First-reads coalesced onto an in-flight copy",
          f.cache.dedup_waits);
  counter(o, "hvac_cache_evictions", "Cache evictions", f.cache.evictions);
  counter(o, "hvac_cache_bytes_from_cache",
          "Bytes served from the node-local cache",
          f.cache.bytes_from_cache);
  counter(o, "hvac_cache_bytes_from_pfs", "Bytes read from the PFS",
          f.cache.bytes_from_pfs);
  counter(o, "hvac_cache_pfs_fallbacks",
          "Requests served directly from the PFS", f.cache.pfs_fallbacks);
  gauge(o, "hvac_open_fds", "Open remote file handles", f.open_fds);

  counter(o, "hvac_handle_cache_hits", "Open-handle cache hits",
          f.handle_cache.hits);
  counter(o, "hvac_handle_cache_misses", "Open-handle cache misses",
          f.handle_cache.misses);
  counter(o, "hvac_handle_cache_deferred_closes",
          "Handles evicted while pinned", f.handle_cache.deferred_closes);
  gauge(o, "hvac_handle_cache_open", "Handle-cache resident entries",
        f.handle_cache.open);
  gauge(o, "hvac_handle_cache_pinned", "Handle-cache pinned entries",
        f.handle_cache.pinned);
  gauge(o, "hvac_handle_cache_capacity", "Handle-cache slots",
        f.handle_cache.capacity);

  counter(o, "hvac_buffer_pool_leases", "Buffer-pool acquires",
          f.buffer_pool.leases);
  counter(o, "hvac_buffer_pool_hits", "Leases served from a free list",
          f.buffer_pool.pool_hits);
  counter(o, "hvac_buffer_pool_fallback_allocs",
          "Leases that hit the allocator", f.buffer_pool.fallback_allocs);
  counter(o, "hvac_buffer_pool_recycled", "Leases returned to a free list",
          f.buffer_pool.recycled);
  counter(o, "hvac_buffer_pool_dropped", "Leases freed (list full)",
          f.buffer_pool.dropped);

  counter(o, "hvac_readahead_issued",
          "Chunks requested ahead of the application", f.readahead.issued);
  counter(o, "hvac_readahead_consumed",
          "Reads served from a pending chunk", f.readahead.consumed);
  counter(o, "hvac_readahead_wasted", "Pending chunks discarded unread",
          f.readahead.wasted);

  counter(o, "hvac_resilience_breaker_opens", "Circuit-breaker opens",
          f.resilience.breaker_opens);
  counter(o, "hvac_resilience_breaker_closes", "Circuit-breaker closes",
          f.resilience.breaker_closes);
  counter(o, "hvac_resilience_breaker_probes", "Half-open probes",
          f.resilience.breaker_probes);
  counter(o, "hvac_resilience_breaker_shed",
          "Calls shed by an open breaker", f.resilience.breaker_shed);
  counter(o, "hvac_resilience_retries", "Idempotent call retries",
          f.resilience.retries);
  counter(o, "hvac_resilience_deadline_misses", "Per-call deadline misses",
          f.resilience.deadline_misses);
  counter(o, "hvac_resilience_server_shed",
          "Requests shed by server backpressure", f.resilience.server_shed);
  counter(o, "hvac_resilience_mover_rejects",
          "Fetches rejected by the mover queue", f.resilience.mover_rejects);
  counter(o, "hvac_resilience_drains", "Graceful drains",
          f.resilience.drains);
  counter(o, "hvac_resilience_drained_requests",
          "Requests completed during drain", f.resilience.drained_requests);
  counter(o, "hvac_resilience_faults_injected",
          "HVAC_FAULT harness activations", f.resilience.faults_injected);

  counter(o, "hvac_zerocopy_sendfile_sends", "sendfile response sends",
          f.zerocopy.sendfile_sends);
  counter(o, "hvac_zerocopy_splice_sends", "splice response sends",
          f.zerocopy.splice_sends);
  counter(o, "hvac_zerocopy_fallback_sends",
          "Extents staged through the pool", f.zerocopy.fallback_sends);
  counter(o, "hvac_zerocopy_sendfile_bytes", "Bytes sent via sendfile",
          f.zerocopy.sendfile_bytes);
  counter(o, "hvac_zerocopy_splice_bytes", "Bytes sent via splice",
          f.zerocopy.splice_bytes);
  counter(o, "hvac_zerocopy_short_resumes",
          "Partial kernel sends resumed in place", f.zerocopy.short_resumes);

  counter(o, "hvac_meta_cache_hits", "Client metadata-cache hits",
          f.meta_cache.hits);
  counter(o, "hvac_meta_cache_misses", "Client metadata-cache misses",
          f.meta_cache.misses);
  counter(o, "hvac_meta_cache_expired", "Metadata entries aged out",
          f.meta_cache.expired);
  counter(o, "hvac_meta_cache_invalidated",
          "Metadata entries dropped on failure", f.meta_cache.invalidated);

  counter(o, "hvac_trace_emitted", "Trace spans emitted", f.trace.emitted);
  counter(o, "hvac_trace_dropped", "Trace spans dropped (ring full)",
          f.trace.dropped);
  gauge(o, "hvac_trace_rings", "Per-thread trace rings", f.trace.rings);
  gauge(o, "hvac_trace_ring_capacity", "Trace ring capacity",
        f.trace.ring_capacity);
  gauge(o, "hvac_trace_occupancy", "Trace ring occupancy",
        f.trace.occupancy);

  // Reactor rows as one family per word, reactor index as a label.
  struct ReactorField {
    const char* name;
    const char* help;
    uint64_t core::ReactorStats::PerReactor::* member;
  };
  const ReactorField reactor_fields[] = {
      {"hvac_reactor_conns", "Connections accepted",
       &core::ReactorStats::PerReactor::conns},
      {"hvac_reactor_requests", "Requests dispatched",
       &core::ReactorStats::PerReactor::requests},
      {"hvac_reactor_steals", "Requests stolen from another reactor",
       &core::ReactorStats::PerReactor::steals},
      {"hvac_reactor_shed", "Requests shed by backpressure",
       &core::ReactorStats::PerReactor::shed},
      {"hvac_reactor_steal_backoffs", "Steal scans skipped by the throttle",
       &core::ReactorStats::PerReactor::steal_backoffs},
  };
  for (const ReactorField& rf : reactor_fields) {
    put_family(o, rf.name, "counter", rf.help);
    for (size_t i = 0; i < f.reactor.reactors.size(); ++i) {
      o += rf.name;
      o += "_total{reactor=\"";
      o += std::to_string(i);
      o += "\"} ";
      o += std::to_string(f.reactor.reactors[i].*(rf.member));
      o += '\n';
    }
  }

  counter(o, "hvac_write_back_writes", "kWrite ops acked", f.write_back.writes);
  counter(o, "hvac_write_back_bytes_written", "Bytes written back",
          f.write_back.bytes_written);
  counter(o, "hvac_write_back_fsyncs", "Durability barriers honored",
          f.write_back.fsyncs);
  counter(o, "hvac_write_back_flushed_files", "Files flushed to the PFS",
          f.write_back.flushed_files);
  counter(o, "hvac_write_back_flush_retries", "Flush retries",
          f.write_back.flush_retries);
  counter(o, "hvac_write_back_flush_failures", "Flush failures",
          f.write_back.flush_failures);
  counter(o, "hvac_write_back_write_through_sheds",
          "Handles shed to write-through", f.write_back.write_through_sheds);
  counter(o, "hvac_write_back_write_through_bytes",
          "Bytes written through to the PFS",
          f.write_back.write_through_bytes);
  gauge(o, "hvac_write_back_dirty_bytes", "Unflushed write-back bytes",
        f.write_back.dirty_bytes);
  gauge(o, "hvac_write_back_dirty_files", "Unflushed write-back files",
        f.write_back.dirty_files);
  gauge(o, "hvac_write_back_journal_records", "Journal depth in records",
        f.write_back.journal_records);
  gauge(o, "hvac_write_back_journal_bytes", "Journal depth in bytes",
        f.write_back.journal_bytes);
  gauge(o, "hvac_write_back_flush_queue_depth", "Flush queue depth",
        f.write_back.flush_queue_depth);
  gauge(o, "hvac_write_back_flush_inflight", "Flushes in flight",
        f.write_back.flush_inflight);
  gauge(o, "hvac_write_back_flush_lag_ms",
        "Age of the oldest unflushed file (ms)", f.write_back.flush_lag_ms);

  counter(o, "hvac_prefetch_planned", "Samples accepted into access plans",
          f.prefetch.planned);
  counter(o, "hvac_prefetch_issued", "Samples sent in prefetch batches",
          f.prefetch.issued);
  counter(o, "hvac_prefetch_completed", "Prefetches answered cached",
          f.prefetch.completed);
  counter(o, "hvac_prefetch_shed", "Prefetches shed by mover backpressure",
          f.prefetch.shed);
  counter(o, "hvac_prefetch_late", "Samples the cursor beat the prefetch to",
          f.prefetch.late);
  counter(o, "hvac_prefetch_hit_after",
          "Samples found warmed by their prefetch",
          f.prefetch.hit_after_prefetch);
  counter(o, "hvac_prefetch_deduped",
          "Mover fetches coalesced onto an in-flight one",
          f.prefetch.deduped);
  gauge(o, "hvac_prefetch_dedup_inflight", "Paths with a fetch in flight",
        f.prefetch.dedup_inflight);

  // Stall attribution: seconds per bucket, summed over the epoch
  // window (the per-epoch rows stay in the frame/JSON surfaces).
  {
    uint64_t reads = 0;
    double by_bucket[5] = {};
    for (const core::StallEpochRow& e : f.stall.epochs) {
      reads += e.reads;
      by_bucket[0] += double(e.local_hit_ns) / 1e9;
      by_bucket[1] += double(e.remote_rpc_ns) / 1e9;
      by_bucket[2] += double(e.pfs_wait_ns) / 1e9;
      by_bucket[3] += double(e.backpressure_ns) / 1e9;
      by_bucket[4] += double(e.retry_ns) / 1e9;
    }
    counter(o, "hvac_stall_reads", "Intercepted reads attributed", reads);
    put_family(o, "hvac_stall_seconds", "counter",
               "Intercepted-read wall time by stall bucket");
    const char* names[5] = {"local_hit", "remote_rpc", "pfs_wait",
                            "backpressure", "retry"};
    for (size_t b = 0; b < 5; ++b) {
      o += "hvac_stall_seconds_total{bucket=\"";
      o += names[b];
      o += "\"} ";
      fmt_double(o, by_bucket[b]);
      o += '\n';
    }
  }

  // Per-op handler latency as a native histogram family. Bucket i of
  // the log2 histogram covers [2^i, 2^(i+1)) ns, so its cumulative
  // upper bound is 2^(i+1) ns rendered in seconds.
  put_family(o, "hvac_op_latency_seconds", "histogram",
             "Per-op handler latency");
  for (const auto& [op, snap] : f.op_latency) {
    const std::string op_label = core::op_name(op);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < core::kLatencyBuckets; ++i) {
      cumulative += snap.buckets[i];
      o += "hvac_op_latency_seconds_bucket{op=\"";
      o += op_label;
      o += "\",le=\"";
      if (i + 1 >= core::kLatencyBuckets) {
        o += "+Inf";
      } else {
        fmt_double(o, double(uint64_t{1} << (i + 1)) / 1e9);
      }
      o += "\"} ";
      o += std::to_string(cumulative);
      o += '\n';
    }
    o += "hvac_op_latency_seconds_sum{op=\"";
    o += op_label;
    o += "\"} ";
    fmt_double(o, double(snap.total_ns) / 1e9);
    o += '\n';
    o += "hvac_op_latency_seconds_count{op=\"";
    o += op_label;
    o += "\"} ";
    o += std::to_string(snap.count);
    o += '\n';
  }

  o += "# EOF\n";
  return o;
}

PromExporter::PromExporter(uint16_t port, FrameSource source)
    : source_(std::move(source)), requested_port_(port) {}

PromExporter::~PromExporter() { stop(); }

Status PromExporter::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Error::from_errno(errno, "prom exporter socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(requested_port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error::from_errno(err, "prom exporter bind");
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error::from_errno(err, "prom exporter listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return Status::Ok();
}

void PromExporter::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void PromExporter::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 200);
    if (n <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void PromExporter::handle_connection(int fd) {
  // One request per connection; read until the header terminator or
  // a short deadline, whichever first. Scrapers send tiny requests.
  std::string req;
  char buf[2048];
  for (int rounds = 0; rounds < 8; ++rounds) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos || req.size() > 8192) break;
  }
  std::string body;
  std::string head;
  const bool is_metrics = req.rfind("GET /metrics", 0) == 0;
  if (is_metrics) {
    body = render_openmetrics(source_());
    head = "HTTP/1.1 200 OK\r\n"
           "Content-Type: application/openmetrics-text; version=1.0.0; "
           "charset=utf-8\r\n";
  } else {
    body = "not found\n";
    head = "HTTP/1.1 404 Not Found\r\n"
           "Content-Type: text/plain; charset=utf-8\r\n";
  }
  head += "Content-Length: " + std::to_string(body.size()) +
          "\r\nConnection: close\r\n\r\n";
  const std::string resp = head + body;
  size_t off = 0;
  while (off < resp.size()) {
    const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

}  // namespace hvac::server
