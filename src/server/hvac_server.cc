#include "server/hvac_server.h"

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/log.h"
#include "rpc/health.h"
#include "rpc/wire.h"

namespace hvac::server {

using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

HvacServer::HvacServer(storage::PfsBackend* pfs, HvacServerOptions options)
    : pfs_(pfs),
      options_(std::move(options)),
      rpc_(rpc::RpcServerOptions{options_.bind_address,
                                 options_.rpc_handler_threads}) {
  auto store = std::make_unique<storage::LocalStore>(
      options_.cache_dir, options_.cache_capacity_bytes,
      options_.handle_cache_slots);
  auto eviction = core::make_eviction_policy(options_.eviction_policy,
                                             options_.seed);
  cache_ = std::make_unique<core::CacheManager>(pfs_, std::move(store),
                                                std::move(eviction));
  size_t mover_queue = options_.mover_queue_capacity;
  const int64_t env_queue = env_int_or("HVAC_MOVER_QUEUE", 0);
  if (env_queue > 0 && static_cast<size_t>(env_queue) < mover_queue) {
    mover_queue = static_cast<size_t>(env_queue);
  }
  mover_ = std::make_unique<core::DataMover>(
      cache_.get(), options_.data_mover_threads, mover_queue);
  register_handlers();
}

HvacServer::~HvacServer() { stop(); }

Status HvacServer::start() {
  fault::init_from_env();
  return rpc_.start();
}

void HvacServer::drain(int timeout_ms) { rpc_.drain(timeout_ms); }

void HvacServer::stop() {
  rpc_.stop();
  if (mover_) mover_->shutdown();
  {
    std::lock_guard<std::mutex> lock(fds_mutex_);
    open_fds_.clear();
  }
  // Cache lifetime is coupled to the server (job) lifetime: purge the
  // node-local store on teardown (paper §III-D).
  if (cache_) cache_->purge();
}

size_t HvacServer::open_remote_fds() const {
  std::lock_guard<std::mutex> lock(
      const_cast<std::mutex&>(fds_mutex_));
  return open_fds_.size();
}

void HvacServer::register_handlers() {
  // Every handler runs under a ScopedLatencyTimer so the metrics frame
  // can report per-op p50/p99; the timer covers handler execution on
  // the pool thread (queueing and socket time excluded).
  rpc_.register_handler(proto::kPing, [this](const Bytes&) -> Result<Bytes> {
    core::ScopedLatencyTimer t(latency_, proto::kPing);
    return Bytes{};
  });
  rpc_.register_handler(proto::kOpen, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kOpen);
    return handle_open(req);
  });
  rpc_.register_payload_handler(proto::kRead, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kRead);
    return handle_read(req);
  });
  rpc_.register_handler(proto::kClose, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kClose);
    return handle_close(req);
  });
  rpc_.register_handler(proto::kStat, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kStat);
    return handle_stat(req);
  });
  rpc_.register_handler(proto::kPrefetch, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kPrefetch);
    return handle_prefetch(req);
  });
  rpc_.register_handler(proto::kMetrics, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kMetrics);
    return handle_metrics(req);
  });
  rpc_.register_payload_handler(proto::kReadSegment,
                                [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kReadSegment);
    return handle_read_segment(req);
  });
}

Result<rpc::Payload> HvacServer::handle_read_segment(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  HVAC_ASSIGN_OR_RETURN(uint64_t seg_index, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint64_t segment_bytes, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint64_t offset_in_segment, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint32_t count, r.get_u32());
  if (count > proto::kMaxReadChunk || segment_bytes == 0) {
    return Error(ErrorCode::kInvalidArgument, "bad segment read");
  }
  // pread lands directly in a pooled payload buffer, after the blob
  // length prefix; no copy between the file and the socket.
  hvac::BufferPool::Lease lease =
      hvac::BufferPool::global().acquire(rpc::kBlobPrefix + count);
  HVAC_ASSIGN_OR_RETURN(
      size_t n, cache_->pread_segment(path, seg_index, segment_bytes,
                                      lease.data() + rpc::kBlobPrefix,
                                      count, offset_in_segment));
  return rpc::blob_payload(std::move(lease), n);
}

Result<Bytes> HvacServer::handle_open(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());

  // Forward to the data-mover FIFO (paper §III-D steps 4-6) and wait
  // for the cache decision. Retry if the fresh copy is evicted before
  // we open it (possible under heavy capacity pressure); fall back to
  // the PFS otherwise.
  auto open_file = std::make_shared<OpenFile>();
  open_file->logical_path = path;
  open_file->pfs_fallback = true;
  for (int attempt = 0; attempt < 3; ++attempt) {
    HVAC_ASSIGN_OR_RETURN(bool cached, mover_->fetch(path));
    if (!cached) break;  // capacity overflow: serve from the PFS
    auto f = cache_->open_cached(path);
    if (f.ok()) {
      open_file->file = std::move(f).value();
      open_file->pfs_fallback = false;
      break;
    }
    if (f.error().code != ErrorCode::kNotFound) return f.error();
  }
  uint64_t size = 0;
  if (open_file->pfs_fallback) {
    HVAC_ASSIGN_OR_RETURN(open_file->file, pfs_->open(path));
  }
  HVAC_ASSIGN_OR_RETURN(size, open_file->file.size());
  const bool cached = !open_file->pfs_fallback;

  const uint64_t remote_fd =
      next_remote_fd_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(fds_mutex_);
    open_fds_[remote_fd] = open_file;
  }

  WireWriter w;
  w.put_u64(remote_fd);
  w.put_u64(size);
  w.put_u8(cached ? proto::kFromCache : proto::kFromPfsFallback);
  return std::move(w).take();
}

Result<rpc::Payload> HvacServer::handle_read(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint64_t offset, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint32_t count, r.get_u32());
  if (count > proto::kMaxReadChunk) {
    return Error(ErrorCode::kInvalidArgument, "read chunk too large");
  }

  std::shared_ptr<OpenFile> open_file;
  {
    std::lock_guard<std::mutex> lock(fds_mutex_);
    auto it = open_fds_.find(remote_fd);
    if (it == open_fds_.end()) {
      return Error(ErrorCode::kBadFd,
                   "unknown remote fd " + std::to_string(remote_fd));
    }
    open_file = it->second;
  }

  hvac::BufferPool::Lease lease =
      hvac::BufferPool::global().acquire(rpc::kBlobPrefix + count);
  uint8_t* dst = lease.data() + rpc::kBlobPrefix;
  size_t n = 0;
  if (open_file->pfs_fallback) {
    HVAC_ASSIGN_OR_RETURN(n, pfs_->pread(open_file->file, dst, count,
                                         offset));
  } else {
    HVAC_ASSIGN_OR_RETURN(n, open_file->file.pread(dst, count, offset));
  }
  cache_->record_served_bytes(n, !open_file->pfs_fallback);
  return rpc::blob_payload(std::move(lease), n);
}

Result<Bytes> HvacServer::handle_close(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
  std::lock_guard<std::mutex> lock(fds_mutex_);
  if (open_fds_.erase(remote_fd) == 0) {
    return Error(ErrorCode::kBadFd,
                 "unknown remote fd " + std::to_string(remote_fd));
  }
  return Bytes{};
}

Result<Bytes> HvacServer::handle_stat(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  uint64_t size = 0;
  if (cache_->is_cached(path)) {
    HVAC_ASSIGN_OR_RETURN(storage::PosixFile f, cache_->open_cached(path));
    HVAC_ASSIGN_OR_RETURN(size, f.size());
  } else {
    HVAC_ASSIGN_OR_RETURN(size, pfs_->size_of(path));
  }
  WireWriter w;
  w.put_u64(size);
  return std::move(w).take();
}

Result<Bytes> HvacServer::handle_prefetch(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  HVAC_ASSIGN_OR_RETURN(bool cached, mover_->fetch(path));
  WireWriter w;
  w.put_u8(cached ? 1 : 0);
  return std::move(w).take();
}

core::MetricsFrame HvacServer::metrics_frame() const {
  core::MetricsFrame f;
  f.cache = cache_->metrics();
  f.open_fds = open_remote_fds();

  const storage::OpenHandleCache& hc = cache_->store().handle_cache();
  f.handle_cache.hits = hc.hits();
  f.handle_cache.misses = hc.misses();
  f.handle_cache.open = hc.open_handles();
  f.handle_cache.pinned = hc.pinned_handles();
  f.handle_cache.deferred_closes = hc.deferred_closes();
  f.handle_cache.capacity = hc.capacity();

  const BufferPool::Stats bp = BufferPool::global().stats();
  f.buffer_pool.leases = bp.hits + bp.misses + bp.unpooled;
  f.buffer_pool.pool_hits = bp.hits;
  f.buffer_pool.fallback_allocs = bp.misses + bp.unpooled;
  f.buffer_pool.recycled = bp.recycled;
  f.buffer_pool.dropped = bp.dropped;

  const core::ReadAheadCounters& ra = core::ReadAheadCounters::global();
  f.readahead.issued = ra.issued.load(std::memory_order_relaxed);
  f.readahead.consumed = ra.consumed.load(std::memory_order_relaxed);
  f.readahead.wasted = ra.wasted.load(std::memory_order_relaxed);

  // Resilience counters are process-wide (rpc/health.h globals), like
  // the buffer pool: every instance in one process reports the same
  // values and NodeRuntime takes them once.
  const rpc::ResilienceCounters& rc = rpc::ResilienceCounters::global();
  f.resilience.breaker_opens =
      rc.breaker_opens.load(std::memory_order_relaxed);
  f.resilience.breaker_closes =
      rc.breaker_closes.load(std::memory_order_relaxed);
  f.resilience.breaker_probes =
      rc.breaker_probes.load(std::memory_order_relaxed);
  f.resilience.breaker_shed =
      rc.breaker_shed.load(std::memory_order_relaxed);
  f.resilience.retries = rc.retries.load(std::memory_order_relaxed);
  f.resilience.deadline_misses =
      rc.deadline_misses.load(std::memory_order_relaxed);
  f.resilience.server_shed = rc.server_shed.load(std::memory_order_relaxed);
  f.resilience.mover_rejects =
      rc.mover_rejects.load(std::memory_order_relaxed);
  f.resilience.drains = rc.drains.load(std::memory_order_relaxed);
  f.resilience.drained_requests =
      rc.drained_requests.load(std::memory_order_relaxed);
  f.resilience.faults_injected = fault::total_injected();

  f.op_latency = latency_.snapshot();
  return f;
}

Result<Bytes> HvacServer::handle_metrics(const Bytes&) {
  return metrics_frame().encode();
}

}  // namespace hvac::server
