#include "server/hvac_server.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/trace.h"
#include "core/trace_wire.h"
#include "rpc/health.h"
#include "rpc/wire.h"

namespace hvac::server {

using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

namespace {

rpc::RpcServerOptions make_rpc_options(const HvacServerOptions& o) {
  rpc::RpcServerOptions r;
  r.bind_address = o.bind_address;
  r.handler_threads = o.rpc_handler_threads;
  r.reactors = o.rpc_reactors;
  return r;
}

}  // namespace

HvacServer::HvacServer(storage::PfsBackend* pfs, HvacServerOptions options)
    : pfs_(pfs),
      options_(std::move(options)),
      rpc_(make_rpc_options(options_)) {
  if (options_.packed_enabled && env_bool_or("HVAC_PACK", true)) {
    auto packed = storage::PackedStore::load(pfs_->root());
    if (packed.ok()) {
      packed_ = std::move(packed).value();
    } else {
      // A corrupt index must not kill the server: the unpacked tree
      // (when present) still serves every sample through the regular
      // per-file path.
      HVAC_LOG_WARN("packed index disabled: "
                    << packed.error().to_string());
    }
  }
  auto store = std::make_unique<storage::LocalStore>(
      options_.cache_dir, options_.cache_capacity_bytes,
      options_.handle_cache_slots);
  auto eviction = core::make_eviction_policy(options_.eviction_policy,
                                             options_.seed);
  cache_ = std::make_unique<core::CacheManager>(pfs_, std::move(store),
                                                std::move(eviction));
  size_t mover_queue = options_.mover_queue_capacity;
  const int64_t env_queue = env_int_or("HVAC_MOVER_QUEUE", 0);
  if (env_queue > 0 && static_cast<size_t>(env_queue) < mover_queue) {
    mover_queue = static_cast<size_t>(env_queue);
  }
  mover_ = std::make_unique<core::DataMover>(
      cache_.get(), options_.data_mover_threads, mover_queue);
  if (options_.write_enabled) {
    // The flusher copies the store's physical file out to the PFS.
    // The seq snapshot taken before the copy lets on_flushed tell a
    // copy that includes every acked write from one that a late write
    // slipped past (see last_write_seq_).
    flusher_ = std::make_unique<core::FlushManager>(
        core::FlushManager::Options::from_env(),
        [this](const std::string& path) -> Status {
          {
            std::lock_guard<std::mutex> lock(write_state_mutex_);
            flush_snapshot_seq_[path] = last_write_seq_[path];
          }
          auto copied = pfs_->copy_in(
              cache_->store().physical_path(path), path);
          if (!copied.ok()) return copied.error();
          return Status::Ok();
        },
        [this](const std::string& path) { on_flushed(path); });
  }
  // Time-series collector config: options override, else env. The ring
  // exists either way so kTimeSeries always answers (empty when off).
  int ts_interval = options_.ts_interval_ms;
  if (ts_interval < 0) {
    ts_interval = static_cast<int>(env_int_or("HVAC_TS_INTERVAL_MS", 1000));
  }
  int ts_window = options_.ts_window;
  if (ts_window < 0) {
    ts_window = static_cast<int>(env_int_or("HVAC_TS_WINDOW", 300));
  }
  ts_interval_ms_ = ts_interval > 0 ? static_cast<uint32_t>(ts_interval) : 0;
  ts_ring_ = std::make_unique<core::TimeSeriesRing>(
      ts_window > 0 ? static_cast<size_t>(ts_window) : 1);
  register_handlers();
}

HvacServer::~HvacServer() { stop(); }

Status HvacServer::start() {
  fault::init_from_env();
  if (options_.write_enabled) {
    HVAC_RETURN_IF_ERROR(recover_journal());
  }
  HVAC_RETURN_IF_ERROR(rpc_.start());
  if (ts_interval_ms_ > 0 && !collector_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(collector_mutex_);
      collector_stop_ = false;
    }
    collector_ = std::thread([this] { collector_loop(); });
  }
  return Status::Ok();
}

void HvacServer::collector_loop() {
  core::MetricsFrame prev = metrics_frame();
  uint64_t prev_ns = trace::now_ns();
  std::unique_lock<std::mutex> lock(collector_mutex_);
  while (!collector_stop_) {
    if (collector_cv_.wait_for(lock,
                               std::chrono::milliseconds(ts_interval_ms_),
                               [this] { return collector_stop_; })) {
      break;
    }
    lock.unlock();
    core::MetricsFrame cur = metrics_frame();
    const uint64_t now = trace::now_ns();
    core::TimeSeriesSample s;
    s.t_ms = now / 1000000;
    s.interval_ms = static_cast<uint32_t>((now - prev_ns) / 1000000);
    s.delta = core::frame_delta(cur, prev);
    ts_ring_->push(std::move(s));
    prev = std::move(cur);
    prev_ns = now;
    lock.lock();
  }
}

Status HvacServer::recover_journal() {
  std::string dir = options_.journal_dir;
  if (dir.empty()) dir = env_string_or("HVAC_JOURNAL_DIR", "");
  if (dir.empty()) dir = options_.cache_dir;
  HVAC_RETURN_IF_ERROR(storage::make_directories(dir));
  // Per-instance file name (instances may share HVAC_JOURNAL_DIR):
  // keyed by the cache dir, which is unique per instance.
  char name[40];
  std::snprintf(name, sizeof(name), "hvac-%016llx.wal",
                static_cast<unsigned long long>(
                    stable_hash(options_.cache_dir)));
  HVAC_ASSIGN_OR_RETURN(journal_, storage::WriteJournal::open(
                                      path_join(dir, name)));

  // Re-apply the log into the local store. A record that no longer
  // fits the NVMe budget is applied anyway and logged — it carries
  // acked bytes, and the flusher drains it to the PFS right after.
  auto apply = [this](const std::string& path, uint64_t offset,
                      const void* data, size_t size) -> Status {
    HVAC_ASSIGN_OR_RETURN(storage::PosixFile f,
                          cache_->store().open_write(path));
    HVAC_ASSIGN_OR_RETURN(size_t n, f.pwrite(data, size, offset));
    (void)n;
    HVAC_ASSIGN_OR_RETURN(uint64_t sz, f.size());
    Status s = cache_->store().update_size(path, sz);
    if (!s.ok() && s.error().code == ErrorCode::kCapacity) {
      HVAC_LOG_WARN("replay over budget for " << path
                                              << " (keeping the bytes)");
      return Status::Ok();
    }
    return s;
  };
  auto truncate = [this](const std::string& path) -> Status {
    HVAC_ASSIGN_OR_RETURN(storage::PosixFile f,
                          cache_->store().open_write(path));
    HVAC_RETURN_IF_ERROR(f.truncate(0));
    return cache_->store().update_size(path, 0);
  };
  HVAC_ASSIGN_OR_RETURN(last_replay_, journal_->replay(apply, truncate));

  // Resume partial flushes: every path still dirty in the journal
  // goes back on the flusher's queue.
  for (const std::string& path : last_replay_.dirty_paths) {
    {
      std::lock_guard<std::mutex> lock(write_state_mutex_);
      last_write_seq_[path] = ++write_seq_counter_;
      dirty_bytes_by_path_[path];  // mark dirty (presence)
    }
    Status s = flusher_->submit(path);
    if (!s.ok()) {
      HVAC_LOG_WARN("replay resubmit failed for " << path << ": "
                                                  << s.error().to_string());
    }
  }
  if (last_replay_.writes_applied > 0 || last_replay_.truncated_bytes > 0) {
    HVAC_LOG_INFO("journal replay: "
                  << last_replay_.writes_applied << " writes ("
                  << last_replay_.bytes_applied << " bytes), "
                  << last_replay_.dirty_paths.size() << " dirty, "
                  << last_replay_.truncated_bytes << " torn bytes cut");
  }
  return Status::Ok();
}

void HvacServer::drain(int timeout_ms) { rpc_.drain(timeout_ms); }

void HvacServer::stop() {
  {
    std::lock_guard<std::mutex> lock(collector_mutex_);
    collector_stop_ = true;
  }
  collector_cv_.notify_all();
  if (collector_.joinable()) collector_.join();
  rpc_.stop();
  // Give dirty checkpoints a bounded chance to reach the PFS; what
  // does not drain stays in the journal (write records carry the
  // bytes, so purging the local copies below loses nothing — replay
  // reconstructs them on the next start).
  bool drained = true;
  if (flusher_) {
    drained = flusher_->drain(5000).ok();
    if (!drained) {
      HVAC_LOG_WARN("flush drain timed out; journal covers the rest");
    }
    flusher_->shutdown();
  }
  if (mover_) mover_->shutdown();
  {
    std::lock_guard<std::mutex> lock(fds_mutex_);
    open_fds_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(write_fds_mutex_);
    write_fds_.clear();
  }
  bool dirty_left = false;
  if (journal_) {
    std::lock_guard<std::mutex> lock(write_state_mutex_);
    dirty_left = !dirty_bytes_by_path_.empty();
    if (drained && !dirty_left) {
      // Clean stop: every acked byte is on the PFS, so the journal has
      // no obligations left — remove the file outright (the purge
      // below leaves the cache dir empty, journal included). A dirty
      // or undrained stop keeps it for the next start's replay.
      const std::string journal_path = journal_->path();
      journal_.reset();
      Status s = storage::remove_file(journal_path);
      if (!s.ok()) {
        HVAC_LOG_WARN("journal remove failed: " << s.error().to_string());
      }
    }
  }
  // Cache lifetime is coupled to the server (job) lifetime: purge the
  // node-local store on teardown (paper §III-D) — unless dirty
  // write-back data failed to drain. After a checkpoint_reset the
  // journal only covers the latest burst of writes, so the next
  // start's replay needs the surviving local copies to reconstruct
  // complete files; purging here would make the resumed flush rename
  // a holey reconstruction over the complete PFS copy.
  if (cache_) {
    if (drained && !dirty_left) {
      cache_->purge();
    } else {
      HVAC_LOG_WARN("keeping local store for journal replay ("
                    << (drained ? "dirty paths remain" : "drain timed out")
                    << ")");
    }
  }
}

size_t HvacServer::open_remote_fds() const {
  std::lock_guard<std::mutex> lock(
      const_cast<std::mutex&>(fds_mutex_));
  return open_fds_.size();
}

void HvacServer::register_handlers() {
  // Every handler runs under a ScopedLatencyTimer so the metrics frame
  // can report per-op p50/p99; the timer covers handler execution on
  // the pool thread (queueing and socket time excluded).
  // Ping, cached reads and close are hit-path fast (no mover, no PFS
  // round trip in the common case): run them inline on the owning
  // reactor thread, skipping the pool queue/wake entirely. Everything
  // mover- or PFS-bound stays pooled so a slow fetch cannot stall a
  // reactor's other connections.
  rpc_.register_handler(proto::kPing, [this](const Bytes&) -> Result<Bytes> {
    core::ScopedLatencyTimer t(latency_, proto::kPing);
    return Bytes{};
  }, rpc::DispatchHint::kInline);
  rpc_.register_handler(proto::kOpen, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kOpen);
    return handle_open(req);
  });
  rpc_.register_payload_handler(proto::kRead, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kRead);
    return handle_read(req);
  }, rpc::DispatchHint::kInline);
  rpc_.register_handler(proto::kClose, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kClose);
    return handle_close(req);
  }, rpc::DispatchHint::kInline);
  rpc_.register_handler(proto::kStat, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kStat);
    return handle_stat(req);
  });
  rpc_.register_handler(proto::kPrefetch, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kPrefetch);
    return handle_prefetch(req);
  });
  rpc_.register_handler(proto::kMetrics, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kMetrics);
    return handle_metrics(req);
  });
  rpc_.register_handler(proto::kTimeSeries, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kTimeSeries);
    return handle_time_series(req);
  });
  rpc_.register_payload_handler(proto::kReadSegment,
                                [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kReadSegment);
    return handle_read_segment(req);
  });
  rpc_.register_payload_handler(proto::kReadScatter,
                                [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kReadScatter);
    return handle_read_scatter(req);
  });
  rpc_.register_handler(proto::kPrefetchBatch, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kPrefetchBatch);
    return handle_prefetch_batch(req);
  });
  rpc_.register_handler(proto::kTraceDump,
                        [this](const Bytes&) -> Result<Bytes> {
    core::ScopedLatencyTimer t(latency_, proto::kTraceDump);
    // Rings are process-wide: any instance's dump carries every span
    // this process emitted (client-side included when co-located).
    return core::encode_spans(trace::drain());
  });
  // Served from memory (the index was loaded at start): inline.
  rpc_.register_handler(proto::kPackedIndex, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kPackedIndex);
    return handle_packed_index(req);
  }, rpc::DispatchHint::kInline);
  // Write path: every op can touch the journal's fdatasync or wait on
  // the flusher, so all four stay pooled.
  rpc_.register_handler(proto::kWriteOpen, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kWriteOpen);
    return handle_write_open(req);
  });
  rpc_.register_handler(proto::kWrite, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kWrite);
    return handle_write(req);
  });
  rpc_.register_handler(proto::kFsync, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kFsync);
    return handle_fsync(req);
  });
  rpc_.register_handler(proto::kWriteClose, [this](const Bytes& req) {
    core::ScopedLatencyTimer t(latency_, proto::kWriteClose);
    return handle_write_close(req);
  });
}

HvacServer::PackedRoute HvacServer::route_packed(std::string& path) const {
  PackedRoute route;
  if (!packed_) return route;
  auto resolved = packed_->resolve(path);
  if (!resolved.has_value()) return route;
  path = std::move(resolved->container_logical);
  route.base = resolved->base;
  route.length = resolved->length;
  route.packed = true;
  return route;
}

Result<Bytes> HvacServer::handle_packed_index(const Bytes&) {
  WireWriter w;
  if (!packed_) {
    w.put_u8(0);
    return std::move(w).take();
  }
  w.put_u8(1);
  const std::vector<uint8_t>& raw = packed_->raw_index();
  w.put_blob(raw.data(), raw.size());
  return std::move(w).take();
}

Result<rpc::Payload> HvacServer::handle_read_segment(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  HVAC_ASSIGN_OR_RETURN(uint64_t seg_index, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint64_t segment_bytes, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint64_t offset_in_segment, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint32_t count, r.get_u32());
  if (count > proto::kMaxReadChunk || segment_bytes == 0) {
    return Error(ErrorCode::kInvalidArgument, "bad segment read");
  }
  // pread lands directly in a pooled payload buffer, after the blob
  // length prefix; no copy between the file and the socket.
  hvac::BufferPool::Lease lease =
      hvac::BufferPool::local().acquire(rpc::kBlobPrefix + count);
  HVAC_ASSIGN_OR_RETURN(
      size_t n, cache_->pread_segment(path, seg_index, segment_bytes,
                                      lease.data() + rpc::kBlobPrefix,
                                      count, offset_in_segment));
  return rpc::blob_payload(std::move(lease), n);
}

Result<Bytes> HvacServer::handle_open(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  // Packed sample: the fd hands back the *container* (fetched and
  // cached once for all its samples) with the sample's base/length
  // stamped on it; the reported size is the sample's, not the blob's.
  const PackedRoute route = route_packed(path);

  // Forward to the data-mover FIFO (paper §III-D steps 4-6) and wait
  // for the cache decision. Retry if the fresh copy is evicted before
  // we open it (possible under heavy capacity pressure); fall back to
  // the PFS otherwise.
  auto open_file = std::make_shared<OpenFile>();
  open_file->logical_path = path;
  open_file->pfs_fallback = true;
  for (int attempt = 0; attempt < 3; ++attempt) {
    HVAC_ASSIGN_OR_RETURN(bool cached, mover_->fetch(path));
    if (!cached) break;  // capacity overflow: serve from the PFS
    auto f = cache_->open_cached(path);
    if (f.ok()) {
      open_file->file = std::move(f).value();
      open_file->pfs_fallback = false;
      break;
    }
    if (f.error().code != ErrorCode::kNotFound) return f.error();
  }
  uint64_t size = 0;
  if (open_file->pfs_fallback) {
    HVAC_ASSIGN_OR_RETURN(open_file->file, pfs_->open(path));
  }
  if (route.packed) {
    open_file->base_offset = route.base;
    size = route.length;
  } else {
    HVAC_ASSIGN_OR_RETURN(size, open_file->file.size());
  }
  open_file->size = size;
  const bool cached = !open_file->pfs_fallback;

  const uint64_t remote_fd =
      next_remote_fd_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(fds_mutex_);
    open_fds_[remote_fd] = open_file;
  }

  WireWriter w;
  w.put_u64(remote_fd);
  w.put_u64(size);
  w.put_u8(cached ? proto::kFromCache : proto::kFromPfsFallback);
  return std::move(w).take();
}

Result<rpc::Payload> HvacServer::handle_read(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint64_t offset, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint32_t count, r.get_u32());
  if (count > proto::kMaxReadChunk) {
    return Error(ErrorCode::kInvalidArgument, "read chunk too large");
  }

  std::shared_ptr<OpenFile> open_file;
  {
    std::lock_guard<std::mutex> lock(fds_mutex_);
    auto it = open_fds_.find(remote_fd);
    if (it == open_fds_.end()) {
      return Error(ErrorCode::kBadFd,
                   "unknown remote fd " + std::to_string(remote_fd));
    }
    open_file = it->second;
  }

  // Zero-copy hit path: hand the RPC server a FileExtent — it
  // sendfiles (or splices) the bytes from the cached fd straight to
  // the socket. The OpenFile shared_ptr rides along as the keepalive,
  // so a concurrent kClose cannot close the fd mid-send. Cached
  // copies are immutable, so the open-time size clamps the extent
  // exactly like pread's short read would.
  if (!open_file->pfs_fallback &&
      rpc_.zerocopy_mode() != rpc::ZeroCopyMode::kOff) {
    const uint64_t avail =
        offset < open_file->size ? open_file->size - offset : 0;
    const uint64_t n = std::min<uint64_t>(count, avail);
    cache_->record_served_bytes(n, true);
    rpc::FileExtent extent;
    extent.owner = open_file;
    extent.fd = open_file->file.fd();
    extent.offset = open_file->base_offset + offset;
    extent.length = n;
    return rpc::blob_extent_payload(std::move(extent));
  }

  // Pooled path: clamp to the open-time size too — for a packed
  // sample the fd is the container, so reading past `size` would
  // bleed into the next sample instead of hitting EOF.
  {
    const uint64_t avail =
        offset < open_file->size ? open_file->size - offset : 0;
    count = static_cast<uint32_t>(std::min<uint64_t>(count, avail));
  }
  hvac::BufferPool::Lease lease =
      hvac::BufferPool::local().acquire(rpc::kBlobPrefix + count);
  uint8_t* dst = lease.data() + rpc::kBlobPrefix;
  size_t n = 0;
  if (open_file->pfs_fallback) {
    HVAC_ASSIGN_OR_RETURN(n, pfs_->pread(open_file->file, dst, count,
                                         open_file->base_offset + offset));
  } else {
    HVAC_ASSIGN_OR_RETURN(n, open_file->file.pread(
                                 dst, count,
                                 open_file->base_offset + offset));
  }
  cache_->record_served_bytes(n, !open_file->pfs_fallback);
  return rpc::blob_payload(std::move(lease), n);
}

Result<rpc::Payload> HvacServer::handle_read_scatter(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint8_t mode, r.get_u8());
  std::shared_ptr<OpenFile> open_file;
  std::string path;
  if (mode == 0) {
    HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
    std::lock_guard<std::mutex> lock(fds_mutex_);
    auto it = open_fds_.find(remote_fd);
    if (it == open_fds_.end()) {
      return Error(ErrorCode::kBadFd,
                   "unknown remote fd " + std::to_string(remote_fd));
    }
    open_file = it->second;
  } else if (mode == 1) {
    HVAC_ASSIGN_OR_RETURN(path, r.get_string());
  } else {
    return Error(ErrorCode::kInvalidArgument, "bad scatter mode");
  }
  HVAC_ASSIGN_OR_RETURN(uint32_t n, r.get_u32());
  if (n == 0 || n > proto::kMaxScatterExtents) {
    return Error(ErrorCode::kInvalidArgument, "bad scatter extent count");
  }
  std::vector<std::pair<uint64_t, uint32_t>> want(n);
  uint64_t total = 0;
  for (auto& [off, len] : want) {
    HVAC_ASSIGN_OR_RETURN(off, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(len, r.get_u32());
    if (len > proto::kMaxReadChunk) {
      return Error(ErrorCode::kInvalidArgument, "scatter extent too large");
    }
    total += len;
  }
  if (total > proto::kMaxScatterBytes) {
    return Error(ErrorCode::kInvalidArgument, "scatter request too large");
  }

  // Resolve a cached fd for the extents when one exists. In path mode
  // the file may have been evicted since the client's metadata said
  // "cached" — then every extent degrades to pread_through, which
  // re-fetches or reads the PFS (and does its own byte accounting).
  //
  // Packed samples arrive in path mode (the client resolved the sample
  // from the fetched index and skipped kOpen entirely): rewrite to the
  // container's logical path, warm the container once through the
  // mover, and translate every extent by the sample's base offset while
  // clamping to the sample length. The reply table always echoes the
  // *requested* sample-relative offsets.
  std::shared_ptr<const void> owner;
  int src_fd = -1;
  uint64_t src_size = 0;
  bool cached_fd = false;
  uint64_t base = 0;
  uint64_t limit = 0;     // clamp bound: sample length or file size
  bool has_limit = false;
  std::shared_ptr<storage::OpenHandleCache::Pin> pin;
  if (open_file != nullptr) {
    path = open_file->logical_path;
    base = open_file->base_offset;
    limit = open_file->size;
    has_limit = true;
    if (!open_file->pfs_fallback) {
      owner = open_file;
      src_fd = open_file->file.fd();
      src_size = open_file->size;
      cached_fd = true;
    }
  } else {
    const PackedRoute route = route_packed(path);
    if (route.packed) {
      base = route.base;
      limit = route.length;
      has_limit = true;
      // One blocking fetch caches the whole container; this handler
      // runs pooled, so the mover wait cannot stall a reactor.
      (void)mover_->fetch(path);
    }
    if (cache_->is_cached(path)) {
      auto pinned = cache_->store().open_pinned(path);
      if (pinned.ok()) {
        pin = std::make_shared<storage::OpenHandleCache::Pin>(
            std::move(pinned).value());
        HVAC_ASSIGN_OR_RETURN(src_size, pin->size());
        src_fd = pin->file().fd();
        owner = pin;
        cached_fd = true;
        if (!has_limit) {
          limit = src_size;
          has_limit = true;
        }
      }
    }
  }

  if (cached_fd && rpc_.zerocopy_mode() != rpc::ZeroCopyMode::kOff) {
    WireWriter table;
    table.put_u32(n);
    uint64_t total_act = 0;
    for (auto& [off, len] : want) {
      const uint64_t avail = off < limit ? limit - off : 0;
      len = static_cast<uint32_t>(std::min<uint64_t>(len, avail));
      table.put_u64(off);
      table.put_u32(len);
      total_act += len;
    }
    rpc::Payload p(std::move(table).take());
    for (const auto& [off, len] : want) {
      if (len == 0) continue;
      p.add_extent(rpc::FileExtent{owner, src_fd, base + off, len});
    }
    cache_->record_served_bytes(total_act, true);
    return p;
  }

  // Pooled path: stage the extents packed behind the table in one
  // lease. Actual lengths (EOF clamps) are only known after the
  // preads, so the table is stamped last.
  const size_t table_size = rpc::scatter_table_size(n);
  hvac::BufferPool::Lease lease =
      hvac::BufferPool::local().acquire(table_size + total);
  uint8_t* data = lease.data() + table_size;
  size_t cursor = 0;
  std::vector<uint32_t> actual(n);
  for (uint32_t i = 0; i < n; ++i) {
    const auto [off, len] = want[i];
    // Clamp to the sample/file bound whenever one is known — a packed
    // sample's fd is the container, so an unclamped read would bleed
    // into the neighbouring sample instead of hitting EOF.
    uint32_t clamped = len;
    if (has_limit) {
      const uint64_t avail = off < limit ? limit - off : 0;
      clamped = static_cast<uint32_t>(std::min<uint64_t>(len, avail));
    }
    size_t got = 0;
    if (cached_fd) {
      if (open_file != nullptr) {
        HVAC_ASSIGN_OR_RETURN(
            got,
            open_file->file.pread(data + cursor, clamped, base + off));
      } else {
        HVAC_ASSIGN_OR_RETURN(
            got, pin->pread(data + cursor, clamped, base + off));
      }
      cache_->record_served_bytes(got, true);
    } else if (open_file != nullptr) {
      // PFS-fallback remote fd: read through the borrowed PFS handle.
      HVAC_ASSIGN_OR_RETURN(
          got, pfs_->pread(open_file->file, data + cursor, clamped,
                           base + off));
      cache_->record_served_bytes(got, false);
    } else {
      HVAC_ASSIGN_OR_RETURN(
          got,
          cache_->pread_through(path, data + cursor, clamped, base + off));
    }
    actual[i] = static_cast<uint32_t>(got);
    cursor += got;
  }
  WireWriter table;
  table.put_u32(n);
  for (uint32_t i = 0; i < n; ++i) {
    table.put_u64(want[i].first);
    table.put_u32(actual[i]);
  }
  std::memcpy(lease.data(), table.bytes().data(), table_size);
  lease.resize(table_size + cursor);
  return rpc::Payload(std::move(lease));
}

Result<Bytes> HvacServer::handle_close(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
  std::lock_guard<std::mutex> lock(fds_mutex_);
  if (open_fds_.erase(remote_fd) == 0) {
    return Error(ErrorCode::kBadFd,
                 "unknown remote fd " + std::to_string(remote_fd));
  }
  return Bytes{};
}

Result<Bytes> HvacServer::handle_stat(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  // Packed sample: the size comes from the index; "cached" means the
  // container blob is resident.
  const PackedRoute route = route_packed(path);
  if (route.packed) {
    WireWriter w;
    w.put_u64(route.length);
    w.put_u8(cache_->is_cached(path) ? 1 : 0);
    return std::move(w).take();
  }
  uint64_t size = 0;
  bool cached = false;
  if (cache_->is_cached(path)) {
    HVAC_ASSIGN_OR_RETURN(storage::PosixFile f, cache_->open_cached(path));
    HVAC_ASSIGN_OR_RETURN(size, f.size());
    cached = true;
  } else {
    HVAC_ASSIGN_OR_RETURN(size, pfs_->size_of(path));
  }
  WireWriter w;
  w.put_u64(size);
  // Trailing cached flag (added for the client metadata cache). Old
  // clients read the u64 and stop; new clients treat a missing flag as
  // not-cached.
  w.put_u8(cached ? 1 : 0);
  return std::move(w).take();
}

Result<Bytes> HvacServer::handle_prefetch(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  // Prefetching a packed sample warms its whole container.
  (void)route_packed(path);
  HVAC_ASSIGN_OR_RETURN(bool cached, mover_->fetch(path));
  WireWriter w;
  w.put_u8(cached ? 1 : 0);
  return std::move(w).take();
}

Result<Bytes> HvacServer::handle_prefetch_batch(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint32_t n, r.get_u32());
  if (n == 0 || n > proto::kMaxPrefetchBatch) {
    return Error(ErrorCode::kInvalidArgument, "bad prefetch batch size");
  }
  // Submit every path up front, then wait: the mover threads overlap
  // the fetches instead of this handler serializing them one blocking
  // fetch at a time. submit() coalesces duplicates onto one in-flight
  // fetch and — because the queue is bounded — answers kUnavailable
  // immediately when it is full, which becomes a per-path SHED status
  // rather than a flood of queued tasks. A single failed fetch must
  // not fail the batch: the path reports miss/shed and the rest keep
  // warming.
  std::vector<std::shared_future<Result<bool>>> futures;
  futures.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
    (void)route_packed(path);
    futures.push_back(mover_->submit(std::move(path)));
  }
  WireWriter w;
  w.put_u32(n);
  for (auto& fut : futures) {
    const Result<bool>& cached = fut.get();
    uint8_t status = proto::kPrefetchMiss;
    if (cached.ok()) {
      status = *cached ? proto::kPrefetchCached : proto::kPrefetchMiss;
    } else if (cached.error().code == ErrorCode::kUnavailable) {
      status = proto::kPrefetchShed;
    }
    w.put_u8(status);
  }
  return std::move(w).take();
}

Result<std::shared_ptr<HvacServer::WriteHandle>> HvacServer::find_write_fd(
    uint64_t remote_fd) {
  std::lock_guard<std::mutex> lock(write_fds_mutex_);
  auto it = write_fds_.find(remote_fd);
  if (it == write_fds_.end()) {
    return Error(ErrorCode::kBadFd,
                 "unknown write fd " + std::to_string(remote_fd));
  }
  return it->second;
}

Result<Bytes> HvacServer::handle_write_open(const Bytes& req) {
  if (!journal_) {
    return Error(ErrorCode::kUnavailable, "write path disabled");
  }
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(std::string path, r.get_string());
  HVAC_ASSIGN_OR_RETURN(uint8_t trunc, r.get_u8());

  auto h = std::make_shared<WriteHandle>();
  h->logical_path = path;
  // A non-truncating open of a path the store does not hold yet must
  // prefill the local copy from the PFS: the flusher later replaces
  // the whole PFS file with the local file, so starting from an empty
  // backing file would turn a partial overwrite into data loss. A
  // kNotFound from the fetch means the file does not exist anywhere —
  // this open (O_CREAT on the shim side) creates it, starting empty.
  auto open_backing = [&]() -> Result<storage::PosixFile> {
    if (!trunc && !cache_->is_cached(path)) {
      Result<bool> fetched = mover_->fetch(path);
      if (!fetched.ok() &&
          fetched.error().code != ErrorCode::kNotFound) {
        return fetched.error();
      }
      if (fetched.ok() && !*fetched) {
        // Too big for the NVMe budget: write through to the PFS (which
        // keeps its own content, so non-truncating semantics hold).
        return Error(ErrorCode::kCapacity,
                     "prefill over store capacity: " + path);
      }
    }
    return cache_->store().open_write(path);
  };
  auto f = open_backing();
  if (f.ok()) {
    h->file = std::move(f).value();
    h->mode = proto::kWriteBack;
    if (trunc) {
      std::lock_guard<std::mutex> lock(write_state_mutex_);
      HVAC_RETURN_IF_ERROR(h->file.truncate(0));
      HVAC_RETURN_IF_ERROR(cache_->store().update_size(path, 0));
      HVAC_RETURN_IF_ERROR(journal_->append_truncate(path));
      h->size = 0;
      // The truncation itself must reach the PFS.
      last_write_seq_[path] = ++write_seq_counter_;
      dirty_bytes_by_path_[path];
    } else {
      HVAC_ASSIGN_OR_RETURN(h->size, h->file.size());
    }
    if (trunc) {
      Status s = flusher_->submit(path);
      if (!s.ok()) {
        HVAC_LOG_WARN("flush submit failed: " << s.error().to_string());
      }
    }
  } else if (f.error().code == ErrorCode::kCapacity) {
    // Local NVMe full before the first byte: write through to the PFS
    // for this handle's whole lifetime. Deliberately not a breaker
    // event — the PFS is healthy, the local disk is just full.
    write_through_sheds_.fetch_add(1, std::memory_order_relaxed);
    HVAC_ASSIGN_OR_RETURN(h->pfs_file, pfs_->open_write(path, trunc != 0));
    h->mode = proto::kWriteThrough;
  } else {
    return f.error();
  }

  const uint64_t remote_fd =
      next_remote_fd_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(write_fds_mutex_);
    write_fds_[remote_fd] = h;
  }
  WireWriter w;
  w.put_u64(remote_fd);
  w.put_u8(static_cast<uint8_t>(h->mode));
  return std::move(w).take();
}

Status HvacServer::shed_to_write_through(WriteHandle& h) {
  write_through_sheds_.fetch_add(1, std::memory_order_relaxed);
  bool dirty = false;
  {
    std::lock_guard<std::mutex> lock(write_state_mutex_);
    dirty = dirty_bytes_by_path_.count(h.logical_path) > 0;
  }
  if (dirty) {
    // Land the locally-written prefix on the PFS first, then open the
    // (renamed-into-place) PFS file and continue there.
    HVAC_RETURN_IF_ERROR(flusher_->submit(h.logical_path));
    HVAC_RETURN_IF_ERROR(flusher_->wait(h.logical_path));
  }
  HVAC_ASSIGN_OR_RETURN(h.pfs_file, pfs_->open_write(h.logical_path, false));
  h.mode = proto::kWriteThrough;
  return Status::Ok();
}

Result<Bytes> HvacServer::handle_write(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint64_t offset, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(WireReader::BlobView blob, r.get_blob_view());
  if (blob.size > proto::kMaxReadChunk) {
    return Error(ErrorCode::kInvalidArgument, "write chunk too large");
  }
  HVAC_ASSIGN_OR_RETURN(std::shared_ptr<WriteHandle> h,
                        find_write_fd(remote_fd));
  std::lock_guard<std::mutex> handle_lock(h->mutex);

  if (h->mode == proto::kWriteBack) {
    // Capacity gate (and fault site) before any state changes, so an
    // ENOSPC write sheds without leaving a journal record for bytes
    // that end up on the PFS instead.
    Status gate = [&]() -> Status {
      HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kStoreWrite));
      const uint64_t new_size =
          std::max<uint64_t>(h->size, offset + blob.size);
      if (new_size > h->size) {
        HVAC_RETURN_IF_ERROR(
            cache_->store().update_size(h->logical_path, new_size));
        h->size = new_size;
      }
      return Status::Ok();
    }();
    if (!gate.ok()) {
      if (gate.error().code != ErrorCode::kCapacity) return gate.error();
      HVAC_RETURN_IF_ERROR(shed_to_write_through(*h));
    }
  }

  size_t n = 0;
  if (h->mode == proto::kWriteBack) {
    trace::Span span("server.journal", blob.size);
    std::lock_guard<std::mutex> lock(write_state_mutex_);
    HVAC_RETURN_IF_ERROR(journal_->append_write(h->logical_path, offset,
                                                blob.data, blob.size));
    HVAC_ASSIGN_OR_RETURN(n, h->file.pwrite(blob.data, blob.size, offset));
    // Seq bump after the pwrite: a flusher snapshot taken from here on
    // is guaranteed to copy these bytes.
    last_write_seq_[h->logical_path] = ++write_seq_counter_;
    dirty_bytes_by_path_[h->logical_path] += n;
  } else {
    HVAC_ASSIGN_OR_RETURN(
        n, pfs_->pwrite(h->pfs_file, blob.data, blob.size, offset));
    write_through_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(n, std::memory_order_relaxed);
  if (h->mode == proto::kWriteBack) {
    Status s = flusher_->submit(h->logical_path);
    if (!s.ok()) {
      // Shutdown race: the journal still has the record; the next
      // start()'s replay resubmits the path.
      HVAC_LOG_WARN("flush submit failed: " << s.error().to_string());
    }
  }

  WireWriter w;
  w.put_u32(static_cast<uint32_t>(n));
  return std::move(w).take();
}

Status HvacServer::sync_handle(WriteHandle& h, uint8_t level) {
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  if (h.mode == proto::kWriteThrough) {
    return h.pfs_file.sync();
  }
  // The durability barrier: once the commit record is on local media
  // a kill -9 cannot lose anything acked before it.
  HVAC_RETURN_IF_ERROR(journal_->commit());
  if (level == proto::kDurabilityPfs) {
    HVAC_RETURN_IF_ERROR(flusher_->submit(h.logical_path));
    HVAC_RETURN_IF_ERROR(flusher_->wait(h.logical_path));
  }
  return Status::Ok();
}

Result<Bytes> HvacServer::handle_fsync(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint8_t level, r.get_u8());
  HVAC_ASSIGN_OR_RETURN(std::shared_ptr<WriteHandle> h,
                        find_write_fd(remote_fd));
  std::lock_guard<std::mutex> lock(h->mutex);
  HVAC_RETURN_IF_ERROR(sync_handle(*h, level));
  return Bytes{};
}

Result<Bytes> HvacServer::handle_write_close(const Bytes& req) {
  WireReader r(req);
  HVAC_ASSIGN_OR_RETURN(uint64_t remote_fd, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(uint8_t level, r.get_u8());
  HVAC_ASSIGN_OR_RETURN(std::shared_ptr<WriteHandle> h,
                        find_write_fd(remote_fd));
  Status synced;
  {
    std::lock_guard<std::mutex> lock(h->mutex);
    synced = sync_handle(*h, level);
  }
  // Drop the handle even when the barrier failed: the client erases
  // its vfd before this RPC, so a kept handle (and its open files)
  // would just leak until shutdown. The journal still holds every
  // acked byte, so nothing is lost by letting go.
  {
    std::lock_guard<std::mutex> lock(write_fds_mutex_);
    write_fds_.erase(remote_fd);
  }
  if (!synced.ok()) return synced.error();
  return Bytes{};
}

void HvacServer::on_flushed(const std::string& logical_path) {
  bool clean = false;
  {
    std::lock_guard<std::mutex> lock(write_state_mutex_);
    auto last = last_write_seq_.find(logical_path);
    auto snap = flush_snapshot_seq_.find(logical_path);
    const uint64_t last_seq =
        last == last_write_seq_.end() ? 0 : last->second;
    const uint64_t snap_seq =
        snap == flush_snapshot_seq_.end() ? 0 : snap->second;
    clean = last_seq == snap_seq;
    if (clean) {
      Status s = journal_->append_flushed(logical_path);
      if (!s.ok()) {
        HVAC_LOG_WARN("journal flushed record failed: "
                      << s.error().to_string());
      }
      dirty_bytes_by_path_.erase(logical_path);
      last_write_seq_.erase(logical_path);
      flush_snapshot_seq_.erase(logical_path);
      if (dirty_bytes_by_path_.empty()) {
        // Everything acked is on the PFS: restart the journal so it
        // stays bounded by one burst of unflushed writes. Writers
        // append under this same mutex, so nothing races the reset.
        s = journal_->checkpoint_reset();
        if (!s.ok()) {
          HVAC_LOG_WARN("journal reset failed: " << s.error().to_string());
        }
      }
    }
  }
  if (!clean) {
    // A write landed after the copy began: the PFS may hold a stale
    // prefix. Flush again rather than marking the path clean. This
    // callback runs on a flusher worker, so the non-blocking resubmit
    // is mandatory: a capacity-blocked submit() here could park every
    // worker on space_cv_ with nobody left to drain the queue.
    Status s = flusher_->resubmit(logical_path);
    if (!s.ok()) {
      HVAC_LOG_WARN("flush resubmit failed: " << s.error().to_string());
    }
  }
}

storage::JournalReplayStats HvacServer::last_replay() const {
  return last_replay_;
}

core::MetricsFrame HvacServer::metrics_frame() const {
  core::MetricsFrame f;
  f.cache = cache_->metrics();
  f.open_fds = open_remote_fds();

  const storage::OpenHandleCache& hc = cache_->store().handle_cache();
  f.handle_cache.hits = hc.hits();
  f.handle_cache.misses = hc.misses();
  f.handle_cache.open = hc.open_handles();
  f.handle_cache.pinned = hc.pinned_handles();
  f.handle_cache.deferred_closes = hc.deferred_closes();
  f.handle_cache.capacity = hc.capacity();

  // Pool counters aggregate the global pool plus every reactor arena;
  // like the other process-wide sections, instances in one process
  // report the same values and NodeRuntime takes them once.
  const BufferPool::Stats bp = BufferPool::aggregated_stats();
  f.buffer_pool.leases = bp.hits + bp.misses + bp.unpooled;
  f.buffer_pool.pool_hits = bp.hits;
  f.buffer_pool.fallback_allocs = bp.misses + bp.unpooled;
  f.buffer_pool.recycled = bp.recycled;
  f.buffer_pool.dropped = bp.dropped;

  const core::ReadAheadCounters& ra = core::ReadAheadCounters::global();
  f.readahead.issued = ra.issued.load(std::memory_order_relaxed);
  f.readahead.consumed = ra.consumed.load(std::memory_order_relaxed);
  f.readahead.wasted = ra.wasted.load(std::memory_order_relaxed);

  // Resilience counters are process-wide (rpc/health.h globals), like
  // the buffer pool: every instance in one process reports the same
  // values and NodeRuntime takes them once.
  const rpc::ResilienceCounters& rc = rpc::ResilienceCounters::global();
  f.resilience.breaker_opens =
      rc.breaker_opens.load(std::memory_order_relaxed);
  f.resilience.breaker_closes =
      rc.breaker_closes.load(std::memory_order_relaxed);
  f.resilience.breaker_probes =
      rc.breaker_probes.load(std::memory_order_relaxed);
  f.resilience.breaker_shed =
      rc.breaker_shed.load(std::memory_order_relaxed);
  f.resilience.retries = rc.retries.load(std::memory_order_relaxed);
  f.resilience.deadline_misses =
      rc.deadline_misses.load(std::memory_order_relaxed);
  f.resilience.server_shed = rc.server_shed.load(std::memory_order_relaxed);
  f.resilience.mover_rejects =
      rc.mover_rejects.load(std::memory_order_relaxed);
  f.resilience.drains = rc.drains.load(std::memory_order_relaxed);
  f.resilience.drained_requests =
      rc.drained_requests.load(std::memory_order_relaxed);
  f.resilience.faults_injected = fault::total_injected();

  // Zero-copy send and client meta-cache counters are process-wide
  // globals too.
  const rpc::ZeroCopyCounters& zc = rpc::ZeroCopyCounters::global();
  f.zerocopy.sendfile_sends =
      zc.sendfile_sends.load(std::memory_order_relaxed);
  f.zerocopy.splice_sends = zc.splice_sends.load(std::memory_order_relaxed);
  f.zerocopy.fallback_sends =
      zc.fallback_sends.load(std::memory_order_relaxed);
  f.zerocopy.sendfile_bytes =
      zc.sendfile_bytes.load(std::memory_order_relaxed);
  f.zerocopy.splice_bytes = zc.splice_bytes.load(std::memory_order_relaxed);
  f.zerocopy.short_resumes =
      zc.short_resumes.load(std::memory_order_relaxed);

  const core::MetaCacheCounters& mc = core::MetaCacheCounters::global();
  f.meta_cache.hits = mc.hits.load(std::memory_order_relaxed);
  f.meta_cache.misses = mc.misses.load(std::memory_order_relaxed);
  f.meta_cache.expired = mc.expired.load(std::memory_order_relaxed);
  f.meta_cache.invalidated =
      mc.invalidated.load(std::memory_order_relaxed);

  const trace::Stats ts = trace::stats();
  f.trace.emitted = ts.emitted;
  f.trace.dropped = ts.dropped;
  f.trace.rings = ts.rings;
  f.trace.ring_capacity = ts.ring_capacity;
  f.trace.occupancy = ts.occupancy;

  // Per-reactor counters for this instance's RPC server (section 9).
  for (const rpc::RpcServer::ReactorStats& rs : rpc_.reactor_stats()) {
    core::ReactorStats::PerReactor row;
    row.conns = rs.conns;
    row.requests = rs.requests;
    row.steals = rs.steals;
    row.shed = rs.shed;
    row.steal_backoffs = rs.steal_backoffs;
    f.reactor.reactors.push_back(row);
  }

  // Checkpoint write path (section 10).
  f.write_back.writes = writes_.load(std::memory_order_relaxed);
  f.write_back.bytes_written = write_bytes_.load(std::memory_order_relaxed);
  f.write_back.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  f.write_back.write_through_sheds =
      write_through_sheds_.load(std::memory_order_relaxed);
  f.write_back.write_through_bytes =
      write_through_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(write_state_mutex_);
    f.write_back.dirty_files = dirty_bytes_by_path_.size();
    for (const auto& [path, bytes] : dirty_bytes_by_path_) {
      f.write_back.dirty_bytes += bytes;
    }
  }
  if (journal_) {
    f.write_back.journal_records = journal_->record_count();
    f.write_back.journal_bytes = journal_->size_bytes();
  }
  if (flusher_) {
    const core::FlushManager::Stats fs = flusher_->stats();
    f.write_back.flushed_files = fs.flushed_files;
    f.write_back.flush_retries = fs.retries;
    f.write_back.flush_failures = fs.failures;
    f.write_back.flush_queue_depth = fs.queue_depth;
    f.write_back.flush_inflight = fs.inflight;
    f.write_back.flush_lag_ms = fs.oldest_dirty_ms;
  }
  f.write_back.replay_writes = last_replay_.writes_applied;
  f.write_back.replay_bytes = last_replay_.bytes_applied;
  f.write_back.replay_truncated_bytes = last_replay_.truncated_bytes;
  f.write_back.replay_dirty_files = last_replay_.dirty_paths.size();

  // Clairvoyant prefetch (section 11): the client-side scheduler
  // counters are process-wide globals (nonzero when a client shares
  // this process — the embedded/bench topology); the dedup words are
  // this instance's mover.
  const core::PrefetchCounters& pf = core::PrefetchCounters::global();
  f.prefetch.planned = pf.planned.load(std::memory_order_relaxed);
  f.prefetch.issued = pf.issued.load(std::memory_order_relaxed);
  f.prefetch.completed = pf.completed.load(std::memory_order_relaxed);
  f.prefetch.shed = pf.shed.load(std::memory_order_relaxed);
  f.prefetch.late = pf.late.load(std::memory_order_relaxed);
  f.prefetch.hit_after_prefetch =
      pf.hit_after.load(std::memory_order_relaxed);
  f.prefetch.deduped = mover_->dedup_coalesced();
  f.prefetch.dedup_inflight = mover_->dedup_inflight();
  f.prefetch.paced_delay = pf.paced_delay.snapshot();

  // Client-side per-epoch stall attribution (process-wide, populated
  // when a co-located HvacClient runs in this process; zero rows on a
  // pure server).
  f.stall.epochs = core::StallCounters::global().snapshot();

  f.op_latency = latency_.snapshot();
  return f;
}

Result<Bytes> HvacServer::handle_metrics(const Bytes&) {
  return metrics_frame().encode();
}

Result<Bytes> HvacServer::handle_time_series(const Bytes&) {
  return ts_ring_->encode(ts_interval_ms_);
}

}  // namespace hvac::server
