// HvacServer — one HVAC server instance (paper §III-C).
//
// Ties the pieces together: an RpcServer accepts forwarded file
// operations; open requests are enqueued on the DataMover's FIFO
// queue; the CacheManager maintains the node-local store with the
// single-copy guarantee; reads are served from NVMe (or from the PFS
// when the file overflowed capacity). Several instances can run per
// node — the paper's HVAC(i×1) variants — each with its own store
// directory and endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "core/cache_manager.h"
#include "core/data_mover.h"
#include "core/metrics_frame.h"
#include "rpc/rpc_server.h"
#include "server/hvac_proto.h"
#include "storage/packed_store.h"
#include "storage/pfs_backend.h"

namespace hvac::server {

struct HvacServerOptions {
  std::string bind_address = "127.0.0.1:0";
  // Directory for this instance's node-local cache (think
  // /mnt/nvme/hvac.<jobid>.<instance>).
  std::string cache_dir;
  // 0 = unlimited (datasets normally fit in aggregate NVMe).
  uint64_t cache_capacity_bytes = 0;
  // "random" (paper default), "fifo" or "lru".
  std::string eviction_policy = "random";
  size_t data_mover_threads = 1;
  size_t rpc_handler_threads = 2;
  // Bound on queued fetches in the data-mover FIFO; beyond it opens/
  // prefetches are answered kUnavailable (backpressure) rather than
  // queueing without limit. Tightened via HVAC_MOVER_QUEUE.
  size_t mover_queue_capacity = 4096;
  uint64_t seed = 0;
  // Open-handle cache slots for the local store (default: the
  // HVAC_HANDLE_CACHE env knob, 128; 0 = open-per-read, the seed
  // behaviour).
  size_t handle_cache_slots = storage::LocalStore::kHandleCacheFromEnv;
  // RPC reactor count, forwarded to RpcServerOptions::reactors
  // (0 = auto: HVAC_REACTORS, else min(cores, 8)).
  size_t rpc_reactors = 0;
  // Load the dataset's packed-container index (.hvacpack/) when one
  // exists and resolve packed sample paths through it. Overridden by
  // HVAC_PACK=0. A corrupt index logs and disables packed resolution
  // rather than failing the server (the unpacked tree still serves).
  bool packed_enabled = true;
};

class HvacServer {
 public:
  // `pfs` must outlive the server (several instances on one node share
  // one PFS mount, so it is borrowed, not owned).
  HvacServer(storage::PfsBackend* pfs, HvacServerOptions options);
  ~HvacServer();

  HvacServer(const HvacServer&) = delete;
  HvacServer& operator=(const HvacServer&) = delete;

  Status start();
  void stop();

  // Graceful drain (SIGTERM path): stop accepting, shed new requests,
  // wait for in-flight responses to be written. stop() still tears
  // down afterwards.
  void drain(int timeout_ms = 5000);

  // Bound endpoint (for building the client's server map).
  std::string address() const { return rpc_.endpoint().address; }

  core::CacheManager& cache() { return *cache_; }
  core::MetricsSnapshot metrics() const { return cache_->metrics(); }
  // Full observability frame for this instance: cache counters plus
  // handle-cache / buffer-pool / read-ahead sections and the per-op
  // handler latency histograms (metrics frame v2). The buffer-pool and
  // read-ahead sections are process-wide (the pool and the client
  // counters are globals), so instances in one process report the same
  // values there.
  core::MetricsFrame metrics_frame() const;
  size_t open_remote_fds() const;
  rpc::RpcServer& rpc() { return rpc_; }
  // Non-null when the dataset carries a packed-container index.
  const storage::PackedStore* packed_store() const { return packed_.get(); }

 private:
  struct OpenFile {
    storage::PosixFile file;
    std::string logical_path;
    uint64_t size = 0;  // at open time; cached copies are immutable
    // For a packed sample the fd is the *container*: reads add
    // base_offset and clamp to `size` (the sample length) so they can
    // never bleed into the neighbouring sample.
    uint64_t base_offset = 0;
    bool pfs_fallback = false;
  };

  void register_handlers();

  Result<rpc::Bytes> handle_open(const rpc::Bytes& req);
  // The two read handlers return pooled payloads (rpc::Payload): the
  // file bytes are pread straight into a BufferPool lease that the
  // RPC server writes out with one gathered syscall.
  Result<rpc::Payload> handle_read(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_close(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_stat(const rpc::Bytes& req);
  Result<rpc::Payload> handle_read_segment(const rpc::Bytes& req);
  // Scatter read: N extents of one file in one framed reply. On the
  // cache-hit path with zero-copy enabled the extents ride as
  // FileExtents (kernel-copied at send time); otherwise they are
  // staged packed into one pooled lease behind the extent table.
  Result<rpc::Payload> handle_read_scatter(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_prefetch(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_prefetch_batch(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_metrics(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_packed_index(const rpc::Bytes& req);

  // Packed resolution for prefetch/open/stat/read paths: when `path`
  // is a packed sample, rewrites it to the container's logical path
  // and returns the sample's (base, length); identity otherwise.
  struct PackedRoute {
    uint64_t base = 0;
    uint64_t length = 0;
    bool packed = false;
  };
  PackedRoute route_packed(std::string& path) const;

  storage::PfsBackend* pfs_;
  HvacServerOptions options_;
  std::unique_ptr<storage::PackedStore> packed_;
  std::unique_ptr<core::CacheManager> cache_;
  std::unique_ptr<core::DataMover> mover_;
  rpc::RpcServer rpc_;

  std::mutex fds_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<OpenFile>> open_fds_;
  std::atomic<uint64_t> next_remote_fd_{1};

  // Per-op handler-execution latency (queueing and network excluded),
  // bumped lock-free from the handler threads.
  mutable core::OpLatencySet latency_;
};

}  // namespace hvac::server
