// HvacServer — one HVAC server instance (paper §III-C).
//
// Ties the pieces together: an RpcServer accepts forwarded file
// operations; open requests are enqueued on the DataMover's FIFO
// queue; the CacheManager maintains the node-local store with the
// single-copy guarantee; reads are served from NVMe (or from the PFS
// when the file overflowed capacity). Several instances can run per
// node — the paper's HVAC(i×1) variants — each with its own store
// directory and endpoint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "core/cache_manager.h"
#include "core/data_mover.h"
#include "core/flush_manager.h"
#include "core/metrics_frame.h"
#include "core/timeseries.h"
#include "rpc/rpc_server.h"
#include "server/hvac_proto.h"
#include "storage/packed_store.h"
#include "storage/pfs_backend.h"
#include "storage/write_journal.h"

namespace hvac::server {

struct HvacServerOptions {
  std::string bind_address = "127.0.0.1:0";
  // Directory for this instance's node-local cache (think
  // /mnt/nvme/hvac.<jobid>.<instance>).
  std::string cache_dir;
  // 0 = unlimited (datasets normally fit in aggregate NVMe).
  uint64_t cache_capacity_bytes = 0;
  // "random" (paper default), "fifo" or "lru".
  std::string eviction_policy = "random";
  size_t data_mover_threads = 1;
  size_t rpc_handler_threads = 2;
  // Bound on queued fetches in the data-mover FIFO; beyond it opens/
  // prefetches are answered kUnavailable (backpressure) rather than
  // queueing without limit. Tightened via HVAC_MOVER_QUEUE.
  size_t mover_queue_capacity = 4096;
  uint64_t seed = 0;
  // Open-handle cache slots for the local store (default: the
  // HVAC_HANDLE_CACHE env knob, 128; 0 = open-per-read, the seed
  // behaviour).
  size_t handle_cache_slots = storage::LocalStore::kHandleCacheFromEnv;
  // RPC reactor count, forwarded to RpcServerOptions::reactors
  // (0 = auto: HVAC_REACTORS, else min(cores, 8)).
  size_t rpc_reactors = 0;
  // Load the dataset's packed-container index (.hvacpack/) when one
  // exists and resolve packed sample paths through it. Overridden by
  // HVAC_PACK=0. A corrupt index logs and disables packed resolution
  // rather than failing the server (the unpacked tree still serves).
  bool packed_enabled = true;
  // Checkpoint write path. The write-ahead journal lives in
  // `journal_dir` (default: HVAC_JOURNAL_DIR, else cache_dir) and is
  // replayed on start(), so a kill -9 loses nothing past the last
  // acked fsync. write_enabled = false skips journal/flusher setup
  // (read-only deployments).
  bool write_enabled = true;
  std::string journal_dir;
  // Metrics time-series collector (core/timeseries.h): snapshot cadence
  // in ms (0 = off) and ring capacity in samples. Defaults come from
  // HVAC_TS_INTERVAL_MS (1000) and HVAC_TS_WINDOW (300); a negative
  // sentinel here means "read the env".
  int ts_interval_ms = -1;
  int ts_window = -1;
};

class HvacServer {
 public:
  // `pfs` must outlive the server (several instances on one node share
  // one PFS mount, so it is borrowed, not owned).
  HvacServer(storage::PfsBackend* pfs, HvacServerOptions options);
  ~HvacServer();

  HvacServer(const HvacServer&) = delete;
  HvacServer& operator=(const HvacServer&) = delete;

  Status start();
  void stop();

  // Graceful drain (SIGTERM path): stop accepting, shed new requests,
  // wait for in-flight responses to be written. stop() still tears
  // down afterwards.
  void drain(int timeout_ms = 5000);

  // Bound endpoint (for building the client's server map).
  std::string address() const { return rpc_.endpoint().address; }

  core::CacheManager& cache() { return *cache_; }
  core::MetricsSnapshot metrics() const { return cache_->metrics(); }
  // Full observability frame for this instance: cache counters plus
  // handle-cache / buffer-pool / read-ahead sections and the per-op
  // handler latency histograms (metrics frame v2). The buffer-pool and
  // read-ahead sections are process-wide (the pool and the client
  // counters are globals), so instances in one process report the same
  // values there.
  core::MetricsFrame metrics_frame() const;
  size_t open_remote_fds() const;
  // What the last start()'s journal replay found (zeros when the
  // journal was clean or writes are disabled).
  storage::JournalReplayStats last_replay() const;
  rpc::RpcServer& rpc() { return rpc_; }
  // Non-null when the dataset carries a packed-container index.
  const storage::PackedStore* packed_store() const { return packed_.get(); }

 private:
  struct OpenFile {
    storage::PosixFile file;
    std::string logical_path;
    uint64_t size = 0;  // at open time; cached copies are immutable
    // For a packed sample the fd is the *container*: reads add
    // base_offset and clamp to `size` (the sample length) so they can
    // never bleed into the neighbouring sample.
    uint64_t base_offset = 0;
    bool pfs_fallback = false;
  };

  // One open checkpoint write handle. `mutex` serializes the
  // journal-append → store-pwrite → dirty-accounting sequence per
  // handle; distinct handles write concurrently.
  struct WriteHandle {
    std::string logical_path;
    storage::PosixFile file;      // write-back: the store's backing file
    storage::PosixFile pfs_file;  // write-through: the PFS file itself
    uint64_t size = 0;            // high-water mark for store accounting
    proto::WriteMode mode = proto::kWriteBack;
    std::mutex mutex;
  };

  void register_handlers();

  Result<rpc::Bytes> handle_open(const rpc::Bytes& req);
  // The two read handlers return pooled payloads (rpc::Payload): the
  // file bytes are pread straight into a BufferPool lease that the
  // RPC server writes out with one gathered syscall.
  Result<rpc::Payload> handle_read(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_close(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_stat(const rpc::Bytes& req);
  Result<rpc::Payload> handle_read_segment(const rpc::Bytes& req);
  // Scatter read: N extents of one file in one framed reply. On the
  // cache-hit path with zero-copy enabled the extents ride as
  // FileExtents (kernel-copied at send time); otherwise they are
  // staged packed into one pooled lease behind the extent table.
  Result<rpc::Payload> handle_read_scatter(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_prefetch(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_prefetch_batch(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_metrics(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_time_series(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_packed_index(const rpc::Bytes& req);

  // Time-series collector thread body: one metrics_frame() snapshot
  // per interval, delta'd against the previous and pushed to the ring.
  void collector_loop();

  // Checkpoint write path (ROADMAP "write path"; paper §III-F lists
  // checkpoint writes as HVAC's other I/O class).
  Result<rpc::Bytes> handle_write_open(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_write(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_fsync(const rpc::Bytes& req);
  Result<rpc::Bytes> handle_write_close(const rpc::Bytes& req);

  Result<std::shared_ptr<WriteHandle>> find_write_fd(uint64_t remote_fd);
  // Shared fsync(level) semantics behind kFsync and kWriteClose.
  Status sync_handle(WriteHandle& h, uint8_t level);
  // Journal replay + dirty-path resubmission, called from start().
  Status recover_journal();
  // Flusher completion: journal kFlushed record, dirty-byte
  // accounting, checkpoint-reset when everything drained.
  void on_flushed(const std::string& logical_path);
  // Demotes a write-back handle to write-through after ENOSPC.
  Status shed_to_write_through(WriteHandle& h);

  // Packed resolution for prefetch/open/stat/read paths: when `path`
  // is a packed sample, rewrites it to the container's logical path
  // and returns the sample's (base, length); identity otherwise.
  struct PackedRoute {
    uint64_t base = 0;
    uint64_t length = 0;
    bool packed = false;
  };
  PackedRoute route_packed(std::string& path) const;

  storage::PfsBackend* pfs_;
  HvacServerOptions options_;
  std::unique_ptr<storage::PackedStore> packed_;
  std::unique_ptr<core::CacheManager> cache_;
  std::unique_ptr<core::DataMover> mover_;
  rpc::RpcServer rpc_;

  std::mutex fds_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<OpenFile>> open_fds_;
  std::atomic<uint64_t> next_remote_fd_{1};

  // Write path. `write_state_mutex_` makes journal-append +
  // dirty-accounting atomic against the flusher's kFlushed records,
  // and gates checkpoint_reset on the dirty map being empty.
  std::unique_ptr<storage::WriteJournal> journal_;
  std::unique_ptr<core::FlushManager> flusher_;
  std::mutex write_fds_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<WriteHandle>> write_fds_;
  mutable std::mutex write_state_mutex_;
  std::unordered_map<std::string, uint64_t> dirty_bytes_by_path_;
  // Closes the copy-vs-late-write race: a write bumps its path's seq
  // *after* its pwrite (same critical section), the flusher snapshots
  // the seq before copying, and on_flushed only records kFlushed when
  // the seq is unchanged — otherwise the copy may predate the write
  // and the path is resubmitted instead of marked clean.
  std::unordered_map<std::string, uint64_t> last_write_seq_;
  std::unordered_map<std::string, uint64_t> flush_snapshot_seq_;
  uint64_t write_seq_counter_ = 0;
  storage::JournalReplayStats last_replay_;
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> write_bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> write_through_sheds_{0};
  std::atomic<uint64_t> write_through_bytes_{0};

  // Per-op handler-execution latency (queueing and network excluded),
  // bumped lock-free from the handler threads.
  mutable core::OpLatencySet latency_;

  // Metrics time-series collector (tentpole layer 1). The ring always
  // exists so kTimeSeries can answer (empty when disabled); the thread
  // only runs when ts_interval_ms_ > 0.
  std::unique_ptr<core::TimeSeriesRing> ts_ring_;
  uint32_t ts_interval_ms_ = 0;
  std::thread collector_;
  std::mutex collector_mutex_;
  std::condition_variable collector_cv_;
  bool collector_stop_ = false;
};

}  // namespace hvac::server
