// Application-level RPC schema between HVAC clients and servers.
// Shared by src/server and src/client; versioned by the frame magic.
#pragma once

#include <cstdint>

namespace hvac::proto {

enum Opcode : uint16_t {
  kPing = 1,      // ()                 -> ()
  kOpen = 2,      // (path)             -> (remote_fd, size, served_from)
  kRead = 3,      // (remote_fd, offset, count) -> (blob)
  kClose = 4,     // (remote_fd)        -> ()
  kStat = 5,      // (path)             -> (size)
  kPrefetch = 6,  // (path)             -> (cached: u8)
  kMetrics = 7,   // ()                 -> (hits, misses, dedup_waits,
                  //                        evictions, bytes_cache,
                  //                        bytes_pfs, fallbacks, open_fds)
  kReadSegment = 8,  // (path, seg_index, segment_bytes,
                     //  offset_in_segment, count) -> (blob)
                     // Stateless segment-granular read: the unit of
                     // caching is one segment, homed independently by
                     // segment_key(path, idx) (paper §III-E extension).
  kReadScatter = 9,  // (mode: u8 0=fd/1=path, remote_fd u64 | path,
                     //  n u32, (offset u64, len u32) * n)
                     // -> scatter frame (rpc/wire.h decode_scatter):
                     // one reply, N extents, each kernel-copied on the
                     // hit path. Extents crossing EOF come back short.
  kPrefetchBatch = 10,  // (n u32, path * n) -> (n u32, status u8 * n)
                        // batched kPrefetch: one round trip warms a
                        // whole epoch's worth of files. Every path is
                        // submitted to the mover up front (the fetches
                        // overlap) and each gets a PrefetchStatus:
                        // cached, miss (fetch failed / capacity
                        // overflow), or shed (mover queue full — the
                        // client should re-pace and retry, not blind-
                        // retry the whole batch). Old clients read
                        // shed (2) as not-cached, which is safe.
  kTraceDump = 11,  // () -> span dump (core/trace_wire.h encode_spans):
                    // drains the process-wide trace rings. Consuming:
                    // two hvacctl instances polling one server split
                    // the spans between them.
  kPackedIndex = 12,  // () -> (present u8 [, index blob])
                      // The dataset's packed-container index
                      // (storage/packed_format.h), verbatim. A client
                      // that fetched it once resolves packed sample
                      // paths locally — open/stat cost zero round
                      // trips, and reads address samples by path via
                      // kReadScatter (the server translates to
                      // container offsets).
  kWriteOpen = 13,  // (path, trunc u8) -> (remote_fd u64, mode u8)
                    // Opens a checkpoint file for writing through the
                    // write-back store. `mode` is a WriteMode: the
                    // server may answer kWriteThrough when local NVMe
                    // is already over budget.
  kWrite = 14,      // (remote_fd u64, offset u64, blob) -> (written u32)
                    // Journal append + local-store pwrite. Ack means
                    // the bytes are in the write-back tier (durable
                    // only after kFsync / kWriteClose).
  kFsync = 15,      // (remote_fd u64, level u8) -> ()
                    // Durability barrier. level is a WriteDurability:
                    // kLocal waits for the journal commit fdatasync,
                    // kPfs additionally waits until the flusher has
                    // landed the file on the PFS.
  kWriteClose = 16,  // (remote_fd u64, level u8) -> ()
                     // fsync(level) semantics, then drops the handle.
  kTimeSeries = 17,  // () -> time-series frame (core/timeseries.h):
                     // the collector's ring of per-interval metric
                     // deltas, oldest first. Empty (0 samples,
                     // interval_ms 0) when HVAC_TS_INTERVAL_MS=0
                     // disabled the collector.
};

// kWriteOpen response mode / per-handle write routing.
enum WriteMode : uint8_t {
  kWriteBack = 0,     // journal + local NVMe, async PFS flush
  kWriteThrough = 1,  // local NVMe full: bytes go straight to the PFS
};

// kFsync / kWriteClose barrier levels (HVAC_WRITE_DURABILITY).
enum WriteDurability : uint8_t {
  kDurabilityLocal = 0,  // journal commit record is on local media
  kDurabilityPfs = 1,    // file is fully flushed to the PFS
};

// Per-path answer in the kPrefetchBatch response. kPrefetchShed means
// the mover queue was full when the path was submitted: the file was
// NOT fetched and a later, slower retry will likely succeed — the
// client-side scheduler backs off instead of hammering the queue.
enum PrefetchStatus : uint8_t {
  kPrefetchMiss = 0,    // fetch failed or fell back to the PFS
  kPrefetchCached = 1,  // file is resident in the node-local cache
  kPrefetchShed = 2,    // mover backpressure: re-pace and retry
};

// served_from values in the kOpen response.
enum ServedFrom : uint8_t {
  kFromCache = 0,
  kFromPfsFallback = 1,  // capacity overflow: server reads through PFS
};

// Requests larger than this are split by the client (the "bulk
// transfer" chunk size; Mercury would do an RDMA pull of similar
// granularity).
constexpr uint32_t kMaxReadChunk = 4u << 20;

// Bounds on one kReadScatter request: at most kMaxScatterExtents
// extents of at most kMaxReadChunk each, and at most kMaxScatterBytes
// total so the framed response (table + data) stays well under the
// 64 MiB frame bound.
constexpr uint32_t kMaxScatterExtents = 16;
constexpr uint32_t kMaxScatterBytes = 32u << 20;

// Bound on one kPrefetchBatch request.
constexpr uint32_t kMaxPrefetchBatch = 256;

}  // namespace hvac::proto
