// Application-level RPC schema between HVAC clients and servers.
// Shared by src/server and src/client; versioned by the frame magic.
#pragma once

#include <cstdint>

namespace hvac::proto {

enum Opcode : uint16_t {
  kPing = 1,      // ()                 -> ()
  kOpen = 2,      // (path)             -> (remote_fd, size, served_from)
  kRead = 3,      // (remote_fd, offset, count) -> (blob)
  kClose = 4,     // (remote_fd)        -> ()
  kStat = 5,      // (path)             -> (size)
  kPrefetch = 6,  // (path)             -> (cached: u8)
  kMetrics = 7,   // ()                 -> (hits, misses, dedup_waits,
                  //                        evictions, bytes_cache,
                  //                        bytes_pfs, fallbacks, open_fds)
  kReadSegment = 8,  // (path, seg_index, segment_bytes,
                     //  offset_in_segment, count) -> (blob)
                     // Stateless segment-granular read: the unit of
                     // caching is one segment, homed independently by
                     // segment_key(path, idx) (paper §III-E extension).
};

// served_from values in the kOpen response.
enum ServedFrom : uint8_t {
  kFromCache = 0,
  kFromPfsFallback = 1,  // capacity overflow: server reads through PFS
};

// Requests larger than this are split by the client (the "bulk
// transfer" chunk size; Mercury would do an RDMA pull of similar
// granularity).
constexpr uint32_t kMaxReadChunk = 4u << 20;

}  // namespace hvac::proto
