#include "server/node_runtime.h"

#include "common/env.h"

namespace hvac::server {

NodeRuntime::NodeRuntime(NodeRuntimeOptions options)
    : options_(std::move(options)) {
  pfs_ = std::make_unique<storage::PfsBackend>(options_.pfs_root,
                                               options_.pfs_options);
  for (uint32_t i = 0; i < std::max<uint32_t>(options_.instances, 1); ++i) {
    HvacServerOptions so;
    so.bind_address = options_.bind_host + ":0";
    so.cache_dir =
        path_join(options_.cache_root, "instance_" + std::to_string(i));
    so.cache_capacity_bytes = options_.cache_capacity_bytes_per_instance;
    so.eviction_policy = options_.eviction_policy;
    so.data_mover_threads = options_.data_mover_threads;
    so.rpc_handler_threads = options_.rpc_handler_threads;
    so.rpc_reactors = options_.rpc_reactors;
    so.seed = 0x48564143 + i;
    servers_.push_back(std::make_unique<HvacServer>(pfs_.get(), so));
  }
}

NodeRuntime::~NodeRuntime() { stop(); }

Status NodeRuntime::start() {
  for (auto& server : servers_) {
    HVAC_RETURN_IF_ERROR(server->start());
  }
  return Status::Ok();
}

void NodeRuntime::stop() {
  for (auto& server : servers_) server->stop();
}

void NodeRuntime::drain(int timeout_ms) {
  for (auto& server : servers_) server->drain(timeout_ms);
}

std::vector<std::string> NodeRuntime::endpoints() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) out.push_back(server->address());
  return out;
}

std::string NodeRuntime::endpoints_csv() const {
  std::string csv;
  for (const auto& endpoint : endpoints()) {
    if (!csv.empty()) csv += ",";
    csv += endpoint;
  }
  return csv;
}

core::MetricsFrame NodeRuntime::aggregated_frame() const {
  core::MetricsFrame total;
  for (size_t i = 0; i < servers_.size(); ++i) {
    core::MetricsFrame f = servers_[i]->metrics_frame();
    if (i == 0) {
      total = std::move(f);
      continue;
    }
    // The process-global sections repeat identically in every
    // instance's frame; keep the first copy and merge the rest of the
    // sections.
    f.buffer_pool = core::BufferPoolStats{};
    f.readahead = core::ReadAheadStats{};
    f.resilience = core::ResilienceStats{};
    f.zerocopy = core::ZeroCopyStats{};
    f.meta_cache = core::MetaCacheStats{};
    f.trace = core::TraceStats{};
    f.stall = core::StallStats{};
    // Prefetch mixes process-global counters (plan/issue/pacing, taken
    // once) with per-instance mover dedup (summed).
    const uint64_t deduped = f.prefetch.deduped;
    const uint64_t dedup_inflight = f.prefetch.dedup_inflight;
    f.prefetch = core::PrefetchStats{};
    f.prefetch.deduped = deduped;
    f.prefetch.dedup_inflight = dedup_inflight;
    total.merge(f);
  }
  return total;
}

core::MetricsSnapshot NodeRuntime::aggregated_metrics() const {
  core::MetricsSnapshot total;
  for (const auto& server : servers_) {
    const core::MetricsSnapshot m = server->metrics();
    total.hits += m.hits;
    total.misses += m.misses;
    total.dedup_waits += m.dedup_waits;
    total.evictions += m.evictions;
    total.bytes_from_cache += m.bytes_from_cache;
    total.bytes_from_pfs += m.bytes_from_pfs;
    total.pfs_fallbacks += m.pfs_fallbacks;
  }
  return total;
}

}  // namespace hvac::server
