// hvacd — the standalone HVAC server daemon.
//
// On Summit the paper spawns the server via the job script
// (`alloc_flags "hvac"`); the equivalent here is launching hvacd on
// each node of the allocation:
//
//   hvacd --pfs-root /lustre/dataset --cache-dir /mnt/nvme/hvac
//         --instances 2 --bind 0.0.0.0 [--port-file /tmp/hvac.ports]
//
// It prints the endpoint list (HVAC_SERVERS fragment for this node)
// on stdout, optionally writes it to --port-file, then serves until
// SIGINT/SIGTERM. On shutdown the node-local cache is purged — cache
// lifetime equals job lifetime (paper §III-D).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/env.h"
#include "server/node_runtime.h"
#include "server/prom_exporter.h"
#include "storage/posix_file.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --pfs-root DIR --cache-dir DIR [options]\n"
      "  --pfs-root DIR      dataset root on the parallel file system\n"
      "  --cache-dir DIR     node-local cache directory (NVMe)\n"
      "  --instances N       HVAC server instances on this node "
      "(default 1)\n"
      "  --bind HOST         bind address (default 127.0.0.1)\n"
      "  --capacity BYTES    per-instance cache capacity (default "
      "unlimited)\n"
      "  --eviction POLICY   random|fifo|lru (default random)\n"
      "  --movers N          data-mover threads per instance (default 1)\n"
      "  --port-file PATH    also write the endpoint CSV here\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  hvac::server::NodeRuntimeOptions options;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--pfs-root") {
      if (const char* v = next()) options.pfs_root = v;
    } else if (arg == "--cache-dir") {
      if (const char* v = next()) options.cache_root = v;
    } else if (arg == "--instances") {
      if (const char* v = next()) options.instances = std::atoi(v);
    } else if (arg == "--bind") {
      if (const char* v = next()) options.bind_host = v;
    } else if (arg == "--capacity") {
      if (const char* v = next()) {
        options.cache_capacity_bytes_per_instance = std::strtoull(
            v, nullptr, 10);
      }
    } else if (arg == "--eviction") {
      if (const char* v = next()) options.eviction_policy = v;
    } else if (arg == "--movers") {
      if (const char* v = next()) options.data_mover_threads = std::atoi(v);
    } else if (arg == "--port-file") {
      if (const char* v = next()) port_file = v;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (options.pfs_root.empty() || options.cache_root.empty()) {
    usage(argv[0]);
    return 2;
  }

  hvac::server::NodeRuntime node(options);
  if (hvac::Status s = node.start(); !s.ok()) {
    std::fprintf(stderr, "hvacd: start failed: %s\n",
                 s.error().to_string().c_str());
    return 1;
  }
  const std::string csv = node.endpoints_csv();
  std::printf("%s\n", csv.c_str());
  std::fflush(stdout);
  if (!port_file.empty()) {
    (void)hvac::storage::write_file(port_file, csv.data(), csv.size());
  }

  // OpenMetrics exporter: off unless HVAC_PROM_PORT is set (0 binds an
  // ephemeral port; HVAC_PROM_PORT_FILE publishes the bound port for
  // scripts that let the kernel pick).
  std::unique_ptr<hvac::server::PromExporter> prom;
  if (const auto prom_env = hvac::env_string("HVAC_PROM_PORT");
      prom_env.has_value() && !prom_env->empty()) {
    const int port = std::atoi(prom_env->c_str());
    if (port >= 0 && port <= 65535) {
      prom = std::make_unique<hvac::server::PromExporter>(
          static_cast<uint16_t>(port),
          [&node] { return node.aggregated_frame(); });
      if (hvac::Status s = prom->start(); !s.ok()) {
        std::fprintf(stderr, "hvacd: prom exporter failed: %s\n",
                     s.error().to_string().c_str());
        prom.reset();
      } else {
        std::fprintf(stderr, "hvacd: prom exporter on :%u/metrics\n",
                     static_cast<unsigned>(prom->port()));
        const std::string pp = hvac::env_string_or("HVAC_PROM_PORT_FILE", "");
        if (!pp.empty()) {
          const std::string v = std::to_string(prom->port());
          (void)hvac::storage::write_file(pp, v.data(), v.size());
        }
      }
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    // Signals interrupt the pause; poll cheaply otherwise.
    struct timespec ts {0, 200'000'000};
    ::nanosleep(&ts, nullptr);
  }
  // Graceful drain: stop accepting, let in-flight responses finish,
  // then flush a final metrics frame so the last scrape is not lost.
  std::fprintf(stderr, "hvacd: draining\n");
  if (prom) prom->stop();  // before node.stop(): the source borrows `node`
  node.drain();
  std::fprintf(stderr, "hvacd: final metrics %s\n",
               node.aggregated_frame().to_json().c_str());
  std::fprintf(stderr, "hvacd: shutting down, purging cache\n");
  node.stop();
  return 0;
}
