// Embedded OpenMetrics/Prometheus exporter (tentpole layer 2).
//
// A deliberately minimal HTTP/1.1 endpoint: one accept thread, one
// request per connection, `GET /metrics` answers the live metrics
// frame rendered as OpenMetrics text (counters, gauges, and the log2
// per-op latency histograms as native _bucket/_sum/_count families).
// Off by default — hvacd only starts one when HVAC_PROM_PORT is set —
// so the disabled path costs nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/result.h"
#include "core/metrics_frame.h"

namespace hvac::server {

// Pure rendering, unit-testable without a socket: the full scrape body
// for one frame, `# EOF` terminator included.
std::string render_openmetrics(const core::MetricsFrame& frame);

class PromExporter {
 public:
  using FrameSource = std::function<core::MetricsFrame()>;

  // `port` 0 binds an ephemeral port (read it back via port()).
  PromExporter(uint16_t port, FrameSource source);
  ~PromExporter();

  PromExporter(const PromExporter&) = delete;
  PromExporter& operator=(const PromExporter&) = delete;

  Status start();
  void stop();

  // Bound port after a successful start().
  uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle_connection(int fd);

  FrameSource source_;
  uint16_t requested_port_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace hvac::server
