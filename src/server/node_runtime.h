// NodeRuntime — convenience harness that models one compute node
// running i HVAC server instances (the paper's HVAC(i×1) deployment:
// "multiple HVAC server instances can be executed on a single node").
// Used by the examples, the functional tests and the LD_PRELOAD demo
// to stand up an allocation in-process.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "server/hvac_server.h"
#include "storage/pfs_backend.h"

namespace hvac::server {

struct NodeRuntimeOptions {
  // PFS mount (dataset root) shared by all instances on the node.
  std::string pfs_root;
  storage::PfsOptions pfs_options;
  // Parent directory for per-instance cache stores.
  std::string cache_root;
  uint32_t instances = 1;
  uint64_t cache_capacity_bytes_per_instance = 0;
  std::string eviction_policy = "random";
  size_t data_mover_threads = 1;
  size_t rpc_handler_threads = 2;
  // Per-instance RPC reactor count (0 = auto, see RpcServerOptions).
  size_t rpc_reactors = 0;
  std::string bind_host = "127.0.0.1";
};

class NodeRuntime {
 public:
  explicit NodeRuntime(NodeRuntimeOptions options);
  ~NodeRuntime();

  Status start();
  void stop();

  // Graceful drain of every instance (the hvacd SIGTERM path): stop
  // accepting, shed new requests, let in-flight responses finish.
  void drain(int timeout_ms = 5000);

  // Endpoint list in server-index order; feed this to HvacClient (and
  // to the HVAC_SERVERS env variable for the shim).
  std::vector<std::string> endpoints() const;
  std::string endpoints_csv() const;

  storage::PfsBackend& pfs() { return *pfs_; }
  HvacServer& instance(size_t i) { return *servers_.at(i); }
  size_t instance_count() const { return servers_.size(); }

  // Aggregated metrics across instances.
  core::MetricsSnapshot aggregated_metrics() const;

  // Full metrics frame v2 aggregated across the node's instances.
  // Per-instance sections (cache, fds, handle cache, latency) are
  // summed; process-wide sections (buffer pool, read-ahead,
  // resilience) are taken once — the instances share one process, so
  // summing them would multiply-count the same counters.
  core::MetricsFrame aggregated_frame() const;

 private:
  NodeRuntimeOptions options_;
  std::unique_ptr<storage::PfsBackend> pfs_;
  std::vector<std::unique_ptr<HvacServer>> servers_;
};

}  // namespace hvac::server
