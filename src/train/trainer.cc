#include "train/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/env.h"
#include "common/rng.h"
#include "workload/shuffler.h"

namespace hvac::train {

uint64_t TrainingCurve::iterations_to_top1(double threshold) const {
  for (const AccuracyPoint& p : points) {
    if (p.top1 >= threshold) return p.iteration;
  }
  return UINT64_MAX;
}

bool TrainingCurve::identical_to(const TrainingCurve& other) const {
  if (points.size() != other.points.size()) return false;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].iteration != other.points[i].iteration ||
        points[i].top1 != other.points[i].top1 ||
        points[i].top5 != other.points[i].top5) {
      return false;
    }
  }
  return final_top1 == other.final_top1 && final_top5 == other.final_top5;
}

SoftmaxTrainer::SoftmaxTrainer(TrainerConfig config)
    : config_(config),
      w_(static_cast<size_t>(config.num_classes) * config.dims),
      b_(config.num_classes, 0.0) {
  SplitMix64 rng(config_.init_seed);
  for (auto& w : w_) w = 0.01 * rng.next_gaussian();
}

void SoftmaxTrainer::logits(const Sample& s, std::vector<double>& out) const {
  out.assign(config_.num_classes, 0.0);
  for (uint32_t k = 0; k < config_.num_classes; ++k) {
    const double* row = w_.data() + static_cast<size_t>(k) * config_.dims;
    double z = b_[k];
    const uint32_t dims =
        std::min<uint32_t>(config_.dims,
                           static_cast<uint32_t>(s.features.size()));
    for (uint32_t d = 0; d < dims; ++d) z += row[d] * s.features[d];
    out[k] = z;
  }
}

double SoftmaxTrainer::step(const std::vector<Sample>& batch) {
  if (batch.empty()) return 0.0;
  std::vector<double> grad_w(w_.size(), 0.0);
  std::vector<double> grad_b(b_.size(), 0.0);
  std::vector<double> z;
  double loss = 0.0;

  for (const Sample& s : batch) {
    logits(s, z);
    const double zmax = *std::max_element(z.begin(), z.end());
    double denom = 0.0;
    for (double& zi : z) {
      zi = std::exp(zi - zmax);
      denom += zi;
    }
    for (uint32_t k = 0; k < config_.num_classes; ++k) {
      const double p = z[k] / denom;
      const double err = p - (k == s.label ? 1.0 : 0.0);
      if (k == s.label) loss += -std::log(std::max(p, 1e-12));
      double* grow = grad_w.data() + static_cast<size_t>(k) * config_.dims;
      const uint32_t dims =
          std::min<uint32_t>(config_.dims,
                             static_cast<uint32_t>(s.features.size()));
      for (uint32_t d = 0; d < dims; ++d) grow[d] += err * s.features[d];
      grad_b[k] += err;
    }
  }

  const double scale =
      config_.learning_rate / static_cast<double>(batch.size());
  for (size_t i = 0; i < w_.size(); ++i) w_[i] -= scale * grad_w[i];
  for (size_t k = 0; k < b_.size(); ++k) b_[k] -= scale * grad_b[k];
  ++iterations_;
  return loss / static_cast<double>(batch.size());
}

AccuracyPoint SoftmaxTrainer::evaluate(const std::vector<Sample>& test_set,
                                       uint64_t iteration) const {
  AccuracyPoint point;
  point.iteration = iteration;
  if (test_set.empty()) return point;
  uint64_t top1 = 0;
  uint64_t top5 = 0;
  std::vector<double> z;
  std::vector<uint32_t> order(config_.num_classes);
  for (const Sample& s : test_set) {
    logits(s, z);
    for (uint32_t k = 0; k < config_.num_classes; ++k) order[k] = k;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](uint32_t a, uint32_t b) { return z[a] > z[b]; });
    if (order[0] == s.label) ++top1;
    for (int i = 0; i < 5; ++i) {
      if (order[i] == s.label) {
        ++top5;
        break;
      }
    }
  }
  point.top1 = static_cast<double>(top1) / test_set.size();
  point.top5 = static_cast<double>(top5) / test_set.size();
  return point;
}

Result<TrainingCurve> run_training_loop(const LoopConfig& config,
                                        const SampleReader& reader) {
  SoftmaxTrainer trainer(config.trainer);

  // Held-out evaluation set is generated in memory (the paper's
  // validation set is not part of the cached dataset dir).
  std::vector<Sample> test_set;
  test_set.reserve(config.data.test_samples);
  for (uint64_t i = 0; i < config.data.test_samples; ++i) {
    test_set.push_back(make_sample(config.data, i, /*is_test=*/true));
  }

  TrainingCurve curve;
  workload::EpochShuffler shuffler(config.data.train_samples,
                                   config.shuffle_seed);
  uint64_t iteration = 0;
  curve.points.push_back(trainer.evaluate(test_set, 0));

  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<uint64_t> order = shuffler.shuffled(epoch);
    std::vector<std::string> paths;
    paths.reserve(order.size());
    for (uint64_t idx : order) {
      paths.push_back(path_join(config.dataset_root,
                                sample_file_name(idx)));
    }
    if (config.on_epoch_plan) config.on_epoch_plan(epoch, paths);
    std::vector<Sample> batch;
    batch.reserve(config.trainer.batch_size);
    for (const std::string& path : paths) {
      HVAC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, reader(path));
      HVAC_ASSIGN_OR_RETURN(Sample s, deserialize_sample(bytes));
      batch.push_back(std::move(s));
      if (batch.size() == config.trainer.batch_size) {
        trainer.step(batch);
        batch.clear();
        ++iteration;
        if (iteration % config.trainer.eval_every == 0) {
          curve.points.push_back(trainer.evaluate(test_set, iteration));
        }
      }
    }
    if (!batch.empty()) {
      trainer.step(batch);
      batch.clear();
      ++iteration;
    }
  }
  const AccuracyPoint final_point = trainer.evaluate(test_set, iteration);
  curve.points.push_back(final_point);
  curve.final_top1 = final_point.top1;
  curve.final_top5 = final_point.top5;
  return curve;
}

}  // namespace hvac::train
