// Minibatch softmax-regression trainer with SGD.
//
// Fully deterministic: given the same initial seed and the same
// sample *sequence*, the parameter trajectory — and therefore the
// accuracy-vs-iteration curve — is bit-identical. That determinism is
// the measurement instrument of the Fig 14 reproduction: feed the
// trainer through GPFS-direct reads and through HVAC, diff the
// curves.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "train/synthetic_data.h"

namespace hvac::train {

struct TrainerConfig {
  uint32_t num_classes = 12;
  uint32_t dims = 16;
  double learning_rate = 0.05;
  uint32_t batch_size = 16;
  uint64_t init_seed = 0x1417;  // weight init
  // Evaluate every `eval_every` iterations.
  uint32_t eval_every = 10;
};

struct AccuracyPoint {
  uint64_t iteration = 0;
  double top1 = 0;
  double top5 = 0;
};

struct TrainingCurve {
  std::vector<AccuracyPoint> points;
  double final_top1 = 0;
  double final_top5 = 0;

  // First iteration at which top-1 accuracy reached `threshold`
  // (UINT64_MAX if never).
  uint64_t iterations_to_top1(double threshold) const;
  bool identical_to(const TrainingCurve& other) const;
};

class SoftmaxTrainer {
 public:
  explicit SoftmaxTrainer(TrainerConfig config);

  // One SGD step on a minibatch. Returns the batch loss.
  double step(const std::vector<Sample>& batch);

  // Top-1/top-5 accuracy over a sample set.
  AccuracyPoint evaluate(const std::vector<Sample>& test_set,
                         uint64_t iteration) const;

  // Raw parameters (tests fingerprint them).
  const std::vector<double>& weights() const { return w_; }
  uint64_t iterations() const { return iterations_; }

 private:
  // Logits for one sample.
  void logits(const Sample& s, std::vector<double>& out) const;

  TrainerConfig config_;
  std::vector<double> w_;  // (classes x dims) row-major
  std::vector<double> b_;  // (classes)
  uint64_t iterations_ = 0;
};

// A data source yields the serialized bytes of train-sample files;
// plugging in PFS-direct or HVAC-client readers is how the Fig 14
// experiment varies the I/O path without touching the learning loop.
using SampleReader =
    std::function<Result<std::vector<uint8_t>>(const std::string& path)>;

struct LoopConfig {
  TrainerConfig trainer;
  MixtureSpec data;
  uint32_t epochs = 5;
  uint64_t shuffle_seed = 0x5eed;
  // Dataset root joined with sample_file_name(i) to form read paths.
  std::string dataset_root;
  // Called before each epoch with the epoch's complete access plan
  // (full read paths, in read order). This is the clairvoyant-prefetch
  // hookup: the shuffle is seeded, so the plan is exact — hand it to
  // HvacClient::set_access_plan() and the scheduler warms caches ahead
  // of the cursor. Null = no-op.
  std::function<void(uint32_t epoch, const std::vector<std::string>& paths)>
      on_epoch_plan;
};

// Runs the full training loop, reading every sample through `reader`
// in the canonical shuffled order. Returns the accuracy curve.
Result<TrainingCurve> run_training_loop(const LoopConfig& config,
                                        const SampleReader& reader);

}  // namespace hvac::train
