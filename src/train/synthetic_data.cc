#include "train/synthetic_data.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/env.h"
#include "common/hash.h"
#include "common/rng.h"
#include "rpc/wire.h"
#include "storage/posix_file.h"

namespace hvac::train {

namespace {

// Class mean vector: deterministic unit-ish direction scaled by the
// separation parameter.
std::vector<double> class_mean(const MixtureSpec& spec, uint32_t klass) {
  std::vector<double> mu(spec.dims);
  SplitMix64 rng(hash_combine(spec.seed, mix64(0xc1a55 + klass)));
  for (auto& m : mu) m = spec.class_separation * rng.next_gaussian();
  return mu;
}

}  // namespace

Sample make_sample(const MixtureSpec& spec, uint64_t index, bool is_test) {
  Sample s;
  s.label = static_cast<uint32_t>(index % spec.num_classes);
  const std::vector<double> mu = class_mean(spec, s.label);
  SplitMix64 rng(hash_combine(spec.seed,
                              mix64(index * 2 + (is_test ? 1 : 0))));
  s.features.resize(spec.dims);
  for (uint32_t d = 0; d < spec.dims; ++d) {
    s.features[d] = mu[d] + spec.noise_sigma * rng.next_gaussian();
  }
  return s;
}

std::vector<uint8_t> serialize_sample(const Sample& sample) {
  rpc::WireWriter w;
  w.put_u32(sample.label);
  w.put_u32(static_cast<uint32_t>(sample.features.size()));
  for (double f : sample.features) w.put_f64(f);
  return std::move(w).take();
}

Result<Sample> deserialize_sample(const std::vector<uint8_t>& bytes) {
  rpc::WireReader r(bytes);
  Sample s;
  HVAC_ASSIGN_OR_RETURN(s.label, r.get_u32());
  HVAC_ASSIGN_OR_RETURN(uint32_t dims, r.get_u32());
  s.features.resize(dims);
  for (uint32_t d = 0; d < dims; ++d) {
    HVAC_ASSIGN_OR_RETURN(s.features[d], r.get_f64());
  }
  return s;
}

std::string sample_file_name(uint64_t index) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "shard_%02" PRIu64 "/sample_%06" PRIu64
                                  ".bin",
                index % 16, index);
  return std::string(buf);
}

Status write_train_files(const MixtureSpec& spec, const std::string& root) {
  for (uint64_t i = 0; i < spec.train_samples; ++i) {
    const Sample s = make_sample(spec, i, /*is_test=*/false);
    const std::vector<uint8_t> bytes = serialize_sample(s);
    HVAC_RETURN_IF_ERROR(storage::write_file(
        path_join(root, sample_file_name(i)), bytes.data(), bytes.size()));
  }
  return Status::Ok();
}

}  // namespace hvac::train
