// Synthetic classification dataset for the accuracy experiment
// (paper Fig 14). A Gaussian-mixture problem is the smallest real
// learning task whose accuracy-vs-iteration curve is meaningful; the
// experiment's point is not the model but the *data path*: the curve
// must be bit-identical whether samples are read from the PFS or
// through HVAC, because HVAC never perturbs the shuffled sequence.
//
// Each sample is serialized to its own file — one sample per file is
// exactly the access pattern that makes DL I/O hard (§II-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace hvac::train {

struct Sample {
  uint32_t label = 0;
  std::vector<double> features;
};

struct MixtureSpec {
  uint32_t num_classes = 12;
  uint32_t dims = 16;
  uint32_t train_samples = 1200;
  uint32_t test_samples = 240;
  double class_separation = 2.2;  // distance between class means
  double noise_sigma = 1.0;
  uint64_t seed = 0xda7a5eed;
};

// Deterministic sample `index` of the train (is_test=false) or test
// split.
Sample make_sample(const MixtureSpec& spec, uint64_t index, bool is_test);

// (De)serialization: [u32 label][u32 dims][dims x f64 little-endian].
std::vector<uint8_t> serialize_sample(const Sample& sample);
Result<Sample> deserialize_sample(const std::vector<uint8_t>& bytes);

// Relative file name of train sample `index` inside a dataset dir.
std::string sample_file_name(uint64_t index);

// Writes all train samples as individual files under `root`.
Status write_train_files(const MixtureSpec& spec, const std::string& root);

}  // namespace hvac::train
