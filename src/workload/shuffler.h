// Epoch shuffling and distributed sampling (paper §II-B, Fig 2).
//
// Before each epoch the training framework shuffles the whole file
// list; each rank then takes its strided partition. HVAC must consume
// this sequence untouched — the Fig 14 accuracy experiment asserts
// that the sequence delivered through the cache is bit-identical to
// the sequence delivered by the PFS.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"

namespace hvac::workload {

// Deterministic shuffled permutation of [0, num_files) for an epoch.
// Matches PyTorch's DistributedSampler contract: the permutation
// depends only on (seed, epoch), never on which backend serves reads.
class EpochShuffler {
 public:
  EpochShuffler(uint64_t num_files, uint64_t seed)
      : num_files_(num_files), seed_(seed) {}

  std::vector<uint64_t> shuffled(uint32_t epoch) const {
    std::vector<uint64_t> order(num_files_);
    for (uint64_t i = 0; i < num_files_; ++i) order[i] = i;
    SplitMix64 rng(hash_combine(seed_, mix64(epoch + 1)));
    fisher_yates_shuffle(order, rng);
    return order;
  }

  uint64_t num_files() const { return num_files_; }

 private:
  uint64_t num_files_;
  uint64_t seed_;
};

// Strided partition of a shuffled order across `world_size` ranks.
// Every rank sees ceil(n / world) samples; the tail wraps (PyTorch
// pads the same way so all ranks run equal step counts).
class DistributedSampler {
 public:
  DistributedSampler(uint32_t rank, uint32_t world_size)
      : rank_(rank), world_size_(world_size == 0 ? 1 : world_size) {}

  std::vector<uint64_t> partition(
      const std::vector<uint64_t>& shuffled_order) const {
    std::vector<uint64_t> mine;
    const uint64_t n = shuffled_order.size();
    if (n == 0) return mine;
    const uint64_t per_rank = (n + world_size_ - 1) / world_size_;
    mine.reserve(per_rank);
    for (uint64_t k = 0; k < per_rank; ++k) {
      mine.push_back(shuffled_order[(k * world_size_ + rank_) % n]);
    }
    return mine;
  }

 private:
  uint32_t rank_;
  uint32_t world_size_;
};

}  // namespace hvac::workload
