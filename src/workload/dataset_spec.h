// Dataset and DL-application workload models (paper §IV-A2/3).
//
// The paper's four applications matter to HVAC only through their I/O
// shape: how many files, how big, how they are batched, and how much
// compute hides behind each sample. DatasetSpec captures the dataset
// populations (ImageNet21K: 11.8M files averaging ~163 KB;
// cosmoUniverse: 524K TFRecords averaging ~2.6 MB; DeepCAM: large
// multi-channel samples) and AppSpec captures the training loop
// parameters used in each figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hvac::workload {

struct DatasetSpec {
  std::string name;
  uint64_t num_files = 0;
  // Mean file size; sizes are drawn log-normally around it unless
  // sigma == 0 (fixed-size files, e.g. TFRecords).
  double mean_file_bytes = 0.0;
  double lognormal_sigma = 0.0;
  uint64_t min_file_bytes = 1;

  // Total bytes at scale 1 (approximate: num_files * mean).
  double total_bytes() const { return mean_file_bytes * double(num_files); }

  // Deterministic per-file size for index `i` (stable across runs and
  // independent of how many other sizes were drawn).
  uint64_t file_size(uint64_t index, uint64_t seed = 0) const;

  // A scaled copy with num_files/scale files (same distribution); the
  // simulator uses this to keep event counts tractable and multiplies
  // back. scale is clamped to keep at least 64 files.
  DatasetSpec scaled(uint64_t scale) const;
};

// Paper datasets.
DatasetSpec imagenet21k();     // 11,797,632 train files, ~163 KB avg, 1.1 TB
DatasetSpec cosmo_universe();  // 524,288 train TFRecords, ~2.6 MB, 1.3 TB
DatasetSpec deepcam_dataset(); // 121,216 samples of 768x1152x16ch
// Small synthetic dataset for functional runs on one machine.
DatasetSpec synthetic_small(uint64_t num_files, uint64_t mean_bytes,
                            double sigma = 0.35);

struct AppSpec {
  std::string name;
  DatasetSpec dataset;
  uint32_t batch_size = 32;
  uint32_t epochs = 10;
  uint32_t procs_per_node = 2;  // paper: two concurrent jobs per node
  // Seconds of GPU compute per *batch* (forward+backward+allreduce),
  // calibrated so GPFS-vs-cache crossovers land where the paper's do.
  double compute_seconds_per_batch = 0.0;
};

// The four evaluated applications with the figures' parameters.
AppSpec resnet50();    // ImageNet21K, BS=32
AppSpec tresnet_m();   // ImageNet21K, BS=80
AppSpec cosmoflow();   // cosmoUniverse
AppSpec deepcam();     // DeepCAM climate segmentation

// Relative file path for dataset file `index` (an ImageNet-style
// class/file tree; purely deterministic).
std::string dataset_file_path(const DatasetSpec& spec, uint64_t index);

}  // namespace hvac::workload
