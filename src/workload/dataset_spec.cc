#include "workload/dataset_spec.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/hash.h"
#include "common/rng.h"

namespace hvac::workload {

uint64_t DatasetSpec::file_size(uint64_t index, uint64_t seed) const {
  if (lognormal_sigma <= 0.0) {
    return std::max<uint64_t>(static_cast<uint64_t>(mean_file_bytes),
                              min_file_bytes);
  }
  // Seed per (dataset, index) so size lookups are random-access.
  SplitMix64 rng(hash_combine(fnv1a64(name), mix64(index + seed)));
  const double size = rng.next_lognormal_with_mean(mean_file_bytes,
                                                   lognormal_sigma);
  return std::max<uint64_t>(static_cast<uint64_t>(size), min_file_bytes);
}

DatasetSpec DatasetSpec::scaled(uint64_t scale) const {
  DatasetSpec out = *this;
  if (scale <= 1) return out;
  out.num_files = std::max<uint64_t>(num_files / scale, 64);
  return out;
}

DatasetSpec imagenet21k() {
  DatasetSpec d;
  d.name = "imagenet21k";
  d.num_files = 11'797'632;
  d.mean_file_bytes = 163.0 * 1024;  // ~1.1 TB total (paper §IV-A3)
  d.lognormal_sigma = 0.6;           // JPEG sizes are right-skewed
  d.min_file_bytes = 4 * 1024;
  return d;
}

DatasetSpec cosmo_universe() {
  DatasetSpec d;
  d.name = "cosmoUniverse";
  d.num_files = 524'288;
  // 1.3 TB / 524,288 samples ~ 2.6 MB fixed-size TFRecords.
  d.mean_file_bytes = 2.6 * 1024 * 1024;
  d.lognormal_sigma = 0.0;
  d.min_file_bytes = 1024;
  return d;
}

DatasetSpec deepcam_dataset() {
  DatasetSpec d;
  d.name = "deepcam";
  // 768 x 1152 x 16 channels, float16 -> ~28 MB per sample file;
  // the MLPerf-HPC DeepCAM training set has ~121k samples.
  d.num_files = 121'216;
  d.mean_file_bytes = 768.0 * 1152 * 16 * 2;
  d.lognormal_sigma = 0.0;
  d.min_file_bytes = 1024;
  return d;
}

DatasetSpec synthetic_small(uint64_t num_files, uint64_t mean_bytes,
                            double sigma) {
  DatasetSpec d;
  d.name = "synthetic";
  d.num_files = num_files;
  d.mean_file_bytes = static_cast<double>(mean_bytes);
  d.lognormal_sigma = sigma;
  d.min_file_bytes = 64;
  return d;
}

AppSpec resnet50() {
  AppSpec a;
  a.name = "resnet50";
  a.dataset = imagenet21k();
  a.batch_size = 32;
  a.epochs = 10;
  a.procs_per_node = 2;
  // ~1000 images/s of compute per training process on a Summit node
  // share (3 V100s): 32/1000 = 32 ms per batch.
  a.compute_seconds_per_batch = 0.032;
  return a;
}

AppSpec tresnet_m() {
  AppSpec a;
  a.name = "tresnet_m";
  a.dataset = imagenet21k();
  a.batch_size = 80;
  a.epochs = 10;
  a.procs_per_node = 2;
  // TResNet-M is throughput-optimized; ~1300 img/s per process.
  a.compute_seconds_per_batch = 0.062;
  return a;
}

AppSpec cosmoflow() {
  AppSpec a;
  a.name = "cosmoflow";
  a.dataset = cosmo_universe();
  a.batch_size = 8;
  a.epochs = 10;
  a.procs_per_node = 2;
  // 3D convolutions over 128^3 volumes: ~300 samples/s per process
  // with mixed precision.
  a.compute_seconds_per_batch = 0.027;
  return a;
}

AppSpec deepcam() {
  AppSpec a;
  a.name = "deepcam";
  a.dataset = deepcam_dataset();
  a.batch_size = 4;
  a.epochs = 10;
  a.procs_per_node = 2;
  // Large segmentation model on 768x1152x16 inputs: ~40 samples/s per
  // process; with ~28 MB samples this is the bandwidth-heavy workload.
  a.compute_seconds_per_batch = 0.1;
  return a;
}

std::string dataset_file_path(const DatasetSpec& spec, uint64_t index) {
  // ImageNet-style layout: 1024 class directories, files within.
  const uint64_t klass = mix64(index) % 1024;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "class_%04" PRIu64 "/%s_%08" PRIu64 ".bin",
                klass, spec.name.c_str(), index);
  return std::string(buf);
}

}  // namespace hvac::workload
