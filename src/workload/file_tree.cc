#include "workload/file_tree.h"

#include "common/env.h"
#include "common/hash.h"
#include "common/rng.h"
#include "storage/posix_file.h"

namespace hvac::workload {

std::vector<uint8_t> expected_contents(const std::string& relative_path,
                                       uint64_t size) {
  std::vector<uint8_t> data(size);
  SplitMix64 rng(stable_hash(relative_path));
  size_t i = 0;
  while (i + 8 <= data.size()) {
    const uint64_t word = rng.next();
    std::memcpy(data.data() + i, &word, 8);
    i += 8;
  }
  uint64_t word = rng.next();
  for (; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(word);
    word >>= 8;
  }
  return data;
}

bool verify_contents(const std::string& relative_path,
                     const std::vector<uint8_t>& data) {
  return data == expected_contents(relative_path, data.size());
}

Result<GeneratedTree> generate_tree(const std::string& root,
                                    const DatasetSpec& spec,
                                    uint64_t seed) {
  GeneratedTree tree;
  tree.root = root;
  tree.relative_paths.reserve(spec.num_files);
  tree.sizes.reserve(spec.num_files);
  HVAC_RETURN_IF_ERROR(storage::make_directories(root));
  for (uint64_t i = 0; i < spec.num_files; ++i) {
    const std::string rel = dataset_file_path(spec, i);
    const uint64_t size = spec.file_size(i, seed);
    const std::vector<uint8_t> contents = expected_contents(rel, size);
    HVAC_RETURN_IF_ERROR(storage::write_file(path_join(root, rel),
                                             contents.data(),
                                             contents.size()));
    tree.relative_paths.push_back(rel);
    tree.sizes.push_back(size);
    tree.total_bytes += size;
  }
  return tree;
}

}  // namespace hvac::workload
