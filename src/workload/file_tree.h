// Generates real, scaled-down dataset trees on disk for the
// functional tests, examples and the LD_PRELOAD demo. File contents
// are a deterministic function of the relative path, so any reader —
// direct, through HvacClient, or through the shim — can be verified
// byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/dataset_spec.h"

namespace hvac::workload {

struct GeneratedTree {
  std::string root;
  std::vector<std::string> relative_paths;
  std::vector<uint64_t> sizes;
  uint64_t total_bytes = 0;
};

// Materializes `spec.num_files` files under `root` using
// dataset_file_path() names and spec.file_size() sizes. Keep specs
// small (this writes real bytes).
Result<GeneratedTree> generate_tree(const std::string& root,
                                    const DatasetSpec& spec,
                                    uint64_t seed = 0);

// The deterministic contents of a generated file.
std::vector<uint8_t> expected_contents(const std::string& relative_path,
                                       uint64_t size);

// Verifies a buffer against the generator's pattern.
bool verify_contents(const std::string& relative_path,
                     const std::vector<uint8_t>& data);

}  // namespace hvac::workload
