#include "rpc/async_client.h"

#include <sys/socket.h>
#include <sys/time.h>

#include "common/log.h"
#include "common/trace.h"
#include "rpc/wire.h"

namespace hvac::rpc {

AsyncRpcClient::AsyncRpcClient(Endpoint endpoint, RpcClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(options),
      health_(HealthRegistry::global().get(endpoint_.address)) {}

AsyncRpcClient::~AsyncRpcClient() { shutdown(); }

Status AsyncRpcClient::ensure_connected_locked(
    std::unique_lock<std::mutex>& lock) {
  if (broken_) {
    // The receiver exited (or is about to) after a transport error;
    // reap it before dialing again. The join must happen without
    // mutex_ held — the exiting receiver takes mutex_ inside
    // fail_all() — and the socket must be shut down (not just closed)
    // first so a receiver still blocked in recv wakes up. Closing the
    // fd waits until after the join: the receiver reads from the raw
    // fd, and closing early would let another thread reuse the number.
    if (reaping_) {
      return Error(ErrorCode::kUnavailable,
                   "channel to " + endpoint_.address + " reconnecting");
    }
    reaping_ = true;
    if (socket_.valid()) ::shutdown(socket_.get(), SHUT_RDWR);
    std::thread dead = std::move(receiver_);
    lock.unlock();
    if (dead.joinable()) dead.join();
    lock.lock();
    socket_.reset();
    broken_ = false;
    reaping_ = false;
    if (shutting_down_) {
      return Error(ErrorCode::kCancelled, "client shut down");
    }
  }
  if (socket_.valid()) return Status::Ok();
  auto dialed = connect_to(endpoint_, options_.connect_timeout_ms);
  if (!dialed.ok()) {
    if (dialed.error().code == ErrorCode::kUnavailable ||
        dialed.error().code == ErrorCode::kTimeout) {
      health_->record_failure();
    }
    return dialed.error();
  }
  socket_ = std::move(dialed).value();
  if (options_.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(socket_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const int fd = socket_.get();
  receiver_ = std::thread([this, fd] { receiver_loop(fd); });
  return Status::Ok();
}

std::future<Result<Bytes>> AsyncRpcClient::call_async(uint16_t opcode,
                                                      const Bytes& request) {
  auto pending = std::make_shared<Pending>();
  std::future<Result<Bytes>> fut = pending->promise.get_future();

  auto fail_now = [&](Error error) {
    pending->promise.set_value(Result<Bytes>(std::move(error)));
    return std::move(fut);
  };
  if (request.size() > kMaxFrame) {
    return fail_now(
        Error(ErrorCode::kInvalidArgument, "request exceeds max frame"));
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (shutting_down_) {
    return fail_now(Error(ErrorCode::kCancelled, "client shut down"));
  }
  if (!health_->allow_request()) {
    return fail_now(Error(ErrorCode::kUnavailable,
                          "circuit open for " + endpoint_.address));
  }
  if (Status s = ensure_connected_locked(lock); !s.ok()) {
    return fail_now(s.error());
  }

  // The span covers submission only (the response lands on the
  // receiver thread); completion latency is visible as the gap to the
  // caller's enclosing span.
  trace::Span span("rpc.async_send", opcode);

  FrameHeader header;
  header.payload_len = static_cast<uint32_t>(request.size());
  header.request_id = next_request_id_++;
  header.opcode = opcode;
  header.kind = FrameKind::kRequest;
  if (span.armed()) {
    header.has_trace = true;
    header.trace = trace::current_context();
  }
  pending_[header.request_id] = pending;

  uint8_t hdr[kMaxHeaderSize];
  const size_t hdr_len = encode_header(header, hdr);
  Status sent = send_all(socket_.get(), hdr, hdr_len);
  if (sent.ok() && !request.empty()) {
    sent = send_all(socket_.get(), request.data(), request.size());
  }
  if (!sent.ok()) {
    pending_.erase(header.request_id);
    broken_ = true;
    health_->record_failure();
    return fail_now(Error(ErrorCode::kUnavailable, sent.error().message));
  }
  return fut;
}

void AsyncRpcClient::receiver_loop(int fd) {
  for (;;) {
    uint8_t hdr[kHeaderSize];
    Status got = recv_all(fd, hdr, kHeaderSize);
    if (!got.ok()) {
      fail_all(Error(ErrorCode::kUnavailable,
                     "connection lost: " + got.error().message));
      return;
    }
    auto header = decode_header(hdr, kHeaderSize);
    if (!header.ok()) {
      fail_all(header.error());
      return;
    }
    if (header->has_trace) {
      // Responses are HVC1 today; consume a future traced response's
      // context rather than desyncing the stream.
      uint8_t tbuf[kTraceContextSize];
      got = recv_all(fd, tbuf, sizeof(tbuf));
      if (!got.ok()) {
        fail_all(Error(ErrorCode::kUnavailable, got.error().message));
        return;
      }
    }
    Bytes payload(header->payload_len);
    if (header->payload_len > 0) {
      got = recv_all(fd, payload.data(), payload.size());
      if (!got.ok()) {
        fail_all(Error(ErrorCode::kUnavailable, got.error().message));
        return;
      }
    }
    std::shared_ptr<Pending> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_.find(header->request_id);
      if (it != pending_.end()) {
        pending = it->second;
        pending_.erase(it);
      }
    }
    if (!pending) {
      HVAC_LOG_WARN("async response for unknown id " << header->request_id);
      continue;
    }
    // Any complete response — even a handler error — proves the
    // endpoint alive; keep its circuit closed.
    health_->record_success();
    if (header->status != ErrorCode::kOk) {
      WireReader r(payload);
      auto msg = r.get_string();
      pending->promise.set_value(Result<Bytes>(
          Error(header->status, msg.ok() ? *msg : "(no message)")));
    } else {
      pending->promise.set_value(Result<Bytes>(std::move(payload)));
    }
  }
}

void AsyncRpcClient::fail_all(const Error& error) {
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> orphans;
  bool count_failure = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A local shutdown() tears the socket down on purpose; only a
    // transport error against a live client counts against the
    // endpoint's breaker.
    count_failure = !shutting_down_ &&
                    (error.code == ErrorCode::kUnavailable ||
                     error.code == ErrorCode::kTimeout ||
                     error.code == ErrorCode::kProtocol);
    orphans.swap(pending_);
    broken_ = true;
  }
  if (count_failure) health_->record_failure();
  for (auto& [id, pending] : orphans) {
    pending->promise.set_value(Result<Bytes>(error));
  }
}

void AsyncRpcClient::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      // Second call: just make sure the receiver is reaped below.
    }
    shutting_down_ = true;
    if (socket_.valid()) {
      // Breaks the receiver out of recv_all.
      ::shutdown(socket_.get(), SHUT_RDWR);
    }
  }
  if (receiver_.joinable()) receiver_.join();
  fail_all(Error(ErrorCode::kCancelled, "client shut down"));
  std::lock_guard<std::mutex> lock(mutex_);
  socket_.reset();
}

size_t AsyncRpcClient::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

}  // namespace hvac::rpc
