// Frame format shared by RpcClient and RpcServer.
//
//   [u32 magic 'HVC1'] [u32 payload_len] [u64 request_id]
//   [u16 opcode] [u8 kind] [u8 status]
//
// followed by payload_len bytes of opaque payload. Responses echo the
// request_id; `status` carries an ErrorCode so handler failures travel
// back without a payload schema. Payloads above kMaxFrame are refused
// — bulk file reads are chunked by the HVAC client instead (this is
// the moral equivalent of Mercury's separate bulk channel).
//
// Version 2 ('HVC2') is version 1 plus a 16-byte trace context
// immediately after the fixed header:
//
//   [u64 trace_id] [u32 parent_span_id] [u32 flags]
//
// A sender only emits HVC2 when a trace is actually active, so
// untraced traffic is byte-identical to version 1 and old decoders
// keep working against new senders with tracing off. Receivers accept
// both magics: decode_header() reports `has_trace`, and the caller
// reads kTraceContextSize further bytes through decode_trace_context()
// before the payload.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/trace.h"
#include "rpc/wire.h"

namespace hvac::rpc {

constexpr uint32_t kMagic = 0x31435648;        // "HVC1"
constexpr uint32_t kMagicTraced = 0x32435648;  // "HVC2": header + trace ctx
constexpr size_t kHeaderSize = 4 + 4 + 8 + 2 + 1 + 1;
constexpr size_t kTraceContextSize = trace::kTraceContextSize;
constexpr size_t kMaxHeaderSize = kHeaderSize + kTraceContextSize;
constexpr size_t kMaxFrame = 64u << 20;  // 64 MiB

enum class FrameKind : uint8_t {
  kRequest = 0,
  kResponse = 1,
};

struct FrameHeader {
  uint32_t payload_len = 0;
  uint64_t request_id = 0;
  uint16_t opcode = 0;
  FrameKind kind = FrameKind::kRequest;
  ErrorCode status = ErrorCode::kOk;
  bool has_trace = false;
  trace::TraceContext trace;
};

// Writes kHeaderSize bytes, plus the trace context when h.has_trace
// and the context is valid; returns the number of bytes written.
inline size_t encode_header(const FrameHeader& h,
                            uint8_t out[kMaxHeaderSize]) {
  const bool traced = h.has_trace && h.trace.valid();
  WireWriter w;
  w.put_u32(traced ? kMagicTraced : kMagic);
  w.put_u32(h.payload_len);
  w.put_u64(h.request_id);
  w.put_u16(h.opcode);
  w.put_u8(static_cast<uint8_t>(h.kind));
  w.put_u8(static_cast<uint8_t>(h.status));
  if (traced) put_trace_context(w, h.trace);
  const Bytes& b = w.bytes();
  for (size_t i = 0; i < b.size(); ++i) out[i] = b[i];
  return b.size();
}

// Decodes the fixed kHeaderSize prefix. Both magics are accepted; an
// HVC2 frame sets has_trace and the caller must consume a further
// kTraceContextSize bytes (decode_trace_context) before the payload.
inline Result<FrameHeader> decode_header(const uint8_t* data, size_t size) {
  WireReader r(data, size);
  HVAC_ASSIGN_OR_RETURN(uint32_t magic, r.get_u32());
  if (magic != kMagic && magic != kMagicTraced) {
    return Error(ErrorCode::kProtocol, "bad frame magic");
  }
  FrameHeader h;
  h.has_trace = magic == kMagicTraced;
  HVAC_ASSIGN_OR_RETURN(h.payload_len, r.get_u32());
  HVAC_ASSIGN_OR_RETURN(h.request_id, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(h.opcode, r.get_u16());
  HVAC_ASSIGN_OR_RETURN(uint8_t kind, r.get_u8());
  if (kind > 1) return Error(ErrorCode::kProtocol, "bad frame kind");
  h.kind = static_cast<FrameKind>(kind);
  HVAC_ASSIGN_OR_RETURN(uint8_t status, r.get_u8());
  h.status = static_cast<ErrorCode>(status);
  if (h.payload_len > kMaxFrame) {
    return Error(ErrorCode::kProtocol, "frame too large");
  }
  return h;
}

// Fills h.trace from the kTraceContextSize bytes that follow an HVC2
// header.
inline Status decode_trace_context(FrameHeader& h, const uint8_t* data,
                                   size_t size) {
  WireReader r(data, size);
  HVAC_ASSIGN_OR_RETURN(h.trace, get_trace_context(r));
  return Status::Ok();
}

}  // namespace hvac::rpc
