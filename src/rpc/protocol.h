// Frame format shared by RpcClient and RpcServer.
//
//   [u32 magic 'HVC1'] [u32 payload_len] [u64 request_id]
//   [u16 opcode] [u8 kind] [u8 status]
//
// followed by payload_len bytes of opaque payload. Responses echo the
// request_id; `status` carries an ErrorCode so handler failures travel
// back without a payload schema. Payloads above kMaxFrame are refused
// — bulk file reads are chunked by the HVAC client instead (this is
// the moral equivalent of Mercury's separate bulk channel).
#pragma once

#include <cstdint>

#include "common/result.h"
#include "rpc/wire.h"

namespace hvac::rpc {

constexpr uint32_t kMagic = 0x31435648;  // "HVC1"
constexpr size_t kHeaderSize = 4 + 4 + 8 + 2 + 1 + 1;
constexpr size_t kMaxFrame = 64u << 20;  // 64 MiB

enum class FrameKind : uint8_t {
  kRequest = 0,
  kResponse = 1,
};

struct FrameHeader {
  uint32_t payload_len = 0;
  uint64_t request_id = 0;
  uint16_t opcode = 0;
  FrameKind kind = FrameKind::kRequest;
  ErrorCode status = ErrorCode::kOk;
};

inline void encode_header(const FrameHeader& h, uint8_t out[kHeaderSize]) {
  WireWriter w;
  w.put_u32(kMagic);
  w.put_u32(h.payload_len);
  w.put_u64(h.request_id);
  w.put_u16(h.opcode);
  w.put_u8(static_cast<uint8_t>(h.kind));
  w.put_u8(static_cast<uint8_t>(h.status));
  const Bytes& b = w.bytes();
  for (size_t i = 0; i < kHeaderSize; ++i) out[i] = b[i];
}

inline Result<FrameHeader> decode_header(const uint8_t* data, size_t size) {
  WireReader r(data, size);
  HVAC_ASSIGN_OR_RETURN(uint32_t magic, r.get_u32());
  if (magic != kMagic) {
    return Error(ErrorCode::kProtocol, "bad frame magic");
  }
  FrameHeader h;
  HVAC_ASSIGN_OR_RETURN(h.payload_len, r.get_u32());
  HVAC_ASSIGN_OR_RETURN(h.request_id, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(h.opcode, r.get_u16());
  HVAC_ASSIGN_OR_RETURN(uint8_t kind, r.get_u8());
  if (kind > 1) return Error(ErrorCode::kProtocol, "bad frame kind");
  h.kind = static_cast<FrameKind>(kind);
  HVAC_ASSIGN_OR_RETURN(uint8_t status, r.get_u8());
  h.status = static_cast<ErrorCode>(status);
  if (h.payload_len > kMaxFrame) {
    return Error(ErrorCode::kProtocol, "frame too large");
  }
  return h;
}

}  // namespace hvac::rpc
