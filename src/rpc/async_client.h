// Asynchronous RPC channel: many outstanding calls multiplexed over
// one connection by request id, with a dedicated receiver thread —
// the shape of Mercury's HG_Forward/HG_Trigger pattern. Used for
// pipelined cache warm-up (prefetch) where waiting a round trip per
// file would waste the whole interconnect.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "rpc/health.h"
#include "rpc/protocol.h"
#include "rpc/rpc_client.h"  // RpcClientOptions
#include "rpc/socket.h"

namespace hvac::rpc {

class AsyncRpcClient {
 public:
  explicit AsyncRpcClient(Endpoint endpoint,
                          RpcClientOptions options = {});
  ~AsyncRpcClient();

  AsyncRpcClient(const AsyncRpcClient&) = delete;
  AsyncRpcClient& operator=(const AsyncRpcClient&) = delete;

  // Issues a call; the future resolves when the response (or a
  // transport error) arrives. Any number of calls may be in flight.
  std::future<Result<Bytes>> call_async(uint16_t opcode,
                                        const Bytes& request);

  // Convenience synchronous wrapper.
  Result<Bytes> call(uint16_t opcode, const Bytes& request) {
    return call_async(opcode, request).get();
  }

  // Fails all pending calls and joins the receiver. Idempotent.
  void shutdown();

  size_t pending() const;

 private:
  struct Pending {
    std::promise<Result<Bytes>> promise;
  };

  Status ensure_connected_locked(std::unique_lock<std::mutex>& lock);
  void receiver_loop(int fd);
  void fail_all(const Error& error);

  Endpoint endpoint_;
  RpcClientOptions options_;
  // Shared with every other channel to this endpoint: a crash seen by
  // the sync channel fails async calls fast too, and vice versa.
  std::shared_ptr<EndpointHealth> health_;

  mutable std::mutex mutex_;
  Fd socket_;
  std::thread receiver_;
  uint64_t next_request_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending_;
  bool shutting_down_ = false;
  bool broken_ = false;  // receiver saw a transport error; reconnect
                         // lazily on the next call
  bool reaping_ = false;  // a caller is joining the dead receiver
                          // outside the lock; others fail fast
};

}  // namespace hvac::rpc
