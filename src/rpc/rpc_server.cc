#include "rpc/rpc_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/env.h"
#include "common/log.h"
#include "common/trace.h"
#include "rpc/health.h"

namespace hvac::rpc {

// Per-connection read state machine. Reads run only on the progress
// thread; writes run on handler threads under write_mutex.
struct RpcServer::Connection {
  explicit Connection(Fd socket) : fd(std::move(socket)) {}

  Fd fd;
  std::mutex write_mutex;
  // Scratch pipe for the splice rung, created lazily on the first
  // extent-bearing response and reused for the connection's lifetime
  // (guarded by write_mutex like all response writes).
  Fd pipe_rd;
  Fd pipe_wr;
  // Requests dispatched but not yet answered (backpressure cap).
  std::atomic<uint32_t> inflight{0};

  // Read state: first kHeaderSize bytes, then (for HVC2 frames) the
  // trace context, then payload_len bytes.
  uint8_t header_buf[kHeaderSize];
  size_t header_got = 0;
  uint8_t trace_buf[kTraceContextSize];
  size_t trace_got = 0;
  bool in_trace = false;
  FrameHeader header;
  Bytes payload;
  size_t payload_got = 0;
  bool in_payload = false;

  void reset_frame() {
    header_got = 0;
    trace_got = 0;
    in_trace = false;
    payload.clear();
    payload_got = 0;
    in_payload = false;
  }
};

RpcServer::RpcServer(RpcServerOptions options)
    : options_(std::move(options)) {
  // HVAC_MAX_FRAME_BYTES can tighten (never widen) the frame bound.
  const int64_t env_cap = env_int_or("HVAC_MAX_FRAME_BYTES", 0);
  if (env_cap > 0 &&
      static_cast<uint64_t>(env_cap) < options_.max_frame_bytes) {
    options_.max_frame_bytes = static_cast<uint32_t>(env_cap);
  }
  if (options_.max_frame_bytes > kMaxFrame) {
    options_.max_frame_bytes = static_cast<uint32_t>(kMaxFrame);
  }
  // Backpressure knobs: HVAC_MAX_INFLIGHT can tighten (never widen)
  // the per-connection in-flight cap.
  const int64_t env_inflight = env_int_or("HVAC_MAX_INFLIGHT", 0);
  if (env_inflight > 0 &&
      (options_.max_inflight_per_conn == 0 ||
       static_cast<uint64_t>(env_inflight) <
           options_.max_inflight_per_conn)) {
    options_.max_inflight_per_conn = static_cast<uint32_t>(env_inflight);
  }
  const int64_t env_retry = env_int_or("HVAC_SHED_RETRY_AFTER_MS", 0);
  if (env_retry > 0) {
    options_.shed_retry_after_ms = static_cast<uint32_t>(env_retry);
  }
}

RpcServer::~RpcServer() { stop(); }

void RpcServer::register_handler(uint16_t opcode, Handler handler) {
  // Adapt onto the payload-handler map: a plain Bytes result becomes
  // an owned payload, so the dispatch path is uniform.
  handlers_[opcode] = [handler = std::move(handler)](
                          const Bytes& request) -> Result<Payload> {
    Result<Bytes> result = handler(request);
    if (!result.ok()) return result.error();
    return Payload(std::move(result).value());
  };
}

void RpcServer::register_payload_handler(uint16_t opcode,
                                         PayloadHandler handler) {
  handlers_[opcode] = std::move(handler);
}

Status RpcServer::start() {
  HVAC_ASSIGN_OR_RETURN(listen_fd_,
                        listen_on(Endpoint{options_.bind_address}, &bound_));
  HVAC_RETURN_IF_ERROR(set_nonblocking(listen_fd_.get(), true));

  const int efd = ::epoll_create1(0);
  if (efd < 0) return Error::from_errno(errno, "epoll_create1");
  epoll_fd_ = Fd(efd);

  const int wfd = ::eventfd(0, EFD_NONBLOCK);
  if (wfd < 0) return Error::from_errno(errno, "eventfd");
  wake_fd_ = Fd(wfd);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) !=
      0) {
    return Error::from_errno(errno, "epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    return Error::from_errno(errno, "epoll_ctl(wake)");
  }

  zerocopy_mode_ = resolve_zerocopy_mode();
  pool_ = std::make_unique<ThreadPool>(options_.handler_threads);
  running_.store(true, std::memory_order_release);
  progress_ = std::thread([this] { progress_loop(); });
  HVAC_LOG_INFO("rpc server listening on "
                << bound_.address << " (zerocopy="
                << zerocopy_mode_name(zerocopy_mode_) << ")");
  return Status::Ok();
}

void RpcServer::stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (was_running) {
    // Wake the progress thread out of epoll_wait.
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
  }
  if (progress_.joinable()) progress_.join();
  if (pool_) pool_->shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.clear();
  }
  listen_fd_.reset();
  if (bound_.is_unix()) ::unlink(bound_.unix_path().c_str());
}

void RpcServer::drain(int timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  if (!draining_.exchange(true, std::memory_order_acq_rel)) {
    ResilienceCounters::global().drains.fetch_add(1,
                                                  std::memory_order_relaxed);
    // The progress thread owns the listen socket; wake it so it
    // deregisters and closes the listener (no new connections).
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
  }
  const int64_t deadline = steady_now_ms() + std::max(timeout_ms, 0);
  while (inflight_.load(std::memory_order_acquire) > 0 &&
         steady_now_ms() < deadline) {
    timespec ts{0, 1'000'000};  // 1 ms
    ::nanosleep(&ts, nullptr);
  }
}

void RpcServer::progress_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    if (draining_.load(std::memory_order_acquire) && listen_fd_.valid()) {
      // Drain: stop accepting. Deregister + close here (the thread
      // that polls the fd) so no event for it can be in flight.
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(),
                  nullptr);
      listen_fd_.reset();
    }
    const int n = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      HVAC_LOG_ERROR("epoll_wait: " << std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        // Drain the eventfd counter so it does not stay readable and
        // spin the loop; stop() still breaks the loop via running_.
        uint64_t count = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_.get(), &count, sizeof(count));
        continue;
      }
      if (listen_fd_.valid() && fd == listen_fd_.get()) {
        for (;;) {
          const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
          if (cfd < 0) {
            if (errno == EINTR) continue;  // signal, not "done accepting"
            break;  // EAGAIN or error: done accepting
          }
          set_nodelay(cfd);
          auto conn = std::make_shared<Connection>(Fd(cfd));
          {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conns_[cfd] = conn;
          }
          epoll_event cev{};
          cev.events = EPOLLIN;
          cev.data.fd = cfd;
          if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, cfd, &cev) != 0) {
            // Registration failed: without it the connection would sit
            // in conns_ forever, invisible to the loop. Drop it now.
            HVAC_LOG_WARN("epoll_ctl(add conn): " << std::strerror(errno));
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conns_.erase(cfd);
          }
        }
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn) handle_readable(conn);
    }
  }
}

void RpcServer::handle_readable(const std::shared_ptr<Connection>& conn) {
  // Drain everything available without blocking; a single readable
  // event may carry several pipelined requests.
  for (;;) {
    if (!conn->in_payload && !conn->in_trace) {
      const ssize_t n =
          ::recv(conn->fd.get(), conn->header_buf + conn->header_got,
                 kHeaderSize - conn->header_got, MSG_DONTWAIT);
      if (n == 0) {
        drop_connection(conn->fd.get());
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        drop_connection(conn->fd.get());
        return;
      }
      conn->header_got += static_cast<size_t>(n);
      if (conn->header_got < kHeaderSize) continue;
      auto header = decode_header(conn->header_buf, kHeaderSize);
      if (!header.ok()) {
        HVAC_LOG_WARN("dropping connection: " << header.error().to_string());
        drop_connection(conn->fd.get());
        return;
      }
      if (header->payload_len > options_.max_frame_bytes) {
        // A corrupt or hostile header must not size a buffer: reject
        // before the resize and cut the connection.
        HVAC_LOG_WARN("dropping connection: frame of "
                      << header->payload_len << " bytes exceeds bound "
                      << options_.max_frame_bytes);
        drop_connection(conn->fd.get());
        return;
      }
      conn->header = *header;
      if (conn->header.has_trace) {
        // HVC2: the trace context sits between header and payload.
        conn->trace_got = 0;
        conn->in_trace = true;
      } else {
        conn->payload.resize(conn->header.payload_len);
        conn->payload_got = 0;
        conn->in_payload = true;
        if (conn->header.payload_len == 0) {
          Bytes payload;
          FrameHeader h = conn->header;
          conn->reset_frame();
          dispatch(conn, h, std::move(payload));
          continue;
        }
      }
    }
    if (conn->in_trace) {
      const ssize_t n =
          ::recv(conn->fd.get(), conn->trace_buf + conn->trace_got,
                 kTraceContextSize - conn->trace_got, MSG_DONTWAIT);
      if (n == 0) {
        drop_connection(conn->fd.get());
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        drop_connection(conn->fd.get());
        return;
      }
      conn->trace_got += static_cast<size_t>(n);
      if (conn->trace_got < kTraceContextSize) continue;
      if (!decode_trace_context(conn->header, conn->trace_buf,
                                kTraceContextSize)
               .ok()) {
        drop_connection(conn->fd.get());
        return;
      }
      conn->in_trace = false;
      conn->payload.resize(conn->header.payload_len);
      conn->payload_got = 0;
      conn->in_payload = true;
      if (conn->header.payload_len == 0) {
        Bytes payload;
        FrameHeader h = conn->header;
        conn->reset_frame();
        dispatch(conn, h, std::move(payload));
        continue;
      }
    }
    const size_t want = conn->payload.size() - conn->payload_got;
    const ssize_t n =
        ::recv(conn->fd.get(), conn->payload.data() + conn->payload_got,
               want, MSG_DONTWAIT);
    if (n == 0) {
      drop_connection(conn->fd.get());
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      drop_connection(conn->fd.get());
      return;
    }
    conn->payload_got += static_cast<size_t>(n);
    if (conn->payload_got == conn->payload.size()) {
      FrameHeader h = conn->header;
      Bytes payload = std::move(conn->payload);
      conn->reset_frame();
      dispatch(conn, h, std::move(payload));
    }
  }
}

void RpcServer::shed_request(const std::shared_ptr<Connection>& conn,
                             const FrameHeader& header,
                             const std::string& reason) {
  requests_shed_.fetch_add(1, std::memory_order_relaxed);
  ResilienceCounters::global().server_shed.fetch_add(
      1, std::memory_order_relaxed);
  FrameHeader resp;
  resp.request_id = header.request_id;
  resp.opcode = header.opcode;
  resp.kind = FrameKind::kResponse;
  resp.status = ErrorCode::kUnavailable;
  WireWriter w;
  w.put_string(reason + "; retry_after_ms=" +
               std::to_string(options_.shed_retry_after_ms));
  // Retry hint as a structured trailer too (clients that only read
  // the message string skip it by length).
  w.put_u32(options_.shed_retry_after_ms);
  const Bytes body = std::move(w).take();
  resp.payload_len = static_cast<uint32_t>(body.size());
  uint8_t hdr[kMaxHeaderSize];
  encode_header(resp, hdr);
  iovec iov[2];
  iov[0].iov_base = hdr;
  iov[0].iov_len = kHeaderSize;
  iov[1].iov_base = const_cast<uint8_t*>(body.data());
  iov[1].iov_len = body.size();
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!send_vectored(conn->fd.get(), iov, 2).ok()) {
    HVAC_LOG_DEBUG("shed response write failed; peer likely gone");
  }
}

Status RpcServer::write_response(const std::shared_ptr<Connection>& conn,
                                 FrameHeader resp, const Payload& body) {
  trace::Span span("server.send", body.total_size());
  uint8_t hdr[kMaxHeaderSize];
  iovec iov[3];
  std::lock_guard<std::mutex> lock(conn->write_mutex);

  if (!body.has_extents()) {
    encode_header(resp, hdr);
    // Header + body leave in one gathered syscall; for a pooled body
    // the bytes go kernel-to-socket with no intermediate copy at all.
    iov[0].iov_base = hdr;
    iov[0].iov_len = kHeaderSize;
    iov[1].iov_base = const_cast<uint8_t*>(body.data());
    iov[1].iov_len = body.size();
    return send_vectored(conn->fd.get(), iov, body.size() == 0 ? 1 : 2);
  }

  ZeroCopyMode mode = zerocopy_mode_;
  if (mode == ZeroCopyMode::kSplice && !conn->pipe_rd.valid()) {
    int pfd[2] = {-1, -1};
    if (::pipe(pfd) == 0) {
      conn->pipe_rd = Fd(pfd[0]);
      conn->pipe_wr = Fd(pfd[1]);
    } else {
      // Out of fds for the scratch pipe: sendfile needs none and works
      // wherever splice does on this kernel.
      mode = ZeroCopyMode::kSendfile;
    }
  }

  if (mode == ZeroCopyMode::kOff) {
    // Pooled fallback: stage the extent bytes in user space, then one
    // gathered send — same syscall shape as the extent-free path.
    auto& zc = ZeroCopyCounters::global();
    Bytes staged(body.total_size() - body.size());
    size_t at = 0;
    for (const auto& e : body.extents()) {
      size_t got = 0;
      while (got < e.length) {
        const ssize_t n =
            ::pread(e.fd, staged.data() + at + got, e.length - got,
                    static_cast<off_t>(e.offset + got));
        if (n < 0) {
          if (errno == EINTR) continue;
          return Error::from_errno(errno, "pread(extent fallback)");
        }
        if (n == 0) {
          return Error(ErrorCode::kProtocol, "extent eof in fallback");
        }
        got += static_cast<size_t>(n);
      }
      at += e.length;
      zc.fallback_sends.fetch_add(1, std::memory_order_relaxed);
    }
    encode_header(resp, hdr);
    iov[0].iov_base = hdr;
    iov[0].iov_len = kHeaderSize;
    iov[1].iov_base = const_cast<uint8_t*>(body.data());
    iov[1].iov_len = body.size();
    iov[2].iov_base = staged.data();
    iov[2].iov_len = staged.size();
    return send_vectored(conn->fd.get(), iov, staged.empty() ? 2 : 3);
  }

  // Zero-copy rung: cork the header + memory head with MSG_MORE, then
  // kernel-copy each extent; the last transfer flushes the cork. When
  // every extent is empty nothing would follow to flush it, so send
  // uncorked instead of stalling the frame in the kernel.
  uint64_t extent_bytes = 0;
  for (const auto& e : body.extents()) extent_bytes += e.length;
  encode_header(resp, hdr);
  iov[0].iov_base = hdr;
  iov[0].iov_len = kHeaderSize;
  iov[1].iov_base = const_cast<uint8_t*>(body.data());
  iov[1].iov_len = body.size();
  const int head_cnt = body.size() == 0 ? 1 : 2;
  HVAC_RETURN_IF_ERROR(
      extent_bytes > 0 ? send_vectored_more(conn->fd.get(), iov, head_cnt)
                       : send_vectored(conn->fd.get(), iov, head_cnt));
  for (const auto& e : body.extents()) {
    if (e.length == 0) continue;
    if (mode == ZeroCopyMode::kSendfile) {
      HVAC_RETURN_IF_ERROR(
          sendfile_exact(conn->fd.get(), e.fd, e.offset, e.length));
    } else {
      HVAC_RETURN_IF_ERROR(splice_exact(conn->fd.get(), e.fd, e.offset,
                                        e.length, conn->pipe_rd.get(),
                                        conn->pipe_wr.get()));
    }
  }
  return Status::Ok();
}

void RpcServer::dispatch(const std::shared_ptr<Connection>& conn,
                         FrameHeader header, Bytes payload) {
  if (header.kind != FrameKind::kRequest) {
    HVAC_LOG_WARN("ignoring non-request frame");
    return;
  }
  // Backpressure, decided before the request can queue on the pool:
  // during a drain every new request is shed (in-flight ones finish);
  // past the per-connection cap the client is told to back off
  // instead of deepening an unbounded queue.
  if (draining_.load(std::memory_order_acquire)) {
    shed_request(conn, header, "server draining");
    return;
  }
  if (options_.max_inflight_per_conn > 0 &&
      conn->inflight.load(std::memory_order_relaxed) >=
          options_.max_inflight_per_conn) {
    shed_request(conn, header, "server saturated");
    return;
  }
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t enqueue_ns = trace::enabled() ? trace::now_ns() : 0;
  auto work = [this, conn, header, enqueue_ns,
               payload = std::move(payload)]() mutable {
    // Adopt the caller's context (no-op for untraced frames), make the
    // pool wait visible as its own span, then wrap the handler + send.
    trace::ScopedContext adopt(header.trace);
    if (enqueue_ns != 0 && header.has_trace) {
      trace::emit("server.queue", enqueue_ns, trace::now_ns());
    }
    trace::Span dspan("server.dispatch", header.opcode);
    Result<Payload> result = [&]() -> Result<Payload> {
      auto it = handlers_.find(header.opcode);
      if (it == handlers_.end()) {
        return Error(ErrorCode::kUnimplemented,
                     "no handler for opcode " + std::to_string(header.opcode));
      }
      return it->second(payload);
    }();

    FrameHeader resp;
    resp.request_id = header.request_id;
    resp.opcode = header.opcode;
    resp.kind = FrameKind::kResponse;
    Payload body;
    if (result.ok()) {
      resp.status = ErrorCode::kOk;
      body = std::move(result).value();
    } else {
      resp.status = result.error().code;
      WireWriter w;
      w.put_string(result.error().message);
      body = Payload(std::move(w).take());
    }
    resp.payload_len = static_cast<uint32_t>(body.total_size());

    // Count before the write so a client that has already seen the
    // response also sees the counter (tests rely on this ordering).
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (Status ws = write_response(conn, resp, body); !ws.ok()) {
      // The header may already be on the wire with the payload short:
      // nothing valid can follow, so shut the socket down and let the
      // progress thread reap the connection (it owns drop_connection).
      HVAC_LOG_DEBUG("response write failed: " << ws.error().to_string());
      ::shutdown(conn->fd.get(), SHUT_RDWR);
    }
    if (draining_.load(std::memory_order_acquire)) {
      ResilienceCounters::global().drained_requests.fetch_add(
          1, std::memory_order_relaxed);
    }
    conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  };
  if (!pool_->submit(std::move(work)).ok()) {
    HVAC_LOG_DEBUG("dropping request during shutdown");
    conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void RpcServer::drop_connection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(fd);  // Connection destructor closes the socket
}

}  // namespace hvac::rpc
