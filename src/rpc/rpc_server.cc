#include "rpc/rpc_server.h"

#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/buffer_pool.h"
#include "common/env.h"
#include "common/log.h"
#include "common/trace.h"
#include "rpc/health.h"

namespace hvac::rpc {

// One reactor: an epoll loop thread that owns a listener shard and
// every connection it accepted. All read-side state for a connection
// is touched only by its owning reactor thread; response writes (from
// pool workers or the reactor itself) serialize on the connection
// write lock — the only cross-thread synchronization on the data
// path.
struct RpcServer::Reactor {
  uint32_t id = 0;
  Fd listen_fd;  // TCP: SO_REUSEPORT shard; unix: reactor 0 only
  Fd epoll_fd;
  Fd wake_fd;  // eventfd: stop/drain signal + fd-handoff doorbell
  std::thread thread;

  std::mutex conns_mutex;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;

  // Unix-socket fallback: reactor 0 accepts and hands raw fds here;
  // the owner adopts them on its next wake.
  std::mutex intake_mutex;
  std::vector<int> intake;

  std::atomic<uint64_t> conns_accepted{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> shed{0};
};

// Per-connection read state machine. Reads run only on the owning
// reactor thread; writes run on pool workers (or the reactor, for
// inline handlers) under write_mutex.
struct RpcServer::Connection {
  Connection(Fd socket, Reactor* owner) : fd(std::move(socket)),
                                          reactor(owner) {}

  Fd fd;
  Reactor* reactor;  // owning reactor (per-reactor accounting)
  std::mutex write_mutex;
  // Scratch pipe for the splice rung, created lazily on the first
  // extent-bearing response and reused for the connection's lifetime
  // (guarded by write_mutex like all response writes).
  Fd pipe_rd;
  Fd pipe_wr;
  // Requests dispatched but not yet answered (backpressure cap).
  std::atomic<uint32_t> inflight{0};

  // Read state: first kHeaderSize bytes, then (for HVC2 frames) the
  // trace context, then payload_len bytes.
  uint8_t header_buf[kHeaderSize];
  size_t header_got = 0;
  uint8_t trace_buf[kTraceContextSize];
  size_t trace_got = 0;
  bool in_trace = false;
  FrameHeader header;
  Bytes payload;
  size_t payload_got = 0;
  bool in_payload = false;

  void reset_frame() {
    header_got = 0;
    trace_got = 0;
    in_trace = false;
    payload.clear();
    payload_got = 0;
    in_payload = false;
  }
};

RpcServer::RpcServer(RpcServerOptions options)
    : options_(std::move(options)) {
  // HVAC_MAX_FRAME_BYTES can tighten (never widen) the frame bound.
  const int64_t env_cap = env_int_or("HVAC_MAX_FRAME_BYTES", 0);
  if (env_cap > 0 &&
      static_cast<uint64_t>(env_cap) < options_.max_frame_bytes) {
    options_.max_frame_bytes = static_cast<uint32_t>(env_cap);
  }
  if (options_.max_frame_bytes > kMaxFrame) {
    options_.max_frame_bytes = static_cast<uint32_t>(kMaxFrame);
  }
  // Backpressure knobs: HVAC_MAX_INFLIGHT can tighten (never widen)
  // the per-connection in-flight cap.
  const int64_t env_inflight = env_int_or("HVAC_MAX_INFLIGHT", 0);
  if (env_inflight > 0 &&
      (options_.max_inflight_per_conn == 0 ||
       static_cast<uint64_t>(env_inflight) <
           options_.max_inflight_per_conn)) {
    options_.max_inflight_per_conn = static_cast<uint32_t>(env_inflight);
  }
  const int64_t env_retry = env_int_or("HVAC_SHED_RETRY_AFTER_MS", 0);
  if (env_retry > 0) {
    options_.shed_retry_after_ms = static_cast<uint32_t>(env_retry);
  }
}

RpcServer::~RpcServer() { stop(); }

void RpcServer::register_handler(uint16_t opcode, Handler handler,
                                 DispatchHint hint) {
  // Adapt onto the payload-handler map: a plain Bytes result becomes
  // an owned payload, so the dispatch path is uniform.
  register_payload_handler(
      opcode,
      [handler = std::move(handler)](const Bytes& request) -> Result<Payload> {
        Result<Bytes> result = handler(request);
        if (!result.ok()) return result.error();
        return Payload(std::move(result).value());
      },
      hint);
}

void RpcServer::register_payload_handler(uint16_t opcode,
                                         PayloadHandler handler,
                                         DispatchHint hint) {
  handlers_[opcode] = HandlerEntry{std::move(handler), hint};
}

size_t RpcServer::resolve_reactor_count() const {
  size_t count = options_.reactors;
  if (count == 0) {
    const int64_t env = env_int_or("HVAC_REACTORS", 0);
    if (env > 0) {
      count = static_cast<size_t>(env);
    } else {
      const unsigned cores = std::thread::hardware_concurrency();
      count = std::min<size_t>(cores == 0 ? 1 : cores, 8);
    }
  }
  return std::clamp<size_t>(count, 1, 64);
}

Status RpcServer::setup_reactor(Reactor& r, bool with_listener) {
  if (with_listener) {
    HVAC_RETURN_IF_ERROR(set_nonblocking(r.listen_fd.get(), true));
  }
  const int efd = ::epoll_create1(EPOLL_CLOEXEC);
  if (efd < 0) return Error::from_errno(errno, "epoll_create1");
  r.epoll_fd = Fd(efd);

  const int wfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wfd < 0) return Error::from_errno(errno, "eventfd");
  r.wake_fd = Fd(wfd);

  epoll_event ev{};
  ev.events = EPOLLIN;
  if (with_listener) {
    ev.data.fd = r.listen_fd.get();
    if (::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_ADD, r.listen_fd.get(),
                    &ev) != 0) {
      return Error::from_errno(errno, "epoll_ctl(listen)");
    }
  }
  ev.data.fd = r.wake_fd.get();
  if (::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_ADD, r.wake_fd.get(), &ev) !=
      0) {
    return Error::from_errno(errno, "epoll_ctl(wake)");
  }
  return Status::Ok();
}

Status RpcServer::start() {
  const size_t count = resolve_reactor_count();
  const Endpoint requested{options_.bind_address};
  reactors_.clear();
  for (size_t i = 0; i < count; ++i) {
    auto r = std::make_unique<Reactor>();
    r->id = static_cast<uint32_t>(i);
    reactors_.push_back(std::move(r));
  }

  if (requested.is_unix()) {
    // One listener on reactor 0; accepted fds are round-robined to
    // the other reactors over their intake queues (SO_REUSEPORT does
    // not shard unix stream sockets usefully).
    HVAC_ASSIGN_OR_RETURN(reactors_[0]->listen_fd,
                          listen_on(requested, &bound_));
  } else {
    // TCP: every reactor binds the same port with SO_REUSEPORT; the
    // kernel shards incoming connections across the listeners. The
    // first bind resolves port 0, the rest join the learned port.
    HVAC_ASSIGN_OR_RETURN(
        reactors_[0]->listen_fd,
        listen_on(requested, &bound_, /*reuseport=*/count > 1));
    for (size_t i = 1; i < count; ++i) {
      HVAC_ASSIGN_OR_RETURN(reactors_[i]->listen_fd,
                            listen_on(bound_, nullptr, /*reuseport=*/true));
    }
  }
  for (size_t i = 0; i < count; ++i) {
    const bool with_listener = reactors_[i]->listen_fd.valid();
    HVAC_RETURN_IF_ERROR(setup_reactor(*reactors_[i], with_listener));
  }

  zerocopy_mode_ = resolve_zerocopy_mode();

  WorkStealingPool::Options pool_options;
  pool_options.shards = count;
  pool_options.workers_per_shard =
      std::max<size_t>(1, (options_.handler_threads + count - 1) / count);
  pool_options.steal_enabled = env_bool_or("HVAC_STEAL", true);
  pool_options.steal_throttle = env_bool_or("HVAC_STEAL_THROTTLE", true);
  if (count > 1) {
    // Workers recycle response buffers through their home reactor's
    // arena, matching the reactor threads, so hit-path buffers never
    // bounce between per-core free lists.
    pool_options.worker_init = [](size_t shard) {
      BufferPool::set_thread_arena(&BufferPool::arena(shard));
    };
  }
  pool_ = std::make_unique<WorkStealingPool>(pool_options);

  running_.store(true, std::memory_order_release);
  for (auto& r : reactors_) {
    Reactor* rp = r.get();
    rp->thread = std::thread([this, rp] { reactor_loop(*rp); });
  }
  HVAC_LOG_INFO("rpc server listening on "
                << bound_.address << " (reactors=" << count << ", zerocopy="
                << zerocopy_mode_name(zerocopy_mode_) << ")");
  return Status::Ok();
}

void RpcServer::wake(Reactor& r) {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(r.wake_fd.get(), &one, sizeof(one));
}

void RpcServer::stop() {
  const bool was_running =
      running_.exchange(false, std::memory_order_acq_rel);
  if (was_running) {
    for (auto& r : reactors_) wake(*r);
  }
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  // Pool tasks may still reference connections/reactors: drain the
  // workers before tearing either down.
  if (pool_) pool_->shutdown();
  for (auto& r : reactors_) {
    {
      std::lock_guard<std::mutex> lock(r->intake_mutex);
      for (int fd : r->intake) ::close(fd);
      r->intake.clear();
    }
    {
      std::lock_guard<std::mutex> lock(r->conns_mutex);
      r->conns.clear();
    }
    r->listen_fd.reset();
  }
  if (bound_.is_unix()) ::unlink(bound_.unix_path().c_str());
}

void RpcServer::drain(int timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  if (!draining_.exchange(true, std::memory_order_acq_rel)) {
    ResilienceCounters::global().drains.fetch_add(1,
                                                  std::memory_order_relaxed);
    // Each reactor owns its listener; wake them all so every one
    // deregisters and closes its shard (no new connections anywhere).
    for (auto& r : reactors_) wake(*r);
  }
  const int64_t deadline = steady_now_ms() + std::max(timeout_ms, 0);
  while (inflight_.load(std::memory_order_acquire) > 0 &&
         steady_now_ms() < deadline) {
    timespec ts{0, 1'000'000};  // 1 ms
    ::nanosleep(&ts, nullptr);
  }
}

std::vector<RpcServer::ReactorStats> RpcServer::reactor_stats() const {
  std::vector<ReactorStats> out;
  out.reserve(reactors_.size());
  for (const auto& r : reactors_) {
    ReactorStats s;
    s.conns = r->conns_accepted.load(std::memory_order_relaxed);
    s.requests = r->requests.load(std::memory_order_relaxed);
    s.steals = pool_ ? pool_->steals(r->id) : 0;
    s.steal_backoffs = pool_ ? pool_->steal_backoffs(r->id) : 0;
    s.shed = r->shed.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

void RpcServer::adopt_connection(Reactor& r, int cfd) {
  set_nodelay(cfd);
  auto conn = std::make_shared<Connection>(Fd(cfd), &r);
  {
    std::lock_guard<std::mutex> lock(r.conns_mutex);
    r.conns[cfd] = conn;
  }
  epoll_event cev{};
  cev.events = EPOLLIN;
  cev.data.fd = cfd;
  if (::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_ADD, cfd, &cev) != 0) {
    // Registration failed: without it the connection would sit in
    // conns forever, invisible to the loop. Drop it now.
    HVAC_LOG_WARN("epoll_ctl(add conn): " << std::strerror(errno));
    std::lock_guard<std::mutex> lock(r.conns_mutex);
    r.conns.erase(cfd);
    return;
  }
  r.conns_accepted.fetch_add(1, std::memory_order_relaxed);
}

namespace {

// Opt-in reactor->CPU pinning (HVAC_REACTOR_PIN=1): reactor i sticks
// to the i-th CPU of the process's *allowed* set, so the pinning
// respects cgroup/cpuset restrictions (a batch scheduler that granted
// 4 of 128 cores must see those 4 used, not EINVAL). Any failure is a
// warn-and-continue: pinning is a locality optimization, never a
// correctness requirement.
void maybe_pin_reactor(uint32_t reactor_id) {
  if (!env_bool_or("HVAC_REACTOR_PIN", false)) return;
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (::sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
    HVAC_LOG_WARN("reactor pin: sched_getaffinity: "
                  << std::strerror(errno));
    return;
  }
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &allowed)) cpus.push_back(cpu);
  }
  if (cpus.empty()) return;
  const int target = cpus[reactor_id % cpus.size()];
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(target, &one);
  const int rc =
      ::pthread_setaffinity_np(::pthread_self(), sizeof(one), &one);
  if (rc != 0) {
    HVAC_LOG_WARN("reactor pin: pthread_setaffinity_np(cpu " << target
                  << "): " << std::strerror(rc));
    return;
  }
  HVAC_LOG_DEBUG("reactor " << reactor_id << " pinned to cpu " << target);
}

}  // namespace

void RpcServer::reactor_loop(Reactor& r) {
  maybe_pin_reactor(r.id);
  const size_t count = reactors_.size();
  if (count > 1) {
    // Reactor-private buffer arena: inline handlers allocate and
    // recycle through it without touching the global pool's mutex.
    BufferPool::set_thread_arena(&BufferPool::arena(r.id));
  }
  const bool unix_handoff = bound_.is_unix() && count > 1;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    if (draining_.load(std::memory_order_acquire) && r.listen_fd.valid()) {
      // Drain: stop accepting. Deregister + close here (the thread
      // that polls the fd) so no event for it can be in flight.
      ::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_DEL, r.listen_fd.get(),
                  nullptr);
      r.listen_fd.reset();
    }
    const int n = ::epoll_wait(r.epoll_fd.get(), events, kMaxEvents, 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      HVAC_LOG_ERROR("epoll_wait: " << std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == r.wake_fd.get()) {
        // Drain the eventfd counter so it does not stay readable and
        // spin the loop; stop() still breaks the loop via running_.
        uint64_t wcount = 0;
        [[maybe_unused]] ssize_t wr =
            ::read(r.wake_fd.get(), &wcount, sizeof(wcount));
        // Adopt any connections handed off by reactor 0 (unix mode).
        std::vector<int> handed;
        {
          std::lock_guard<std::mutex> lock(r.intake_mutex);
          handed.swap(r.intake);
        }
        for (int cfd : handed) {
          if (draining_.load(std::memory_order_acquire)) {
            ::close(cfd);
            continue;
          }
          adopt_connection(r, cfd);
        }
        continue;
      }
      if (r.listen_fd.valid() && fd == r.listen_fd.get()) {
        for (;;) {
          const int cfd = ::accept4(r.listen_fd.get(), nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) {
            if (errno == EINTR) continue;  // signal, not "done accepting"
            break;  // EAGAIN or error: done accepting
          }
          if (unix_handoff) {
            // Round-robin accepted unix connections across reactors;
            // remote ones travel as raw fds through the intake queue.
            const size_t target =
                next_reactor_.fetch_add(1, std::memory_order_relaxed) %
                count;
            if (target != r.id) {
              Reactor& owner = *reactors_[target];
              {
                std::lock_guard<std::mutex> lock(owner.intake_mutex);
                owner.intake.push_back(cfd);
              }
              wake(owner);
              continue;
            }
          }
          adopt_connection(r, cfd);
        }
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(r.conns_mutex);
        auto it = r.conns.find(fd);
        if (it != r.conns.end()) conn = it->second;
      }
      if (conn) handle_readable(r, conn);
    }
  }
}

void RpcServer::handle_readable(Reactor& r,
                                const std::shared_ptr<Connection>& conn) {
  // Drain everything available without blocking; a single readable
  // event may carry several pipelined requests.
  for (;;) {
    if (!conn->in_payload && !conn->in_trace) {
      const ssize_t n =
          ::recv(conn->fd.get(), conn->header_buf + conn->header_got,
                 kHeaderSize - conn->header_got, MSG_DONTWAIT);
      if (n == 0) {
        drop_connection(r, conn->fd.get());
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        drop_connection(r, conn->fd.get());
        return;
      }
      conn->header_got += static_cast<size_t>(n);
      if (conn->header_got < kHeaderSize) continue;
      auto header = decode_header(conn->header_buf, kHeaderSize);
      if (!header.ok()) {
        HVAC_LOG_WARN("dropping connection: " << header.error().to_string());
        drop_connection(r, conn->fd.get());
        return;
      }
      if (header->payload_len > options_.max_frame_bytes) {
        // A corrupt or hostile header must not size a buffer: reject
        // before the resize and cut the connection.
        HVAC_LOG_WARN("dropping connection: frame of "
                      << header->payload_len << " bytes exceeds bound "
                      << options_.max_frame_bytes);
        drop_connection(r, conn->fd.get());
        return;
      }
      conn->header = *header;
      if (conn->header.has_trace) {
        // HVC2: the trace context sits between header and payload.
        conn->trace_got = 0;
        conn->in_trace = true;
      } else {
        conn->payload.resize(conn->header.payload_len);
        conn->payload_got = 0;
        conn->in_payload = true;
        if (conn->header.payload_len == 0) {
          Bytes payload;
          FrameHeader h = conn->header;
          conn->reset_frame();
          dispatch(conn, h, std::move(payload));
          continue;
        }
      }
    }
    if (conn->in_trace) {
      const ssize_t n =
          ::recv(conn->fd.get(), conn->trace_buf + conn->trace_got,
                 kTraceContextSize - conn->trace_got, MSG_DONTWAIT);
      if (n == 0) {
        drop_connection(r, conn->fd.get());
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        drop_connection(r, conn->fd.get());
        return;
      }
      conn->trace_got += static_cast<size_t>(n);
      if (conn->trace_got < kTraceContextSize) continue;
      if (!decode_trace_context(conn->header, conn->trace_buf,
                                kTraceContextSize)
               .ok()) {
        drop_connection(r, conn->fd.get());
        return;
      }
      conn->in_trace = false;
      conn->payload.resize(conn->header.payload_len);
      conn->payload_got = 0;
      conn->in_payload = true;
      if (conn->header.payload_len == 0) {
        Bytes payload;
        FrameHeader h = conn->header;
        conn->reset_frame();
        dispatch(conn, h, std::move(payload));
        continue;
      }
    }
    const size_t want = conn->payload.size() - conn->payload_got;
    const ssize_t n =
        ::recv(conn->fd.get(), conn->payload.data() + conn->payload_got,
               want, MSG_DONTWAIT);
    if (n == 0) {
      drop_connection(r, conn->fd.get());
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      drop_connection(r, conn->fd.get());
      return;
    }
    conn->payload_got += static_cast<size_t>(n);
    if (conn->payload_got == conn->payload.size()) {
      FrameHeader h = conn->header;
      Bytes payload = std::move(conn->payload);
      conn->reset_frame();
      dispatch(conn, h, std::move(payload));
    }
  }
}

void RpcServer::shed_request(const std::shared_ptr<Connection>& conn,
                             const FrameHeader& header,
                             const std::string& reason) {
  requests_shed_.fetch_add(1, std::memory_order_relaxed);
  conn->reactor->shed.fetch_add(1, std::memory_order_relaxed);
  ResilienceCounters::global().server_shed.fetch_add(
      1, std::memory_order_relaxed);
  FrameHeader resp;
  resp.request_id = header.request_id;
  resp.opcode = header.opcode;
  resp.kind = FrameKind::kResponse;
  resp.status = ErrorCode::kUnavailable;
  WireWriter w;
  w.put_string(reason + "; retry_after_ms=" +
               std::to_string(options_.shed_retry_after_ms));
  // Retry hint as a structured trailer too (clients that only read
  // the message string skip it by length).
  w.put_u32(options_.shed_retry_after_ms);
  const Bytes body = std::move(w).take();
  resp.payload_len = static_cast<uint32_t>(body.size());
  uint8_t hdr[kMaxHeaderSize];
  encode_header(resp, hdr);
  iovec iov[2];
  iov[0].iov_base = hdr;
  iov[0].iov_len = kHeaderSize;
  iov[1].iov_base = const_cast<uint8_t*>(body.data());
  iov[1].iov_len = body.size();
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!send_vectored(conn->fd.get(), iov, 2).ok()) {
    HVAC_LOG_DEBUG("shed response write failed; peer likely gone");
  }
}

Status RpcServer::write_response(const std::shared_ptr<Connection>& conn,
                                 FrameHeader resp, const Payload& body) {
  trace::Span span("server.send", body.total_size());
  uint8_t hdr[kMaxHeaderSize];
  iovec iov[3];
  std::lock_guard<std::mutex> lock(conn->write_mutex);

  if (!body.has_extents()) {
    encode_header(resp, hdr);
    // Header + body leave in one gathered syscall; for a pooled body
    // the bytes go kernel-to-socket with no intermediate copy at all.
    iov[0].iov_base = hdr;
    iov[0].iov_len = kHeaderSize;
    iov[1].iov_base = const_cast<uint8_t*>(body.data());
    iov[1].iov_len = body.size();
    return send_vectored(conn->fd.get(), iov, body.size() == 0 ? 1 : 2);
  }

  ZeroCopyMode mode = zerocopy_mode_;
  if (mode == ZeroCopyMode::kSplice && !conn->pipe_rd.valid()) {
    int pfd[2] = {-1, -1};
    if (::pipe2(pfd, O_CLOEXEC) == 0) {
      conn->pipe_rd = Fd(pfd[0]);
      conn->pipe_wr = Fd(pfd[1]);
    } else {
      // Out of fds for the scratch pipe: sendfile needs none and works
      // wherever splice does on this kernel.
      mode = ZeroCopyMode::kSendfile;
    }
  }

  if (mode == ZeroCopyMode::kOff) {
    // Pooled fallback: stage the extent bytes in user space, then one
    // gathered send — same syscall shape as the extent-free path.
    auto& zc = ZeroCopyCounters::global();
    Bytes staged(body.total_size() - body.size());
    size_t at = 0;
    for (const auto& e : body.extents()) {
      size_t got = 0;
      while (got < e.length) {
        const ssize_t n =
            ::pread(e.fd, staged.data() + at + got, e.length - got,
                    static_cast<off_t>(e.offset + got));
        if (n < 0) {
          if (errno == EINTR) continue;
          return Error::from_errno(errno, "pread(extent fallback)");
        }
        if (n == 0) {
          return Error(ErrorCode::kProtocol, "extent eof in fallback");
        }
        got += static_cast<size_t>(n);
      }
      at += e.length;
      zc.fallback_sends.fetch_add(1, std::memory_order_relaxed);
    }
    encode_header(resp, hdr);
    iov[0].iov_base = hdr;
    iov[0].iov_len = kHeaderSize;
    iov[1].iov_base = const_cast<uint8_t*>(body.data());
    iov[1].iov_len = body.size();
    iov[2].iov_base = staged.data();
    iov[2].iov_len = staged.size();
    return send_vectored(conn->fd.get(), iov, staged.empty() ? 2 : 3);
  }

  // Zero-copy rung: cork the header + memory head with MSG_MORE, then
  // kernel-copy each extent; the last transfer flushes the cork. When
  // every extent is empty nothing would follow to flush it, so send
  // uncorked instead of stalling the frame in the kernel.
  uint64_t extent_bytes = 0;
  for (const auto& e : body.extents()) extent_bytes += e.length;
  encode_header(resp, hdr);
  iov[0].iov_base = hdr;
  iov[0].iov_len = kHeaderSize;
  iov[1].iov_base = const_cast<uint8_t*>(body.data());
  iov[1].iov_len = body.size();
  const int head_cnt = body.size() == 0 ? 1 : 2;
  HVAC_RETURN_IF_ERROR(
      extent_bytes > 0 ? send_vectored_more(conn->fd.get(), iov, head_cnt)
                       : send_vectored(conn->fd.get(), iov, head_cnt));
  for (const auto& e : body.extents()) {
    if (e.length == 0) continue;
    if (mode == ZeroCopyMode::kSendfile) {
      HVAC_RETURN_IF_ERROR(
          sendfile_exact(conn->fd.get(), e.fd, e.offset, e.length));
    } else {
      HVAC_RETURN_IF_ERROR(splice_exact(conn->fd.get(), e.fd, e.offset,
                                        e.length, conn->pipe_rd.get(),
                                        conn->pipe_wr.get()));
    }
  }
  return Status::Ok();
}

void RpcServer::run_request(const std::shared_ptr<Connection>& conn,
                            const FrameHeader& header, const Bytes& payload,
                            uint64_t enqueue_ns) {
  const uint32_t reactor_id = conn->reactor->id;
  // Adopt the caller's context (no-op for untraced frames), make the
  // pool wait visible as its own span — zero-length for inline
  // dispatch, where the handler runs on the reactor with no queue —
  // then wrap the handler + send. Both spans carry the reactor id so
  // a timeline groups by core: server.queue's arg is the id itself,
  // server.dispatch packs it above the opcode.
  trace::ScopedContext adopt(header.trace);
  if (enqueue_ns != 0 && header.has_trace) {
    trace::emit("server.queue", enqueue_ns, trace::now_ns(), reactor_id);
  }
  trace::Span dspan("server.dispatch",
                    (static_cast<uint64_t>(reactor_id) << 32) |
                        header.opcode);
  Result<Payload> result = [&]() -> Result<Payload> {
    auto it = handlers_.find(header.opcode);
    if (it == handlers_.end()) {
      return Error(ErrorCode::kUnimplemented,
                   "no handler for opcode " + std::to_string(header.opcode));
    }
    return it->second.fn(payload);
  }();

  FrameHeader resp;
  resp.request_id = header.request_id;
  resp.opcode = header.opcode;
  resp.kind = FrameKind::kResponse;
  Payload body;
  if (result.ok()) {
    resp.status = ErrorCode::kOk;
    body = std::move(result).value();
  } else {
    resp.status = result.error().code;
    WireWriter w;
    w.put_string(result.error().message);
    body = Payload(std::move(w).take());
  }
  resp.payload_len = static_cast<uint32_t>(body.total_size());

  // Count before the write so a client that has already seen the
  // response also sees the counter (tests rely on this ordering).
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  conn->reactor->requests.fetch_add(1, std::memory_order_relaxed);
  if (Status ws = write_response(conn, resp, body); !ws.ok()) {
    // The header may already be on the wire with the payload short:
    // nothing valid can follow, so shut the socket down and let the
    // owning reactor reap the connection (it owns drop_connection).
    HVAC_LOG_DEBUG("response write failed: " << ws.error().to_string());
    ::shutdown(conn->fd.get(), SHUT_RDWR);
  }
  if (draining_.load(std::memory_order_acquire)) {
    ResilienceCounters::global().drained_requests.fetch_add(
        1, std::memory_order_relaxed);
  }
  conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void RpcServer::dispatch(const std::shared_ptr<Connection>& conn,
                         FrameHeader header, Bytes payload) {
  if (header.kind != FrameKind::kRequest) {
    HVAC_LOG_WARN("ignoring non-request frame");
    return;
  }
  // Backpressure, decided before the request can queue on the pool:
  // during a drain every new request is shed (in-flight ones finish);
  // past the per-connection cap the client is told to back off
  // instead of deepening an unbounded queue.
  if (draining_.load(std::memory_order_acquire)) {
    shed_request(conn, header, "server draining");
    return;
  }
  if (options_.max_inflight_per_conn > 0 &&
      conn->inflight.load(std::memory_order_relaxed) >=
          options_.max_inflight_per_conn) {
    shed_request(conn, header, "server saturated");
    return;
  }
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t enqueue_ns = trace::enabled() ? trace::now_ns() : 0;

  auto hint = DispatchHint::kPooled;
  if (auto it = handlers_.find(header.opcode); it != handlers_.end()) {
    hint = it->second.hint;
  }
  if (hint == DispatchHint::kInline) {
    // Fast path: run on the owning reactor, no queue, no wake, no
    // cross-core handoff. The handler promised not to block.
    run_request(conn, header, payload, enqueue_ns);
    return;
  }

  auto work = [this, conn, header, enqueue_ns,
               payload = std::move(payload)]() {
    run_request(conn, header, payload, enqueue_ns);
  };
  if (Status s = pool_->submit(conn->reactor->id, std::move(work)); !s.ok()) {
    conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    if (s.error().code == ErrorCode::kCapacity) {
      // Shard (and steal victims) saturated: shed with retry_after
      // instead of queueing unboundedly — same contract as the
      // per-connection cap.
      shed_request(conn, header, "dispatch queue full");
    } else {
      HVAC_LOG_DEBUG("dropping request during shutdown");
    }
  }
}

void RpcServer::drop_connection(Reactor& r, int fd) {
  std::lock_guard<std::mutex> lock(r.conns_mutex);
  ::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr);
  r.conns.erase(fd);  // Connection destructor closes the socket
}

}  // namespace hvac::rpc
