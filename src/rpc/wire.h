// Wire serialization for the HVAC RPC protocol.
//
// Fixed little-endian encoding, no alignment assumptions, explicit
// bounds checking on the read side (a malformed frame must surface as
// kProtocol, never as UB). This plays the role Mercury's
// hg_proc_* encoders play in the original HVAC implementation.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/buffer_pool.h"
#include "common/result.h"
#include "common/trace.h"

namespace hvac::rpc {

using Bytes = std::vector<uint8_t>;

// A file-backed span of a response payload: `length` bytes at `offset`
// of `fd`. The server sends it kernel-to-kernel (sendfile/splice) —
// or preads it into a pooled buffer when zero-copy is off — so handler
// code never stages these bytes in user space. `owner` is an opaque
// keepalive (an OpenHandleCache pin, a shared OpenFile, …) that must
// keep `fd` valid until the response is fully on the wire.
struct FileExtent {
  std::shared_ptr<const void> owner;
  int fd = -1;
  uint64_t offset = 0;
  uint64_t length = 0;
};

// A response payload: a memory head (owned byte vector in the general
// case, pooled buffer lease on the read hot path) optionally followed
// by file-backed extents. On the wire the head and extents form one
// contiguous payload of total_size() bytes; how the extent bytes reach
// the socket (sendfile, splice, or pooled pread fallback) is the
// server's choice and invisible to the client.
class Payload {
 public:
  Payload() = default;
  Payload(Bytes bytes) : rep_(std::move(bytes)) {}  // NOLINT implicit
  Payload(BufferPool::Lease lease)                  // NOLINT implicit
      : rep_(std::move(lease)) {}

  // Memory head accessors (extent bytes are not addressable here —
  // they live in the kernel page cache until send time).
  const uint8_t* data() const {
    if (const auto* b = std::get_if<Bytes>(&rep_)) return b->data();
    return std::get<BufferPool::Lease>(rep_).data();
  }
  size_t size() const {
    if (const auto* b = std::get_if<Bytes>(&rep_)) return b->size();
    return std::get<BufferPool::Lease>(rep_).size();
  }

  void add_extent(FileExtent extent) {
    extents_.push_back(std::move(extent));
  }
  const std::vector<FileExtent>& extents() const { return extents_; }
  bool has_extents() const { return !extents_.empty(); }

  // Wire size of the whole payload: memory head + every extent.
  size_t total_size() const {
    size_t total = size();
    for (const auto& e : extents_) total += e.length;
    return total;
  }
  bool empty() const { return total_size() == 0; }

  // Converts the memory head to a plain vector: moves when owned,
  // copies when pooled (the lease's storage still returns to the
  // pool). Only meaningful for extent-free payloads — received
  // payloads and generic handler responses never carry extents.
  Bytes take_bytes() && {
    if (auto* b = std::get_if<Bytes>(&rep_)) return std::move(*b);
    const auto& lease = std::get<BufferPool::Lease>(rep_);
    return Bytes(lease.data(), lease.data() + lease.size());
  }

 private:
  std::variant<Bytes, BufferPool::Lease> rep_;
  std::vector<FileExtent> extents_;
};

// Wire size of the length prefix put_blob/get_blob use.
constexpr size_t kBlobPrefix = 4;

// Frames a single-blob response around data already resident in
// `lease`: the payload layout is [u32 len][len bytes], so the caller
// preads `data_len` bytes at lease.data() + kBlobPrefix and this stamps
// the prefix in place — no copy, the lease IS the payload.
inline Payload blob_payload(BufferPool::Lease lease, size_t data_len) {
  const uint32_t len = static_cast<uint32_t>(data_len);
  lease.resize(kBlobPrefix + data_len);
  std::memcpy(lease.data(), &len, kBlobPrefix);
  return Payload(std::move(lease));
}

// Frames a single-blob response whose bytes live in a file: the
// memory head is just the [u32 len] prefix, the body is a
// kernel-copied extent. Wire-identical to blob_payload, so the client
// parses both with get_blob_view.
inline Payload blob_extent_payload(FileExtent extent) {
  Bytes head(kBlobPrefix);
  const uint32_t len = static_cast<uint32_t>(extent.length);
  std::memcpy(head.data(), &len, kBlobPrefix);
  Payload p(std::move(head));
  p.add_extent(std::move(extent));
  return p;
}

// ---- Scatter response frame ------------------------------------------
//
// One reply carrying N extents of a single logical file, so a
// read-ahead batch or prefetch collapses into one framed response:
//
//   [u32 n] [ (u64 offset, u32 len) * n ] [extent bytes, concatenated]
//
// `len` is the byte count actually served for that extent (an extent
// that crosses EOF comes back short; a fully-past-EOF extent has
// len 0). The table is the payload's memory head; the bytes are
// kernel-copied extents on the server side and one contiguous pooled
// buffer on the client side.
constexpr size_t kScatterTableEntry = 8 + 4;

inline size_t scatter_table_size(size_t n) {
  return 4 + n * kScatterTableEntry;
}

// Decoded client-side view into a received scatter payload: `data`
// points into the receive buffer (valid while it lives).
struct ScatterView {
  struct Extent {
    uint64_t offset = 0;
    uint32_t length = 0;
    const uint8_t* data = nullptr;
  };
  std::vector<Extent> extents;
};

// (decode_scatter is defined after WireReader below.)

class WireWriter {
 public:
  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_u16(uint16_t v) { put_bytes_le(&v, 2); }
  void put_u32(uint32_t v) { put_bytes_le(&v, 4); }
  void put_u64(uint64_t v) { put_bytes_le(&v, 8); }
  void put_i64(int64_t v) { put_u64(static_cast<uint64_t>(v)); }
  void put_f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    put_u64(bits);
  }
  void put_string(std::string_view s) {
    put_u32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void put_blob(const uint8_t* data, size_t size) {
    put_u32(static_cast<uint32_t>(size));
    buf_.insert(buf_.end(), data, data + size);
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  void put_bytes_le(const void* p, size_t n) {
    // Host is little-endian on every supported platform; memcpy keeps
    // this alignment-safe. (A static_assert guards the assumption.)
    static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
                  "big-endian hosts need byte swaps here");
    const auto* src = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), src, src + n);
  }

  Bytes buf_;
};

class WireReader {
 public:
  explicit WireReader(const Bytes& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> get_u8() {
    uint8_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 1));
    return v;
  }
  Result<uint16_t> get_u16() {
    uint16_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 2));
    return v;
  }
  Result<uint32_t> get_u32() {
    uint32_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 4));
    return v;
  }
  Result<uint64_t> get_u64() {
    uint64_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 8));
    return v;
  }
  Result<int64_t> get_i64() {
    HVAC_ASSIGN_OR_RETURN(uint64_t v, get_u64());
    return static_cast<int64_t>(v);
  }
  Result<double> get_f64() {
    HVAC_ASSIGN_OR_RETURN(uint64_t bits, get_u64());
    double v = 0;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  Result<std::string> get_string() {
    HVAC_ASSIGN_OR_RETURN(uint32_t len, get_u32());
    if (len > remaining()) {
      return Error(ErrorCode::kProtocol, "string length exceeds frame");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  Result<Bytes> get_blob() {
    HVAC_ASSIGN_OR_RETURN(uint32_t len, get_u32());
    if (len > remaining()) {
      return Error(ErrorCode::kProtocol, "blob length exceeds frame");
    }
    Bytes b(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return b;
  }

  // Zero-copy blob access: a view into the reader's backing buffer
  // (valid only while that buffer lives). The read hot path copies
  // straight from the view into the caller's buffer, skipping the
  // intermediate vector get_blob allocates.
  struct BlobView {
    const uint8_t* data = nullptr;
    size_t size = 0;
  };
  Result<BlobView> get_blob_view() {
    HVAC_ASSIGN_OR_RETURN(uint32_t len, get_u32());
    if (len > remaining()) {
      return Error(ErrorCode::kProtocol, "blob length exceeds frame");
    }
    BlobView view{data_ + pos_, len};
    pos_ += len;
    return view;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  Status copy_out(void* dst, size_t n) {
    if (remaining() < n) {
      return Error(ErrorCode::kProtocol, "frame truncated");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Trace-context codec (wire format v2): exactly
// trace::kTraceContextSize bytes, appended to an HVC2 frame header.
inline void put_trace_context(WireWriter& w, const trace::TraceContext& ctx) {
  w.put_u64(ctx.trace_id);
  w.put_u32(ctx.parent_span_id);
  w.put_u32(ctx.flags);
}

inline Result<trace::TraceContext> get_trace_context(WireReader& r) {
  trace::TraceContext ctx;
  HVAC_ASSIGN_OR_RETURN(ctx.trace_id, r.get_u64());
  HVAC_ASSIGN_OR_RETURN(ctx.parent_span_id, r.get_u32());
  HVAC_ASSIGN_OR_RETURN(ctx.flags, r.get_u32());
  return ctx;
}

inline Result<ScatterView> decode_scatter(const uint8_t* payload,
                                          size_t size) {
  WireReader r(payload, size);
  HVAC_ASSIGN_OR_RETURN(uint32_t n, r.get_u32());
  if (r.remaining() < static_cast<size_t>(n) * kScatterTableEntry) {
    return Error(ErrorCode::kProtocol, "scatter table exceeds frame");
  }
  ScatterView view;
  view.extents.resize(n);
  uint64_t data_bytes = 0;
  for (uint32_t i = 0; i < n; ++i) {
    HVAC_ASSIGN_OR_RETURN(view.extents[i].offset, r.get_u64());
    HVAC_ASSIGN_OR_RETURN(view.extents[i].length, r.get_u32());
    data_bytes += view.extents[i].length;
  }
  if (r.remaining() != data_bytes) {
    return Error(ErrorCode::kProtocol, "scatter data length mismatch");
  }
  const uint8_t* cursor = payload + (size - r.remaining());
  for (auto& e : view.extents) {
    e.data = cursor;
    cursor += e.length;
  }
  return view;
}

}  // namespace hvac::rpc
