// Wire serialization for the HVAC RPC protocol.
//
// Fixed little-endian encoding, no alignment assumptions, explicit
// bounds checking on the read side (a malformed frame must surface as
// kProtocol, never as UB). This plays the role Mercury's
// hg_proc_* encoders play in the original HVAC implementation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hvac::rpc {

using Bytes = std::vector<uint8_t>;

class WireWriter {
 public:
  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_u16(uint16_t v) { put_bytes_le(&v, 2); }
  void put_u32(uint32_t v) { put_bytes_le(&v, 4); }
  void put_u64(uint64_t v) { put_bytes_le(&v, 8); }
  void put_i64(int64_t v) { put_u64(static_cast<uint64_t>(v)); }
  void put_f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    put_u64(bits);
  }
  void put_string(std::string_view s) {
    put_u32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void put_blob(const uint8_t* data, size_t size) {
    put_u32(static_cast<uint32_t>(size));
    buf_.insert(buf_.end(), data, data + size);
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  void put_bytes_le(const void* p, size_t n) {
    // Host is little-endian on every supported platform; memcpy keeps
    // this alignment-safe. (A static_assert guards the assumption.)
    static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
                  "big-endian hosts need byte swaps here");
    const auto* src = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), src, src + n);
  }

  Bytes buf_;
};

class WireReader {
 public:
  explicit WireReader(const Bytes& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> get_u8() {
    uint8_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 1));
    return v;
  }
  Result<uint16_t> get_u16() {
    uint16_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 2));
    return v;
  }
  Result<uint32_t> get_u32() {
    uint32_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 4));
    return v;
  }
  Result<uint64_t> get_u64() {
    uint64_t v = 0;
    HVAC_RETURN_IF_ERROR(copy_out(&v, 8));
    return v;
  }
  Result<int64_t> get_i64() {
    HVAC_ASSIGN_OR_RETURN(uint64_t v, get_u64());
    return static_cast<int64_t>(v);
  }
  Result<double> get_f64() {
    HVAC_ASSIGN_OR_RETURN(uint64_t bits, get_u64());
    double v = 0;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  Result<std::string> get_string() {
    HVAC_ASSIGN_OR_RETURN(uint32_t len, get_u32());
    if (len > remaining()) {
      return Error(ErrorCode::kProtocol, "string length exceeds frame");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  Result<Bytes> get_blob() {
    HVAC_ASSIGN_OR_RETURN(uint32_t len, get_u32());
    if (len > remaining()) {
      return Error(ErrorCode::kProtocol, "blob length exceeds frame");
    }
    Bytes b(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return b;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  Status copy_out(void* dst, size_t n) {
    if (remaining() < n) {
      return Error(ErrorCode::kProtocol, "frame truncated");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace hvac::rpc
