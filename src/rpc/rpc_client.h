// Synchronous RPC client channel. One outstanding call per channel
// (calls are serialized under a mutex); the HVAC client keeps one
// channel per server (plus more under HVAC(i×1), where each instance
// is a separate endpoint). Reconnects lazily after transport errors.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace hvac::rpc {

struct RpcClientOptions {
  int connect_timeout_ms = 5000;
  // 0 disables the receive deadline.
  int recv_timeout_ms = 30000;
};

class RpcClient {
 public:
  explicit RpcClient(Endpoint endpoint, RpcClientOptions options = {});
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Sends `request` under `opcode` and waits for the response payload.
  // A handler-side error is surfaced with its original code/message; a
  // transport error surfaces as kUnavailable/kTimeout and poisons the
  // connection (the next call reconnects).
  Result<Bytes> call(uint16_t opcode, const Bytes& request);

  // Hot-path variant: the response payload is received into a buffer
  // leased from BufferPool::global(), so bulk reads recycle receive
  // buffers instead of allocating one per RPC. The lease rides inside
  // the returned Payload and goes back to the pool when it is dropped.
  Result<Payload> call_payload(uint16_t opcode, const Bytes& request);

  // Convenience for WireWriter-built requests.
  Result<Bytes> call(uint16_t opcode, const WireWriter& request) {
    return call(opcode, request.bytes());
  }

  const Endpoint& endpoint() const { return endpoint_; }

  // Drops the current connection (tests use this to simulate a server
  // crash mid-stream).
  void disconnect();

 private:
  Status ensure_connected();

  Endpoint endpoint_;
  RpcClientOptions options_;
  std::mutex mutex_;
  Fd socket_;
  uint64_t next_request_id_ = 1;
};

}  // namespace hvac::rpc
