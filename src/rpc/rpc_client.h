// Synchronous RPC client channel. One outstanding call per channel
// (calls are serialized under a mutex); the HVAC client keeps one
// channel per server (plus more under HVAC(i×1), where each instance
// is a separate endpoint). Reconnects lazily after transport errors.
//
// Resilience: every channel consults the process-wide circuit breaker
// for its endpoint (rpc/health.h) before touching the network — when
// the circuit is open, calls fail in nanoseconds with kUnavailable
// instead of paying a connect timeout. Each call is also bounded by a
// whole-call deadline (call_timeout_ms), which catches slow-drip
// servers the per-recv SO_RCVTIMEO cannot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "rpc/health.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace hvac::rpc {

struct RpcClientOptions {
  int connect_timeout_ms = 5000;
  // Per-recv inactivity bound (SO_RCVTIMEO). 0 disables.
  int recv_timeout_ms = 30000;
  // Whole-call deadline: send + all recvs of one call must finish
  // within this budget. Granularity is one recv — a blocked recv is
  // cut by recv_timeout_ms, then the deadline check trips. 0 disables.
  int call_timeout_ms = 30000;
  // Bounded retry for *idempotent* calls (call_idempotent): total
  // attempts = 1 + max_retries, with retry_backoff_ms * attempt sleeps
  // in between. Retries stop early when the breaker opens.
  int max_retries = 1;
  int retry_backoff_ms = 20;
};

class RpcClient {
 public:
  explicit RpcClient(Endpoint endpoint, RpcClientOptions options = {});
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Sends `request` under `opcode` and waits for the response payload.
  // A handler-side error is surfaced with its original code/message; a
  // transport error surfaces as kUnavailable/kTimeout and poisons the
  // connection (the next call reconnects).
  Result<Bytes> call(uint16_t opcode, const Bytes& request);

  // Hot-path variant: the response payload is received into a buffer
  // leased from BufferPool::global(), so bulk reads recycle receive
  // buffers instead of allocating one per RPC. The lease rides inside
  // the returned Payload and goes back to the pool when it is dropped.
  Result<Payload> call_payload(uint16_t opcode, const Bytes& request);

  // For idempotent ops only (stat/read/ping/metrics): retries
  // transport-level failures (kUnavailable/kTimeout) up to max_retries
  // times with linear backoff. Retrying is gated by the breaker — once
  // the circuit opens there is no point hammering the endpoint.
  Result<Bytes> call_idempotent(uint16_t opcode, const Bytes& request);
  Result<Payload> call_payload_idempotent(uint16_t opcode,
                                          const Bytes& request);

  // Convenience for WireWriter-built requests.
  Result<Bytes> call(uint16_t opcode, const WireWriter& request) {
    return call(opcode, request.bytes());
  }
  Result<Bytes> call_idempotent(uint16_t opcode, const WireWriter& request) {
    return call_idempotent(opcode, request.bytes());
  }

  const Endpoint& endpoint() const { return endpoint_; }

  // This channel's shared breaker (same object for every channel to
  // this endpoint in the process).
  EndpointHealth& health() { return *health_; }

  // Drops the current connection (tests use this to simulate a server
  // crash mid-stream).
  void disconnect();

 private:
  Status ensure_connected();

  Endpoint endpoint_;
  RpcClientOptions options_;
  std::shared_ptr<EndpointHealth> health_;
  std::mutex mutex_;
  Fd socket_;
  uint64_t next_request_id_ = 1;
};

}  // namespace hvac::rpc
