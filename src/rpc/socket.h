// RAII socket plumbing for the RPC transport: TCP (loopback or real
// network) and Unix-domain stream sockets, plus robust full-buffer
// send/recv helpers that handle EINTR and short transfers.
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"

namespace hvac::rpc {

// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// "host:port" for TCP, or "unix:/path/sock" for Unix-domain sockets.
struct Endpoint {
  std::string address;

  bool is_unix() const { return address.rfind("unix:", 0) == 0; }
  std::string unix_path() const { return address.substr(5); }
  // Splits host:port; returns kInvalidArgument when malformed.
  Result<std::pair<std::string, uint16_t>> host_port() const;
};

// Creates a listening socket bound to `endpoint`. For TCP, a port of 0
// picks an ephemeral port; `bound_endpoint` (if non-null) receives the
// actual address. All sockets are created CLOEXEC so they never leak
// into the intercept shim's exec'd children. `reuseport` sets
// SO_REUSEPORT before bind (TCP only) so N reactor listeners can
// shard one port — the kernel hashes incoming connections across
// them; it must be set on *every* listener sharing the port,
// including the first.
Result<Fd> listen_on(const Endpoint& endpoint, Endpoint* bound_endpoint,
                     bool reuseport = false);

// Blocking connect with an optional timeout in milliseconds (<=0 means
// the OS default).
Result<Fd> connect_to(const Endpoint& endpoint, int timeout_ms = 5000);

// Writes exactly `size` bytes (retrying on EINTR / short writes).
Status send_all(int fd, const void* data, size_t size);

// Gathered write: sends every byte of `iov[0..iovcnt)` in order,
// handling EINTR and partial writev()s (a short write mid-iovec
// resumes at the exact byte where the kernel stopped; the retry after
// EINTR re-sends only the unconsumed tail, with MSG_NOSIGNAL still
// applied — no SIGPIPE and no duplicated bytes). The iovec array is
// clobbered as progress bookkeeping — pass a scratch copy. One
// syscall in the common case, so a frame header + payload go out
// together instead of as two send_all round trips.
Status send_vectored(int fd, iovec* iov, int iovcnt);

// send_vectored with MSG_MORE: corks the bytes so the kernel holds
// them until the next uncorked send on the fd. Used to emit a frame
// header immediately before a sendfile/splice payload — header and
// first payload bytes then leave in one segment instead of two.
// MSG_NOSIGNAL and EINTR handling are identical to send_vectored
// (MSG_MORE is advisory; a partial send resumed after EINTR keeps
// both flags on every retry).
Status send_vectored_more(int fd, iovec* iov, int iovcnt);

// ---- Zero-copy send ladder -------------------------------------------
//
// The server hit path can move payload bytes kernel-to-kernel instead
// of staging them through a pooled buffer. Three rungs, probed at
// runtime and forcible with HVAC_ZEROCOPY=off|sendfile|splice:
//   kSendfile  sendfile(2) from the cache fd straight to the socket
//   kSplice    splice(2) through a pipe pair (per connection, lazy)
//   kOff       today's pooled pread + send_vectored path
enum class ZeroCopyMode : uint8_t { kOff = 0, kSendfile, kSplice };

const char* zerocopy_mode_name(ZeroCopyMode mode);

// Resolves the mode: HVAC_ZEROCOPY wins when set (unknown values fall
// back to the probe); otherwise a one-time capability probe (real
// sendfile/splice over a socketpair + temp file) picks the best rung.
// The env var is re-read on every call so tests can flip it between
// server instances; only the probe result is cached.
ZeroCopyMode resolve_zerocopy_mode();

// Sends exactly `size` bytes of `file_fd` starting at `offset` to the
// socket via sendfile(2), resuming short kernel transfers, EINTR and
// EAGAIN (poll POLLOUT) until the extent is fully on the wire. SIGPIPE
// is blocked-and-drained for the calling thread (sendfile has no
// MSG_NOSIGNAL). Fault sites: zc_send (error/delay via check,
// short=N via cap_len). Any failure after the first byte leaves the
// stream mid-frame — the caller must drop the connection.
Status sendfile_exact(int sock_fd, int file_fd, uint64_t offset, size_t size);

// Same contract as sendfile_exact but moves bytes file→pipe→socket
// with splice(2). `pipe_rd`/`pipe_wr` are a scratch pipe owned by the
// caller (per-connection, reused across sends); the pipe is always
// fully drained to the socket before returning, success or not —
// except on a mid-drain failure, after which the connection must be
// dropped anyway. Fault site: zc_splice.
Status splice_exact(int sock_fd, int file_fd, uint64_t offset, size_t size,
                    int pipe_rd, int pipe_wr);

// Process-global zero-copy telemetry (metrics frame v2 section 6).
struct ZeroCopyCounters {
  std::atomic<uint64_t> sendfile_sends{0};   // extents sent via sendfile
  std::atomic<uint64_t> splice_sends{0};     // extents sent via splice
  std::atomic<uint64_t> fallback_sends{0};   // extents sent pooled (kOff)
  std::atomic<uint64_t> sendfile_bytes{0};
  std::atomic<uint64_t> splice_bytes{0};
  std::atomic<uint64_t> short_resumes{0};    // kernel returned < asked
  static ZeroCopyCounters& global();
};

// Reads exactly `size` bytes. A clean EOF at offset 0 is reported as
// kUnavailable (peer closed); mid-frame EOF is kProtocol.
Status recv_all(int fd, void* data, size_t size);

// recv_all with an absolute deadline (CLOCK_MONOTONIC ms, as returned
// by steady_now_ms(); < 0 disables the check). The deadline is tested
// between recv()s, so it bounds slow-drip peers — a server trickling
// one byte per SO_RCVTIMEO window passes the per-recv timeout forever
// but trips this after at most deadline + one recv timeout. Expiry is
// kTimeout; the caller must treat the stream as poisoned (bytes may
// have been consumed mid-frame).
Status recv_all_until(int fd, void* data, size_t size, int64_t deadline_ms);

// Marks fd non-blocking (used by the epoll progress loop).
Status set_nonblocking(int fd, bool nonblocking);

// Disables Nagle on TCP sockets; no-op for Unix sockets.
void set_nodelay(int fd);

}  // namespace hvac::rpc
