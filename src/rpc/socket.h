// RAII socket plumbing for the RPC transport: TCP (loopback or real
// network) and Unix-domain stream sockets, plus robust full-buffer
// send/recv helpers that handle EINTR and short transfers.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"

namespace hvac::rpc {

// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// "host:port" for TCP, or "unix:/path/sock" for Unix-domain sockets.
struct Endpoint {
  std::string address;

  bool is_unix() const { return address.rfind("unix:", 0) == 0; }
  std::string unix_path() const { return address.substr(5); }
  // Splits host:port; returns kInvalidArgument when malformed.
  Result<std::pair<std::string, uint16_t>> host_port() const;
};

// Creates a listening socket bound to `endpoint`. For TCP, a port of 0
// picks an ephemeral port; `bound_endpoint` (if non-null) receives the
// actual address.
Result<Fd> listen_on(const Endpoint& endpoint, Endpoint* bound_endpoint);

// Blocking connect with an optional timeout in milliseconds (<=0 means
// the OS default).
Result<Fd> connect_to(const Endpoint& endpoint, int timeout_ms = 5000);

// Writes exactly `size` bytes (retrying on EINTR / short writes).
Status send_all(int fd, const void* data, size_t size);

// Gathered write: sends every byte of `iov[0..iovcnt)` in order,
// handling EINTR and partial writev()s (a short write mid-iovec
// resumes at the exact byte where the kernel stopped). The iovec
// array is clobbered as progress bookkeeping — pass a scratch copy.
// One syscall in the common case, so a frame header + payload go out
// together instead of as two send_all round trips.
Status send_vectored(int fd, iovec* iov, int iovcnt);

// Reads exactly `size` bytes. A clean EOF at offset 0 is reported as
// kUnavailable (peer closed); mid-frame EOF is kProtocol.
Status recv_all(int fd, void* data, size_t size);

// recv_all with an absolute deadline (CLOCK_MONOTONIC ms, as returned
// by steady_now_ms(); < 0 disables the check). The deadline is tested
// between recv()s, so it bounds slow-drip peers — a server trickling
// one byte per SO_RCVTIMEO window passes the per-recv timeout forever
// but trips this after at most deadline + one recv timeout. Expiry is
// kTimeout; the caller must treat the stream as poisoned (bytes may
// have been consumed mid-frame).
Status recv_all_until(int fd, void* data, size_t size, int64_t deadline_ms);

// Marks fd non-blocking (used by the epoll progress loop).
Status set_nonblocking(int fd, bool nonblocking);

// Disables Nagle on TCP sockets; no-op for Unix sockets.
void set_nodelay(int fd);

}  // namespace hvac::rpc
