#include "rpc/rpc_client.h"

#include <sys/socket.h>
#include <sys/time.h>

#include "common/log.h"

namespace hvac::rpc {

RpcClient::RpcClient(Endpoint endpoint, RpcClientOptions options)
    : endpoint_(std::move(endpoint)), options_(options) {}

RpcClient::~RpcClient() = default;

void RpcClient::disconnect() {
  std::lock_guard<std::mutex> lock(mutex_);
  socket_.reset();
}

Status RpcClient::ensure_connected() {
  if (socket_.valid()) return Status::Ok();
  HVAC_ASSIGN_OR_RETURN(socket_,
                        connect_to(endpoint_, options_.connect_timeout_ms));
  if (options_.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(socket_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return Status::Ok();
}

Result<Bytes> RpcClient::call(uint16_t opcode, const Bytes& request) {
  HVAC_ASSIGN_OR_RETURN(Payload payload, call_payload(opcode, request));
  return std::move(payload).take_bytes();
}

Result<Payload> RpcClient::call_payload(uint16_t opcode,
                                        const Bytes& request) {
  if (request.size() > kMaxFrame) {
    return Error(ErrorCode::kInvalidArgument, "request exceeds max frame");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  HVAC_RETURN_IF_ERROR(ensure_connected());

  FrameHeader header;
  header.payload_len = static_cast<uint32_t>(request.size());
  header.request_id = next_request_id_++;
  header.opcode = opcode;
  header.kind = FrameKind::kRequest;

  uint8_t hdr[kHeaderSize];
  encode_header(header, hdr);
  Status sent = send_all(socket_.get(), hdr, kHeaderSize);
  if (sent.ok() && !request.empty()) {
    sent = send_all(socket_.get(), request.data(), request.size());
  }
  if (!sent.ok()) {
    socket_.reset();
    return Error(ErrorCode::kUnavailable,
                 "send to " + endpoint_.address + " failed: " +
                     sent.error().message);
  }

  // One outstanding call per channel, so the next response is ours —
  // but we still validate the id to catch protocol bugs early.
  for (;;) {
    uint8_t rhdr[kHeaderSize];
    Status got = recv_all(socket_.get(), rhdr, kHeaderSize);
    if (!got.ok()) {
      socket_.reset();
      return Error(got.error().code == ErrorCode::kTimeout
                       ? ErrorCode::kTimeout
                       : ErrorCode::kUnavailable,
                   "recv from " + endpoint_.address + " failed: " +
                       got.error().message);
    }
    auto resp = decode_header(rhdr, kHeaderSize);
    if (!resp.ok()) {
      socket_.reset();
      return resp.error();
    }
    BufferPool::Lease payload =
        BufferPool::global().acquire(resp->payload_len);
    if (resp->payload_len > 0) {
      got = recv_all(socket_.get(), payload.data(), payload.size());
      if (!got.ok()) {
        socket_.reset();
        return Error(ErrorCode::kUnavailable, got.error().message);
      }
    }
    if (resp->kind != FrameKind::kResponse ||
        resp->request_id != header.request_id) {
      HVAC_LOG_WARN("discarding stale frame id=" << resp->request_id);
      continue;
    }
    if (resp->status != ErrorCode::kOk) {
      WireReader r(payload.data(), payload.size());
      auto msg = r.get_string();
      return Error(resp->status, msg.ok() ? *msg : "(no message)");
    }
    return Payload(std::move(payload));
  }
}

}  // namespace hvac::rpc
