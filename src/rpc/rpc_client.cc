#include "rpc/rpc_client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <time.h>

#include <algorithm>
#include <cerrno>

#include "common/fault_injection.h"
#include "common/log.h"
#include "common/trace.h"

namespace hvac::rpc {

namespace {

bool is_transport_error(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
}

void sleep_ms(int ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1'000'000L};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

RpcClient::RpcClient(Endpoint endpoint, RpcClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(options),
      health_(HealthRegistry::global().get(endpoint_.address)) {}

RpcClient::~RpcClient() = default;

void RpcClient::disconnect() {
  std::lock_guard<std::mutex> lock(mutex_);
  socket_.reset();
}

Status RpcClient::ensure_connected() {
  if (socket_.valid()) return Status::Ok();
  HVAC_ASSIGN_OR_RETURN(socket_,
                        connect_to(endpoint_, options_.connect_timeout_ms));
  if (options_.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(socket_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return Status::Ok();
}

Result<Bytes> RpcClient::call(uint16_t opcode, const Bytes& request) {
  HVAC_ASSIGN_OR_RETURN(Payload payload, call_payload(opcode, request));
  return std::move(payload).take_bytes();
}

Result<Payload> RpcClient::call_payload(uint16_t opcode,
                                        const Bytes& request) {
  if (request.size() > kMaxFrame) {
    return Error(ErrorCode::kInvalidArgument, "request exceeds max frame");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // One span per wire call; retries show up as separate rpc.call spans
  // under the caller's span, joined by rpc.retry events.
  trace::Span span("rpc.call", opcode);
  if (!health_->allow_request()) {
    trace::Span::event("rpc.breaker_open");
    return Error(ErrorCode::kUnavailable,
                 "circuit open for " + endpoint_.address);
  }
  // Every exit below reports its outcome so the breaker tracks
  // *transport* health: handler-side errors count as successes (the
  // endpoint answered), connect/send/recv failures count against it.
  auto fail = [this](Error error) -> Error {
    if (is_transport_error(error.code)) health_->record_failure();
    return error;
  };

  if (Status connected = ensure_connected(); !connected.ok()) {
    return fail(connected.error());
  }
  const int64_t deadline_ms =
      options_.call_timeout_ms > 0
          ? steady_now_ms() + options_.call_timeout_ms
          : -1;

  FrameHeader header;
  header.payload_len = static_cast<uint32_t>(request.size());
  header.request_id = next_request_id_++;
  header.opcode = opcode;
  header.kind = FrameKind::kRequest;
  if (span.armed()) {
    // current_context() parents the server side under this rpc.call.
    header.has_trace = true;
    header.trace = trace::current_context();
  }

  uint8_t hdr[kMaxHeaderSize];
  const size_t hdr_len = encode_header(header, hdr);
  Status sent = fault::check(fault::Site::kRpcSend);
  if (sent.ok()) sent = send_all(socket_.get(), hdr, hdr_len);
  if (sent.ok() && !request.empty()) {
    sent = send_all(socket_.get(), request.data(), request.size());
  }
  if (!sent.ok()) {
    socket_.reset();
    return fail(Error(ErrorCode::kUnavailable,
                      "send to " + endpoint_.address + " failed: " +
                          sent.error().message));
  }

  // One outstanding call per channel, so the next response is ours —
  // but we still validate the id to catch protocol bugs early.
  for (;;) {
    uint8_t rhdr[kHeaderSize];
    Status got = fault::check(fault::Site::kRpcRecv);
    if (got.ok()) {
      got = recv_all_until(socket_.get(), rhdr, kHeaderSize, deadline_ms);
    }
    if (!got.ok()) {
      socket_.reset();
      if (got.error().code == ErrorCode::kTimeout) {
        ResilienceCounters::global().deadline_misses.fetch_add(
            1, std::memory_order_relaxed);
      }
      return fail(Error(got.error().code == ErrorCode::kTimeout
                            ? ErrorCode::kTimeout
                            : ErrorCode::kUnavailable,
                        "recv from " + endpoint_.address + " failed: " +
                            got.error().message));
    }
    auto resp = decode_header(rhdr, kHeaderSize);
    if (!resp.ok()) {
      socket_.reset();
      return fail(resp.error());
    }
    if (resp->has_trace) {
      // Responses are HVC1 today; tolerate a future traced response by
      // consuming (and ignoring) its context.
      uint8_t tbuf[kTraceContextSize];
      got = recv_all_until(socket_.get(), tbuf, sizeof(tbuf), deadline_ms);
      if (!got.ok()) {
        socket_.reset();
        return fail(Error(ErrorCode::kUnavailable, got.error().message));
      }
    }
    BufferPool::Lease payload =
        BufferPool::global().acquire(resp->payload_len);
    if (resp->payload_len > 0) {
      got = recv_all_until(socket_.get(), payload.data(), payload.size(),
                           deadline_ms);
      if (!got.ok()) {
        socket_.reset();
        if (got.error().code == ErrorCode::kTimeout) {
          ResilienceCounters::global().deadline_misses.fetch_add(
              1, std::memory_order_relaxed);
        }
        return fail(Error(got.error().code == ErrorCode::kTimeout
                              ? ErrorCode::kTimeout
                              : ErrorCode::kUnavailable,
                          got.error().message));
      }
    }
    if (resp->kind != FrameKind::kResponse ||
        resp->request_id != header.request_id) {
      HVAC_LOG_WARN("discarding stale frame id=" << resp->request_id);
      continue;
    }
    health_->record_success();
    if (resp->status != ErrorCode::kOk) {
      WireReader r(payload.data(), payload.size());
      auto msg = r.get_string();
      return Error(resp->status, msg.ok() ? *msg : "(no message)");
    }
    return Payload(std::move(payload));
  }
}

Result<Payload> RpcClient::call_payload_idempotent(uint16_t opcode,
                                                   const Bytes& request) {
  const int attempts = 1 + std::max(options_.max_retries, 0);
  Result<Payload> result = call_payload(opcode, request);
  for (int attempt = 1; attempt < attempts; ++attempt) {
    if (result.ok() || !is_transport_error(result.error().code)) break;
    // No point hammering a tripped endpoint — the caller's failover
    // path (replica / PFS) is the productive next step.
    if (health_->state() == EndpointHealth::State::kOpen) break;
    trace::Span::event("rpc.retry", uint64_t(attempt));
    ResilienceCounters::global().retries.fetch_add(
        1, std::memory_order_relaxed);
    if (options_.retry_backoff_ms > 0) {
      sleep_ms(options_.retry_backoff_ms * attempt);
    }
    result = call_payload(opcode, request);
  }
  return result;
}

Result<Bytes> RpcClient::call_idempotent(uint16_t opcode,
                                         const Bytes& request) {
  HVAC_ASSIGN_OR_RETURN(Payload payload,
                        call_payload_idempotent(opcode, request));
  return std::move(payload).take_bytes();
}

}  // namespace hvac::rpc
