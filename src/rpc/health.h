// Per-endpoint health: circuit breaker + process-wide resilience
// counters.
//
// The paper's fail-open guarantee (§III-H) says a dead server must
// never stall the application — but without memory of past failures
// every open() on a file homed at a crashed hvacd re-pays the full
// connect timeout before degrading. The breaker remembers: after N
// consecutive transport failures an endpoint goes kOpen and callers
// fail in nanoseconds (straight to replica/PFS fallback) until an
// exponential backoff with jitter elapses; then one half-open probe
// is allowed through, and its outcome closes or re-opens the circuit.
//
// One EndpointHealth per endpoint address, shared by every channel in
// the process (sync RpcClient, async AsyncRpcClient, read-ahead,
// prefetch) via HealthRegistry::global() — a failure seen on any
// channel protects all of them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hvac::rpc {

// Process-wide resilience counters, exported as metrics-frame section
// 5 and by the client's HVAC_STATS_FILE dump. Server-side fields
// (server_shed, mover_rejects, drain*) stay zero in pure clients and
// vice versa.
struct ResilienceCounters {
  std::atomic<uint64_t> breaker_opens{0};
  std::atomic<uint64_t> breaker_closes{0};
  std::atomic<uint64_t> breaker_probes{0};
  std::atomic<uint64_t> breaker_shed{0};     // calls failed-fast while open
  std::atomic<uint64_t> retries{0};          // idempotent-call retries
  std::atomic<uint64_t> deadline_misses{0};  // per-call deadline exceeded
  std::atomic<uint64_t> server_shed{0};      // backpressure rejections
  std::atomic<uint64_t> mover_rejects{0};    // data-mover queue full
  std::atomic<uint64_t> drains{0};           // graceful drains started
  std::atomic<uint64_t> drained_requests{0};  // responses delivered during
                                              // a drain

  static ResilienceCounters& global();
};

struct BreakerOptions {
  // Consecutive transport failures before the circuit opens; <= 0
  // disables the breaker (it never opens).
  int failures_to_open = 3;
  // Backoff before the first half-open probe; doubles per consecutive
  // open, capped at max_backoff_ms, with +/-25% deterministic jitter.
  int base_backoff_ms = 500;
  int max_backoff_ms = 30000;

  // Reads HVAC_BREAKER_FAILURES / HVAC_BREAKER_BASE_MS /
  // HVAC_BREAKER_MAX_MS over the defaults above.
  static BreakerOptions from_env();
};

// Monotonic milliseconds (CLOCK_MONOTONIC) — the transport's deadline
// clock, exposed here so client and breaker share one time base.
int64_t steady_now_ms();
// Same clock in microseconds (RTT measurements in hvacctl health).
int64_t steady_now_us();

class EndpointHealth {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen, kHalfOpen };

  EndpointHealth(std::string endpoint, BreakerOptions options);

  // Gate before dialing/sending. False means the circuit is open:
  // fail fast (kUnavailable) without touching the network. At most
  // one caller gets `true` per half-open window (the probe).
  bool allow_request();

  // Outcome reporting. Only *transport-level* failures (kUnavailable,
  // kTimeout) should be recorded as failures — a healthy server
  // returning ENOENT is not a dead endpoint.
  void record_success();
  void record_failure();

  State state() const;
  const std::string& endpoint() const { return endpoint_; }

  struct Snapshot {
    State state = State::kClosed;
    uint64_t consecutive_failures = 0;
    uint64_t opens = 0;      // times this endpoint's circuit tripped
    int64_t retry_in_ms = 0;  // ms until the next probe (open only)
  };
  Snapshot snapshot() const;

 private:
  void trip_locked();  // -> kOpen with backoff

  const std::string endpoint_;
  const BreakerOptions options_;

  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  uint64_t consecutive_failures_ = 0;
  uint64_t open_streak_ = 0;  // consecutive opens (drives the backoff)
  uint64_t opens_total_ = 0;
  uint64_t jitter_draws_ = 0;
  int64_t retry_at_ms_ = 0;
  bool probe_inflight_ = false;
};

// Process-global endpoint -> health map. Channels to the same address
// share one breaker regardless of which client object owns them.
class HealthRegistry {
 public:
  static HealthRegistry& global();

  std::shared_ptr<EndpointHealth> get(const std::string& endpoint);

  std::vector<std::pair<std::string, EndpointHealth::Snapshot>> snapshot()
      const;

  // Forgets every endpoint (tests; a stale open circuit must not leak
  // into the next fixture's ephemeral port).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<EndpointHealth>> map_;
};

const char* breaker_state_name(EndpointHealth::State state);

}  // namespace hvac::rpc
