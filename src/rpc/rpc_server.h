// RPC server: an epoll progress loop (one thread) feeding a handler
// thread pool — the same progress-thread + handler split Mercury uses
// in the original HVAC server. Connections are read with a
// per-connection state machine; responses are written back from
// handler threads under a per-connection write lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "common/thread_pool.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace hvac::rpc {

// A handler consumes the request payload and produces a response
// payload (or an error, which travels back as a status-only frame).
using Handler = std::function<Result<Bytes>(const Bytes& request)>;

// Hot-path variant: the handler may hand back a pooled buffer
// (BufferPool lease) instead of a freshly allocated vector; the server
// writes it out with one gathered syscall and the lease returns to the
// pool afterwards.
using PayloadHandler = std::function<Result<Payload>(const Bytes& request)>;

struct RpcServerOptions {
  // Bind address: "127.0.0.1:0" for an ephemeral TCP port, or
  // "unix:/tmp/x.sock".
  std::string bind_address = "127.0.0.1:0";
  // Handler pool width. The paper runs i server instances per node to
  // widen this; we additionally allow multiple handler threads per
  // instance.
  size_t handler_threads = 2;
  // Hard bound on request payload size. A header announcing more than
  // this is treated as hostile/corrupt: the frame is rejected before
  // any buffer is sized to it and the connection is dropped.
  // Configurable via HVAC_MAX_FRAME_BYTES; never above kMaxFrame.
  uint32_t max_frame_bytes = static_cast<uint32_t>(kMaxFrame);
};

class RpcServer {
 public:
  explicit RpcServer(RpcServerOptions options);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // Registers a handler for `opcode`. Must be called before start().
  void register_handler(uint16_t opcode, Handler handler);

  // Registers a zero-copy handler (see PayloadHandler above).
  void register_payload_handler(uint16_t opcode, PayloadHandler handler);

  // Binds, listens and spawns the progress thread.
  Status start();

  // Stops accepting, closes connections and joins threads. Idempotent.
  void stop();

  // The bound address (useful with port 0).
  const Endpoint& endpoint() const { return bound_; }

  // Observability for tests.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void progress_loop();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void dispatch(const std::shared_ptr<Connection>& conn, FrameHeader header,
                Bytes payload);
  void drop_connection(int fd);

  RpcServerOptions options_;
  std::unordered_map<uint16_t, PayloadHandler> handlers_;
  Endpoint bound_;
  Fd listen_fd_;
  Fd epoll_fd_;
  Fd wake_fd_;  // eventfd used to interrupt epoll_wait on stop()
  std::unique_ptr<ThreadPool> pool_;
  std::thread progress_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::mutex conns_mutex_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
};

}  // namespace hvac::rpc
