// RPC server: an epoll progress loop (one thread) feeding a handler
// thread pool — the same progress-thread + handler split Mercury uses
// in the original HVAC server. Connections are read with a
// per-connection state machine; responses are written back from
// handler threads under a per-connection write lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "common/thread_pool.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace hvac::rpc {

// A handler consumes the request payload and produces a response
// payload (or an error, which travels back as a status-only frame).
using Handler = std::function<Result<Bytes>(const Bytes& request)>;

// Hot-path variant: the handler may hand back a pooled buffer
// (BufferPool lease) instead of a freshly allocated vector; the server
// writes it out with one gathered syscall and the lease returns to the
// pool afterwards.
using PayloadHandler = std::function<Result<Payload>(const Bytes& request)>;

struct RpcServerOptions {
  // Bind address: "127.0.0.1:0" for an ephemeral TCP port, or
  // "unix:/tmp/x.sock".
  std::string bind_address = "127.0.0.1:0";
  // Handler pool width. The paper runs i server instances per node to
  // widen this; we additionally allow multiple handler threads per
  // instance.
  size_t handler_threads = 2;
  // Hard bound on request payload size. A header announcing more than
  // this is treated as hostile/corrupt: the frame is rejected before
  // any buffer is sized to it and the connection is dropped.
  // Configurable via HVAC_MAX_FRAME_BYTES; never above kMaxFrame.
  uint32_t max_frame_bytes = static_cast<uint32_t>(kMaxFrame);
  // Backpressure: requests in flight (dispatched, response not yet
  // written) allowed per connection. Beyond the cap new requests are
  // shed with kUnavailable instead of queueing unboundedly on the
  // handler pool. 0 = unlimited. Tightened via HVAC_MAX_INFLIGHT.
  uint32_t max_inflight_per_conn = 256;
  // retry_after hint (ms) carried in shed responses.
  uint32_t shed_retry_after_ms = 50;
};

class RpcServer {
 public:
  explicit RpcServer(RpcServerOptions options);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // Registers a handler for `opcode`. Must be called before start().
  void register_handler(uint16_t opcode, Handler handler);

  // Registers a zero-copy handler (see PayloadHandler above).
  void register_payload_handler(uint16_t opcode, PayloadHandler handler);

  // Binds, listens and spawns the progress thread.
  Status start();

  // Stops accepting, closes connections and joins threads. Idempotent.
  void stop();

  // Graceful drain (SIGTERM path): stop accepting new connections,
  // shed requests that arrive after the call, and wait (bounded by
  // `timeout_ms`) for in-flight responses to be written. The server
  // keeps serving reads of already-buffered frames as sheds, so
  // clients get an answer, not a hang. Call stop() afterwards.
  void drain(int timeout_ms = 5000);

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  // The bound address (useful with port 0).
  const Endpoint& endpoint() const { return bound_; }

  // The zero-copy send mode resolved at start() (HVAC_ZEROCOPY or the
  // capability probe). Handlers consult this to decide whether to
  // return file extents or stage bytes through the buffer pool.
  ZeroCopyMode zerocopy_mode() const { return zerocopy_mode_; }

  // Observability for tests.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void progress_loop();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void dispatch(const std::shared_ptr<Connection>& conn, FrameHeader header,
                Bytes payload);
  // Writes one response frame (header + memory head + extents) under
  // the connection write lock, choosing the zero-copy rung for extent
  // bytes. A failure after the header bytes hit the wire leaves the
  // stream mid-frame: the caller must shut the connection down.
  Status write_response(const std::shared_ptr<Connection>& conn,
                        FrameHeader resp, const Payload& body);
  void drop_connection(int fd);
  // Writes a status-only error frame for `header` (shed/backpressure
  // path — runs on the progress thread, before any pool submit).
  void shed_request(const std::shared_ptr<Connection>& conn,
                    const FrameHeader& header, const std::string& reason);

  RpcServerOptions options_;
  std::unordered_map<uint16_t, PayloadHandler> handlers_;
  Endpoint bound_;
  Fd listen_fd_;
  Fd epoll_fd_;
  Fd wake_fd_;  // eventfd used to interrupt epoll_wait on stop()
  std::unique_ptr<ThreadPool> pool_;
  std::thread progress_;
  ZeroCopyMode zerocopy_mode_ = ZeroCopyMode::kOff;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> inflight_{0};

  std::mutex conns_mutex_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
};

}  // namespace hvac::rpc
