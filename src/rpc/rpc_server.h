// RPC server: N sharded reactors, each owning an epoll loop, a
// listener shard (SO_REUSEPORT for TCP; fd handoff from reactor 0 for
// unix sockets) and the connections it accepted — the multi-instance
// trick the HVAC paper uses to widen one Mercury progress loop,
// folded into a single process. Frame decode and fast handlers run on
// the owning reactor with no cross-reactor locks; mover-bound
// handlers are queued on a work-stealing pool shard so an idle
// reactor's workers can steal backlog from a busy one.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace hvac::rpc {

// A handler consumes the request payload and produces a response
// payload (or an error, which travels back as a status-only frame).
using Handler = std::function<Result<Bytes>(const Bytes& request)>;

// Hot-path variant: the handler may hand back a pooled buffer
// (BufferPool lease) instead of a freshly allocated vector; the server
// writes it out with one gathered syscall and the lease returns to the
// pool afterwards.
using PayloadHandler = std::function<Result<Payload>(const Bytes& request)>;

// Where a handler runs. kPooled (default) queues on the work-stealing
// pool shard of the owning reactor — right for mover-bound or
// blocking handlers. kInline runs on the reactor thread itself: zero
// queue/wake cost for fast hit-path handlers (ping, cached reads) at
// the price of stalling that reactor's other connections for the
// handler's duration — only mark handlers that never block on
// anything slower than local NVMe.
enum class DispatchHint : uint8_t { kPooled = 0, kInline };

struct RpcServerOptions {
  // Bind address: "127.0.0.1:0" for an ephemeral TCP port, or
  // "unix:/tmp/x.sock".
  std::string bind_address = "127.0.0.1:0";
  // Handler pool width (total across all reactors). The paper runs i
  // server instances per node to widen this; we additionally allow
  // multiple handler threads per instance.
  size_t handler_threads = 2;
  // Hard bound on request payload size. A header announcing more than
  // this is treated as hostile/corrupt: the frame is rejected before
  // any buffer is sized to it and the connection is dropped.
  // Configurable via HVAC_MAX_FRAME_BYTES; never above kMaxFrame.
  uint32_t max_frame_bytes = static_cast<uint32_t>(kMaxFrame);
  // Backpressure: requests in flight (dispatched, response not yet
  // written) allowed per connection. Beyond the cap new requests are
  // shed with kUnavailable instead of queueing unboundedly on the
  // handler pool. 0 = unlimited. Tightened via HVAC_MAX_INFLIGHT.
  uint32_t max_inflight_per_conn = 256;
  // retry_after hint (ms) carried in shed responses.
  uint32_t shed_retry_after_ms = 50;
  // Reactor count. 0 = auto: HVAC_REACTORS if set, else
  // min(hardware cores, 8). Each reactor owns an epoll fd, a listener
  // shard and a private buffer-pool arena.
  size_t reactors = 0;
};

class RpcServer {
 public:
  // Per-reactor counters exposed to the metrics frame (section 9).
  struct ReactorStats {
    uint64_t conns = 0;     // connections accepted by this reactor
    uint64_t requests = 0;  // requests served for its connections
    uint64_t steals = 0;    // its queued tasks run by foreign workers
    uint64_t shed = 0;      // requests shed on its connections
    // Steal scans its workers skipped because shard depths were
    // uniform (adaptive throttle, HVAC_STEAL_THROTTLE).
    uint64_t steal_backoffs = 0;
  };

  explicit RpcServer(RpcServerOptions options);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // Registers a handler for `opcode`. Must be called before start().
  void register_handler(uint16_t opcode, Handler handler,
                        DispatchHint hint = DispatchHint::kPooled);

  // Registers a zero-copy handler (see PayloadHandler above).
  void register_payload_handler(uint16_t opcode, PayloadHandler handler,
                                DispatchHint hint = DispatchHint::kPooled);

  // Binds the listener shards and spawns the reactor threads.
  Status start();

  // Stops accepting, closes connections and joins threads. Idempotent.
  void stop();

  // Graceful drain (SIGTERM path): every reactor stops accepting new
  // connections, sheds requests that arrive after the call, and this
  // waits (bounded by `timeout_ms`) for in-flight responses on all
  // reactors to be written. The reactors keep serving reads of
  // already-buffered frames as sheds, so clients get an answer, not a
  // hang. Call stop() afterwards.
  void drain(int timeout_ms = 5000);

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  // The bound address (useful with port 0).
  const Endpoint& endpoint() const { return bound_; }

  // The zero-copy send mode resolved at start() (HVAC_ZEROCOPY or the
  // capability probe). Handlers consult this to decide whether to
  // return file extents or stage bytes through the buffer pool.
  ZeroCopyMode zerocopy_mode() const { return zerocopy_mode_; }

  // Observability for tests and the metrics frame.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  size_t reactor_count() const { return reactors_.size(); }
  std::vector<ReactorStats> reactor_stats() const;

 private:
  struct Connection;
  struct Reactor;
  struct HandlerEntry {
    PayloadHandler fn;
    DispatchHint hint = DispatchHint::kPooled;
  };

  size_t resolve_reactor_count() const;
  Status setup_reactor(Reactor& r, bool with_listener);
  void reactor_loop(Reactor& r);
  void wake(Reactor& r);
  void adopt_connection(Reactor& r, int cfd);
  void handle_readable(Reactor& r, const std::shared_ptr<Connection>& conn);
  void dispatch(const std::shared_ptr<Connection>& conn, FrameHeader header,
                Bytes payload);
  void run_request(const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header, const Bytes& payload,
                   uint64_t enqueue_ns);
  // Writes one response frame (header + memory head + extents) under
  // the connection write lock, choosing the zero-copy rung for extent
  // bytes. A failure after the header bytes hit the wire leaves the
  // stream mid-frame: the caller must shut the connection down.
  Status write_response(const std::shared_ptr<Connection>& conn,
                        FrameHeader resp, const Payload& body);
  void drop_connection(Reactor& r, int fd);
  // Writes a status-only error frame for `header` (shed/backpressure
  // path — runs on the owning reactor, before any pool submit).
  void shed_request(const std::shared_ptr<Connection>& conn,
                    const FrameHeader& header, const std::string& reason);

  RpcServerOptions options_;
  std::unordered_map<uint16_t, HandlerEntry> handlers_;
  Endpoint bound_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::unique_ptr<WorkStealingPool> pool_;
  ZeroCopyMode zerocopy_mode_ = ZeroCopyMode::kOff;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> inflight_{0};
  // Round-robin cursor for unix-socket fd handoff (reactor 0 accepts).
  std::atomic<uint64_t> next_reactor_{0};
};

}  // namespace hvac::rpc
