#include "rpc/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/trace.h"
#include "rpc/health.h"  // steady_now_ms

namespace hvac::rpc {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::pair<std::string, uint16_t>> Endpoint::host_port() const {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "endpoint not host:port: " + address);
  }
  const std::string host = address.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port < 0 || port > 65535) {
    return Error(ErrorCode::kInvalidArgument, "bad port in " + address);
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

namespace {

// SOCK_CLOEXEC everywhere: the intercept shim fork/execs unmodified
// target binaries, and an inherited listener or connection fd in the
// child would hold ports open (and confuse epoll) past server exit.
Result<Fd> make_tcp_socket() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error::from_errno(errno, "socket(AF_INET)");
  return Fd(fd);
}

Result<Fd> make_unix_socket() {
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error::from_errno(errno, "socket(AF_UNIX)");
  return Fd(fd);
}

Result<sockaddr_in> tcp_addr(const Endpoint& endpoint) {
  HVAC_ASSIGN_OR_RETURN(auto hp, endpoint.host_port());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.second);
  const std::string& host = hp.first;
  if (host == "*" || host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Only dotted-quad (plus localhost) is supported; the library
    // always runs on loopback in this reproduction.
    if (host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else {
      return Error(ErrorCode::kInvalidArgument, "unresolvable host " + host);
    }
  }
  return addr;
}

Result<sockaddr_un> unix_addr(const Endpoint& endpoint) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = endpoint.unix_path();
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Error(ErrorCode::kInvalidArgument, "unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Result<Fd> listen_on(const Endpoint& endpoint, Endpoint* bound_endpoint,
                     bool reuseport) {
  if (endpoint.is_unix()) {
    HVAC_ASSIGN_OR_RETURN(Fd fd, make_unix_socket());
    HVAC_ASSIGN_OR_RETURN(sockaddr_un addr, unix_addr(endpoint));
    ::unlink(addr.sun_path);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Error::from_errno(errno, "bind " + endpoint.address);
    }
    if (::listen(fd.get(), 128) != 0) {
      return Error::from_errno(errno, "listen " + endpoint.address);
    }
    if (bound_endpoint != nullptr) *bound_endpoint = endpoint;
    return fd;
  }

  HVAC_ASSIGN_OR_RETURN(Fd fd, make_tcp_socket());
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
    return Error::from_errno(errno, "setsockopt(SO_REUSEPORT)");
  }
  HVAC_ASSIGN_OR_RETURN(sockaddr_in addr, tcp_addr(endpoint));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Error::from_errno(errno, "bind " + endpoint.address);
  }
  if (::listen(fd.get(), 128) != 0) {
    return Error::from_errno(errno, "listen " + endpoint.address);
  }
  if (bound_endpoint != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return Error::from_errno(errno, "getsockname");
    }
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &actual.sin_addr, host, sizeof(host));
    bound_endpoint->address =
        std::string(host) + ":" + std::to_string(ntohs(actual.sin_port));
  }
  return fd;
}

Result<Fd> connect_to(const Endpoint& endpoint, int timeout_ms) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kRpcConnect));
  Fd fd;
  int rc = 0;
  if (endpoint.is_unix()) {
    HVAC_ASSIGN_OR_RETURN(fd, make_unix_socket());
    HVAC_ASSIGN_OR_RETURN(sockaddr_un addr, unix_addr(endpoint));
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    HVAC_ASSIGN_OR_RETURN(fd, make_tcp_socket());
    HVAC_ASSIGN_OR_RETURN(sockaddr_in addr, tcp_addr(endpoint));
    if (timeout_ms > 0) {
      HVAC_RETURN_IF_ERROR(set_nonblocking(fd.get(), true));
    }
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS && timeout_ms > 0) {
      // poll with the *remaining* time: a signal (EINTR) mid-wait must
      // not abort the connect, and must not reset the clock either.
      const int64_t deadline = steady_now_ms() + timeout_ms;
      int pr;
      for (;;) {
        const int64_t remaining = deadline - steady_now_ms();
        if (remaining <= 0) {
          pr = 0;
          break;
        }
        pollfd pfd{fd.get(), POLLOUT, 0};
        pr = ::poll(&pfd, 1, static_cast<int>(remaining));
        if (pr < 0 && errno == EINTR) continue;
        break;
      }
      if (pr == 0) {
        return Error(ErrorCode::kTimeout,
                     "connect timeout to " + endpoint.address);
      }
      if (pr < 0) return Error::from_errno(errno, "poll(connect)");
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        return Error::from_errno(err, "connect " + endpoint.address);
      }
      rc = 0;
    }
    if (rc == 0 && timeout_ms > 0) {
      HVAC_RETURN_IF_ERROR(set_nonblocking(fd.get(), false));
    }
    set_nodelay(fd.get());
  }
  if (rc != 0) {
    return Error::from_errno(errno, "connect " + endpoint.address);
  }
  return fd;
}

Status send_all(int fd, const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {

// Blocks until `fd` is writable again (EAGAIN on a non-blocking
// socket mid-frame: there is no epoll re-arm for a half-sent frame,
// the writer owns the stream until the frame is complete).
Status wait_writable(int fd) {
  for (;;) {
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "poll(POLLOUT)");
    }
    if (pr > 0) return Status::Ok();
  }
}

Status send_vectored_flags(int fd, iovec* iov, int iovcnt, int flags) {
  // sendmsg (not writev) so MSG_NOSIGNAL applies, matching send_all's
  // no-SIGPIPE behaviour on dead peers. `flags` carries MSG_NOSIGNAL
  // (always) plus MSG_MORE for the corked variant; every retry after
  // EINTR or a short write re-sends with the same flags.
  int first = 0;
  while (first < iovcnt) {
    msghdr msg{};
    msg.msg_iov = iov + first;
    msg.msg_iovlen = static_cast<size_t>(iovcnt - first);
    const ssize_t n = ::sendmsg(fd, &msg, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Reactor connections are accept4'd non-blocking; a full
        // socket buffer mid-frame means wait, not fail — the frame
        // header already promised these bytes.
        HVAC_RETURN_IF_ERROR(wait_writable(fd));
        continue;
      }
      return Error::from_errno(errno, "sendmsg");
    }
    // Consume `n` bytes across the iovec list; a partial write can
    // stop mid-entry, in which case that entry is advanced in place.
    size_t left = static_cast<size_t>(n);
    while (first < iovcnt && left >= iov[first].iov_len) {
      left -= iov[first].iov_len;
      ++first;
    }
    if (first < iovcnt && left > 0) {
      iov[first].iov_base = static_cast<uint8_t*>(iov[first].iov_base) + left;
      iov[first].iov_len -= left;
    }
  }
  return Status::Ok();
}

}  // namespace

Status send_vectored(int fd, iovec* iov, int iovcnt) {
  return send_vectored_flags(fd, iov, iovcnt, MSG_NOSIGNAL);
}

Status send_vectored_more(int fd, iovec* iov, int iovcnt) {
  return send_vectored_flags(fd, iov, iovcnt, MSG_NOSIGNAL | MSG_MORE);
}

Status recv_all(int fd, void* data, size_t size) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "recv");
    }
    if (n == 0) {
      return got == 0 ? Error(ErrorCode::kUnavailable, "peer closed")
                      : Error(ErrorCode::kProtocol, "eof mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status recv_all_until(int fd, void* data, size_t size,
                      int64_t deadline_ms) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    if (deadline_ms >= 0 && steady_now_ms() >= deadline_ms) {
      return Error(ErrorCode::kTimeout, "call deadline exceeded");
    }
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "recv");
    }
    if (n == 0) {
      return got == 0 ? Error(ErrorCode::kUnavailable, "peer closed")
                      : Error(ErrorCode::kProtocol, "eof mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Error::from_errno(errno, "fcntl(F_GETFL)");
  const int desired = nonblocking ? (flags | O_NONBLOCK)
                                  : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, desired) < 0) {
    return Error::from_errno(errno, "fcntl(F_SETFL)");
  }
  return Status::Ok();
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// ---- Zero-copy send ladder -------------------------------------------

namespace {

// sendfile/splice have no MSG_NOSIGNAL: a dead peer raises SIGPIPE at
// the thread that wrote. Block it for the scope of the transfer and
// swallow any instance it generated, so the zero-copy rungs keep the
// same no-SIGPIPE contract as send_all/send_vectored. If SIGPIPE was
// already blocked (or the mask call failed) this is a no-op.
class ScopedSigpipeBlock {
 public:
  ScopedSigpipeBlock() {
    sigset_t block;
    sigemptyset(&block);
    sigaddset(&block, SIGPIPE);
    armed_ = ::pthread_sigmask(SIG_BLOCK, &block, &old_) == 0 &&
             !sigismember(&old_, SIGPIPE);
  }
  ~ScopedSigpipeBlock() {
    if (!armed_) return;
    sigset_t pending;
    if (::sigpending(&pending) == 0 && sigismember(&pending, SIGPIPE)) {
      sigset_t just_pipe;
      sigemptyset(&just_pipe);
      sigaddset(&just_pipe, SIGPIPE);
      const timespec zero{0, 0};
      (void)::sigtimedwait(&just_pipe, nullptr, &zero);
    }
    (void)::pthread_sigmask(SIG_SETMASK, &old_, nullptr);
  }
  ScopedSigpipeBlock(const ScopedSigpipeBlock&) = delete;
  ScopedSigpipeBlock& operator=(const ScopedSigpipeBlock&) = delete;

 private:
  sigset_t old_{};
  bool armed_ = false;
};

// One real end-to-end transfer over a socketpair + unlinked temp file;
// returns true when the syscall path works on this kernel/filesystem.
bool probe_rung(ZeroCopyMode rung) {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    return false;
  }
  Fd sock_a(sv[0]);
  Fd sock_b(sv[1]);

  char tmpl[] = "/tmp/hvac_zc_probe_XXXXXX";
  const int raw = ::mkstemp(tmpl);
  if (raw < 0) return false;
  Fd file(raw);
  ::unlink(tmpl);
  const char byte = 'z';
  if (::pwrite(file.get(), &byte, 1, 0) != 1) return false;

  bool ok = false;
  if (rung == ZeroCopyMode::kSendfile) {
    off_t off = 0;
    ok = ::sendfile(sock_a.get(), file.get(), &off, 1) == 1;
  } else if (rung == ZeroCopyMode::kSplice) {
    int pfd[2] = {-1, -1};
    if (::pipe2(pfd, O_CLOEXEC) != 0) return false;
    Fd pipe_rd(pfd[0]);
    Fd pipe_wr(pfd[1]);
    off_t off = 0;
    ok = ::splice(file.get(), &off, pipe_wr.get(), nullptr, 1,
                  SPLICE_F_MOVE) == 1 &&
         ::splice(pipe_rd.get(), nullptr, sock_a.get(), nullptr, 1,
                  SPLICE_F_MOVE) == 1;
  }
  if (ok) {
    char echo = 0;
    ok = ::recv(sock_b.get(), &echo, 1, 0) == 1 && echo == byte;
  }
  return ok;
}

}  // namespace

const char* zerocopy_mode_name(ZeroCopyMode mode) {
  switch (mode) {
    case ZeroCopyMode::kOff: return "off";
    case ZeroCopyMode::kSendfile: return "sendfile";
    case ZeroCopyMode::kSplice: return "splice";
  }
  return "?";
}

ZeroCopyMode resolve_zerocopy_mode() {
  // Probe once per process; the env override is re-read every call so
  // tests can flip HVAC_ZEROCOPY between server instances.
  static const ZeroCopyMode probed = [] {
    if (probe_rung(ZeroCopyMode::kSendfile)) return ZeroCopyMode::kSendfile;
    if (probe_rung(ZeroCopyMode::kSplice)) return ZeroCopyMode::kSplice;
    return ZeroCopyMode::kOff;
  }();
  if (const auto forced = env_string("HVAC_ZEROCOPY")) {
    if (*forced == "off") return ZeroCopyMode::kOff;
    if (*forced == "sendfile") return ZeroCopyMode::kSendfile;
    if (*forced == "splice") return ZeroCopyMode::kSplice;
    if (!forced->empty()) {
      std::fprintf(stderr,
                   "hvac: unknown HVAC_ZEROCOPY=%s, using probe result %s\n",
                   forced->c_str(), zerocopy_mode_name(probed));
    }
  }
  return probed;
}

Status sendfile_exact(int sock_fd, int file_fd, uint64_t offset,
                      size_t size) {
  trace::Span span("zc.sendfile", size);
  ScopedSigpipeBlock no_sigpipe;
  auto& zc = ZeroCopyCounters::global();
  off_t off = static_cast<off_t>(offset);
  size_t left = size;
  while (left > 0) {
    HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kZcSend));
    const size_t want = fault::cap_len(fault::Site::kZcSend, left);
    const ssize_t n = ::sendfile(sock_fd, file_fd, &off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        HVAC_RETURN_IF_ERROR(wait_writable(sock_fd));
        continue;
      }
      return Error::from_errno(errno, "sendfile");
    }
    if (n == 0) {
      // The file shrank under the extent we promised in the header:
      // nothing valid can follow on this stream.
      return Error(ErrorCode::kProtocol, "sendfile: eof inside extent");
    }
    left -= static_cast<size_t>(n);
    if (left > 0) zc.short_resumes.fetch_add(1, std::memory_order_relaxed);
  }
  zc.sendfile_sends.fetch_add(1, std::memory_order_relaxed);
  zc.sendfile_bytes.fetch_add(size, std::memory_order_relaxed);
  return Status::Ok();
}

Status splice_exact(int sock_fd, int file_fd, uint64_t offset, size_t size,
                    int pipe_rd, int pipe_wr) {
  trace::Span span("zc.splice", size);
  ScopedSigpipeBlock no_sigpipe;
  auto& zc = ZeroCopyCounters::global();
  off_t off = static_cast<off_t>(offset);
  size_t left = size;
  while (left > 0) {
    HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kZcSplice));
    const size_t want = fault::cap_len(fault::Site::kZcSplice, left);
    const ssize_t in = ::splice(file_fd, &off, pipe_wr, nullptr, want,
                                SPLICE_F_MOVE | SPLICE_F_MORE);
    if (in < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "splice(file->pipe)");
    }
    if (in == 0) {
      return Error(ErrorCode::kProtocol, "splice: eof inside extent");
    }
    // The pipe now holds `in` bytes that MUST reach the socket: a
    // failure here poisons the stream (header already promised them).
    // SPLICE_F_MORE only while more of the extent follows — corking
    // the final chunk would strand the frame's tail in the kernel
    // until a timer flushes it, stalling the waiting client.
    const unsigned int flags =
        SPLICE_F_MOVE |
        (left > static_cast<size_t>(in) ? SPLICE_F_MORE : 0);
    size_t pending = static_cast<size_t>(in);
    while (pending > 0) {
      const ssize_t out = ::splice(pipe_rd, nullptr, sock_fd, nullptr,
                                   pending, flags);
      if (out < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          HVAC_RETURN_IF_ERROR(wait_writable(sock_fd));
          continue;
        }
        return Error::from_errno(errno, "splice(pipe->socket)");
      }
      if (out == 0) {
        return Error(ErrorCode::kProtocol, "splice: socket closed");
      }
      pending -= static_cast<size_t>(out);
    }
    left -= static_cast<size_t>(in);
    if (left > 0) zc.short_resumes.fetch_add(1, std::memory_order_relaxed);
  }
  zc.splice_sends.fetch_add(1, std::memory_order_relaxed);
  zc.splice_bytes.fetch_add(size, std::memory_order_relaxed);
  return Status::Ok();
}

ZeroCopyCounters& ZeroCopyCounters::global() {
  static ZeroCopyCounters counters;
  return counters;
}

}  // namespace hvac::rpc
