#include "rpc/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "rpc/health.h"  // steady_now_ms

namespace hvac::rpc {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::pair<std::string, uint16_t>> Endpoint::host_port() const {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "endpoint not host:port: " + address);
  }
  const std::string host = address.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port < 0 || port > 65535) {
    return Error(ErrorCode::kInvalidArgument, "bad port in " + address);
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

namespace {

Result<Fd> make_tcp_socket() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error::from_errno(errno, "socket(AF_INET)");
  return Fd(fd);
}

Result<Fd> make_unix_socket() {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Error::from_errno(errno, "socket(AF_UNIX)");
  return Fd(fd);
}

Result<sockaddr_in> tcp_addr(const Endpoint& endpoint) {
  HVAC_ASSIGN_OR_RETURN(auto hp, endpoint.host_port());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.second);
  const std::string& host = hp.first;
  if (host == "*" || host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Only dotted-quad (plus localhost) is supported; the library
    // always runs on loopback in this reproduction.
    if (host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else {
      return Error(ErrorCode::kInvalidArgument, "unresolvable host " + host);
    }
  }
  return addr;
}

Result<sockaddr_un> unix_addr(const Endpoint& endpoint) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = endpoint.unix_path();
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Error(ErrorCode::kInvalidArgument, "unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Result<Fd> listen_on(const Endpoint& endpoint, Endpoint* bound_endpoint) {
  if (endpoint.is_unix()) {
    HVAC_ASSIGN_OR_RETURN(Fd fd, make_unix_socket());
    HVAC_ASSIGN_OR_RETURN(sockaddr_un addr, unix_addr(endpoint));
    ::unlink(addr.sun_path);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Error::from_errno(errno, "bind " + endpoint.address);
    }
    if (::listen(fd.get(), 128) != 0) {
      return Error::from_errno(errno, "listen " + endpoint.address);
    }
    if (bound_endpoint != nullptr) *bound_endpoint = endpoint;
    return fd;
  }

  HVAC_ASSIGN_OR_RETURN(Fd fd, make_tcp_socket());
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  HVAC_ASSIGN_OR_RETURN(sockaddr_in addr, tcp_addr(endpoint));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Error::from_errno(errno, "bind " + endpoint.address);
  }
  if (::listen(fd.get(), 128) != 0) {
    return Error::from_errno(errno, "listen " + endpoint.address);
  }
  if (bound_endpoint != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return Error::from_errno(errno, "getsockname");
    }
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &actual.sin_addr, host, sizeof(host));
    bound_endpoint->address =
        std::string(host) + ":" + std::to_string(ntohs(actual.sin_port));
  }
  return fd;
}

Result<Fd> connect_to(const Endpoint& endpoint, int timeout_ms) {
  HVAC_RETURN_IF_ERROR(fault::check(fault::Site::kRpcConnect));
  Fd fd;
  int rc = 0;
  if (endpoint.is_unix()) {
    HVAC_ASSIGN_OR_RETURN(fd, make_unix_socket());
    HVAC_ASSIGN_OR_RETURN(sockaddr_un addr, unix_addr(endpoint));
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    HVAC_ASSIGN_OR_RETURN(fd, make_tcp_socket());
    HVAC_ASSIGN_OR_RETURN(sockaddr_in addr, tcp_addr(endpoint));
    if (timeout_ms > 0) {
      HVAC_RETURN_IF_ERROR(set_nonblocking(fd.get(), true));
    }
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS && timeout_ms > 0) {
      // poll with the *remaining* time: a signal (EINTR) mid-wait must
      // not abort the connect, and must not reset the clock either.
      const int64_t deadline = steady_now_ms() + timeout_ms;
      int pr;
      for (;;) {
        const int64_t remaining = deadline - steady_now_ms();
        if (remaining <= 0) {
          pr = 0;
          break;
        }
        pollfd pfd{fd.get(), POLLOUT, 0};
        pr = ::poll(&pfd, 1, static_cast<int>(remaining));
        if (pr < 0 && errno == EINTR) continue;
        break;
      }
      if (pr == 0) {
        return Error(ErrorCode::kTimeout,
                     "connect timeout to " + endpoint.address);
      }
      if (pr < 0) return Error::from_errno(errno, "poll(connect)");
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        return Error::from_errno(err, "connect " + endpoint.address);
      }
      rc = 0;
    }
    if (rc == 0 && timeout_ms > 0) {
      HVAC_RETURN_IF_ERROR(set_nonblocking(fd.get(), false));
    }
    set_nodelay(fd.get());
  }
  if (rc != 0) {
    return Error::from_errno(errno, "connect " + endpoint.address);
  }
  return fd;
}

Status send_all(int fd, const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status send_vectored(int fd, iovec* iov, int iovcnt) {
  // sendmsg (not writev) so MSG_NOSIGNAL applies, matching send_all's
  // no-SIGPIPE behaviour on dead peers.
  int first = 0;
  while (first < iovcnt) {
    msghdr msg{};
    msg.msg_iov = iov + first;
    msg.msg_iovlen = static_cast<size_t>(iovcnt - first);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "sendmsg");
    }
    // Consume `n` bytes across the iovec list; a partial write can
    // stop mid-entry, in which case that entry is advanced in place.
    size_t left = static_cast<size_t>(n);
    while (first < iovcnt && left >= iov[first].iov_len) {
      left -= iov[first].iov_len;
      ++first;
    }
    if (first < iovcnt && left > 0) {
      iov[first].iov_base = static_cast<uint8_t*>(iov[first].iov_base) + left;
      iov[first].iov_len -= left;
    }
  }
  return Status::Ok();
}

Status recv_all(int fd, void* data, size_t size) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "recv");
    }
    if (n == 0) {
      return got == 0 ? Error(ErrorCode::kUnavailable, "peer closed")
                      : Error(ErrorCode::kProtocol, "eof mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status recv_all_until(int fd, void* data, size_t size,
                      int64_t deadline_ms) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    if (deadline_ms >= 0 && steady_now_ms() >= deadline_ms) {
      return Error(ErrorCode::kTimeout, "call deadline exceeded");
    }
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno(errno, "recv");
    }
    if (n == 0) {
      return got == 0 ? Error(ErrorCode::kUnavailable, "peer closed")
                      : Error(ErrorCode::kProtocol, "eof mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Error::from_errno(errno, "fcntl(F_GETFL)");
  const int desired = nonblocking ? (flags | O_NONBLOCK)
                                  : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, desired) < 0) {
    return Error::from_errno(errno, "fcntl(F_SETFL)");
  }
  return Status::Ok();
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace hvac::rpc
