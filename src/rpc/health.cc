#include "rpc/health.h"

#include <time.h>

#include <algorithm>

#include "common/env.h"
#include "common/rng.h"

namespace hvac::rpc {

ResilienceCounters& ResilienceCounters::global() {
  static ResilienceCounters counters;
  return counters;
}

BreakerOptions BreakerOptions::from_env() {
  BreakerOptions o;
  o.failures_to_open = static_cast<int>(
      env_int_or("HVAC_BREAKER_FAILURES", o.failures_to_open));
  o.base_backoff_ms = static_cast<int>(
      env_int_or("HVAC_BREAKER_BASE_MS", o.base_backoff_ms));
  o.max_backoff_ms = static_cast<int>(
      env_int_or("HVAC_BREAKER_MAX_MS", o.max_backoff_ms));
  if (o.base_backoff_ms < 1) o.base_backoff_ms = 1;
  if (o.max_backoff_ms < o.base_backoff_ms) {
    o.max_backoff_ms = o.base_backoff_ms;
  }
  return o;
}

int64_t steady_now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

int64_t steady_now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1'000;
}

EndpointHealth::EndpointHealth(std::string endpoint, BreakerOptions options)
    : endpoint_(std::move(endpoint)), options_(options) {}

bool EndpointHealth::allow_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (steady_now_ms() >= retry_at_ms_) {
        state_ = State::kHalfOpen;
        probe_inflight_ = true;
        ResilienceCounters::global().breaker_probes.fetch_add(
            1, std::memory_order_relaxed);
        return true;
      }
      break;
    case State::kHalfOpen:
      if (!probe_inflight_) {
        probe_inflight_ = true;
        ResilienceCounters::global().breaker_probes.fetch_add(
            1, std::memory_order_relaxed);
        return true;
      }
      break;
  }
  ResilienceCounters::global().breaker_shed.fetch_add(
      1, std::memory_order_relaxed);
  return false;
}

void EndpointHealth::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  probe_inflight_ = false;
  if (state_ != State::kClosed) {
    state_ = State::kClosed;
    open_streak_ = 0;
    ResilienceCounters::global().breaker_closes.fetch_add(
        1, std::memory_order_relaxed);
  }
}

void EndpointHealth::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  probe_inflight_ = false;
  if (options_.failures_to_open <= 0) return;  // breaker disabled
  if (state_ == State::kHalfOpen) {
    trip_locked();  // failed probe: straight back to open, longer wait
  } else if (state_ == State::kClosed &&
             consecutive_failures_ >=
                 static_cast<uint64_t>(options_.failures_to_open)) {
    trip_locked();
  }
  // A failure reported while already kOpen (an in-flight call that
  // started before the trip) does not extend the backoff.
}

void EndpointHealth::trip_locked() {
  state_ = State::kOpen;
  ++open_streak_;
  ++opens_total_;
  ResilienceCounters::global().breaker_opens.fetch_add(
      1, std::memory_order_relaxed);
  const uint64_t shift = std::min<uint64_t>(open_streak_ - 1, 20);
  int64_t backoff = std::min<int64_t>(
      static_cast<int64_t>(options_.base_backoff_ms) << shift,
      options_.max_backoff_ms);
  // Deterministic +/-25% jitter (seeded by the endpoint name and the
  // draw index) de-synchronizes probe storms from many clients while
  // keeping test runs replayable.
  SplitMix64 rng(mix64(std::hash<std::string>{}(endpoint_)) ^
                 ++jitter_draws_);
  backoff = static_cast<int64_t>(
      static_cast<double>(backoff) * (0.75 + 0.5 * rng.next_double()));
  retry_at_ms_ = steady_now_ms() + std::max<int64_t>(backoff, 1);
}

EndpointHealth::State EndpointHealth::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

EndpointHealth::Snapshot EndpointHealth::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.state = state_;
  s.consecutive_failures = consecutive_failures_;
  s.opens = opens_total_;
  if (state_ == State::kOpen) {
    s.retry_in_ms = std::max<int64_t>(retry_at_ms_ - steady_now_ms(), 0);
  }
  return s;
}

HealthRegistry& HealthRegistry::global() {
  static HealthRegistry* registry = new HealthRegistry();  // never dtor'd
  return *registry;
}

std::shared_ptr<EndpointHealth> HealthRegistry::get(
    const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = map_[endpoint];
  if (!slot) {
    slot = std::make_shared<EndpointHealth>(endpoint,
                                            BreakerOptions::from_env());
  }
  return slot;
}

std::vector<std::pair<std::string, EndpointHealth::Snapshot>>
HealthRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, EndpointHealth::Snapshot>> out;
  out.reserve(map_.size());
  for (const auto& [endpoint, health] : map_) {
    out.emplace_back(endpoint, health->snapshot());
  }
  return out;
}

void HealthRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
}

const char* breaker_state_name(EndpointHealth::State state) {
  switch (state) {
    case EndpointHealth::State::kClosed: return "closed";
    case EndpointHealth::State::kOpen: return "open";
    case EndpointHealth::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace hvac::rpc
