// Telemetry plane: time-series ring semantics, kTimeSeries codec
// cross-version tolerance, frame_delta counter/gauge rules, and the
// OpenMetrics exporter (rendered grammar + a live HTTP scrape).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/metrics_frame.h"
#include "core/timeseries.h"
#include "rpc/wire.h"
#include "server/hvac_proto.h"
#include "server/prom_exporter.h"

namespace hvac {
namespace {

using core::MetricsFrame;
using core::TimeSeriesFrame;
using core::TimeSeriesRing;
using core::TimeSeriesSample;
using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

MetricsFrame frame_with(uint64_t hits) {
  MetricsFrame f;
  f.cache.hits = hits;
  f.cache.misses = 3;
  f.cache.bytes_from_cache = hits * 100;
  f.open_fds = 7;
  f.stall.epochs = {{2, 50, 4000, 1000, 2000, 500, 400, 100}};
  f.reactor.reactors = {{2, 40, 5, 1}};  // labeled per-reactor samples
  core::LatencySnapshot lat;
  lat.count = 4;
  lat.total_ns = 8000;
  lat.buckets[11] = 4;
  f.op_latency[proto::kRead] = lat;
  return f;
}

TimeSeriesSample sample_with(uint64_t t_ms, uint64_t hits) {
  TimeSeriesSample s;
  s.t_ms = t_ms;
  s.interval_ms = 1000;
  s.delta = frame_with(hits);
  return s;
}

TEST(TimeSeriesRing, WrapKeepsNewestSamples) {
  TimeSeriesRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) ring.push(sample_with(i, i + 1));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_pushed(), 6u);
  const std::vector<TimeSeriesSample> got = ring.samples();
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].t_ms, i + 2);  // oldest two were overwritten
    EXPECT_EQ(got[i].delta.cache.hits, i + 3);
  }
}

TEST(TimeSeriesRing, ZeroCapacityClampsToOne) {
  TimeSeriesRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(sample_with(1, 1));
  ring.push(sample_with(2, 2));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.samples()[0].t_ms, 2u);
}

TEST(TimeSeries, EncodeDecodeRoundTrip) {
  TimeSeriesRing ring(8);
  ring.push(sample_with(1000, 10));
  ring.push(sample_with(2000, 25));
  const auto decoded = TimeSeriesFrame::decode(ring.encode(500));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->version, core::kTimeSeriesVersion);
  EXPECT_EQ(decoded->interval_ms, 500u);
  EXPECT_EQ(decoded->window, 8u);
  EXPECT_EQ(decoded->total, 2u);
  ASSERT_EQ(decoded->samples.size(), 2u);
  EXPECT_EQ(decoded->samples[0].t_ms, 1000u);
  EXPECT_EQ(decoded->samples[0].interval_ms, 1000u);
  EXPECT_EQ(decoded->samples[0].delta.cache.hits, 10u);
  EXPECT_EQ(decoded->samples[1].t_ms, 2000u);
  EXPECT_EQ(decoded->samples[1].delta.cache.hits, 25u);
  // The inner frame carries every metrics-frame section, stall and
  // per-op histograms included.
  ASSERT_EQ(decoded->samples[1].delta.stall.epochs.size(), 1u);
  EXPECT_EQ(decoded->samples[1].delta.stall.epochs[0].remote_rpc_ns, 2000u);
  EXPECT_EQ(decoded->samples[1].delta.op_latency.at(proto::kRead).count, 4u);
}

TEST(TimeSeries, DecodeRejectsBadMagic) {
  WireWriter w;
  w.put_u32(0xdeadbeef);
  w.put_u16(1);
  const auto decoded = TimeSeriesFrame::decode(w.bytes());
  EXPECT_FALSE(decoded.ok());
}

TEST(TimeSeries, DecodeSkipsUnknownSampleTailAndBadBodies) {
  // A payload from a *newer* writer: sample bodies grew a trailing
  // field after the frame blob, and one sample's frame bytes are
  // garbage. The decoder must keep every parseable sample and skip the
  // rest by the outer length prefix.
  const Bytes good_frame = frame_with(42).encode();
  WireWriter w;
  w.put_u32(core::kTimeSeriesMagic);
  w.put_u16(core::kTimeSeriesVersion);
  w.put_u32(1000);  // interval_ms
  w.put_u32(16);    // window
  w.put_u64(3);     // total
  w.put_u16(3);     // three samples follow
  {
    WireWriter body;  // sample with an unknown future tail field
    body.put_u64(111);
    body.put_u32(999);
    body.put_blob(good_frame.data(), good_frame.size());
    body.put_u64(0xfeedface);  // the future field
    w.put_blob(body.bytes().data(), body.bytes().size());
  }
  {
    WireWriter body;  // sample whose frame bytes do not decode
    body.put_u64(222);
    body.put_u32(1000);
    const uint8_t junk[3] = {0x01, 0x02, 0x03};
    body.put_blob(junk, sizeof(junk));
    w.put_blob(body.bytes().data(), body.bytes().size());
  }
  {
    WireWriter body;  // normal sample after the bad one
    body.put_u64(333);
    body.put_u32(1000);
    body.put_blob(good_frame.data(), good_frame.size());
    w.put_blob(body.bytes().data(), body.bytes().size());
  }
  const auto decoded = TimeSeriesFrame::decode(w.bytes());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->total, 3u);
  ASSERT_EQ(decoded->samples.size(), 2u);
  EXPECT_EQ(decoded->samples[0].t_ms, 111u);
  EXPECT_EQ(decoded->samples[0].interval_ms, 999u);
  EXPECT_EQ(decoded->samples[0].delta.cache.hits, 42u);
  EXPECT_EQ(decoded->samples[1].t_ms, 333u);
}

TEST(TimeSeries, FrameDeltaCountersGaugesAndHistograms) {
  MetricsFrame prev;
  prev.cache.hits = 100;
  prev.cache.bytes_from_cache = 1000;
  prev.open_fds = 9;
  prev.handle_cache.open = 3;
  prev.trace.occupancy = 80;
  prev.write_back.flush_lag_ms = 70;
  core::LatencySnapshot plat;
  plat.count = 10;
  plat.total_ns = 1000;
  plat.buckets[5] = 10;
  prev.op_latency[proto::kRead] = plat;

  MetricsFrame cur;
  cur.cache.hits = 130;
  cur.cache.bytes_from_cache = 900;  // peer restarted: counter went down
  cur.open_fds = 4;
  cur.handle_cache.open = 6;
  cur.trace.occupancy = 20;
  cur.write_back.flush_lag_ms = 15;
  cur.stall.epochs = {{3, 7, 700, 700, 0, 0, 0, 0}};
  core::LatencySnapshot clat;
  clat.count = 14;
  clat.total_ns = 1600;
  clat.buckets[5] = 14;
  cur.op_latency[proto::kRead] = clat;
  core::LatencySnapshot open_lat;
  open_lat.count = 2;
  open_lat.total_ns = 50;
  open_lat.buckets[4] = 2;
  cur.op_latency[proto::kOpen] = open_lat;  // op absent from prev

  const MetricsFrame d = core::frame_delta(cur, prev);
  EXPECT_EQ(d.cache.hits, 30u);              // counter: cur - prev
  EXPECT_EQ(d.cache.bytes_from_cache, 0u);   // restart clamps at zero
  EXPECT_EQ(d.open_fds, 4u);                 // gauge: carries cur
  EXPECT_EQ(d.handle_cache.open, 6u);        // gauge
  EXPECT_EQ(d.trace.occupancy, 20u);         // gauge
  EXPECT_EQ(d.write_back.flush_lag_ms, 15u); // gauge
  // Per-epoch cumulative stall rows carry over as-is.
  ASSERT_EQ(d.stall.epochs.size(), 1u);
  EXPECT_EQ(d.stall.epochs[0].total_ns, 700u);
  // Histograms difference bucket-wise; ops new in cur carry whole.
  EXPECT_EQ(d.op_latency.at(proto::kRead).count, 4u);
  EXPECT_EQ(d.op_latency.at(proto::kRead).total_ns, 600u);
  EXPECT_EQ(d.op_latency.at(proto::kRead).buckets[5], 4u);
  EXPECT_EQ(d.op_latency.at(proto::kOpen).count, 2u);
}

// ---- OpenMetrics rendering ------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(OpenMetrics, GrammarHelpTypeAndTerminator) {
  const std::string body = server::render_openmetrics(frame_with(10));
  ASSERT_GE(body.size(), 6u);
  EXPECT_EQ(body.substr(body.size() - 6), "# EOF\n");

  const std::vector<std::string> lines = split_lines(body);
  size_t families = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("# TYPE ", 0) != 0) continue;
    ++families;
    // Every TYPE line is immediately preceded by HELP for the same
    // family name.
    ASSERT_GT(i, 0u) << lines[i];
    const std::string name =
        lines[i].substr(7, lines[i].find(' ', 7) - 7);
    EXPECT_EQ(lines[i - 1].rfind("# HELP " + name + " ", 0), 0u)
        << "HELP must precede TYPE for " << name;
    // Counter families expose samples under `<name>_total`.
    if (lines[i].find(" counter") != std::string::npos) {
      bool found = false;
      for (size_t j = i + 1; j < lines.size() && lines[j][0] != '#'; ++j) {
        if (lines[j].rfind(name + "_total", 0) == 0) found = true;
      }
      EXPECT_TRUE(found) << "no _total sample for counter " << name;
    }
  }
  EXPECT_GT(families, 30u);  // every section renders

  // Stall wall time appears once per bucket label.
  for (const char* b :
       {"local_hit", "remote_rpc", "pfs_wait", "backpressure", "retry"}) {
    const std::string want =
        std::string("hvac_stall_seconds_total{bucket=\"") + b + "\"} ";
    EXPECT_NE(body.find(want), std::string::npos) << want;
  }
  EXPECT_NE(body.find("hvac_stall_reads_total 50"), std::string::npos);
}

TEST(OpenMetrics, HistogramIsCumulativeAndEndsAtInf) {
  const std::string body = server::render_openmetrics(frame_with(10));
  const std::vector<std::string> lines = split_lines(body);
  std::vector<uint64_t> cumulative;
  bool saw_inf = false;
  uint64_t count_value = 0;
  for (const std::string& line : lines) {
    if (line.rfind("hvac_op_latency_seconds_bucket{op=\"read\"", 0) == 0) {
      cumulative.push_back(std::stoull(line.substr(line.rfind(' ') + 1)));
      if (line.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
    } else if (line.rfind("hvac_op_latency_seconds_count{op=\"read\"", 0) ==
               0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(cumulative.size(), core::kLatencyBuckets);
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]) << "bucket " << i;
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(cumulative.back(), count_value);
  EXPECT_EQ(count_value, 4u);
}

// ---- live HTTP scrape -----------------------------------------------------

std::string http_get(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += size_t(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {  // server closes after one response
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, size_t(n));
  }
  ::close(fd);
  return response;
}

TEST(PromExporter, ServesLiveScrapeOnEphemeralPort) {
  server::PromExporter exporter(0, [] { return frame_with(77); });
  ASSERT_TRUE(exporter.start().ok());
  ASSERT_NE(exporter.port(), 0);

  const std::string response = http_get(exporter.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK", 0), 0u) << response;
  EXPECT_NE(
      response.find(
          "application/openmetrics-text; version=1.0.0; charset=utf-8"),
      std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_NE(body.find("hvac_cache_hits_total 77"), std::string::npos);
  EXPECT_EQ(body.substr(body.size() - 6), "# EOF\n");

  // Anything but /metrics is a 404; the exporter survives to serve the
  // next scrape.
  const std::string missing = http_get(exporter.port(), "/other");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404", 0), 0u) << missing;
  const std::string again = http_get(exporter.port(), "/metrics");
  EXPECT_EQ(again.rfind("HTTP/1.1 200 OK", 0), 0u);

  exporter.stop();
}

}  // namespace
}  // namespace hvac
