// Server-side protocol hardening: every handler must reject
// malformed, truncated or out-of-range requests with a clean error —
// a misbehaving client must never wedge or crash a server that other
// ranks depend on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "core/metrics_frame.h"
#include "rpc/rpc_client.h"
#include "rpc/wire.h"
#include "server/hvac_proto.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using rpc::Bytes;
using rpc::WireReader;
using rpc::WireWriter;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_sedge_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

class ServerEdge : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_root_ = temp_dir("pfs");
    const auto spec = workload::synthetic_small(4, 2048, 0.0);
    auto tree = workload::generate_tree(pfs_root_, spec);
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();

    server::NodeRuntimeOptions o;
    o.pfs_root = pfs_root_;
    o.cache_root = temp_dir("cache");
    node_ = std::make_unique<server::NodeRuntime>(o);
    ASSERT_TRUE(node_->start().ok());
    client_ = std::make_unique<rpc::RpcClient>(
        rpc::Endpoint{node_->endpoints()[0]});
  }

  // Opens tree file 0 through the raw protocol; returns the remote fd.
  uint64_t open_remote() {
    WireWriter w;
    w.put_string(tree_.relative_paths[0]);
    auto resp = client_->call(proto::kOpen, w.bytes());
    EXPECT_TRUE(resp.ok());
    WireReader r(*resp);
    return r.get_u64().value();
  }

  std::string pfs_root_;
  workload::GeneratedTree tree_;
  std::unique_ptr<server::NodeRuntime> node_;
  std::unique_ptr<rpc::RpcClient> client_;
};

TEST_F(ServerEdge, EmptyPayloadsRejectedCleanly) {
  for (uint16_t opcode : {proto::kOpen, proto::kRead, proto::kClose,
                          proto::kStat, proto::kPrefetch,
                          proto::kReadSegment}) {
    const auto resp = client_->call(opcode, Bytes{});
    ASSERT_FALSE(resp.ok()) << "opcode " << opcode;
    EXPECT_EQ(resp.error().code, ErrorCode::kProtocol)
        << "opcode " << opcode;
  }
  // The server is still healthy afterwards.
  EXPECT_TRUE(client_->call(proto::kPing, Bytes{}).ok());
}

TEST_F(ServerEdge, GarbagePayloadsDontWedgeServer) {
  Bytes garbage(64, 0xee);
  for (uint16_t opcode = 1; opcode <= 8; ++opcode) {
    (void)client_->call(opcode, garbage);
  }
  EXPECT_TRUE(client_->call(proto::kPing, Bytes{}).ok());
  EXPECT_GT(open_remote(), 0u);
}

TEST_F(ServerEdge, ReadWithUnknownRemoteFd) {
  WireWriter w;
  w.put_u64(999999);
  w.put_u64(0);
  w.put_u32(16);
  const auto resp = client_->call(proto::kRead, w.bytes());
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kBadFd);
}

TEST_F(ServerEdge, ReadChunkAboveCapRejected) {
  const uint64_t remote_fd = open_remote();
  WireWriter w;
  w.put_u64(remote_fd);
  w.put_u64(0);
  w.put_u32(proto::kMaxReadChunk + 1);
  const auto resp = client_->call(proto::kRead, w.bytes());
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(ServerEdge, CloseUnknownFdAndDoubleClose) {
  const uint64_t remote_fd = open_remote();
  WireWriter w;
  w.put_u64(remote_fd);
  EXPECT_TRUE(client_->call(proto::kClose, w.bytes()).ok());
  const auto again = client_->call(proto::kClose, w.bytes());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kBadFd);
}

TEST_F(ServerEdge, OpenMissingFilePropagatesNotFound) {
  WireWriter w;
  w.put_string("no/such/file.bin");
  const auto resp = client_->call(proto::kOpen, w.bytes());
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, ErrorCode::kNotFound);
}

TEST_F(ServerEdge, SegmentReadValidation) {
  // segment_bytes == 0 is invalid.
  {
    WireWriter w;
    w.put_string(tree_.relative_paths[0]);
    w.put_u64(0);
    w.put_u64(0);
    w.put_u64(0);
    w.put_u32(16);
    const auto resp = client_->call(proto::kReadSegment, w.bytes());
    ASSERT_FALSE(resp.ok());
    EXPECT_EQ(resp.error().code, ErrorCode::kInvalidArgument);
  }
  // Segment entirely past EOF is invalid.
  {
    WireWriter w;
    w.put_string(tree_.relative_paths[0]);
    w.put_u64(100);  // far past a 2 KB file at 1 KB segments
    w.put_u64(1024);
    w.put_u64(0);
    w.put_u32(16);
    const auto resp = client_->call(proto::kReadSegment, w.bytes());
    ASSERT_FALSE(resp.ok());
  }
  // Valid segment read works.
  {
    WireWriter w;
    w.put_string(tree_.relative_paths[0]);
    w.put_u64(1);
    w.put_u64(1024);
    w.put_u64(0);
    w.put_u32(1024);
    const auto resp = client_->call(proto::kReadSegment, w.bytes());
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
    WireReader r(*resp);
    const auto blob = r.get_blob();
    ASSERT_TRUE(blob.ok());
    const auto expected = workload::expected_contents(
        tree_.relative_paths[0], tree_.sizes[0]);
    ASSERT_EQ(blob->size(),
              std::min<uint64_t>(1024, tree_.sizes[0] - 1024));
    EXPECT_TRUE(std::equal(blob->begin(), blob->end(),
                           expected.begin() + 1024));
  }
}

TEST_F(ServerEdge, MetricsPayloadShape) {
  (void)open_remote();
  const auto resp = client_->call(proto::kMetrics, Bytes{});
  ASSERT_TRUE(resp.ok());
  // The v1 prefix (eight bare u64 counters) still leads the payload so
  // legacy decoders keep working, and the v2 section list follows,
  // announced by its magic.
  WireReader r(*resp);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(r.get_u64().ok()) << "field " << i;
  }
  const auto magic = r.get_u32();
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(*magic, core::kMetricsFrameMagic);
  const auto frame = core::MetricsFrame::decode(*resp);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->version, core::kFrameVersion);
  EXPECT_GE(frame->handle_cache.capacity, 1u);
  // The opens above were timed.
  EXPECT_EQ(frame->op_latency.count(proto::kOpen), 1u);
}

TEST_F(ServerEdge, ServerCountsOpenFds) {
  EXPECT_EQ(node_->instance(0).open_remote_fds(), 0u);
  const uint64_t fd1 = open_remote();
  const uint64_t fd2 = open_remote();
  EXPECT_NE(fd1, fd2);
  EXPECT_EQ(node_->instance(0).open_remote_fds(), 2u);
  WireWriter w;
  w.put_u64(fd1);
  ASSERT_TRUE(client_->call(proto::kClose, w.bytes()).ok());
  EXPECT_EQ(node_->instance(0).open_remote_fds(), 1u);
}

}  // namespace
}  // namespace hvac
