// Tracing tests: concurrent ring emission (TSan leg), trace-context
// wire round-trip (both frame versions), exact drop accounting on
// ring overflow, and the end-to-end span tree of a traced zero-copy
// read that survives a fault-injected retry.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "client/hvac_client.h"
#include "common/fault_injection.h"
#include "common/log.h"
#include "common/trace.h"
#include "core/trace_wire.h"
#include "rpc/protocol.h"
#include "server/node_runtime.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;
using client::HvacClient;
using client::HvacClientOptions;
using server::NodeRuntime;
using server::NodeRuntimeOptions;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_trace_" + name + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<trace::SpanRecord> named(
    const std::vector<trace::SpanRecord>& spans, const char* name) {
  std::vector<trace::SpanRecord> out;
  for (const auto& s : spans) {
    if (std::string(s.name) == name) out.push_back(s);
  }
  return out;
}

// 8 producers emit nested spans while a reader drains concurrently.
// Under TSan this exercises the push/drain acquire-release pairing;
// everywhere it checks that no record is lost or double-counted.
TEST(Trace, ConcurrentEmissionWhileDraining) {
  trace::init_for_test(true, 1u << 15);
  trace::drain();  // clear leftovers from other tests

  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> collected{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      collected += trace::drain().size();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        trace::Span outer("test.outer", uint64_t(i));
        trace::Span inner("test.inner");
        trace::Span::event("test.event");
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  collected += trace::drain().size();

  const auto st = trace::stats();
  // 3 records per iteration: outer, inner, event.
  EXPECT_EQ(st.emitted + st.dropped,
            uint64_t(kThreads) * kIters * 3);
  EXPECT_EQ(collected.load(), st.emitted);
  EXPECT_EQ(trace::stats().occupancy, 0u);
}

TEST(Trace, WireRoundTripTracedFrame) {
  rpc::FrameHeader h;
  h.payload_len = 123;
  h.request_id = 0x1122334455667788ull;
  h.opcode = 7;
  h.kind = rpc::FrameKind::kRequest;
  h.status = ErrorCode::kOk;
  h.has_trace = true;
  h.trace.trace_id = 0xdeadbeefcafef00dull;
  h.trace.parent_span_id = 42;
  h.trace.flags = trace::kFlagSampled;

  uint8_t buf[rpc::kMaxHeaderSize];
  const size_t n = rpc::encode_header(h, buf);
  ASSERT_EQ(n, rpc::kMaxHeaderSize);  // 20-byte header + 16-byte ctx

  auto d = rpc::decode_header(buf, rpc::kHeaderSize);
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_TRUE(d->has_trace);
  EXPECT_EQ(d->payload_len, h.payload_len);
  EXPECT_EQ(d->request_id, h.request_id);
  EXPECT_EQ(d->opcode, h.opcode);
  ASSERT_TRUE(rpc::decode_trace_context(*d, buf + rpc::kHeaderSize,
                                        trace::kTraceContextSize)
                  .ok());
  EXPECT_EQ(d->trace.trace_id, h.trace.trace_id);
  EXPECT_EQ(d->trace.parent_span_id, h.trace.parent_span_id);
  EXPECT_EQ(d->trace.flags, h.trace.flags);
}

// Old-version (HVC1) frames must keep decoding — an untraced client
// against a traced server and vice versa is byte-identical to before.
TEST(Trace, WireRoundTripUntracedFrameStaysV1) {
  rpc::FrameHeader h;
  h.payload_len = 9;
  h.request_id = 5;
  h.opcode = 2;
  h.kind = rpc::FrameKind::kResponse;
  h.status = ErrorCode::kOk;

  uint8_t buf[rpc::kMaxHeaderSize];
  const size_t n = rpc::encode_header(h, buf);
  ASSERT_EQ(n, rpc::kHeaderSize);  // no trace → classic 20-byte frame

  auto d = rpc::decode_header(buf, rpc::kHeaderSize);
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_FALSE(d->has_trace);
  EXPECT_EQ(d->request_id, h.request_id);
  EXPECT_FALSE(d->trace.valid());
}

// A full ring drops (never overwrites): the dropped counter moves by
// exactly the overflow and the buffered records survive untouched.
TEST(Trace, RingOverflowDropsExactly) {
  trace::drain();
  trace::init_for_test(true, /*ring_capacity=*/8);

  constexpr int kEmit = 20;
  std::thread t([] {  // fresh thread → fresh ring with capacity 8
    for (int i = 0; i < kEmit; ++i) {
      trace::Span span("test.ovf", uint64_t(i));
    }
  });
  t.join();

  const auto st = trace::stats();
  EXPECT_EQ(st.dropped, uint64_t(kEmit - 8));
  EXPECT_EQ(st.emitted, 8u);
  const auto survived = named(trace::drain(), "test.ovf");
  ASSERT_EQ(survived.size(), 8u);
  for (size_t i = 0; i < survived.size(); ++i) {
    EXPECT_EQ(survived[i].arg, i);  // oldest records kept, in order
  }
}

// End-to-end: a traced read against a live server produces ONE
// connected tree across the socket — client.pread → rpc.call (plus an
// rpc.retry event from a fault-injected send failure) → server.queue/
// server.dispatch → server.send → zc.sendfile — and the miss path
// additionally shows the mover's queue-wait vs fetch split.
TEST(Trace, EndToEndSpanTreeAcrossRetryAndZeroCopy) {
  ::setenv("HVAC_ZEROCOPY", "sendfile", 1);
  trace::init_for_test(true, 1u << 15);
  trace::drain();

  const std::string pfs_root = temp_dir("pfs");
  const std::string cache_root = temp_dir("cache");
  auto generated = workload::generate_tree(
      pfs_root, workload::synthetic_small(4, 1 << 16, 0.0));
  ASSERT_TRUE(generated.ok());

  NodeRuntimeOptions no;
  no.pfs_root = pfs_root;
  no.cache_root = cache_root;
  no.instances = 1;
  NodeRuntime node(no);
  ASSERT_TRUE(node.start().ok());

  HvacClientOptions co;
  co.dataset_dir = pfs_root;
  co.server_endpoints = node.endpoints();
  co.readahead_chunks = 0;  // keep the read a single synchronous call
  co.meta_ttl_ms = 0;
  HvacClient hvac(co);

  const std::string path =
      pfs_root + "/" + generated->relative_paths[0];
  const size_t file_size = generated->sizes[0];

  // ---- Miss path: first open populates the cache via the mover.
  {
    auto vfd = hvac.open(path);
    ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
    std::vector<uint8_t> buf(file_size);
    ASSERT_TRUE(hvac.pread(*vfd, buf.data(), buf.size(), 0).ok());
    ASSERT_TRUE(hvac.close(*vfd).ok());
  }
  // The fetch runs on the mover thread; wait for its span to land.
  std::vector<trace::SpanRecord> miss_spans;
  for (int i = 0; i < 500 && named(miss_spans, "mover.fetch").empty();
       ++i) {
    for (const auto& s : trace::drain()) miss_spans.push_back(s);
    ::usleep(10 * 1000);
  }
  const auto fetches = named(miss_spans, "mover.fetch");
  const auto queue_waits = named(miss_spans, "mover.queue");
  ASSERT_FALSE(fetches.empty());
  ASSERT_FALSE(queue_waits.empty());
  // Queue-wait and fetch belong to the same trace as the open that
  // enqueued them, and stay distinguishable (different span names on
  // adjacent time ranges rather than one blob).
  EXPECT_EQ(fetches[0].trace_id, queue_waits[0].trace_id);
  EXPECT_NE(fetches[0].trace_id, 0u);

  // ---- Hit path under a forced retry: the first send attempt fails,
  // the idempotent read retries, and the served bytes go out via the
  // zero-copy sendfile rung. All of it must hang off one trace.
  auto vfd = hvac.open(path);
  ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
  trace::drain();  // only the traced read below matters
  ASSERT_TRUE(
      fault::configure("rpc_send:error=unavailable:count=1").ok());
  std::vector<uint8_t> buf(file_size);
  const auto n = hvac.pread(*vfd, buf.data(), buf.size(), 0);
  fault::reset();
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(*n, file_size);
  ASSERT_TRUE(hvac.close(*vfd).ok());

  const auto spans = trace::drain();
  const auto preads = named(spans, "client.pread");
  ASSERT_EQ(preads.size(), 1u);
  const auto& root = preads[0];
  EXPECT_EQ(root.parent_id, 0u);  // the read roots the trace

  std::map<uint32_t, trace::SpanRecord> by_id;
  for (const auto& s : spans) {
    if (s.trace_id == root.trace_id) by_id[s.span_id] = s;
  }
  // Every stage is present in the SAME trace.
  auto in_trace = [&](const char* name) {
    std::vector<trace::SpanRecord> out;
    for (const auto& [id, s] : by_id) {
      if (std::string(s.name) == name) out.push_back(s);
    }
    return out;
  };
  EXPECT_EQ(in_trace("rpc.call").size(), 2u);  // failed + retried
  ASSERT_EQ(in_trace("rpc.retry").size(), 1u);
  EXPECT_EQ(in_trace("rpc.retry")[0].parent_id, root.span_id);
  ASSERT_EQ(in_trace("server.dispatch").size(), 1u);
  ASSERT_EQ(in_trace("server.queue").size(), 1u);
  ASSERT_EQ(in_trace("server.send").size(), 1u);
  ASSERT_EQ(in_trace("zc.sendfile").size(), 1u);
  EXPECT_EQ(in_trace("zc.sendfile")[0].arg, file_size);

  // Connectivity: walk parents from the deepest span (the sendfile
  // rung) back up to the client read — one unbroken chain.
  uint32_t cursor = in_trace("zc.sendfile")[0].span_id;
  std::vector<std::string> chain;
  for (int hops = 0; hops < 16 && cursor != 0; ++hops) {
    auto it = by_id.find(cursor);
    ASSERT_NE(it, by_id.end()) << "broken parent link at " << cursor;
    chain.push_back(it->second.name);
    cursor = it->second.parent_id;
  }
  ASSERT_GE(chain.size(), 4u);
  EXPECT_EQ(chain.front(), "zc.sendfile");
  EXPECT_EQ(chain.back(), "client.pread");

  // The wire codec and Chrome export round-trip the same records.
  const auto payload = core::encode_spans(spans);
  const auto dumped = core::decode_spans(payload);
  ASSERT_TRUE(dumped.ok()) << dumped.error().to_string();
  ASSERT_EQ(dumped->size(), spans.size());
  EXPECT_EQ((*dumped)[0].name, std::string(spans[0].name));
  const std::string json = core::spans_to_chrome_json(
      {core::EndpointSpans{"localhost:0", *dumped, core::SpanDumpClock{}}});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("client.pread"), std::string::npos);

  // format_tree renders the slow-request dump from the same records.
  std::vector<trace::SpanRecord> one_trace;
  for (const auto& [id, s] : by_id) one_trace.push_back(s);
  const std::string tree = trace::format_tree(one_trace);
  EXPECT_NE(tree.find("client.pread"), std::string::npos);
  EXPECT_NE(tree.find("zc.sendfile"), std::string::npos);

  node.stop();
  ::unsetenv("HVAC_ZEROCOPY");
}

// HVAC_SLOW_MS: a root span that overruns the threshold prints its
// reconstructed tree to stderr; fast roots stay silent.
TEST(Trace, SlowRequestLogPrintsTree) {
  trace::init_for_test(true, 1u << 12, /*slow_ms=*/1);
  trace::drain();
  ::testing::internal::CaptureStderr();
  {
    trace::Span root("test.slowroot");
    trace::Span child("test.slowchild");
    ::usleep(3 * 1000);
  }
  {
    trace::Span fast("test.fastroot");
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("test.slowroot"), std::string::npos) << err;
  EXPECT_NE(err.find("test.slowchild"), std::string::npos) << err;
  EXPECT_EQ(err.find("test.fastroot"), std::string::npos) << err;
  trace::init_for_test(true, 1u << 12, /*slow_ms=*/0);
  trace::drain();
}

// Log lines emitted while a span is active carry the trace/span ids;
// lines outside any trace keep the original prefix.
TEST(Trace, LogLinesCarryTraceIds) {
  trace::init_for_test(true, 1u << 12);
  trace::drain();
  ::testing::internal::CaptureStderr();
  {
    trace::Span span("test.logspan");
    HVAC_LOG_ERROR("traced line marker");
  }
  HVAC_LOG_ERROR("untraced line marker");
  const std::string err = ::testing::internal::GetCapturedStderr();
  std::istringstream lines(err);
  std::string line;
  bool saw_traced = false, saw_untraced = false;
  while (std::getline(lines, line)) {
    if (line.find("traced line marker") != std::string::npos &&
        line.find("untraced") == std::string::npos) {
      saw_traced = true;
      EXPECT_NE(line.find(" [t="), std::string::npos) << line;
      EXPECT_NE(line.find(" s="), std::string::npos) << line;
    }
    if (line.find("untraced line marker") != std::string::npos) {
      saw_untraced = true;
      EXPECT_EQ(line.find(" [t="), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_traced);
  EXPECT_TRUE(saw_untraced);
  trace::drain();
}

// Spans are invisible to the frame format until a trace is actually
// active: with tracing disabled a Span is inert and current_context()
// stays empty, so requests keep the v1 wire shape.
TEST(Trace, DisabledTracerIsInert) {
  trace::init_for_test(false, 0);
  {
    trace::Span span("test.noop");
    EXPECT_FALSE(span.armed());
    EXPECT_EQ(trace::current_trace_id(), 0u);
    EXPECT_FALSE(trace::current_context().valid());
  }
  EXPECT_TRUE(trace::drain().empty());
  trace::init_for_test(true, 1u << 12);  // leave enabled for safety
  trace::drain();
}

}  // namespace
}  // namespace hvac
