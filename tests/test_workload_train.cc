// Tests for the workload models (dataset specs, shuffling, file
// trees) and the training substrate (synthetic data, trainer).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>

#include "common/stats.h"
#include "storage/posix_file.h"
#include "train/trainer.h"
#include "workload/dataset_spec.h"
#include "workload/file_tree.h"
#include "workload/shuffler.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_wl_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---- dataset specs --------------------------------------------------------

TEST(DatasetSpec, PaperPopulations) {
  const auto inet = workload::imagenet21k();
  EXPECT_EQ(inet.num_files, 11'797'632u);
  // ~1.1 TB total (paper Sec. IV-A3).
  EXPECT_NEAR(inet.total_bytes() / 1e12, 1.9, 1.0);

  const auto cosmo = workload::cosmo_universe();
  EXPECT_EQ(cosmo.num_files, 524'288u);
  EXPECT_NEAR(cosmo.total_bytes() / 1e12, 1.4, 0.3);
}

TEST(DatasetSpec, FileSizesDeterministicAndPositive) {
  const auto spec = workload::imagenet21k();
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t s1 = spec.file_size(i);
    const uint64_t s2 = spec.file_size(i);
    EXPECT_EQ(s1, s2);
    EXPECT_GE(s1, spec.min_file_bytes);
  }
}

TEST(DatasetSpec, LognormalMeanApproximatesSpec) {
  const auto spec = workload::imagenet21k();
  OnlineStats s;
  for (uint64_t i = 0; i < 50000; ++i) {
    s.add(static_cast<double>(spec.file_size(i)));
  }
  EXPECT_NEAR(s.mean() / spec.mean_file_bytes, 1.0, 0.08);
}

TEST(DatasetSpec, FixedSizeDatasetsAreFixed) {
  const auto cosmo = workload::cosmo_universe();
  const uint64_t first = cosmo.file_size(0);
  for (uint64_t i = 1; i < 50; ++i) EXPECT_EQ(cosmo.file_size(i), first);
}

TEST(DatasetSpec, ScaledKeepsDistribution) {
  const auto spec = workload::imagenet21k();
  const auto small = spec.scaled(1024);
  EXPECT_EQ(small.num_files, spec.num_files / 1024);
  EXPECT_EQ(small.mean_file_bytes, spec.mean_file_bytes);
  // Scaling below the floor clamps at 64.
  EXPECT_EQ(spec.scaled(UINT64_MAX / 2).num_files, 64u);
  // Scale 1 (or 0) is identity.
  EXPECT_EQ(spec.scaled(1).num_files, spec.num_files);
}

TEST(DatasetSpec, FilePathsUniqueAndStable) {
  const auto spec = workload::synthetic_small(5000, 1024);
  std::set<std::string> paths;
  for (uint64_t i = 0; i < 5000; ++i) {
    paths.insert(workload::dataset_file_path(spec, i));
  }
  EXPECT_EQ(paths.size(), 5000u);
  EXPECT_EQ(workload::dataset_file_path(spec, 7),
            workload::dataset_file_path(spec, 7));
}

TEST(DatasetSpec, AppSpecsMatchPaperSetups) {
  EXPECT_EQ(workload::resnet50().dataset.name, "imagenet21k");
  EXPECT_EQ(workload::tresnet_m().dataset.name, "imagenet21k");
  EXPECT_EQ(workload::tresnet_m().batch_size, 80u);
  EXPECT_EQ(workload::cosmoflow().dataset.name, "cosmoUniverse");
  EXPECT_EQ(workload::deepcam().dataset.name, "deepcam");
  for (const auto& app :
       {workload::resnet50(), workload::tresnet_m(), workload::cosmoflow(),
        workload::deepcam()}) {
    EXPECT_EQ(app.procs_per_node, 2u) << app.name;
    EXPECT_GT(app.compute_seconds_per_batch, 0.0) << app.name;
  }
}

// ---- shuffler ----------------------------------------------------------------

TEST(Shuffler, PermutationProperties) {
  workload::EpochShuffler shuffler(1000, 7);
  const auto order = shuffler.shuffled(0);
  EXPECT_EQ(order.size(), 1000u);
  std::set<uint64_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(Shuffler, EpochsDiffer) {
  workload::EpochShuffler shuffler(500, 7);
  EXPECT_NE(shuffler.shuffled(0), shuffler.shuffled(1));
}

TEST(Shuffler, SeedsDiffer) {
  workload::EpochShuffler a(500, 7), b(500, 8);
  EXPECT_NE(a.shuffled(0), b.shuffled(0));
}

class SamplerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SamplerSweep, PartitionsCoverEverythingEvenly) {
  const auto [n_files, world] = GetParam();
  workload::EpochShuffler shuffler(n_files, 3);
  const auto order = shuffler.shuffled(0);

  std::set<uint64_t> covered;
  size_t min_size = SIZE_MAX, max_size = 0;
  for (int r = 0; r < world; ++r) {
    workload::DistributedSampler sampler(r, world);
    const auto part = sampler.partition(order);
    min_size = std::min(min_size, part.size());
    max_size = std::max(max_size, part.size());
    covered.insert(part.begin(), part.end());
  }
  // Every file is read at least once per epoch; all ranks run the same
  // number of steps (PyTorch-style padding).
  EXPECT_EQ(covered.size(), size_t(n_files));
  EXPECT_EQ(min_size, max_size);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SamplerSweep,
    ::testing::Combine(::testing::Values(64, 1000, 4099),
                       ::testing::Values(1, 4, 32, 100)));

// ---- file tree -------------------------------------------------------------------

TEST(FileTree, GenerateAndVerify) {
  const std::string root = temp_dir("tree");
  const auto spec = workload::synthetic_small(20, 2048, 0.4);
  const auto tree = workload::generate_tree(root, spec);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->relative_paths.size(), 20u);
  EXPECT_GT(tree->total_bytes, 0u);

  for (size_t i = 0; i < tree->relative_paths.size(); ++i) {
    const std::string abs = root + "/" + tree->relative_paths[i];
    const auto data = storage::read_file(abs);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->size(), tree->sizes[i]);
    EXPECT_TRUE(workload::verify_contents(tree->relative_paths[i], *data));
  }
}

TEST(FileTree, CorruptionDetected) {
  auto good = workload::expected_contents("x/y.bin", 256);
  EXPECT_TRUE(workload::verify_contents("x/y.bin", good));
  good[100] ^= 0xff;
  EXPECT_FALSE(workload::verify_contents("x/y.bin", good));
  // Wrong path -> different pattern.
  const auto other = workload::expected_contents("x/z.bin", 256);
  EXPECT_FALSE(workload::verify_contents("x/y.bin", other));
}

// ---- synthetic data / trainer ------------------------------------------------------

TEST(SyntheticData, SerializationRoundTrip) {
  train::MixtureSpec spec;
  const auto s = train::make_sample(spec, 17, false);
  const auto bytes = train::serialize_sample(s);
  const auto back = train::deserialize_sample(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->label, s.label);
  EXPECT_EQ(back->features, s.features);
}

TEST(SyntheticData, DeterministicSamples) {
  train::MixtureSpec spec;
  const auto a = train::make_sample(spec, 5, false);
  const auto b = train::make_sample(spec, 5, false);
  EXPECT_EQ(a.features, b.features);
  // Train and test splits differ at the same index.
  const auto t = train::make_sample(spec, 5, true);
  EXPECT_NE(a.features, t.features);
}

TEST(SyntheticData, LabelsCycleClasses) {
  train::MixtureSpec spec;
  for (uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(train::make_sample(spec, i, false).label,
              i % spec.num_classes);
  }
}

TEST(Trainer, ConvergesOnSeparableData) {
  train::MixtureSpec data;
  data.train_samples = 240;
  data.test_samples = 120;
  train::TrainerConfig config;

  train::SoftmaxTrainer trainer(config);
  std::vector<train::Sample> test;
  for (uint64_t i = 0; i < data.test_samples; ++i) {
    test.push_back(train::make_sample(data, i, true));
  }
  const double before = trainer.evaluate(test, 0).top1;

  workload::EpochShuffler shuffler(data.train_samples, 1);
  for (uint32_t epoch = 0; epoch < 6; ++epoch) {
    const auto order = shuffler.shuffled(epoch);
    std::vector<train::Sample> batch;
    for (uint64_t idx : order) {
      batch.push_back(train::make_sample(data, idx, false));
      if (batch.size() == config.batch_size) {
        trainer.step(batch);
        batch.clear();
      }
    }
  }
  const auto after = trainer.evaluate(test, trainer.iterations());
  EXPECT_GT(after.top1, before + 0.3);
  EXPECT_GE(after.top5, after.top1);
  EXPECT_LE(after.top5, 1.0);
}

TEST(Trainer, DeterministicGivenSequence) {
  train::MixtureSpec data;
  data.train_samples = 64;
  train::TrainerConfig config;
  train::SoftmaxTrainer t1(config), t2(config);
  std::vector<train::Sample> batch;
  for (uint64_t i = 0; i < 64; ++i) {
    batch.push_back(train::make_sample(data, i, false));
    if (batch.size() == config.batch_size) {
      const double l1 = t1.step(batch);
      const double l2 = t2.step(batch);
      EXPECT_DOUBLE_EQ(l1, l2);
      batch.clear();
    }
  }
  EXPECT_EQ(t1.weights(), t2.weights());
}

TEST(Trainer, StepOrderMatters) {
  // Different sample orders must produce different weights — this is
  // why a cache that reorders reads would corrupt SGD, and why Fig 14
  // checks bit-identity.
  train::MixtureSpec data;
  data.train_samples = 32;
  train::TrainerConfig config;
  config.batch_size = 8;
  train::SoftmaxTrainer forward(config), backward(config);
  std::vector<train::Sample> batch;
  for (uint64_t i = 0; i < 32; ++i) {
    batch.push_back(train::make_sample(data, i, false));
    if (batch.size() == 8) {
      forward.step(batch);
      batch.clear();
    }
  }
  for (uint64_t i = 32; i-- > 0;) {
    batch.push_back(train::make_sample(data, i, false));
    if (batch.size() == 8) {
      backward.step(batch);
      batch.clear();
    }
  }
  EXPECT_NE(forward.weights(), backward.weights());
}

TEST(Trainer, CurveHelpers) {
  train::TrainingCurve c;
  c.points = {{0, 0.1, 0.3}, {10, 0.5, 0.8}, {20, 0.9, 1.0}};
  EXPECT_EQ(c.iterations_to_top1(0.5), 10u);
  EXPECT_EQ(c.iterations_to_top1(0.95), UINT64_MAX);
  train::TrainingCurve d = c;
  EXPECT_TRUE(c.identical_to(d));
  d.points[1].top1 = 0.51;
  EXPECT_FALSE(c.identical_to(d));
}

TEST(Trainer, FullLoopFromFiles) {
  const std::string root = temp_dir("loop");
  train::MixtureSpec data;
  data.train_samples = 96;
  data.test_samples = 48;
  ASSERT_TRUE(train::write_train_files(data, root).ok());

  train::LoopConfig loop;
  loop.data = data;
  loop.epochs = 2;
  loop.dataset_root = root;
  const auto curve = train::run_training_loop(
      loop,
      [](const std::string& path) { return storage::read_file(path); });
  ASSERT_TRUE(curve.ok());
  EXPECT_GE(curve->points.size(), 2u);
  // Running it again gives the identical curve (fully deterministic).
  const auto again = train::run_training_loop(
      loop,
      [](const std::string& path) { return storage::read_file(path); });
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(curve->identical_to(*again));
}

}  // namespace
}  // namespace hvac
