// Property-based tests: randomized op sequences checked against
// reference models, wire-format corruption robustness, read-pattern
// equivalence through the full client, and simulator conservation
// invariants. All randomness is seeded per-parameter, so failures
// reproduce exactly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>

#include "client/hvac_client.h"
#include "common/rng.h"
#include "core/cache_manager.h"
#include "rpc/protocol.h"
#include "server/node_runtime.h"
#include "sim/dl_job.h"
#include "storage/posix_file.h"
#include "workload/file_tree.h"

namespace hvac {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_prop_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---- cache manager model check ------------------------------------------------

// Reference model: the cache must behave exactly like "read the file
// from the PFS directory" for every read, regardless of the interior
// hit/miss/eviction churn.
class CacheModelCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheModelCheck, RandomOpsMatchReferenceModel) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed);
  const std::string pfs_root =
      temp_dir("model_pfs_" + std::to_string(seed));

  // Small universe of files with known contents.
  constexpr int kFiles = 12;
  std::vector<std::string> rels;
  std::vector<std::vector<uint8_t>> contents;
  for (int i = 0; i < kFiles; ++i) {
    const std::string rel = "f" + std::to_string(i) + ".bin";
    const uint64_t size = 200 + rng.next_below(1800);
    auto data = workload::expected_contents(rel, size);
    ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, data.data(),
                                    data.size())
                    .ok());
    rels.push_back(rel);
    contents.push_back(std::move(data));
  }

  // Cache with capacity for roughly half the data -> constant churn.
  uint64_t total = 0;
  for (const auto& c : contents) total += c.size();
  storage::PfsBackend pfs(pfs_root);
  core::CacheManager cache(
      &pfs,
      std::make_unique<storage::LocalStore>(
          temp_dir("model_cache_" + std::to_string(seed)), total / 2),
      core::make_eviction_policy(seed % 3 == 0   ? "random"
                                 : seed % 3 == 1 ? "fifo"
                                                 : "lru",
                                 seed));

  for (int op = 0; op < 300; ++op) {
    const int f = int(rng.next_below(kFiles));
    switch (rng.next_below(4)) {
      case 0: {  // whole-file read
        const auto data = cache.read_through(rels[f]);
        ASSERT_TRUE(data.ok());
        ASSERT_EQ(*data, contents[f]) << "op " << op;
        break;
      }
      case 1: {  // positional read
        const uint64_t off = rng.next_below(contents[f].size());
        const size_t len = 1 + rng.next_below(300);
        std::vector<uint8_t> buf(len);
        const auto n =
            cache.pread_through(rels[f], buf.data(), len, off);
        ASSERT_TRUE(n.ok());
        const size_t expect =
            std::min<uint64_t>(len, contents[f].size() - off);
        ASSERT_EQ(*n, expect);
        ASSERT_TRUE(std::equal(buf.begin(), buf.begin() + *n,
                               contents[f].begin() + off));
        break;
      }
      case 2: {  // explicit evict (ok to fail if not cached)
        (void)cache.evict(rels[f]);
        break;
      }
      case 3: {  // segment read
        const uint64_t seg_bytes = 256;
        const uint64_t seg =
            rng.next_below(contents[f].size() / seg_bytes + 1);
        const uint64_t seg_off = seg * seg_bytes;
        if (seg_off >= contents[f].size()) break;
        std::vector<uint8_t> buf(seg_bytes);
        const auto n = cache.pread_segment(rels[f], seg, seg_bytes,
                                           buf.data(), buf.size(), 0);
        ASSERT_TRUE(n.ok());
        const size_t expect = std::min<uint64_t>(
            seg_bytes, contents[f].size() - seg_off);
        ASSERT_EQ(*n, expect);
        ASSERT_TRUE(std::equal(buf.begin(), buf.begin() + *n,
                               contents[f].begin() + seg_off));
        break;
      }
    }
    // Invariant: the store never exceeds its capacity.
    ASSERT_LE(cache.store().bytes_used(), total / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- client read-pattern equivalence ------------------------------------------

class ClientPatternCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClientPatternCheck, RandomSeeksAndReadsMatchDirectIo) {
  const uint64_t seed = GetParam();
  const std::string pfs_root =
      temp_dir("pat_pfs_" + std::to_string(seed));
  const std::string rel = "data.bin";
  const auto expected = workload::expected_contents(rel, 50'000);
  ASSERT_TRUE(storage::write_file(pfs_root + "/" + rel, expected.data(),
                                  expected.size())
                  .ok());

  server::NodeRuntimeOptions o;
  o.pfs_root = pfs_root;
  o.cache_root = temp_dir("pat_cache_" + std::to_string(seed));
  o.instances = 2;
  server::NodeRuntime node(o);
  ASSERT_TRUE(node.start().ok());

  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root;
  copts.server_endpoints = node.endpoints();
  // Half the seeds exercise the segmented path.
  if (seed % 2 == 0) copts.segment_bytes = 8 * 1024;
  client::HvacClient client(copts);

  auto vfd = client.open(pfs_root + "/" + rel);
  ASSERT_TRUE(vfd.ok());

  SplitMix64 rng(seed * 77 + 1);
  uint64_t model_offset = 0;
  for (int op = 0; op < 120; ++op) {
    if (rng.next_below(3) == 0) {
      // Random absolute seek.
      model_offset = rng.next_below(expected.size() + 100);
      const auto pos =
          client.lseek(*vfd, int64_t(model_offset), SEEK_SET);
      ASSERT_TRUE(pos.ok());
      ASSERT_EQ(uint64_t(*pos), model_offset);
    } else {
      const size_t len = 1 + rng.next_below(5000);
      std::vector<uint8_t> buf(len);
      const auto n = client.read(*vfd, buf.data(), len);
      ASSERT_TRUE(n.ok()) << n.error().to_string();
      const size_t expect =
          model_offset >= expected.size()
              ? 0
              : std::min<uint64_t>(len, expected.size() - model_offset);
      ASSERT_EQ(*n, expect) << "op " << op << " offset " << model_offset;
      ASSERT_TRUE(std::equal(buf.begin(), buf.begin() + *n,
                             expected.begin() + model_offset));
      model_offset += *n;
    }
  }
  ASSERT_TRUE(client.close(*vfd).ok());
  node.stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClientPatternCheck,
                         ::testing::Values(10, 11, 12, 13));

// ---- wire corruption robustness -------------------------------------------------

TEST(WireFuzz, CorruptedHeadersNeverCrash) {
  SplitMix64 rng(0xf022);
  for (int trial = 0; trial < 5000; ++trial) {
    uint8_t buf[rpc::kHeaderSize];
    for (auto& b : buf) b = uint8_t(rng.next());
    // Must either decode (if magic happens to match) or return a
    // protocol error — never crash or return garbage kinds.
    const auto header = rpc::decode_header(buf, rpc::kHeaderSize);
    if (header.ok()) {
      EXPECT_LE(header->payload_len, rpc::kMaxFrame);
      EXPECT_TRUE(header->kind == rpc::FrameKind::kRequest ||
                  header->kind == rpc::FrameKind::kResponse);
    }
  }
}

TEST(WireFuzz, TruncatedPayloadsErrorCleanly) {
  // A valid message, truncated at every possible point, must fail
  // with kProtocol (or decode successfully for prefix-complete cuts),
  // never UB.
  rpc::WireWriter w;
  w.put_string("hello");
  w.put_u64(42);
  w.put_blob(reinterpret_cast<const uint8_t*>("abc"), 3);
  const rpc::Bytes full = w.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    rpc::WireReader r(full.data(), cut);
    auto s = r.get_string();
    if (!s.ok()) continue;
    auto v = r.get_u64();
    if (!v.ok()) continue;
    auto b = r.get_blob();
    EXPECT_FALSE(b.ok()) << "cut=" << cut;  // 3-byte blob needs all bytes
  }
}

// ---- simulator invariants --------------------------------------------------------

class SimInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SimInvariants, IoConservation) {
  const auto [backend, nodes] = GetParam();
  sim::DlJobConfig job;
  job.app = workload::resnet50();
  job.nodes = uint32_t(nodes);
  job.dataset_scale = 2048;
  job.epochs_override = 3;
  const auto r = run_dl_job(sim::summit_defaults(), job, backend);

  const auto dataset = job.app.dataset.scaled(job.dataset_scale);
  // Every epoch reads >= the dataset once (sampler padding may repeat
  // a handful of files), so total bytes served is ~3x the dataset.
  uint64_t dataset_bytes = 0;
  for (uint64_t f = 0; f < dataset.num_files; ++f) {
    dataset_bytes += dataset.file_size(f);
  }
  const uint64_t served = r.io.bytes_from_gpfs + r.io.bytes_from_nvme;
  EXPECT_GE(served, 3 * dataset_bytes);
  EXPECT_LE(served, uint64_t(3.2 * double(dataset_bytes)));

  if (std::string(backend) == "GPFS") {
    EXPECT_EQ(r.io.bytes_from_nvme, 0u);
    EXPECT_EQ(r.io.cache_hits, 0u);
  } else if (std::string(backend) == "XFS") {
    EXPECT_EQ(r.io.bytes_from_gpfs, 0u);
  } else {
    // HVAC: each file crosses GPFS at most once (single copy).
    EXPECT_LE(r.io.bytes_from_gpfs, uint64_t(1.1 * dataset_bytes));
    EXPECT_EQ(r.io.cache_misses, dataset.num_files);
  }
  // Epochs are positive and finite.
  for (double e : r.epoch_seconds) {
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 1e7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariants,
    ::testing::Combine(::testing::Values("GPFS", "XFS", "HVAC(1x1)",
                                         "HVAC(4x1)"),
                       ::testing::Values(4, 32)));

TEST(SimExactness, SingleRankBatchTimeClosedForm) {
  // One node, one rank, one batch, XFS: the completion time is exactly
  // opens + nvme transfer + compute.
  sim::SummitConfig cfg;
  sim::Cluster cluster(cfg, 1);
  workload::DatasetSpec dataset = workload::synthetic_small(64, 1 << 20,
                                                            /*sigma=*/0.0);
  sim::XfsSim xfs(&cluster, dataset);
  sim::BatchIo io;
  io.node = 0;
  io.files = {0, 1, 2, 3};
  double done_at = -1;
  xfs.read_batch(io, [&] { done_at = cluster.engine().now(); });
  cluster.engine().run();
  const double expected = 4 * cfg.xfs_open_latency_s +
                          4.0 * (1 << 20) / cfg.nvme_read_bps;
  EXPECT_NEAR(done_at, expected, 1e-9);
}

TEST(SimExactness, GpfsSingleBatchClosedForm) {
  sim::SummitConfig cfg;
  sim::Cluster cluster(cfg, 1);
  workload::DatasetSpec dataset = workload::synthetic_small(64, 1 << 20,
                                                            /*sigma=*/0.0);
  sim::GpfsSim gpfs(&cluster, dataset);
  sim::BatchIo io;
  io.node = 0;
  io.files = {0, 1};
  double done_at = -1;
  gpfs.read_batch(io, [&] { done_at = cluster.engine().now(); });
  cluster.engine().run();
  // Unloaded: serialized metadata latency dominates the station, then
  // the transfer is NIC-bound (12.5 GB/s < 2.5 TB/s).
  const double meta = 2 * cfg.gpfs_metadata_latency_s;
  const double xfer = 2.0 * (1 << 20) / cfg.nic_bps;
  EXPECT_NEAR(done_at, meta + xfer, 1e-9);
}

}  // namespace
}  // namespace hvac
