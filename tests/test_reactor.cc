// Sharded-reactor server core: connection distribution across
// reactors (SO_REUSEPORT shards for TCP, fd handoff for unix
// sockets), shed accounting summed across reactors under saturation,
// graceful drain finishing in-flight work on every reactor, and
// work-stealing correctness with the fault harness slowing one
// shard's handlers. Suite names carry Backpressure/Drain/Fault/Chaos
// so the chaos CI leg (scripts/check.sh chaos) picks them up.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "rpc/async_client.h"
#include "rpc/health.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"

namespace hvac {
namespace {

using rpc::AsyncRpcClient;
using rpc::Bytes;
using rpc::RpcClient;
using rpc::RpcServer;
using rpc::RpcServerOptions;

uint64_t sum_conns(const std::vector<RpcServer::ReactorStats>& stats) {
  uint64_t total = 0;
  for (const auto& s : stats) total += s.conns;
  return total;
}

uint64_t sum_requests(const std::vector<RpcServer::ReactorStats>& stats) {
  uint64_t total = 0;
  for (const auto& s : stats) total += s.requests;
  return total;
}

uint64_t sum_shed(const std::vector<RpcServer::ReactorStats>& stats) {
  uint64_t total = 0;
  for (const auto& s : stats) total += s.shed;
  return total;
}

std::string unix_endpoint(const std::string& tag) {
  return "unix:" + ::testing::TempDir() + "hvac_reactor_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ---- work-stealing pool (the dispatch tier on its own) --------------------

TEST(ReactorChaos, WorkStealingPoolRunsEverySubmittedTask) {
  WorkStealingPool::Options o;
  o.shards = 4;
  o.workers_per_shard = 1;
  o.shard_capacity = 1024;
  WorkStealingPool pool(o);
  ASSERT_EQ(pool.shard_count(), 4u);
  ASSERT_EQ(pool.num_threads(), 4u);

  std::atomic<int> ran{0};
  constexpr int kTasks = 400;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.submit(size_t(i) % 4, [&] { ran.fetch_add(1); }).ok());
  }
  pool.shutdown();  // drains: every accepted task runs before exit
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_FALSE(pool.submit(0, [] {}).ok());  // after shutdown: rejected
}

TEST(ReactorChaos, WorkStealingPoolStealsFromBusyShard) {
  WorkStealingPool::Options o;
  o.shards = 2;
  o.workers_per_shard = 1;
  WorkStealingPool pool(o);

  // Park shard 1's worker so its queue sits idle, then pile work on
  // shard 0: shard 1's worker must steal shard-0 backlog once it
  // frees up, and the steals land on the victim shard's counter.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  ASSERT_TRUE(pool.submit(1, [gate] { gate.wait(); }).ok());

  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.submit(0, [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    }).ok());
  }
  release.set_value();
  pool.shutdown();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_GT(pool.steals(0), 0u);  // victim-shard accounting
}

TEST(ReactorChaos, WorkStealingPoolBoundsQueueWithCapacityError) {
  WorkStealingPool::Options o;
  o.shards = 1;
  o.workers_per_shard = 1;
  o.shard_capacity = 4;
  WorkStealingPool pool(o);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> started{false};
  ASSERT_TRUE(pool.submit(0, [&started, gate] {
    started.store(true);
    gate.wait();
  }).ok());
  while (!started.load()) std::this_thread::yield();
  // Worker is provably blocked and the queue empty: it takes exactly
  // shard_capacity more, then rejects with kCapacity instead of
  // growing without bound.
  int accepted = 0;
  Status last = Status::Ok();
  for (int i = 0; i < 64; ++i) {
    Status s = pool.submit(0, [] {});
    if (s.ok()) {
      ++accepted;
    } else {
      last = std::move(s);
      break;
    }
  }
  EXPECT_EQ(accepted, 4);
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.error().code, ErrorCode::kCapacity);
  release.set_value();
  pool.shutdown();
}

// ---- connection distribution ----------------------------------------------

TEST(ReactorChaos, TcpRequestsConservedAcrossReactors) {
  RpcServerOptions so;
  so.bind_address = "127.0.0.1:0";
  so.handler_threads = 4;
  so.reactors = 4;
  RpcServer server(so);
  server.register_handler(1, [](const Bytes& req) {
    return Result<Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());
  ASSERT_EQ(server.reactor_count(), 4u);

  // 16 connections, 8 echoes each. SO_REUSEPORT hashes the 4-tuple,
  // so per-reactor counts are kernel-dependent — what must hold is
  // conservation: nothing lost, nothing double-counted.
  constexpr int kClients = 16;
  constexpr int kCallsEach = 8;
  std::vector<std::unique_ptr<RpcClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<RpcClient>(server.endpoint()));
  }
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kCallsEach; ++i) {
      const Bytes req{uint8_t(c), uint8_t(i)};
      const auto resp = clients[c]->call(1, req);
      ASSERT_TRUE(resp.ok()) << resp.error().to_string();
      EXPECT_EQ(*resp, req);
    }
  }

  const auto stats = server.reactor_stats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(sum_conns(stats), uint64_t(kClients));
  EXPECT_EQ(sum_requests(stats), uint64_t(kClients) * kCallsEach);
  EXPECT_EQ(server.requests_served(), uint64_t(kClients) * kCallsEach);
  server.stop();
}

TEST(ReactorChaos, UnixHandoffRoundRobinsConnections) {
  RpcServerOptions so;
  so.bind_address = unix_endpoint("handoff");
  so.handler_threads = 4;
  so.reactors = 4;
  RpcServer server(so);
  server.register_handler(1, [](const Bytes& req) {
    return Result<Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());
  ASSERT_EQ(server.reactor_count(), 4u);

  // Unix sockets cannot shard the listener: reactor 0 accepts and
  // hands fds round-robin, so 8 connections land exactly 2 per
  // reactor. The ping makes each handoff observable before we look.
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<RpcClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<RpcClient>(server.endpoint()));
    const auto resp = clients.back()->call(1, Bytes{uint8_t(i)});
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  }

  const auto stats = server.reactor_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (size_t r = 0; r < stats.size(); ++r) {
    EXPECT_EQ(stats[r].conns, 2u) << "reactor " << r;
  }
  EXPECT_EQ(sum_requests(stats), uint64_t(kClients));
  server.stop();
}

// ---- saturation / shed accounting -----------------------------------------

TEST(ReactorBackpressure, ShedAccountingSumsAcrossReactors) {
  RpcServerOptions so;
  so.bind_address = unix_endpoint("shed");
  so.handler_threads = 2;
  so.max_inflight_per_conn = 2;
  so.reactors = 2;
  RpcServer server(so);
  server.register_handler(1, [](const Bytes& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return Result<Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());

  rpc::HealthRegistry::global().reset();
  // Two pipelined clients — the unix handoff puts one on each
  // reactor — each firing far past its per-connection in-flight cap,
  // so both reactors shed.
  AsyncRpcClient a(server.endpoint());
  AsyncRpcClient b(server.endpoint());
  std::vector<std::future<Result<Bytes>>> futures;
  for (uint8_t i = 0; i < 24; ++i) {
    futures.push_back(a.call_async(1, Bytes{i}));
    futures.push_back(b.call_async(1, Bytes{i}));
  }
  size_t ok = 0, shed = 0;
  for (auto& fut : futures) {
    const auto resp = fut.get();  // every call resolves, none hang
    if (resp.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(resp.error().code, ErrorCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);

  const auto stats = server.reactor_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(sum_shed(stats), shed);
  EXPECT_EQ(server.requests_shed(), shed);
  EXPECT_EQ(sum_requests(stats), ok);
  server.stop();
  rpc::HealthRegistry::global().reset();
}

// ---- graceful drain across reactors ---------------------------------------

TEST(ReactorDrain, DrainFinishesInflightOnAllReactors) {
  RpcServerOptions so;
  so.bind_address = unix_endpoint("drain");
  so.handler_threads = 4;
  so.reactors = 4;
  RpcServer server(so);
  server.register_handler(1, [](const Bytes& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Result<Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());
  rpc::HealthRegistry::global().reset();

  // One in-flight request per reactor (round-robin handoff), then
  // drain: all four must be answered, not cut, and late arrivals on
  // the still-open connections get a shed response rather than a hang.
  std::vector<std::unique_ptr<AsyncRpcClient>> clients;
  std::vector<std::future<Result<Bytes>>> inflight;
  for (uint8_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<AsyncRpcClient>(server.endpoint()));
    inflight.push_back(clients.back()->call_async(1, Bytes{i}));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.drain(3000);
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.inflight(), 0u);

  for (uint8_t i = 0; i < 4; ++i) {
    const auto resp = inflight[i].get();
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
    EXPECT_EQ((*resp)[0], i);
  }
  for (auto& client : clients) {
    const auto late = client->call(1, Bytes{9});
    ASSERT_FALSE(late.ok());
    EXPECT_EQ(late.error().code, ErrorCode::kUnavailable);
    EXPECT_NE(late.error().message.find("draining"), std::string::npos);
  }
  server.stop();
  rpc::HealthRegistry::global().reset();
}

// ---- work stealing under fault injection ----------------------------------

TEST(ReactorFaultSteal, StealsKeepAnswersCorrectUnderInjectedDelay) {
  RpcServerOptions so;
  so.bind_address = unix_endpoint("steal");
  so.handler_threads = 2;
  so.reactors = 2;
  RpcServer server(so);
  // Pooled handler slowed by the fault harness (the mover-bound
  // shape): every request checks the kRead site, which is configured
  // to sleep.
  server.register_handler(1, [](const Bytes& req) -> Result<Bytes> {
    (void)fault::check(fault::Site::kRead);
    return req;
  });
  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(fault::configure("read:delay_ms=2").ok());

  // Both clients land on reactor 0/1 via handoff; only client A sends,
  // so reactor 0's shard backs up while reactor 1's worker idles — it
  // must steal, and every stolen request must still return its own
  // payload (no cross-wiring of connections or responses).
  AsyncRpcClient a(server.endpoint());
  AsyncRpcClient b(server.endpoint());
  const auto warm = b.call(1, Bytes{0xFF});  // materialize b's conn
  ASSERT_TRUE(warm.ok());

  std::vector<std::future<Result<Bytes>>> futures;
  constexpr uint8_t kCalls = 48;
  for (uint8_t i = 0; i < kCalls; ++i) {
    futures.push_back(a.call_async(1, Bytes{i}));
  }
  for (uint8_t i = 0; i < kCalls; ++i) {
    const auto resp = futures[i].get();
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
    ASSERT_EQ(resp->size(), 1u);
    EXPECT_EQ((*resp)[0], i);
  }

  const auto stats = server.reactor_stats();
  ASSERT_EQ(stats.size(), 2u);
  const uint64_t steals = stats[0].steals + stats[1].steals;
  EXPECT_GT(steals, 0u);
  EXPECT_GT(fault::total_injected(), 0u);
  server.stop();
  fault::reset();
}

// ---- single-reactor fallback ----------------------------------------------

TEST(ReactorChaos, SingleReactorIsStatusQuo) {
  RpcServerOptions so;
  so.bind_address = "127.0.0.1:0";
  so.handler_threads = 2;
  so.reactors = 1;
  RpcServer server(so);
  server.register_handler(1, [](const Bytes& req) {
    return Result<Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());
  ASSERT_EQ(server.reactor_count(), 1u);

  RpcClient client(server.endpoint());
  for (uint8_t i = 0; i < 8; ++i) {
    const auto resp = client.call(1, Bytes{i});
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ((*resp)[0], i);
  }
  const auto stats = server.reactor_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].conns, 1u);
  EXPECT_EQ(stats[0].requests, 8u);
  server.stop();
}

TEST(ReactorPinning, PinnedReactorsStillServe) {
  // HVAC_REACTOR_PIN=1 pins each reactor to one allowed CPU. The pin
  // is opt-in and warn-on-failure, so the observable contract is
  // simply: the server works exactly as before, whatever the runner's
  // cpuset looks like (more reactors than allowed CPUs included).
  ::setenv("HVAC_REACTOR_PIN", "1", 1);
  RpcServerOptions so;
  so.bind_address = "127.0.0.1:0";
  so.handler_threads = 2;
  so.reactors = 4;
  RpcServer server(so);
  server.register_handler(1, [](const Bytes& req) {
    return Result<Bytes>(req);
  });
  ASSERT_TRUE(server.start().ok());

  RpcClient client(server.endpoint());
  for (uint8_t i = 0; i < 16; ++i) {
    const auto resp = client.call(1, Bytes{i});
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
    EXPECT_EQ((*resp)[0], i);
  }
  EXPECT_EQ(server.requests_served(), 16u);
  server.stop();
  ::unsetenv("HVAC_REACTOR_PIN");
}

}  // namespace
}  // namespace hvac
