// End-to-end tests of the out-of-process deployment: the hvacd daemon
// is spawned as a real child process, hvacctl talks to it, the
// LD_PRELOAD shim routes an unmodified binary through it, and SIGTERM
// teardown purges the cache (job-lifetime semantics).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

#include "client/hvac_client.h"
#include "common/env.h"
#include "storage/posix_file.h"
#include "workload/file_tree.h"

#ifndef HVAC_HVACD_BIN
#error "HVAC_HVACD_BIN must be defined by the build"
#endif
#ifndef HVAC_HVACCTL_BIN
#error "HVAC_HVACCTL_BIN must be defined by the build"
#endif

namespace hvac {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_daemon_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Spawns hvacd, waits for its endpoint line on the port file.
class DaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_root_ = temp_dir("pfs");
    cache_root_ = temp_dir("cache");
    port_file_ = temp_dir("meta") + "/ports";
    const auto spec = workload::synthetic_small(12, 4096, 0.2);
    auto tree = workload::generate_tree(pfs_root_, spec);
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();

    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::execl(HVAC_HVACD_BIN, HVAC_HVACD_BIN, "--pfs-root",
              pfs_root_.c_str(), "--cache-dir", cache_root_.c_str(),
              "--instances", "2", "--port-file", port_file_.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);
    }
    // Wait for the port file to appear.
    for (int i = 0; i < 200 && endpoints_.empty(); ++i) {
      if (storage::file_exists(port_file_)) {
        std::ifstream in(port_file_);
        std::getline(in, endpoints_);
      }
      if (endpoints_.empty()) ::usleep(20 * 1000);
    }
    ASSERT_FALSE(endpoints_.empty()) << "hvacd did not come up";
  }

  void TearDown() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  int run_cmd(const std::string& cmd, std::string* out = nullptr) {
    const std::string out_file = temp_dir("out") + "/cmd.txt";
    const int rc =
        std::system((cmd + " > " + out_file + " 2>&1").c_str());
    if (out != nullptr) {
      std::ifstream in(out_file);
      std::stringstream ss;
      ss << in.rdbuf();
      *out = ss.str();
    }
    return rc;
  }

  std::string pfs_root_, cache_root_, port_file_, endpoints_;
  workload::GeneratedTree tree_;
  pid_t pid_ = -1;
};

TEST_F(DaemonFixture, ClientReadsThroughDaemon) {
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root_;
  copts.server_endpoints = split_csv(endpoints_);
  ASSERT_EQ(copts.server_endpoints.size(), 2u);  // --instances 2
  client::HvacClient client(copts);

  for (size_t i = 0; i < tree_.relative_paths.size(); ++i) {
    const std::string& rel = tree_.relative_paths[i];
    auto vfd = client.open(pfs_root_ + "/" + rel);
    ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
    std::vector<uint8_t> data(tree_.sizes[i]);
    const auto n = client.pread(*vfd, data.data(), data.size(), 0);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, tree_.sizes[i]);
    EXPECT_TRUE(workload::verify_contents(rel, data));
    ASSERT_TRUE(client.close(*vfd).ok());
  }
  EXPECT_EQ(client.stats().fallback_opens, 0u);
}

TEST_F(DaemonFixture, HvacctlPingAndMetrics) {
  std::string out;
  EXPECT_EQ(run_cmd(std::string(HVAC_HVACCTL_BIN) + " ping " + endpoints_,
                    &out),
            0);
  EXPECT_NE(out.find("OK"), std::string::npos);
  EXPECT_EQ(out.find("UNAVAILABLE"), std::string::npos);

  // Warm a file, then metrics must show the miss.
  const std::string first_endpoint = split_csv(endpoints_)[0];
  std::string warm_out;
  (void)run_cmd(std::string(HVAC_HVACCTL_BIN) + " warm " + first_endpoint +
                    " " + tree_.relative_paths[0],
                &warm_out);
  EXPECT_NE(warm_out.find("cached"), std::string::npos);

  std::string stat_out;
  EXPECT_EQ(run_cmd(std::string(HVAC_HVACCTL_BIN) + " stat " +
                        first_endpoint + " " + tree_.relative_paths[0],
                    &stat_out),
            0);
  EXPECT_NE(stat_out.find(std::to_string(tree_.sizes[0]) + " bytes"),
            std::string::npos);

  EXPECT_EQ(run_cmd(std::string(HVAC_HVACCTL_BIN) + " metrics " +
                        endpoints_,
                    &out),
            0);
  EXPECT_NE(out.find("misses"), std::string::npos);
}

TEST_F(DaemonFixture, SigtermPurgesCache) {
  // Populate the cache.
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root_;
  copts.server_endpoints = split_csv(endpoints_);
  client::HvacClient client(copts);
  for (const auto& rel : tree_.relative_paths) {
    auto vfd = client.open(pfs_root_ + "/" + rel);
    ASSERT_TRUE(vfd.ok());
    uint8_t b;
    (void)client.pread(*vfd, &b, 1, 0);
    ASSERT_TRUE(client.close(*vfd).ok());
  }
  size_t cached_files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(cache_root_)) {
    if (entry.is_regular_file()) ++cached_files;
  }
  EXPECT_GT(cached_files, 0u);

  ::kill(pid_, SIGTERM);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  size_t remaining = 0;
  for (const auto& entry : fs::recursive_directory_iterator(cache_root_)) {
    if (entry.is_regular_file()) ++remaining;
  }
  EXPECT_EQ(remaining, 0u);  // cache lifetime == job lifetime
}

// ---- kill -9 crash consistency ----

pid_t spawn_hvacd(const std::string& pfs, const std::string& cache,
                  const std::string& port_file, const char* fault_spec) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (fault_spec != nullptr) {
      ::setenv("HVAC_FAULT", fault_spec, 1);
    } else {
      ::unsetenv("HVAC_FAULT");
    }
    ::execl(HVAC_HVACD_BIN, HVAC_HVACD_BIN, "--pfs-root", pfs.c_str(),
            "--cache-dir", cache.c_str(), "--instances", "1", "--port-file",
            port_file.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

std::string wait_endpoints(const std::string& port_file) {
  std::string endpoints;
  for (int i = 0; i < 300 && endpoints.empty(); ++i) {
    if (storage::file_exists(port_file)) {
      std::ifstream in(port_file);
      std::getline(in, endpoints);
    }
    if (endpoints.empty()) ::usleep(20 * 1000);
  }
  return endpoints;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The write path's core promise: a kill -9 at any instant after an
// acked fsync loses nothing. The first incarnation runs with the
// flusher's PFS leg fault-injected dead, so every acked byte exists
// ONLY in the journal + local tier when the SIGKILL lands; the second
// incarnation must replay the journal and land every file on the PFS
// with exact content.
TEST(WriteCrash, KillNineLosesNoAckedFsyncBytes) {
  const std::string pfs = temp_dir("crash_pfs");
  const std::string cache = temp_dir("crash_cache");
  const std::string meta = temp_dir("crash_meta");

  pid_t pid = spawn_hvacd(pfs, cache, meta + "/ports1", "pfs_write:error");
  ASSERT_GT(pid, 0);
  const std::string endpoints = wait_endpoints(meta + "/ports1");
  ASSERT_FALSE(endpoints.empty()) << "hvacd did not come up";

  // Distinct deterministic payloads; file 0 also gets an overwrite so
  // replay ordering (later record wins) is exercised end to end.
  std::vector<std::string> expected;
  {
    client::HvacClientOptions copts;
    copts.dataset_dir = pfs;
    copts.server_endpoints = split_csv(endpoints);
    copts.allow_pfs_fallback = false;  // writes must be write-back
    client::HvacClient client(copts);
    for (int i = 0; i < 4; ++i) {
      std::string payload(1000 + 100 * i, 'A' + i);
      for (size_t k = 0; k < payload.size(); k += 7) payload[k] = '0' + i;
      const std::string path =
          pfs + "/ckpt/shard" + std::to_string(i) + ".bin";
      auto vfd = client.open_write(path, true);
      ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
      const size_t half = payload.size() / 2;
      auto w1 = client.write(*vfd, payload.data(), half);
      ASSERT_TRUE(w1.ok()) << w1.error().to_string();
      auto w2 = client.write(*vfd, payload.data() + half,
                             payload.size() - half);
      ASSERT_TRUE(w2.ok());
      if (i == 0) {
        auto w3 = client.pwrite(*vfd, "OVERWRITE", 9, 16);
        ASSERT_TRUE(w3.ok());
        payload.replace(16, 9, "OVERWRITE");
      }
      ASSERT_TRUE(client.fsync(*vfd).ok());
      ASSERT_TRUE(client.close(*vfd).ok());
      expected.push_back(payload);
    }
  }

  // The faulted flusher means nothing reached the PFS: the acked
  // bytes exist only in the journal and the local write-back tier.
  EXPECT_FALSE(fs::exists(pfs + "/ckpt/shard0.bin"));

  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);

  pid = spawn_hvacd(pfs, cache, meta + "/ports2", nullptr);
  ASSERT_GT(pid, 0);
  ASSERT_FALSE(wait_endpoints(meta + "/ports2").empty())
      << "hvacd did not restart";

  // Replay re-applies the journal and re-queues the dirty files; the
  // flusher (healthy now) lands them on the PFS. copy_in renames into
  // place, so a polled read never sees a partial file.
  for (int i = 0; i < 4; ++i) {
    const std::string path =
        pfs + "/ckpt/shard" + std::to_string(i) + ".bin";
    std::string got;
    for (int tries = 0; tries < 1000; ++tries) {
      if (fs::exists(path)) {
        got = read_file(path);
        if (got.size() == expected[i].size()) break;
      }
      ::usleep(10 * 1000);
    }
    EXPECT_EQ(got.size(), expected[i].size()) << "shard " << i;
    EXPECT_EQ(got, expected[i]) << "shard " << i;
  }

  // The operator's view: `hvacctl journal` reports the replay summary.
  const std::string endpoints2 = wait_endpoints(meta + "/ports2");
  const std::string out_file = meta + "/journal.txt";
  const int rc = std::system((std::string(HVAC_HVACCTL_BIN) + " journal " +
                              endpoints2 + " --json > " + out_file + " 2>&1")
                                 .c_str());
  EXPECT_EQ(rc, 0);
  const std::string out = read_file(out_file);
  EXPECT_NE(out.find("\"replay\":{\"writes\":"), std::string::npos) << out;
  EXPECT_EQ(out.find("\"replay\":{\"writes\":0,"), std::string::npos) << out;

  ::kill(pid, SIGTERM);
  ::waitpid(pid, &status, 0);
}

// ---- hvacctl top over the kTimeSeries ring ----

// Two server instances with a fast collector cadence: `hvacctl top`
// must compute live rates for both endpoints from the server-side
// time-series ring (no caller-side state).
TEST(TelemetryTop, RendersLiveRatesForTwoEndpoints) {
  const std::string pfs = temp_dir("top_pfs");
  const std::string cache = temp_dir("top_cache");
  const std::string meta = temp_dir("top_meta");
  const auto spec = workload::synthetic_small(8, 4096, 0.2);
  auto tree = workload::generate_tree(pfs, spec);
  ASSERT_TRUE(tree.ok());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("HVAC_TS_INTERVAL_MS", "100", 1);
    ::execl(HVAC_HVACD_BIN, HVAC_HVACD_BIN, "--pfs-root", pfs.c_str(),
            "--cache-dir", cache.c_str(), "--instances", "2", "--port-file",
            (meta + "/ports").c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  const std::string endpoints = wait_endpoints(meta + "/ports");
  ASSERT_FALSE(endpoints.empty()) << "hvacd did not come up";
  ASSERT_EQ(split_csv(endpoints).size(), 2u);

  // Traffic on both instances so the sampled deltas are not all zero.
  {
    client::HvacClientOptions copts;
    copts.dataset_dir = pfs;
    copts.server_endpoints = split_csv(endpoints);
    client::HvacClient client(copts);
    for (const auto& rel : tree->relative_paths) {
      auto vfd = client.open(pfs + "/" + rel);
      ASSERT_TRUE(vfd.ok());
      std::vector<uint8_t> buf(4096);
      (void)client.pread(*vfd, buf.data(), buf.size(), 0);
      ASSERT_TRUE(client.close(*vfd).ok());
    }
  }

  // Poll until both rings have a sample (collector ticks every 100ms).
  std::string out;
  bool have_rates = false;
  for (int tries = 0; tries < 50 && !have_rates; ++tries) {
    ::usleep(100 * 1000);
    const std::string out_file = meta + "/top.json";
    const int rc =
        std::system((std::string(HVAC_HVACCTL_BIN) + " top " + endpoints +
                     " --count 1 --json > " + out_file + " 2>&1")
                        .c_str());
    if (rc != 0) continue;
    out = read_file(out_file);
    have_rates = out.find("\"rates\"") != std::string::npos &&
                 out.find("\"failures\":0") != std::string::npos;
  }
  ASSERT_TRUE(have_rates) << out;

  // Both endpoints report an up row with ring metadata and a rates
  // object computed from the last interval delta.
  size_t rows = 0;
  for (size_t at = out.find("\"endpoint\":"); at != std::string::npos;
       at = out.find("\"endpoint\":", at + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u) << out;
  EXPECT_NE(out.find("\"up\":true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"interval_ms\":100"), std::string::npos) << out;
  EXPECT_NE(out.find("\"reads_per_s\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"hit_pct\":"), std::string::npos) << out;

  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

}  // namespace
}  // namespace hvac
