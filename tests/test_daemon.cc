// End-to-end tests of the out-of-process deployment: the hvacd daemon
// is spawned as a real child process, hvacctl talks to it, the
// LD_PRELOAD shim routes an unmodified binary through it, and SIGTERM
// teardown purges the cache (job-lifetime semantics).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

#include "client/hvac_client.h"
#include "common/env.h"
#include "storage/posix_file.h"
#include "workload/file_tree.h"

#ifndef HVAC_HVACD_BIN
#error "HVAC_HVACD_BIN must be defined by the build"
#endif
#ifndef HVAC_HVACCTL_BIN
#error "HVAC_HVACCTL_BIN must be defined by the build"
#endif

namespace hvac {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "hvac_daemon_" + name +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Spawns hvacd, waits for its endpoint line on the port file.
class DaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_root_ = temp_dir("pfs");
    cache_root_ = temp_dir("cache");
    port_file_ = temp_dir("meta") + "/ports";
    const auto spec = workload::synthetic_small(12, 4096, 0.2);
    auto tree = workload::generate_tree(pfs_root_, spec);
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();

    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::execl(HVAC_HVACD_BIN, HVAC_HVACD_BIN, "--pfs-root",
              pfs_root_.c_str(), "--cache-dir", cache_root_.c_str(),
              "--instances", "2", "--port-file", port_file_.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);
    }
    // Wait for the port file to appear.
    for (int i = 0; i < 200 && endpoints_.empty(); ++i) {
      if (storage::file_exists(port_file_)) {
        std::ifstream in(port_file_);
        std::getline(in, endpoints_);
      }
      if (endpoints_.empty()) ::usleep(20 * 1000);
    }
    ASSERT_FALSE(endpoints_.empty()) << "hvacd did not come up";
  }

  void TearDown() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  int run_cmd(const std::string& cmd, std::string* out = nullptr) {
    const std::string out_file = temp_dir("out") + "/cmd.txt";
    const int rc =
        std::system((cmd + " > " + out_file + " 2>&1").c_str());
    if (out != nullptr) {
      std::ifstream in(out_file);
      std::stringstream ss;
      ss << in.rdbuf();
      *out = ss.str();
    }
    return rc;
  }

  std::string pfs_root_, cache_root_, port_file_, endpoints_;
  workload::GeneratedTree tree_;
  pid_t pid_ = -1;
};

TEST_F(DaemonFixture, ClientReadsThroughDaemon) {
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root_;
  copts.server_endpoints = split_csv(endpoints_);
  ASSERT_EQ(copts.server_endpoints.size(), 2u);  // --instances 2
  client::HvacClient client(copts);

  for (size_t i = 0; i < tree_.relative_paths.size(); ++i) {
    const std::string& rel = tree_.relative_paths[i];
    auto vfd = client.open(pfs_root_ + "/" + rel);
    ASSERT_TRUE(vfd.ok()) << vfd.error().to_string();
    std::vector<uint8_t> data(tree_.sizes[i]);
    const auto n = client.pread(*vfd, data.data(), data.size(), 0);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, tree_.sizes[i]);
    EXPECT_TRUE(workload::verify_contents(rel, data));
    ASSERT_TRUE(client.close(*vfd).ok());
  }
  EXPECT_EQ(client.stats().fallback_opens, 0u);
}

TEST_F(DaemonFixture, HvacctlPingAndMetrics) {
  std::string out;
  EXPECT_EQ(run_cmd(std::string(HVAC_HVACCTL_BIN) + " ping " + endpoints_,
                    &out),
            0);
  EXPECT_NE(out.find("OK"), std::string::npos);
  EXPECT_EQ(out.find("UNAVAILABLE"), std::string::npos);

  // Warm a file, then metrics must show the miss.
  const std::string first_endpoint = split_csv(endpoints_)[0];
  std::string warm_out;
  (void)run_cmd(std::string(HVAC_HVACCTL_BIN) + " warm " + first_endpoint +
                    " " + tree_.relative_paths[0],
                &warm_out);
  EXPECT_NE(warm_out.find("cached"), std::string::npos);

  std::string stat_out;
  EXPECT_EQ(run_cmd(std::string(HVAC_HVACCTL_BIN) + " stat " +
                        first_endpoint + " " + tree_.relative_paths[0],
                    &stat_out),
            0);
  EXPECT_NE(stat_out.find(std::to_string(tree_.sizes[0]) + " bytes"),
            std::string::npos);

  EXPECT_EQ(run_cmd(std::string(HVAC_HVACCTL_BIN) + " metrics " +
                        endpoints_,
                    &out),
            0);
  EXPECT_NE(out.find("misses"), std::string::npos);
}

TEST_F(DaemonFixture, SigtermPurgesCache) {
  // Populate the cache.
  client::HvacClientOptions copts;
  copts.dataset_dir = pfs_root_;
  copts.server_endpoints = split_csv(endpoints_);
  client::HvacClient client(copts);
  for (const auto& rel : tree_.relative_paths) {
    auto vfd = client.open(pfs_root_ + "/" + rel);
    ASSERT_TRUE(vfd.ok());
    uint8_t b;
    (void)client.pread(*vfd, &b, 1, 0);
    ASSERT_TRUE(client.close(*vfd).ok());
  }
  size_t cached_files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(cache_root_)) {
    if (entry.is_regular_file()) ++cached_files;
  }
  EXPECT_GT(cached_files, 0u);

  ::kill(pid_, SIGTERM);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  size_t remaining = 0;
  for (const auto& entry : fs::recursive_directory_iterator(cache_root_)) {
    if (entry.is_regular_file()) ++remaining;
  }
  EXPECT_EQ(remaining, 0u);  // cache lifetime == job lifetime
}

}  // namespace
}  // namespace hvac
